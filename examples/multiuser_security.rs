//! The paper's protection story, §4.3: "BCL forces the communication request
//! from applications to pass some necessary security checks in kernel module
//! and control program layers. … With this safeguard mechanism BCL assures
//! all processes using it will safely send and receive messages, never
//! destroy kernel data structures."
//!
//! Two well-behaved processes exchange data while a hostile process on the
//! same node throws forged pointers, bogus destinations, stolen ports and
//! out-of-bounds RMA at the kernel. Every attack is rejected with a typed
//! error; the victims' traffic is unaffected.
//!
//! ```text
//! cargo run --example multiuser_security
//! ```

use std::sync::Arc;

use parking_lot::Mutex;

use suca::bcl::{BclError, ChannelId, PortId, ProcAddr};
use suca::cluster::{ClusterSpec, SimBarrier};
use suca::mem::VirtAddr;
use suca::os::NodeId;
use suca::prelude::*;

fn main() {
    let cluster = ClusterSpec::dawning3000(2).build();
    let sim = cluster.sim.clone();
    let barrier = SimBarrier::new(&sim, 3);
    let victim_addr: Arc<Mutex<Option<ProcAddr>>> = Arc::new(Mutex::new(None));

    // Victim receiver on node 1.
    {
        let barrier = barrier.clone();
        let victim_addr = victim_addr.clone();
        cluster.spawn_process(1, "victim-rx", move |ctx, env| {
            let port = env.open_port(ctx);
            *victim_addr.lock() = Some(port.addr());
            barrier.wait(ctx);
            for i in 0..5 {
                let ev = port.wait_recv(ctx);
                let data = port.recv_bytes(ctx, &ev).expect("payload");
                assert_eq!(data, format!("payment-{i}").into_bytes());
            }
            println!("[victim] all 5 messages received intact despite the attacker");
        });
    }

    // Victim sender on node 0.
    {
        let barrier = barrier.clone();
        let victim_addr = victim_addr.clone();
        cluster.spawn_process(0, "victim-tx", move |ctx, env| {
            let port = env.open_port(ctx);
            barrier.wait(ctx);
            let dst = victim_addr.lock().expect("rx ready");
            for i in 0..5 {
                port.send_bytes(
                    ctx,
                    dst,
                    ChannelId::SYSTEM,
                    format!("payment-{i}").as_bytes(),
                )
                .expect("send");
                let _ = port.wait_send(ctx);
                ctx.sleep(SimDuration::from_us(30));
            }
        });
    }

    // The attacker shares node 0 with the victim sender.
    cluster.spawn_process(0, "attacker", move |ctx, env| {
        let port = env.open_port(ctx);
        barrier.wait(ctx);
        let mut rejected = 0;

        // 1. Forged buffer pointer (classic DMA-anywhere attack).
        let dst = ProcAddr {
            node: NodeId(1),
            port: PortId(0),
        };
        match port.send(ctx, dst, ChannelId::SYSTEM, VirtAddr(0xDEAD_0000), 512) {
            Err(BclError::BadBuffer { .. }) => {
                rejected += 1;
                println!("[kernel] rejected forged buffer pointer");
            }
            other => panic!("attack not stopped: {other:?}"),
        }

        // 2. Nonexistent destination node.
        let buf = port.alloc_buffer(64).expect("buf");
        match port.send(
            ctx,
            ProcAddr {
                node: NodeId(77),
                port: PortId(0),
            },
            ChannelId::SYSTEM,
            buf,
            64,
        ) {
            Err(BclError::BadNode(_)) => {
                rejected += 1;
                println!("[kernel] rejected bogus destination node");
            }
            other => panic!("attack not stopped: {other:?}"),
        }

        // 3. Oversized system-channel message (buffer-overflow probe).
        match port.send(ctx, dst, ChannelId::SYSTEM, buf, 1 << 20) {
            Err(BclError::BadBuffer { .. } | BclError::TooBigForSystemChannel { .. }) => {
                rejected += 1;
                println!("[kernel] rejected oversized system-channel message");
            }
            other => panic!("attack not stopped: {other:?}"),
        }

        // 4. Out-of-range channel index.
        match port.send(ctx, dst, ChannelId::normal(9999), buf, 64) {
            Err(BclError::BadChannel(_)) => {
                rejected += 1;
                println!("[kernel] rejected out-of-range channel");
            }
            other => panic!("attack not stopped: {other:?}"),
        }

        // 5. RMA read beyond a bound window is refused NIC-side.
        let into = port.alloc_buffer(4096).expect("buf");
        let rid = port
            .rma_read(ctx, dst, 0, 0, into, 4096)
            .expect("request accepted; target validates");
        let ev = port.wait_send(ctx);
        assert_eq!(ev.msg_id, rid);
        assert_eq!(ev.status, suca::bcl::SendStatus::Rejected);
        rejected += 1;
        println!("[NIC]    rejected RMA read of an unbound window");

        println!("[attacker] {rejected}/5 attacks rejected; nothing crashed");
    });

    assert_eq!(sim.run(), RunOutcome::Completed);
    println!(
        "\nkernel security rejections are typed errors to the caller; the victims'\n\
         messages were never disturbed — the paper's multi-user protection claim."
    );
}
