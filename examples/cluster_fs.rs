//! A miniature cluster block service over BCL — the paper's conclusion
//! names "cluster file systems" (alongside MPI and TCP/IP) as a workload
//! the communication system must carry "in a multi-user, multi-process
//! environment". This example sketches that shape:
//!
//! * a storage server exports a block device as an RMA window (reads are
//!   fully one-sided — clients `rma_read` blocks without server CPU);
//! * writes go through a tiny RPC on the system channel, so the server
//!   serializes them and bumps a per-block version (the metadata path);
//! * three clients on different nodes hammer the service concurrently, then
//!   a full read-back verifies every committed write.
//!
//! ```text
//! cargo run --example cluster_fs
//! ```

use std::sync::Arc;

use parking_lot::Mutex;

use suca::bcl::{ChannelId, ProcAddr, SendStatus};
use suca::cluster::{ClusterSpec, SimBarrier};
use suca::prelude::*;

/// Wait for the completion event of one specific operation, draining other
/// completions (e.g. the write RPCs') along the way.
fn await_op(ctx: &mut suca::sim::ActorCtx, port: &suca::bcl::BclPort, id: u32) {
    loop {
        let ev = port.wait_send(ctx);
        if ev.msg_id == id {
            assert_eq!(ev.status, SendStatus::Ok);
            return;
        }
    }
}

const BLOCK: u64 = 512;
const BLOCKS: u64 = 64;
const CLIENTS: u32 = 3;
const WRITES_PER_CLIENT: u32 = 8;

/// Committed-write log the server fills: `(block, bytes)` pairs.
type CommitLog = Arc<Mutex<Vec<(u64, Vec<u8>)>>>;

fn block_payload(client: u32, seq: u32) -> Vec<u8> {
    (0..BLOCK)
        .map(|i| (i as u8) ^ (client as u8 * 31) ^ (seq as u8))
        .collect()
}

fn main() {
    let cluster = ClusterSpec::dawning3000(CLIENTS + 1).build();
    let sim = cluster.sim.clone();
    let up = SimBarrier::new(&sim, CLIENTS + 1);
    let down = SimBarrier::new(&sim, CLIENTS + 1);
    let server: Arc<Mutex<Option<ProcAddr>>> = Arc::new(Mutex::new(None));
    // Ground truth of committed writes, filled by the server.
    let committed: CommitLog = Arc::new(Mutex::new(Vec::new()));

    // --- the storage server (node 0) ---
    {
        let up = up.clone();
        let down = down.clone();
        let server = server.clone();
        let committed = committed.clone();
        cluster.spawn_process(0, "blockserver", move |ctx, env| {
            let port = env.open_port(ctx);
            *server.lock() = Some(port.addr());
            let disk = port
                .bind_open(ctx, 0, BLOCK * BLOCKS)
                .expect("export device");
            // Format: block b filled with b's low byte.
            for b in 0..BLOCKS {
                port.write_buffer(disk.add(b * BLOCK), &vec![b as u8; BLOCK as usize])
                    .expect("format");
            }
            up.wait(ctx);
            // Write RPC loop: [client u32 | block u64 | payload 512B].
            let total_writes = CLIENTS * WRITES_PER_CLIENT;
            for _ in 0..total_writes {
                let ev = port.wait_recv(ctx);
                let req = port.recv_bytes(ctx, &ev).expect("rpc");
                let block = u64::from_le_bytes(req[4..12].try_into().expect("8"));
                assert!(block < BLOCKS, "server validates block numbers");
                let data = &req[12..12 + BLOCK as usize];
                // Commit: land the block in the exported window + remember.
                port.write_buffer(disk.add(block * BLOCK), data)
                    .expect("commit");
                committed.lock().push((block, data.to_vec()));
                ctx.sleep(SimDuration::from_us_f64(2.0)); // metadata update
                                                          // Ack with the block number.
                port.send_bytes(ctx, ev.src, ChannelId::SYSTEM, &block.to_le_bytes())
                    .expect("ack");
            }
            println!("[server] committed {total_writes} writes");
            down.wait(ctx);
        });
    }

    // --- the clients ---
    for c in 1..=CLIENTS {
        let up = up.clone();
        let down = down.clone();
        let server = server.clone();
        cluster.spawn_process(c, format!("client{c}"), move |ctx, env| {
            let port = env.open_port(ctx);
            up.wait(ctx);
            let srv = server.lock().expect("server exported");
            let scratch = port.alloc_buffer(BLOCK).expect("scratch");
            // Each client owns blocks c, c+CLIENTS+1, ... (disjoint sets).
            for w in 0..WRITES_PER_CLIENT {
                let block = u64::from(c) + u64::from(w) * u64::from(CLIENTS + 1);
                // One-sided read first (no server involvement at all).
                let rid = port
                    .rma_read(ctx, srv, 0, block * BLOCK, scratch, BLOCK)
                    .expect("read block");
                await_op(ctx, &port, rid);
                // Then a write RPC.
                let mut rpc = Vec::with_capacity(12 + BLOCK as usize);
                rpc.extend_from_slice(&c.to_le_bytes());
                rpc.extend_from_slice(&block.to_le_bytes());
                rpc.extend_from_slice(&block_payload(c, w));
                port.send_bytes(ctx, srv, ChannelId::SYSTEM, &rpc)
                    .expect("rpc");
                // Wait for this block's ack (sole outstanding request).
                loop {
                    let ev = port.wait_recv(ctx);
                    let ack = port.recv_bytes(ctx, &ev).expect("ack");
                    if ack.len() == 8 {
                        assert_eq!(u64::from_le_bytes(ack.try_into().expect("8")), block);
                        break;
                    }
                }
            }
            // Verify own blocks by one-sided read-back.
            for w in 0..WRITES_PER_CLIENT {
                let block = u64::from(c) + u64::from(w) * u64::from(CLIENTS + 1);
                let rid = port
                    .rma_read(ctx, srv, 0, block * BLOCK, scratch, BLOCK)
                    .expect("verify read");
                await_op(ctx, &port, rid);
                let got = port.read_buffer(scratch, BLOCK).expect("data");
                assert_eq!(got, block_payload(c, w), "block {block} lost a write");
            }
            println!("[client{c}] {WRITES_PER_CLIENT} writes committed and re-read one-sidedly");
            down.wait(ctx);
        });
    }

    assert_eq!(sim.run(), RunOutcome::Completed);
    let n = committed.lock().len();
    assert_eq!(n as u32, CLIENTS * WRITES_PER_CLIENT);
    println!(
        "\n{} concurrent clients, {} committed writes, reads served one-sidedly by\n\
         the server's NIC — the multi-user storage traffic the paper's conclusion\n\
         says the communication system must carry alongside MPI.",
        CLIENTS, n
    );
}
