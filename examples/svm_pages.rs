//! A miniature home-based shared-virtual-memory layer over BCL RMA —
//! a nod to JIAJIA, the SVM system in DAWNING-3000's software stack
//! (paper Fig. 1). This is exactly the kind of "higher level software"
//! the paper expects to build on BCL's open channels.
//!
//! Node 0 is the *home* of a shared array living in an RMA window. Worker
//! nodes fetch pages one-sidedly (`rma_read`), compute on private copies,
//! and write results back (`rma_write`) — each worker owns a disjoint slice,
//! release-consistency style. A final barrier and home-side verification
//! close the loop.
//!
//! ```text
//! cargo run --example svm_pages
//! ```

use std::sync::Arc;

use parking_lot::Mutex;

use suca::bcl::{ProcAddr, SendStatus};
use suca::cluster::{ClusterSpec, SimBarrier};
use suca::prelude::*;

const WORKERS: u32 = 3;
const PAGE: u64 = 4096;
const PAGES_PER_WORKER: u64 = 4;
const TOTAL: u64 = PAGE * PAGES_PER_WORKER * WORKERS as u64;

fn main() {
    let cluster = ClusterSpec::dawning3000(WORKERS + 1).build();
    let sim = cluster.sim.clone();
    let ready = SimBarrier::new(&sim, WORKERS + 1);
    let done = SimBarrier::new(&sim, WORKERS + 1);
    let home: Arc<Mutex<Option<ProcAddr>>> = Arc::new(Mutex::new(None));

    // The home node: owns the shared array and verifies the result.
    {
        let ready = ready.clone();
        let done = done.clone();
        let home = home.clone();
        cluster.spawn_process(0, "home", move |ctx, env| {
            let port = env.open_port(ctx);
            *home.lock() = Some(port.addr());
            let win = port.bind_open(ctx, 0, TOTAL).expect("bind shared array");
            // Initialize the shared array: arr[i] = i % 251.
            let init: Vec<u8> = (0..TOTAL).map(|i| (i % 251) as u8).collect();
            port.write_buffer(win, &init).expect("init");
            ready.wait(ctx);
            done.wait(ctx);
            ctx.sleep(SimDuration::from_us(200)); // let final write-backs land
            let after = port.read_buffer(win, TOTAL).expect("readback");
            for (i, &v) in after.iter().enumerate() {
                let expect = ((i as u64 % 251) as u8).wrapping_add(1);
                assert_eq!(v, expect, "shared array wrong at {i}");
            }
            println!(
                "[home] verified {} bytes: every element incremented exactly once",
                TOTAL
            );
        });
    }

    // Workers: fetch pages, increment every byte, write back.
    for w in 1..=WORKERS {
        let ready = ready.clone();
        let done = done.clone();
        let home = home.clone();
        cluster.spawn_process(w, format!("worker{w}"), move |ctx, env| {
            let port = env.open_port(ctx);
            ready.wait(ctx);
            let home = home.lock().expect("home bound");
            let my_base = (w as u64 - 1) * PAGE * PAGES_PER_WORKER;
            let scratch = port.alloc_buffer(PAGE).expect("scratch page");
            for p in 0..PAGES_PER_WORKER {
                let off = my_base + p * PAGE;
                // Page fault: fetch the page from its home, one-sided.
                let rid = port
                    .rma_read(ctx, home, 0, off, scratch, PAGE)
                    .expect("fetch");
                let ev = port.wait_send(ctx);
                assert_eq!((ev.msg_id, ev.status), (rid, SendStatus::Ok));
                // Local compute on the private copy.
                let mut page = port.read_buffer(scratch, PAGE).expect("page");
                for b in page.iter_mut() {
                    *b = b.wrapping_add(1);
                }
                port.write_buffer(scratch, &page).expect("update");
                ctx.sleep(SimDuration::from_us(3)); // the "compute" phase
                                                    // Release: write the dirty page home, one-sided.
                let wid = port
                    .rma_write(ctx, home, 0, off, scratch, PAGE)
                    .expect("flush");
                let ev = port.wait_send(ctx);
                assert_eq!((ev.msg_id, ev.status), (wid, SendStatus::Ok));
            }
            println!(
                "[worker{w}] {} pages fetched/updated/flushed by t={}",
                PAGES_PER_WORKER,
                ctx.now()
            );
            done.wait(ctx);
        });
    }

    assert_eq!(sim.run(), RunOutcome::Completed);
    println!(
        "\nno receives were ever posted for page traffic — the home's NIC served\n\
         every fetch and flush one-sidedly while its CPU stayed free (this is\n\
         what JIAJIA-style SVM layers bought from BCL's open channels)."
    );
}
