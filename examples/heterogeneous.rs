//! The paper's heterogeneous-network portability claim, demonstrated.
//!
//! "Because NIC is transparent to process user space, binary code written in
//! BCL … can run on any combination of networks supporting BCL protocol.
//! Applications written in BCL need not be recompiled." (§3)
//!
//! One application function — unchanged — runs over Myrinet and over the
//! custom nwrc 2-D mesh. And the flip side: a user-level protocol cannot
//! even be constructed on AIX, because it needs `mmap` of device memory.
//!
//! ```text
//! cargo run --example heterogeneous
//! ```

use std::sync::Arc;

use parking_lot::Mutex;

use suca::baselines::{ArchModel, BaselineNet};
use suca::bcl::ChannelId;
use suca::cluster::{Cluster, ClusterSpec, SimBarrier};
use suca::myrinet::{Myrinet, MyrinetConfig};
use suca::os::OsPersonality;
use suca::prelude::*;

/// The application — written once against the BCL API, with no knowledge of
/// which SAN is underneath.
fn ring_app(cluster: &Cluster, n: u32) -> f64 {
    let sim = cluster.sim.clone();
    let barrier = SimBarrier::new(&sim, n);
    let addrs: Arc<Mutex<Vec<suca::bcl::ProcAddr>>> = Arc::new(Mutex::new(vec![
        suca::bcl::ProcAddr {
            node: suca::os::NodeId(0),
            port: suca::bcl::PortId(0)
        };
        n as usize
    ]));
    let finish = Arc::new(Mutex::new(0.0f64));
    for me in 0..n {
        let barrier = barrier.clone();
        let addrs = addrs.clone();
        let finish = finish.clone();
        cluster.spawn_process(me, format!("ring{me}"), move |ctx, env| {
            let port = env.open_port(ctx);
            addrs.lock()[me as usize] = port.addr();
            barrier.wait(ctx);
            let next = addrs.lock()[((me + 1) % n) as usize];
            // Pass a token around the ring, each hop appending its node id.
            if me == 0 {
                port.send_bytes(ctx, next, ChannelId::SYSTEM, &[0u8])
                    .expect("inject token");
            }
            let ev = port.wait_recv(ctx);
            let mut token = port.recv_bytes(ctx, &ev).expect("token");
            token.push(me as u8);
            if me != 0 {
                port.send_bytes(ctx, next, ChannelId::SYSTEM, &token)
                    .expect("forward");
            } else {
                assert_eq!(token.len(), n as usize + 1, "token visited every node");
                *finish.lock() = ctx.now().as_us();
            }
        });
    }
    assert_eq!(sim.run(), RunOutcome::Completed);
    let t = *finish.lock();
    t
}

fn main() {
    let n = 6;
    println!("same BCL application, two different SANs, zero code changes:\n");

    let myri = ClusterSpec::dawning3000(n).build();
    let t1 = ring_app(&myri, n);
    println!("  Myrinet (crossbar switches): {n}-node ring completed at t={t1:.1} us");

    let mesh = ClusterSpec::dawning3000_mesh(n).build();
    let t2 = ring_app(&mesh, n);
    println!("  nwrc 2-D mesh (XY wormhole): {n}-node ring completed at t={t2:.1} us");

    println!("\nhop structure differs, application is oblivious (the NIC is only");
    println!("reachable through the kernel, so user code never sees the network type).\n");

    // The portability counter-example from §1: user-level messaging cannot
    // exist on AIX at all.
    let sim = Sim::new(1);
    let fabric = Myrinet::build(&sim, 2, MyrinetConfig::dawning3000());
    match BaselineNet::build(&sim, fabric, ArchModel::user_level(), OsPersonality::AIX) {
        Err(e) => println!("user-level protocol on AIX: REFUSED — {e}"),
        Ok(_) => unreachable!("AIX has no device mmap"),
    }
    println!("semi-user-level BCL on AIX: runs everywhere a kernel module can be loaded.");
}
