//! Open channels — BCL's one-sided RMA (paper §2.2: "Once a user-specified
//! buffer is bound to an open channel, other processes are able to
//! read/write memory areas within the corresponding buffer").
//!
//! A server binds a window; a client writes a request record into it and
//! reads a result back, all one-sided: the server process never posts a
//! receive and is never interrupted (it's busy "computing" the whole time).
//!
//! ```text
//! cargo run --example rma_window
//! ```

use std::sync::Arc;

use parking_lot::Mutex;

use suca::bcl::{ProcAddr, SendStatus};
use suca::cluster::{ClusterSpec, SimBarrier};
use suca::prelude::*;

fn main() {
    let cluster = ClusterSpec::dawning3000(2).build();
    let sim = cluster.sim.clone();
    let barrier = SimBarrier::new(&sim, 2);
    let done = SimBarrier::new(&sim, 2);
    let server_addr: Arc<Mutex<Option<ProcAddr>>> = Arc::new(Mutex::new(None));

    // Server: binds an 8 KiB window, preloads a lookup table in its second
    // half, then goes compute-bound. All access to its memory is one-sided.
    {
        let barrier = barrier.clone();
        let done = done.clone();
        let server_addr = server_addr.clone();
        cluster.spawn_process(1, "server", move |ctx, env| {
            let port = env.open_port(ctx);
            *server_addr.lock() = Some(port.addr());
            let win = port.bind_open(ctx, 0, 8192).expect("bind window");
            let table: Vec<u8> = (0..4096u32).map(|i| (i * 7 % 256) as u8).collect();
            port.write_buffer(win.add(4096), &table).expect("preload");
            barrier.wait(ctx);
            println!("[server] window bound; entering compute loop (no recv posted!)");
            done.wait(ctx);
            // Observe what the client deposited, after the fact.
            let got = port.read_buffer(win, 11).expect("window");
            println!(
                "[server] found in window afterwards: {:?}",
                String::from_utf8_lossy(&got)
            );
            assert_eq!(&got, b"job-request");
        });
    }

    // Client on node 0.
    cluster.spawn_process(0, "client", move |ctx, env| {
        let port = env.open_port(ctx);
        barrier.wait(ctx);
        let dst = server_addr.lock().expect("server ready");

        // One-sided write of a request record into the window's first half.
        let req = port.alloc_buffer(64).expect("buf");
        port.write_buffer(req, b"job-request").expect("fill");
        let id = port.rma_write(ctx, dst, 0, 0, req, 11).expect("rma write");
        let ev = port.wait_send(ctx);
        assert_eq!((ev.msg_id, ev.status), (id, SendStatus::Ok));
        println!("[client] one-sided write landed at t={}", ctx.now());

        // One-sided read of the server's preloaded table.
        let into = port.alloc_buffer(4096).expect("buf");
        let id = port
            .rma_read(ctx, dst, 0, 4096, into, 4096)
            .expect("rma read");
        let ev = port.wait_send(ctx);
        assert_eq!((ev.msg_id, ev.status), (id, SendStatus::Ok));
        let table = port.read_buffer(into, 4096).expect("read back");
        assert!(table
            .iter()
            .enumerate()
            .all(|(i, &b)| b == (i as u32 * 7 % 256) as u8));
        println!(
            "[client] one-sided read of 4 KiB table verified at t={}",
            ctx.now()
        );
        done.wait(ctx);
    });

    assert_eq!(sim.run(), RunOutcome::Completed);
    println!("\nserver posted no receives and took no interrupts; the NIC validated");
    println!("window bounds on its behalf (try reading past the window: see the");
    println!("multiuser_security example).");
}
