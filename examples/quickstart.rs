//! Quickstart: two processes on different DAWNING-3000 nodes exchange
//! messages over BCL, the semi-user-level protocol.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! What to look for: the send path takes one kernel trap (counted below);
//! the receive path takes none — the NIC DMA'd the payload into the
//! receiver's buffer and the completion event into its user-space queue.

use std::sync::Arc;

use parking_lot::Mutex;

use suca::bcl::ChannelId;
use suca::cluster::{ClusterSpec, SimBarrier};
use suca::prelude::*;

fn main() {
    // A 2-node slice of the DAWNING-3000 (4-way SMP nodes, Myrinet SAN,
    // AIX cost model) with everything calibrated to the paper.
    let cluster = ClusterSpec::dawning3000(2).build();
    let sim = cluster.sim.clone();
    let barrier = SimBarrier::new(&sim, 2);
    let addr: Arc<Mutex<Option<suca::bcl::ProcAddr>>> = Arc::new(Mutex::new(None));

    // Receiver process on node 1.
    {
        let barrier = barrier.clone();
        let addr = addr.clone();
        cluster.spawn_process(1, "receiver", move |ctx, env| {
            let port = env.open_port(ctx);
            *addr.lock() = Some(port.addr());
            barrier.wait(ctx);
            let ev = port.wait_recv(ctx); // poll in user space — no trap!
            let data = port.recv_bytes(ctx, &ev).expect("payload");
            println!(
                "[{}] received {:?} from node {} at t={}",
                env.node.os.node_id.0,
                String::from_utf8_lossy(&data),
                ev.src.node.0,
                ctx.now()
            );
        });
    }

    // Sender process on node 0.
    cluster.spawn_process(0, "sender", move |ctx, env| {
        let port = env.open_port(ctx);
        barrier.wait(ctx);
        let dst = addr.lock().expect("receiver ready");
        let traps_before = ctx.sim().get_count("os.traps.n0");
        let t0 = ctx.now();
        port.send_bytes(ctx, dst, ChannelId::SYSTEM, b"hello, DAWNING-3000!")
            .expect("send");
        println!(
            "[0] send returned after {} (host overhead incl. one kernel trap)",
            ctx.now().since(t0)
        );
        println!(
            "[0] kernel traps used by the send: {}",
            ctx.sim().get_count("os.traps.n0") - traps_before
        );
        let done = port.wait_send(ctx);
        println!("[0] send completion event: {:?}", done.status);
    });

    assert_eq!(sim.run(), RunOutcome::Completed);
    println!(
        "interrupts on the critical path: {} (semi-user-level uses none)",
        sim.get_count("os.interrupts")
    );
}
