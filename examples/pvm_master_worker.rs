//! PVM over BCL: the classic master/worker task farm.
//!
//! The master scatters chunks of a numerical integration (π via the
//! midpoint rule), workers compute partial sums and return typed results;
//! the master receives with PVM's `-1` wildcards, in whatever order workers
//! finish.
//!
//! ```text
//! cargo run --example pvm_master_worker
//! ```

use suca::cluster::ClusterSpec;
use suca::eadi::Universe;
use suca::prelude::*;
use suca::pvm::{PvmConfig, PvmTask};

const TASKS: u32 = 5; // 1 master + 4 workers
const INTERVALS: u64 = 1_000_000;

fn main() {
    let cluster = ClusterSpec::dawning3000(3).build();
    let sim = cluster.sim.clone();
    let uni = Universe::new(&sim, TASKS);

    for tid in 0..TASKS {
        let uni = uni.clone();
        cluster.spawn_process(tid % 3, format!("task{tid}"), move |ctx, env| {
            let task = PvmTask::enroll(
                ctx,
                &env.node.bcl,
                &env.proc,
                uni,
                tid,
                PvmConfig::dawning3000(),
            );
            if task.tid() == 0 {
                master(ctx, &task);
            } else {
                worker(ctx, &task);
            }
        });
    }
    assert_eq!(sim.run(), RunOutcome::Completed);
}

fn master(ctx: &mut suca::sim::ActorCtx, task: &PvmTask) {
    let workers = task.ntasks() - 1;
    let chunk = INTERVALS / u64::from(workers);
    // Farm out [start, end) ranges with the interval count.
    for w in 1..=workers {
        let start = chunk * u64::from(w - 1);
        let end = if w == workers {
            INTERVALS
        } else {
            start + chunk
        };
        task.initsend()
            .pack_i32(&[start as i32, end as i32])
            .pack_f64(&[INTERVALS as f64]);
        task.send(ctx, w, 1);
        println!("[master] sent range [{start}, {end}) to worker {w}");
    }
    // Collect partial sums from ANY worker, ANY order.
    let mut pi = 0.0;
    for _ in 0..workers {
        let mut m = task.recv(ctx, -1, 2);
        let part = m.buf.unpack_f64().expect("partial sum")[0];
        println!(
            "[master] worker {} returned {:.9} at t={}",
            m.src_tid,
            part,
            ctx.now()
        );
        pi += part;
    }
    let err = (pi - std::f64::consts::PI).abs();
    println!("\n[master] pi ~= {pi:.9}   |error| = {err:.2e}");
    assert!(err < 1e-6, "integration failed");
}

fn worker(ctx: &mut suca::sim::ActorCtx, task: &PvmTask) {
    let mut m = task.recv(ctx, 0, 1);
    let range = m.buf.unpack_i32().expect("range");
    let n = m.buf.unpack_f64().expect("intervals")[0];
    let (start, end) = (range[0] as u64, range[1] as u64);
    // Midpoint rule on 4/(1+x^2).
    let h = 1.0 / n;
    let mut sum = 0.0;
    for i in start..end {
        let x = (i as f64 + 0.5) * h;
        sum += 4.0 / (1.0 + x * x);
    }
    sum *= h;
    // Simulated compute time: ~2 ns per interval on a Power3.
    ctx.sleep(SimDuration::from_ns(2 * (end - start)));
    task.initsend().pack_f64(&[sum]);
    task.send(ctx, 0, 2);
}
