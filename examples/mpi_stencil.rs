//! MPI over BCL: a 1-D heat-diffusion stencil with halo exchange and a
//! global residual reduction — the scientific-computing workload the
//! paper's intro motivates ("technical computing").
//!
//! Eight ranks across four SMP nodes (so both the intra-node shared-memory
//! path and the Myrinet path carry halos). The parallel result is checked
//! against a serial reference computation.
//!
//! ```text
//! cargo run --example mpi_stencil
//! ```

use std::sync::Arc;

use parking_lot::Mutex;

use suca::cluster::ClusterSpec;
use suca::eadi::Universe;
use suca::mpi::{bytes_to_f64s, f64s_to_bytes, Comm, MpiConfig, ReduceOp};
use suca::prelude::*;

const RANKS: u32 = 8;
const NODES: u32 = 4;
const CELLS_PER_RANK: usize = 64;
const STEPS: usize = 50;
const ALPHA: f64 = 0.25;

fn initial(i: usize) -> f64 {
    // A hot spike in the middle of the global rod.
    let n = RANKS as usize * CELLS_PER_RANK;
    if i == n / 2 {
        1000.0
    } else {
        0.0
    }
}

fn serial_reference() -> Vec<f64> {
    let n = RANKS as usize * CELLS_PER_RANK;
    let mut u: Vec<f64> = (0..n).map(initial).collect();
    for _ in 0..STEPS {
        let mut next = u.clone();
        for i in 1..n - 1 {
            next[i] = u[i] + ALPHA * (u[i - 1] - 2.0 * u[i] + u[i + 1]);
        }
        u = next;
    }
    u
}

fn main() {
    let cluster = ClusterSpec::dawning3000(NODES).build();
    let sim = cluster.sim.clone();
    let uni = Universe::new(&sim, RANKS);
    let gathered: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));

    for rank in 0..RANKS {
        let uni = uni.clone();
        let gathered = gathered.clone();
        // Two ranks per node: halos cross both the intra-node and the
        // Myrinet path.
        cluster.spawn_process(rank / 2, format!("rank{rank}"), move |ctx, env| {
            let comm = Comm::init(
                ctx,
                &env.node.bcl,
                &env.proc,
                uni,
                rank,
                MpiConfig::dawning3000(),
            );
            let me = comm.rank() as usize;
            let mut u: Vec<f64> = (0..CELLS_PER_RANK)
                .map(|i| initial(me * CELLS_PER_RANK + i))
                .collect();

            for step in 0..STEPS {
                // Halo exchange with neighbors (sendrecv avoids deadlock).
                let left_halo = if me > 0 {
                    let m = comm.sendrecv(
                        ctx,
                        (me - 1) as u32,
                        step as i32 * 2,
                        &u[0].to_le_bytes(),
                        (me - 1) as i32,
                        step as i32 * 2 + 1,
                    );
                    f64::from_le_bytes(m.data.try_into().expect("8 bytes"))
                } else {
                    u[0]
                };
                let right_halo = if me + 1 < RANKS as usize {
                    let m = comm.sendrecv(
                        ctx,
                        (me + 1) as u32,
                        step as i32 * 2 + 1,
                        &u[CELLS_PER_RANK - 1].to_le_bytes(),
                        (me + 1) as i32,
                        step as i32 * 2,
                    );
                    f64::from_le_bytes(m.data.try_into().expect("8 bytes"))
                } else {
                    u[CELLS_PER_RANK - 1]
                };

                // Stencil update (global boundary cells are held fixed).
                let mut next = u.clone();
                for i in 0..CELLS_PER_RANK {
                    let gi = me * CELLS_PER_RANK + i;
                    if gi == 0 || gi == RANKS as usize * CELLS_PER_RANK - 1 {
                        continue;
                    }
                    let l = if i == 0 { left_halo } else { u[i - 1] };
                    let r = if i == CELLS_PER_RANK - 1 {
                        right_halo
                    } else {
                        u[i + 1]
                    };
                    next[i] = u[i] + ALPHA * (l - 2.0 * u[i] + r);
                }
                u = next;

                // Every 10 steps: global heat conservation check.
                if step % 10 == 9 {
                    let local: f64 = u.iter().sum();
                    let total = comm.allreduce_f64(ctx, &[local], ReduceOp::Sum)[0];
                    if me == 0 {
                        println!(
                            "step {:>2}: total heat = {total:.3} (t={})",
                            step + 1,
                            ctx.now()
                        );
                    }
                }
            }

            // Gather the final field on rank 0 and verify.
            if let Some(parts) = comm.gather(ctx, 0, &f64s_to_bytes(&u)) {
                let mut full = Vec::new();
                for p in parts {
                    full.extend(bytes_to_f64s(&p));
                }
                *gathered.lock() = full;
            }
        });
    }

    assert_eq!(sim.run(), RunOutcome::Completed);
    let parallel = gathered.lock().clone();
    let serial = serial_reference();
    assert_eq!(parallel.len(), serial.len());
    let max_err = parallel
        .iter()
        .zip(&serial)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("\nparallel vs serial reference: max |error| = {max_err:.3e}");
    assert!(max_err < 1e-9, "stencil diverged from the serial reference");
    println!("8 MPI ranks over 4 SMP nodes (intra-node + Myrinet halos): exact match.");
}
