//! Offline shim for the `bytes` crate.
//!
//! Implements the subset this workspace uses: a cheaply-cloneable,
//! slice-able immutable byte buffer ([`Bytes`]), a growable builder
//! ([`BytesMut`]) and the little-endian `put_*` methods of [`BufMut`].
//! Backed by `Arc<Vec<u8>>` + (offset, len), so `clone` and `slice` are O(1)
//! exactly like the real crate — packet payloads are shared, not copied, as
//! they flow through the simulated fabric.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Cheaply cloneable and sliceable immutable chunk of contiguous memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap a static byte string (copied once; the shim has one backing
    /// representation).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::copy_from_slice(bytes)
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            len: data.len(),
            off: 0,
            data: Arc::new(data.to_vec()),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// O(1) sub-slice sharing the same backing storage.
    /// Panics if the range is out of bounds, matching the real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "range {start}..{end} out of bounds for Bytes of length {}",
            self.len
        );
        Bytes {
            data: self.data.clone(),
            off: self.off + start,
            len: end - start,
        }
    }

    /// Copy out as a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            len: v.len(),
            off: 0,
            data: Arc::new(v),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Self::copy_from_slice(s)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Self {
        Self::copy_from_slice(s)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

/// Growable byte buffer builder; `freeze` converts into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// True if no bytes were written yet.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

/// Write-side trait: the little-endian `put_*` subset used by the wire
/// codecs.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a little-endian u16.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian i32.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slice() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(7);
        b.put_u16_le(0x0102);
        b.put_u32_le(0x03040506);
        b.put_slice(b"xyz");
        let frozen = b.freeze();
        assert_eq!(&frozen[..], &[7, 2, 1, 6, 5, 4, 3, b'x', b'y', b'z']);
        let tail = frozen.slice(7..);
        assert_eq!(&tail[..], b"xyz");
        let mid = frozen.slice(1..3);
        assert_eq!(&mid[..], &[2, 1]);
        // Nested slice keeps offsets straight.
        assert_eq!(&tail.slice(1..=1)[..], b"y");
    }

    #[test]
    fn clone_is_shallow() {
        let a = Bytes::from(vec![0u8; 1 << 16]);
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.data, &b.data));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Bytes::from_static(b"abc").slice(1..5);
    }

    #[test]
    fn equality_across_types() {
        let b = Bytes::from_static(b"hi");
        assert_eq!(b, b"hi"[..]);
        assert_eq!(b, vec![b'h', b'i']);
        assert_eq!(b.to_vec(), vec![b'h', b'i']);
    }
}
