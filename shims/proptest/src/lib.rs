//! Offline shim for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a small property-testing core that is source-compatible with the
//! proptest subset the repo's tests use:
//!
//! * `proptest! { #![proptest_config(..)] #[test] fn f(x in strategy) {..} }`
//! * strategies: integer/float ranges, `any::<T>()`, tuples,
//!   `prop::collection::vec`, `Just`, `prop_oneof`-free combinators via
//!   `prop_map`
//! * `prop_assert!` / `prop_assert_eq!` / `TestCaseError`
//!
//! Differences from real proptest: cases are generated from a deterministic
//! per-test seed (derived from the test name, overridable with the
//! `PROPTEST_SEED` env var), and there is **no shrinking** — a failure
//! reports the case number and seed so it can be replayed exactly.

/// Strategy trait and implementations for primitive generators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f` (proptest's `prop_map`).
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    (self.start as u128).wrapping_add(rng.below_u128(span)) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty strategy range");
                    let span = (*self.end() as u128) - (*self.start() as u128) + 1;
                    (*self.start() as u128).wrapping_add(rng.below_u128(span)) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A:0)
        (A:0, B:1)
        (A:0, B:1, C:2)
        (A:0, B:1, C:2, D:3)
        (A:0, B:1, C:2, D:3, E:4)
    }

    /// Types with a canonical "any value" strategy (proptest's `Arbitrary`).
    pub trait Arbitrary: Sized {
        /// Draw a uniformly random value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    /// Strategy for any value of `T`; see [`crate::arbitrary::any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// `any::<T>()` entry point.
pub mod arbitrary {
    use crate::strategy::{Any, Arbitrary};

    /// Strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::default()
    }
}

/// Deterministic runner: config, RNG and failure type.
pub mod test_runner {
    use std::fmt;

    /// Subset of proptest's config: number of cases per property.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// How many random cases to run per property.
        pub cases: u32,
        /// Unused knob kept for source compatibility.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }

    /// A test case failed (the payload is the message to report).
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// Assertion failure or explicit `fail`.
        Fail(String),
        /// Case rejected (kept for source compatibility; counts as skip).
        Reject(String),
    }

    impl TestCaseError {
        /// Build a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
        /// Build a rejection with the given message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// splitmix64-based deterministic RNG used for value generation.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a raw value.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Deterministic seed derived from the test name; `PROPTEST_SEED`
        /// overrides it for replaying a run with a different stream.
        pub fn for_test(name: &str) -> Self {
            let base = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(DEFAULT_SEED);
            let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ base;
            for &b in name.as_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)` for `n > 0` (rejection sampling over
        /// 128-bit spans so full-width integer ranges work).
        pub fn below_u128(&mut self, n: u128) -> u128 {
            assert!(n > 0, "below_u128(0)");
            if n == 1 {
                return 0;
            }
            // Two words give a 128-bit draw; modulo bias is negligible for
            // the spans property tests use, but reject the biased tail
            // anyway to keep the generator honest.
            loop {
                let hi = self.next_u64() as u128;
                let lo = self.next_u64() as u128;
                let x = (hi << 64) | lo;
                let zone = u128::MAX - (u128::MAX - n + 1) % n;
                if x <= zone {
                    return x % n;
                }
            }
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Default master seed when `PROPTEST_SEED` is unset.
    pub const DEFAULT_SEED: u64 = 0x5CA0_0B5E_ED00_0001;
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Size specification accepted by [`vec`]: a fixed size or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Strategy for vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u128;
            let len = self.size.min + rng.below_u128(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Namespace mirror of proptest's `prop::` re-exports.
pub mod prop {
    pub use crate::collection;
    pub use crate::num;
}

/// Numeric submodule placeholder (proptest exposes `prop::num`).
pub mod num {}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::collection;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Run a block of property tests. Source-compatible with proptest's macro
/// for plain-identifier bindings (`name in strategy`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{ @with_config ($cfg) $($rest)* }
    };
    (@with_config ($cfg:expr) $( $(#[$attr:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    match result {
                        Ok(()) | Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err(e) => panic!(
                            "property '{}' failed at case {} of {}: {}\n(no shrinking in offline proptest shim; replay is deterministic by test name, or set PROPTEST_SEED)",
                            stringify!($name), case, config.cases, e
                        ),
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!{ @with_config ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Assert inside a `proptest!` body; failure aborts only this case with a
/// reportable error.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::test_runner::TestCaseError::fail(
                format!("{} ({:?} != {:?})", format!($($fmt)*), a, b),
            ));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in 0usize..4, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_sizes_respect_bounds(v in collection::vec(any::<u8>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }

        #[test]
        fn tuples_compose(pair in (0u64..5, any::<bool>())) {
            prop_assert!(pair.0 < 5);
            let _: bool = pair.1;
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        let mut c = TestRng::for_test("beta");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn full_width_ranges_work() {
        let mut rng = TestRng::from_seed(9);
        for _ in 0..100 {
            let v = crate::strategy::Strategy::sample(&(0u64..u64::MAX), &mut rng);
            assert!(v < u64::MAX);
        }
    }
}
