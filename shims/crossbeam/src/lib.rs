//! Offline shim for the `crossbeam` crate.
//!
//! The simulation engine only uses `crossbeam::channel::bounded` as a
//! rendezvous channel (capacity 0) for its scheduler↔actor baton handshake,
//! so that is what this shim implements, plus small-capacity buffering for
//! completeness. Both `Sender` and `Receiver` are `Send + Sync`, matching
//! crossbeam (std mpsc receivers are not `Sync`, which is why the engine
//! cannot simply use `std::sync::mpsc`).

/// Multi-producer multi-consumer channels (the subset the engine uses).
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    /// Error returned by [`Sender::send`] when all receivers are gone; the
    /// unsent message is handed back.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: Send> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(PartialEq, Eq, Clone, Copy, Debug)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(PartialEq, Eq, Clone, Copy, Debug)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    struct State<T> {
        queue: VecDeque<T>,
        /// Messages currently handed over but not yet paired (rendezvous
        /// accounting): a zero-capacity send completes only once a receiver
        /// has taken the message.
        pending_rendezvous: usize,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        cap: usize,
        state: Mutex<State<T>>,
        /// Signalled when queue space frees up or a rendezvous completes.
        send_cv: Condvar,
        /// Signalled when a message arrives or senders disappear.
        recv_cv: Condvar,
    }

    /// Sending half of a channel.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// Receiving half of a channel.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Create a bounded channel. Capacity 0 gives rendezvous semantics:
    /// `send` blocks until a receiver takes the message — the property the
    /// simulation engine's baton handshake relies on.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            cap,
            state: Mutex::new(State {
                queue: VecDeque::new(),
                pending_rendezvous: 0,
                senders: 1,
                receivers: 1,
            }),
            send_cv: Condvar::new(),
            recv_cv: Condvar::new(),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    impl<T> Sender<T> {
        /// Block until the message is delivered (rendezvous for capacity 0)
        /// or every receiver is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let chan = &*self.chan;
            let mut st = chan.state.lock().unwrap_or_else(|p| p.into_inner());
            // Wait for room (only relevant for cap > 0; rendezvous sends
            // queue immediately and then wait to be taken).
            while chan.cap > 0 && st.queue.len() >= chan.cap {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                st = chan.send_cv.wait(st).unwrap_or_else(|p| p.into_inner());
            }
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            st.pending_rendezvous += 1;
            chan.recv_cv.notify_one();
            if chan.cap == 0 {
                // Rendezvous: block until a receiver has taken *a* message,
                // i.e. the pending count drops below the queue length plus
                // handed-over items. With a single logical hand-off slot per
                // send this reduces to waiting until our message left the
                // queue or the peer vanished.
                while !st.queue.is_empty() {
                    if st.receivers == 0 {
                        // Undo: reclaim the message if still queued.
                        return match st.queue.pop_back() {
                            Some(v) => {
                                st.pending_rendezvous -= 1;
                                Err(SendError(v))
                            }
                            None => Ok(()), // taken right before disconnect
                        };
                    }
                    st = chan.send_cv.wait(st).unwrap_or_else(|p| p.into_inner());
                }
            }
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let chan = &*self.chan;
            let mut st = chan.state.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = st.queue.pop_front() {
                    st.pending_rendezvous = st.pending_rendezvous.saturating_sub(1);
                    chan.send_cv.notify_all();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = chan.recv_cv.wait(st).unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let chan = &*self.chan;
            let mut st = chan.state.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(v) = st.queue.pop_front() {
                st.pending_rendezvous = st.pending_rendezvous.saturating_sub(1);
                chan.send_cv.notify_all();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan
                .state
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .senders += 1;
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap_or_else(|p| p.into_inner());
            st.senders -= 1;
            if st.senders == 0 {
                self.chan.recv_cv.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan
                .state
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .receivers += 1;
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap_or_else(|p| p.into_inner());
            st.receivers -= 1;
            if st.receivers == 0 {
                self.chan.send_cv.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn rendezvous_blocks_until_taken() {
            let (tx, rx) = bounded::<u32>(0);
            let t = std::thread::spawn(move || {
                tx.send(1).unwrap();
                tx.send(2).unwrap();
            });
            std::thread::sleep(Duration::from_millis(10));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            t.join().unwrap();
        }

        #[test]
        fn recv_errs_after_senders_gone() {
            let (tx, rx) = bounded::<u32>(4);
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_errs_after_receiver_gone() {
            let (tx, rx) = bounded::<u32>(0);
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn blocked_rendezvous_send_unblocks_on_receiver_drop() {
            let (tx, rx) = bounded::<u32>(0);
            let t = std::thread::spawn(move || tx.send(7));
            std::thread::sleep(Duration::from_millis(10));
            drop(rx);
            assert!(t.join().unwrap().is_err());
        }

        #[test]
        fn bounded_buffering_works() {
            let (tx, rx) = bounded::<u32>(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }
    }
}
