//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the tiny API subset the repo actually uses — `Mutex`,
//! `MutexGuard`, `RwLock` — backed by `std::sync`. Semantics
//! differ from real parking_lot in one deliberate way: lock poisoning is
//! ignored (parking_lot has no poisoning), which is exactly what callers
//! written against parking_lot expect.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock with parking_lot's no-poisoning `lock()` API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread until it is available.
    /// Never poisons: a panic while holding the lock leaves the data as-is.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: match self.inner.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// Reader-writer lock with parking_lot's no-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: match self.inner.read() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: match self.inner.write() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "no poisoning in parking_lot semantics");
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
