//! End-to-end recovery: the stall watchdog must fire while a blackholed
//! path stays un-recovered (single rail, no failover possible), and must
//! stay silent when dual-rail failover + epoch resync recover the same
//! blackhole — with every message delivered exactly once across the
//! cutover.

use std::sync::Arc;

use parking_lot::Mutex;

use suca_bcl::ChannelId;
use suca_chaos::{ChaosController, ChaosPlan, ChaosReport, Fault};
use suca_cluster::{ClusterSpec, SanKind, SimBarrier};
use suca_mesh::MeshConfig;
use suca_myrinet::FabricNodeId;
use suca_sim::{RunOutcome, SimDuration, SimTime, TelemetryConfig, WatchdogConfig};

#[test]
fn watchdog_fires_during_unrecovered_blackhole() {
    // Single rail: when node 1's cable dies there is nowhere to fail over
    // to. The retransmission loop spins forever, the read chain never
    // closes, and the watchdog must flag it.
    let spec = ClusterSpec::dawning3000(2)
        .with_seed(31)
        .with_telemetry(TelemetryConfig {
            sample_period: SimDuration::from_us(20),
            watchdog: WatchdogConfig {
                chain_budget_ns: 150_000,
                check_every: 1,
                ..WatchdogConfig::default()
            },
        });
    let cluster = spec.build();
    let sim = cluster.sim.clone();

    let mut plan = ChaosPlan::new();
    plan.push(
        SimTime::from_ns(0),
        Fault::LinkFlap {
            rail: 0,
            node: 1,
            down_for: SimDuration::from_ms(1_000), // never revives in-run
        },
    );
    ChaosController::install(&cluster, &plan);

    let barrier = SimBarrier::new(&sim, 2);
    let addr: Arc<Mutex<Option<suca_bcl::ProcAddr>>> = Arc::new(Mutex::new(None));
    {
        let (barrier, addr) = (barrier.clone(), addr.clone());
        cluster.spawn_process(1, "rx", move |ctx, env| {
            let port = env.open_port(ctx);
            port.bind_open(ctx, 0, 4096).expect("bind open channel");
            *addr.lock() = Some(port.addr());
            barrier.wait(ctx);
            let _ = port.wait_recv(ctx); // never arrives
        });
    }
    cluster.spawn_process(0, "tx", move |ctx, env| {
        let port = env.open_port(ctx);
        let into = port.alloc_buffer(1024).expect("alloc");
        barrier.wait(ctx);
        let dst = addr.lock().expect("rx ready");
        port.rma_read(ctx, dst, 0, 0, into, 1024).expect("read");
        let _ = port.wait_send(ctx); // the data never comes back
    });

    assert_eq!(
        sim.run_until(SimTime::from_ns(5_000_000)),
        RunOutcome::Pending,
        "an unrecovered blackhole never drains the queue"
    );
    assert_eq!(sim.get_count("chaos.link_down"), 1, "fault not counted");
    assert!(
        sim.get_count("link.down_drops") > 0,
        "blackholed packets must be counted drops"
    );
    assert!(
        sim.get_count("watchdog.stalls") >= 1,
        "watchdog must flag the open chain"
    );
}

#[test]
fn failover_recovers_the_blackhole_and_keeps_the_watchdog_silent() {
    // Dual rail (Myrinet + mesh): the same permanent rail-0 blackhole now
    // resolves through path death -> rail failover -> epoch resync. Every
    // message must arrive exactly once, in order, and the armed watchdog
    // must never fire.
    const MSGS: u32 = 24;
    const OUTAGE_AT: u64 = 300_000; // 300 us: mid-stream
    let mut spec = ClusterSpec::dawning3000(2)
        .with_seed(32)
        .with_second_san(SanKind::Mesh(MeshConfig::dawning3000()))
        .with_telemetry(TelemetryConfig {
            sample_period: SimDuration::from_us(20),
            watchdog: WatchdogConfig {
                chain_budget_ns: 10_000_000, // 10 ms >> recovery latency
                check_every: 1,
                ..WatchdogConfig::default()
            },
        });
    spec.bcl.reliability.max_path_timeouts = 3;
    let cluster = spec.build();
    let sim = cluster.sim.clone();

    let mut plan = ChaosPlan::new();
    plan.push(
        SimTime::from_ns(OUTAGE_AT),
        Fault::LinkFlap {
            rail: 0,
            node: 1,
            // Far beyond the stream's lifetime, so recovery happens via
            // failover, not revival (kept short enough that the revival
            // event doesn't stretch the drained run).
            down_for: SimDuration::from_ms(50),
        },
    );
    ChaosController::install(&cluster, &plan);

    let barrier = SimBarrier::new(&sim, 2);
    let addr: Arc<Mutex<Option<suca_bcl::ProcAddr>>> = Arc::new(Mutex::new(None));
    {
        let (barrier, addr) = (barrier.clone(), addr.clone());
        cluster.spawn_process(1, "rx", move |ctx, env| {
            let port = env.open_port(ctx);
            *addr.lock() = Some(port.addr());
            barrier.wait(ctx);
            for i in 0..MSGS {
                let ev = port.wait_recv(ctx);
                let data = port.recv_bytes(ctx, &ev).expect("recv");
                // Exactly-once and in-order across the cutover: message i
                // carries byte i, so a lost, duplicated, or reordered
                // message fails here.
                assert_eq!(data, vec![i as u8; 64], "message {i} corrupted");
                port.send_bytes(ctx, ev.src, ChannelId::SYSTEM, b"")
                    .expect("pacing reply");
            }
        });
    }
    cluster.spawn_process(0, "tx", move |ctx, env| {
        let port = env.open_port(ctx);
        barrier.wait(ctx);
        let dst = addr.lock().expect("rx ready");
        for i in 0..MSGS {
            port.send_bytes(ctx, dst, ChannelId::SYSTEM, &[i as u8; 64])
                .expect("send");
            loop {
                let ev = port.wait_recv(ctx);
                let _ = port.recv_bytes(ctx, &ev).expect("consume reply");
                if ev.len == 0 {
                    break;
                }
            }
            while port.poll_send(ctx).is_some() {}
        }
    });

    assert_eq!(
        sim.run(),
        RunOutcome::Completed,
        "failover must let the stream finish"
    );
    assert_eq!(sim.get_count("chaos.link_down"), 1, "fault not counted");
    assert!(
        sim.get_count("mcp.path_deaths") >= 1,
        "retransmission exhaustion must declare the path dead"
    );
    assert!(
        sim.get_count("mcp.rail_failovers") >= 1,
        "dual-rail node must fail over"
    );
    assert_eq!(
        cluster.nodes[0].bcl.mcp.active_rail(FabricNodeId(1)),
        1,
        "node 0 must now route to node 1 over rail 1"
    );
    assert_eq!(
        sim.get_count("watchdog.stalls"),
        0,
        "recovered blackhole must keep the watchdog silent"
    );
    let report = ChaosReport::gather(&sim, "failover_e2e", 32);
    assert!(
        report.epoch_resyncs >= 1,
        "recovery must complete an epoch resync"
    );
    assert!(
        report.recovery_p50_us > 0.0,
        "recovery latency must be recorded"
    );
}
