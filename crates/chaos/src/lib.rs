//! # suca-chaos — deterministic fault injection and recovery reporting
//!
//! Chaos runs answer the question the clean SLO harnesses cannot: does the
//! stack *recover*? This crate supplies the three pieces:
//!
//! * [`ChaosPlan`] — a seeded, fully deterministic fault schedule (link
//!   flaps, switch-port deaths, NIC resets, whole-node crashes). Plans are
//!   plain data: scripted storms are built by hand, randomized ones through
//!   [`StormBuilder`], and both replay byte-identically at a fixed seed.
//! * [`ChaosController`] — installs a plan on a running
//!   [`suca_cluster::Cluster`], applying each fault at its scheduled sim
//!   time through the fabric chaos hooks and the MCP chaos entry points.
//!   Every injected fault is a counted `chaos.*` metric and a trace
//!   instant, so fault timelines line up with recovery events in Perfetto.
//! * [`ChaosReport`] — recovery accounting gathered from the metrics
//!   registry (injections, path deaths, rail failovers, epoch resyncs,
//!   stale-epoch drops, recovery-latency percentiles), serialized as
//!   stable JSON under `target/chaos/` (override with `SUCA_CHAOS_DIR`).

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::path::PathBuf;

use suca_cluster::Cluster;
use suca_myrinet::FabricNodeId;
use suca_sim::mtrace::stage;
use suca_sim::{Sim, SimDuration, SimTime, TraceEvent, TraceId, TraceLayer};

/// One injectable fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Both directions of `node`'s cable on `rail` go down for `down_for`,
    /// then revive (a link *flap*).
    LinkFlap {
        /// Rail index into [`Cluster::rails`].
        rail: usize,
        /// Node whose cable flaps.
        node: u32,
        /// Outage duration.
        down_for: SimDuration,
    },
    /// A switch port on `rail` dies permanently (no revival — failover is
    /// the only way around it).
    SwitchPortDeath {
        /// Rail index into [`Cluster::rails`].
        rail: usize,
        /// Switch (Myrinet) or router (mesh) index.
        switch: usize,
        /// Port index on that switch.
        port: usize,
    },
    /// `node`'s NIC resets, wiping all MCP SRAM state (streams, staging,
    /// reassembly). Host-side epochs survive and bump, so peers adopt the
    /// fresh streams.
    NicReset {
        /// Node whose NIC resets.
        node: u32,
    },
    /// `node` crashes whole (SRAM wipe + dead window), restarting after
    /// `down_for`.
    NodeCrash {
        /// Node that crashes.
        node: u32,
        /// Outage before the restart.
        down_for: SimDuration,
    },
}

/// A fault scheduled at an absolute sim time.
#[derive(Clone, Copy, Debug)]
pub struct ChaosEvent {
    /// When to inject.
    pub at: SimTime,
    /// What to inject.
    pub fault: Fault,
}

/// A deterministic fault schedule. Events are kept sorted by time (stable
/// within a tick in insertion order), so a plan prints and replays in
/// injection order.
#[derive(Clone, Debug, Default)]
pub struct ChaosPlan {
    /// The schedule, sorted by [`ChaosEvent::at`].
    pub events: Vec<ChaosEvent>,
}

impl ChaosPlan {
    /// An empty plan.
    pub fn new() -> ChaosPlan {
        ChaosPlan::default()
    }

    /// Add one event, keeping the schedule sorted.
    pub fn push(&mut self, at: SimTime, fault: Fault) {
        let idx = self.events.partition_point(|e| e.at <= at);
        self.events.insert(idx, ChaosEvent { at, fault });
    }

    /// Number of scheduled faults of each kind:
    /// `(link_flaps, port_deaths, nic_resets, node_crashes)`.
    pub fn kind_counts(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for e in &self.events {
            match e.fault {
                Fault::LinkFlap { .. } => c.0 += 1,
                Fault::SwitchPortDeath { .. } => c.1 += 1,
                Fault::NicReset { .. } => c.2 += 1,
                Fault::NodeCrash { .. } => c.3 += 1,
            }
        }
        c
    }
}

/// Seeded storm generator: draws fault targets and times from its own
/// splitmix64 stream so a fixed seed reproduces the schedule exactly,
/// independent of the cluster's RNG.
pub struct StormBuilder {
    state: u64,
    plan: ChaosPlan,
}

impl StormBuilder {
    /// Start a storm from `seed`.
    pub fn new(seed: u64) -> StormBuilder {
        StormBuilder {
            state: seed ^ 0xC4A0_5C4A_05C4_A05C,
            plan: ChaosPlan::new(),
        }
    }

    fn next(&mut self) -> u64 {
        // splitmix64: full-period, no external crate.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn time_in(&mut self, window: (SimTime, SimTime)) -> SimTime {
        let span = window.1.as_ns().saturating_sub(window.0.as_ns()).max(1);
        SimTime::from_ns(window.0.as_ns() + self.below(span))
    }

    fn dur_in(&mut self, range: (SimDuration, SimDuration)) -> SimDuration {
        let span = range.1.as_ns().saturating_sub(range.0.as_ns()).max(1);
        SimDuration::from_ns(range.0.as_ns() + self.below(span))
    }

    /// Schedule `count` link flaps on `rail`, drawing targets from
    /// `nodes`, times from `window`, and outage lengths from `down`.
    pub fn link_flaps(
        mut self,
        rail: usize,
        nodes: &[u32],
        count: usize,
        window: (SimTime, SimTime),
        down: (SimDuration, SimDuration),
    ) -> Self {
        for _ in 0..count {
            let node = nodes[self.below(nodes.len() as u64) as usize];
            let at = self.time_in(window);
            let down_for = self.dur_in(down);
            self.plan.push(
                at,
                Fault::LinkFlap {
                    rail,
                    node,
                    down_for,
                },
            );
        }
        self
    }

    /// Schedule `count` permanent port deaths on `rail`, drawing
    /// `(switch, port)` pairs from `candidates`.
    pub fn port_deaths(
        mut self,
        rail: usize,
        candidates: &[(usize, usize)],
        count: usize,
        window: (SimTime, SimTime),
    ) -> Self {
        for _ in 0..count {
            let (switch, port) = candidates[self.below(candidates.len() as u64) as usize];
            let at = self.time_in(window);
            self.plan
                .push(at, Fault::SwitchPortDeath { rail, switch, port });
        }
        self
    }

    /// Schedule `count` NIC resets across `nodes`.
    pub fn nic_resets(mut self, nodes: &[u32], count: usize, window: (SimTime, SimTime)) -> Self {
        for _ in 0..count {
            let node = nodes[self.below(nodes.len() as u64) as usize];
            let at = self.time_in(window);
            self.plan.push(at, Fault::NicReset { node });
        }
        self
    }

    /// Schedule `count` node crashes across `nodes` with outage lengths
    /// from `down`.
    pub fn node_crashes(
        mut self,
        nodes: &[u32],
        count: usize,
        window: (SimTime, SimTime),
        down: (SimDuration, SimDuration),
    ) -> Self {
        for _ in 0..count {
            let node = nodes[self.below(nodes.len() as u64) as usize];
            let at = self.time_in(window);
            let down_for = self.dur_in(down);
            self.plan.push(at, Fault::NodeCrash { node, down_for });
        }
        self
    }

    /// Finish the storm.
    pub fn build(self) -> ChaosPlan {
        self.plan
    }
}

fn instant(sim: &Sim, node: u32, stage_name: &'static str) {
    if sim.msg_trace().enabled() {
        sim.trace_event(TraceEvent::instant(
            TraceId::NONE,
            node,
            TraceLayer::Wire,
            stage_name,
            sim.now().as_ns(),
        ));
    }
}

/// Applies a [`ChaosPlan`] to a built cluster. Stateless after
/// [`ChaosController::install`] — every event is a scheduled sim closure
/// holding only the rails and firmware handles it needs.
pub struct ChaosController;

impl ChaosController {
    /// Schedule every event in `plan` on `cluster`'s sim clock. Call after
    /// [`suca_cluster::ClusterSpec::build`] and before `sim.run()`.
    ///
    /// Each injection bumps `chaos.faults` plus a per-kind counter and
    /// emits a chaos trace instant; a fault whose hook refuses (index out
    /// of range) is counted under `chaos.skipped` instead of silently
    /// vanishing.
    pub fn install(cluster: &Cluster, plan: &ChaosPlan) {
        let sim = &cluster.sim;
        for ev in &plan.events {
            let fault = ev.fault;
            match fault {
                Fault::LinkFlap {
                    rail,
                    node,
                    down_for,
                } => {
                    let fabric = cluster.rails[rail].clone();
                    let revive = fabric.clone();
                    sim.schedule_at(ev.at, move |s| {
                        if fabric.set_node_link_up(s, FabricNodeId(node), false) {
                            s.add_count("chaos.faults", 1);
                            s.add_count("chaos.link_down", 1);
                            instant(s, node, stage::CHAOS_LINK_DOWN);
                        } else {
                            s.add_count("chaos.skipped", 1);
                        }
                    });
                    sim.schedule_at(ev.at + down_for, move |s| {
                        if revive.set_node_link_up(s, FabricNodeId(node), true) {
                            s.add_count("chaos.link_up", 1);
                            instant(s, node, stage::CHAOS_LINK_UP);
                        }
                    });
                }
                Fault::SwitchPortDeath { rail, switch, port } => {
                    let fabric = cluster.rails[rail].clone();
                    sim.schedule_at(ev.at, move |s| {
                        if fabric.set_switch_port_dead(s, switch, port, true) {
                            s.add_count("chaos.faults", 1);
                            s.add_count("chaos.port_dead", 1);
                            instant(s, switch as u32, stage::CHAOS_PORT_DEAD);
                        } else {
                            s.add_count("chaos.skipped", 1);
                        }
                    });
                }
                Fault::NicReset { node } => {
                    let mcp = cluster.nodes[node as usize].bcl.mcp.clone();
                    sim.schedule_at(ev.at, move |s| {
                        s.add_count("chaos.faults", 1);
                        s.add_count("chaos.nic_reset", 1);
                        // The MCP emits the CHAOS_NIC_RESET instant itself.
                        mcp.chaos_reset();
                    });
                }
                Fault::NodeCrash { node, down_for } => {
                    let mcp = cluster.nodes[node as usize].bcl.mcp.clone();
                    sim.schedule_at(ev.at, move |s| {
                        s.add_count("chaos.faults", 1);
                        s.add_count("chaos.node_crash", 1);
                        // The MCP counts mcp.node_crashes/restarts and
                        // emits the crash/restart instants itself.
                        mcp.chaos_crash(down_for);
                    });
                }
            }
        }
    }
}

/// Where chaos reports land: `$SUCA_CHAOS_DIR` or `target/chaos`.
pub fn chaos_dir() -> PathBuf {
    std::env::var_os("SUCA_CHAOS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/chaos"))
}

/// Recovery accounting for one chaos run, gathered from the metrics
/// registry. Stable JSON — CI diffs two fixed-seed runs byte-for-byte.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// Run label.
    pub variant: String,
    /// Storm seed.
    pub seed: u64,
    /// Faults injected (hooks accepted).
    pub injected: u64,
    /// Faults whose hook refused (bad index) — must be 0 in CI.
    pub skipped: u64,
    /// Link-down injections.
    pub link_down: u64,
    /// Link revivals.
    pub link_up: u64,
    /// Port deaths.
    pub port_dead: u64,
    /// NIC resets.
    pub nic_resets: u64,
    /// Node crashes.
    pub node_crashes: u64,
    /// Node restarts observed (must equal `node_crashes` after the run).
    pub node_restarts: u64,
    /// Paths declared dead by retransmission exhaustion.
    pub path_deaths: u64,
    /// Rail failovers performed.
    pub rail_failovers: u64,
    /// Epoch resyncs completed (go-back-N handshakes).
    pub epoch_resyncs: u64,
    /// Stale-epoch packets counted and dropped.
    pub stale_epoch_drops: u64,
    /// Packets dropped at downed links.
    pub link_down_drops: u64,
    /// Packets dropped at dead switch ports.
    pub dead_port_drops: u64,
    /// Packets dropped at crashed nodes.
    pub node_down_drops: u64,
    /// RPC requests terminated as dead-destination.
    pub rpc_dead_dests: u64,
    /// Watchdog stalls (0 once recovery works).
    pub watchdog_stalls: u64,
    /// Path-death-to-resync recovery latency, median (µs).
    pub recovery_p50_us: f64,
    /// Recovery latency, 99th percentile (µs).
    pub recovery_p99_us: f64,
    /// Worst recovery latency (µs).
    pub recovery_max_us: f64,
}

impl ChaosReport {
    /// Assemble the report from `sim`'s metrics registry.
    pub fn gather(sim: &Sim, variant: &str, seed: u64) -> ChaosReport {
        let snap = sim.metrics().snapshot();
        let (p50, p99, max) = snap
            .histograms
            .get("chaos.recovery_ns")
            .filter(|h| h.count > 0)
            .map_or((0.0, 0.0, 0.0), |h| {
                (h.p50() / 1_000.0, h.p99() / 1_000.0, h.max as f64 / 1_000.0)
            });
        ChaosReport {
            variant: variant.to_string(),
            seed,
            injected: snap.counter("chaos.faults"),
            skipped: snap.counter("chaos.skipped"),
            link_down: snap.counter("chaos.link_down"),
            link_up: snap.counter("chaos.link_up"),
            port_dead: snap.counter("chaos.port_dead"),
            nic_resets: snap.counter("mcp.nic_resets"),
            node_crashes: snap.counter("mcp.node_crashes"),
            node_restarts: snap.counter("mcp.node_restarts"),
            path_deaths: snap.counter("mcp.path_deaths"),
            rail_failovers: snap.counter("mcp.rail_failovers"),
            epoch_resyncs: snap
                .histograms
                .get("chaos.recovery_ns")
                .map_or(0, |h| h.count),
            stale_epoch_drops: snap.counter("mcp.stale_epoch_drops"),
            link_down_drops: snap.counter("link.down_drops"),
            dead_port_drops: snap.counter("switch.dead_port_drop"),
            node_down_drops: snap.counter("mcp.node_down_drops"),
            rpc_dead_dests: snap.counter("rpc.cli_dead_dest"),
            watchdog_stalls: snap.counter("watchdog.stalls"),
            recovery_p50_us: p50,
            recovery_p99_us: p99,
            recovery_max_us: max,
        }
    }

    /// Stable JSON (fixed key order, `{:.3}` floats, trailing newline).
    pub fn to_json(&self) -> String {
        let mut o = String::new();
        o.push_str("{\n");
        let _ = writeln!(o, "  \"variant\": \"{}\",", self.variant);
        let _ = writeln!(o, "  \"seed\": {},", self.seed);
        let _ = writeln!(o, "  \"injected\": {},", self.injected);
        let _ = writeln!(o, "  \"skipped\": {},", self.skipped);
        let _ = writeln!(o, "  \"link_down\": {},", self.link_down);
        let _ = writeln!(o, "  \"link_up\": {},", self.link_up);
        let _ = writeln!(o, "  \"port_dead\": {},", self.port_dead);
        let _ = writeln!(o, "  \"nic_resets\": {},", self.nic_resets);
        let _ = writeln!(o, "  \"node_crashes\": {},", self.node_crashes);
        let _ = writeln!(o, "  \"node_restarts\": {},", self.node_restarts);
        let _ = writeln!(o, "  \"path_deaths\": {},", self.path_deaths);
        let _ = writeln!(o, "  \"rail_failovers\": {},", self.rail_failovers);
        let _ = writeln!(o, "  \"epoch_resyncs\": {},", self.epoch_resyncs);
        let _ = writeln!(o, "  \"stale_epoch_drops\": {},", self.stale_epoch_drops);
        let _ = writeln!(o, "  \"link_down_drops\": {},", self.link_down_drops);
        let _ = writeln!(o, "  \"dead_port_drops\": {},", self.dead_port_drops);
        let _ = writeln!(o, "  \"node_down_drops\": {},", self.node_down_drops);
        let _ = writeln!(o, "  \"rpc_dead_dests\": {},", self.rpc_dead_dests);
        let _ = writeln!(o, "  \"watchdog_stalls\": {},", self.watchdog_stalls);
        let _ = writeln!(o, "  \"recovery_p50_us\": {:.3},", self.recovery_p50_us);
        let _ = writeln!(o, "  \"recovery_p99_us\": {:.3},", self.recovery_p99_us);
        let _ = writeln!(o, "  \"recovery_max_us\": {:.3}", self.recovery_max_us);
        o.push_str("}\n");
        o
    }

    /// Write to `chaos_dir()/{file_stem}.json` and return the path.
    pub fn write_named(&self, file_stem: &str) -> std::io::Result<PathBuf> {
        let dir = chaos_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{file_stem}.json"));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storms_are_deterministic_and_sorted() {
        let build = || {
            StormBuilder::new(7)
                .link_flaps(
                    0,
                    &[1, 2, 3],
                    3,
                    (SimTime::from_ns(1_000), SimTime::from_ns(9_000)),
                    (SimDuration::from_ns(100), SimDuration::from_ns(500)),
                )
                .nic_resets(
                    &[0, 1],
                    2,
                    (SimTime::from_ns(2_000), SimTime::from_ns(8_000)),
                )
                .node_crashes(
                    &[2],
                    1,
                    (SimTime::from_ns(3_000), SimTime::from_ns(7_000)),
                    (SimDuration::from_ns(1_000), SimDuration::from_ns(2_000)),
                )
                .build()
        };
        let a = build();
        let b = build();
        assert_eq!(a.events.len(), 6);
        assert!(a.events.windows(2).all(|w| w[0].at <= w[1].at));
        for (x, y) in a.events.iter().zip(&b.events) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.fault, y.fault);
        }
        assert_eq!(a.kind_counts(), (3, 0, 2, 1));
    }

    #[test]
    fn plan_push_keeps_time_order() {
        let mut p = ChaosPlan::new();
        p.push(SimTime::from_ns(500), Fault::NicReset { node: 1 });
        p.push(SimTime::from_ns(100), Fault::NicReset { node: 2 });
        p.push(SimTime::from_ns(300), Fault::NicReset { node: 3 });
        let order: Vec<u64> = p.events.iter().map(|e| e.at.as_ns()).collect();
        assert_eq!(order, vec![100, 300, 500]);
    }

    #[test]
    fn report_json_is_stable() {
        let r = ChaosReport {
            variant: "storm".into(),
            seed: 42,
            injected: 5,
            skipped: 0,
            link_down: 2,
            link_up: 2,
            port_dead: 1,
            nic_resets: 1,
            node_crashes: 1,
            node_restarts: 1,
            path_deaths: 3,
            rail_failovers: 3,
            epoch_resyncs: 3,
            stale_epoch_drops: 7,
            link_down_drops: 20,
            dead_port_drops: 4,
            node_down_drops: 11,
            rpc_dead_dests: 2,
            watchdog_stalls: 0,
            recovery_p50_us: 412.5,
            recovery_p99_us: 901.25,
            recovery_max_us: 910.0,
        };
        let j = r.to_json();
        assert_eq!(j, r.to_json());
        assert!(j.contains("\"recovery_p99_us\": 901.250,"));
        assert!(j.ends_with("\"recovery_max_us\": 910.000\n}\n"));
    }
}
