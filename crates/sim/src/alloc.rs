//! Counting global allocator for the engine self-profiler.
//!
//! With the `prof` cargo feature (on by default) this installs a
//! [`GlobalAlloc`] wrapper around [`System`] that counts allocations and
//! bytes while counting is armed — the scheduler arms it only for profiled
//! runs and reads the deltas around each dispatch to attribute hot-path
//! allocations per event kind. Disarmed cost is one relaxed atomic load per
//! allocation; builds without the feature install no allocator at all and
//! [`counts`] is a constant zero.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// Arm/disarm allocation counting (no-op without the `prof` feature).
pub fn set_counting(on: bool) {
    COUNTING.store(on && cfg!(feature = "prof"), Ordering::Relaxed);
}

/// Cumulative `(allocations, bytes)` counted while armed. Monotonic; read
/// a delta around a region to attribute its allocations.
pub fn counts() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

#[cfg(feature = "prof")]
mod counting {
    use super::*;
    use std::alloc::{GlobalAlloc, Layout, System};

    struct CountingAlloc;

    // SAFETY: pure pass-through to `System`; the counter bumps have no
    // effect on the returned memory.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            if COUNTING.load(Ordering::Relaxed) {
                ALLOCS.fetch_add(1, Ordering::Relaxed);
                ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            }
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            if COUNTING.load(Ordering::Relaxed) && new_size > layout.size() {
                ALLOCS.fetch_add(1, Ordering::Relaxed);
                ALLOC_BYTES.fetch_add((new_size - layout.size()) as u64, Ordering::Relaxed);
            }
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;
}

/// Serializes unit tests that arm the (process-global) counting state.
#[cfg(all(test, feature = "prof"))]
pub(crate) static TEST_ARM_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(all(test, feature = "prof"))]
mod tests {
    use super::*;

    #[test]
    fn counts_move_only_while_armed() {
        let _arm = TEST_ARM_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_counting(false);
        let (a0, b0) = counts();
        let v = vec![0u8; 4096];
        drop(v);
        let (a1, b1) = counts();
        assert_eq!((a0, b0), (a1, b1), "disarmed allocations must not count");
        set_counting(true);
        let v = vec![0u8; 4096];
        set_counting(false);
        let (a2, b2) = counts();
        assert!(a2 > a1, "armed allocation not counted");
        assert!(b2 >= b1 + 4096, "armed bytes not counted");
        drop(v);
    }
}
