//! Virtual time for the discrete-event engine.
//!
//! All simulated clocks are nanosecond-resolution `u64` counters starting at
//! zero. The paper reports everything in microseconds (e.g. a PIO word write
//! costs 0.24 µs); nanoseconds keep those constants exact while leaving
//! headroom for multi-second simulations (a `u64` of nanoseconds covers
//! ~584 years).

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Microseconds since start, as a float (for reporting — the paper's unit).
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The duration elapsed since `earlier`. Saturates at zero if `earlier`
    /// is in the future, which keeps measurement code panic-free.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from integer microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from fractional microseconds (e.g. the paper's `0.24 µs`
    /// PIO write). Rounds to the nearest nanosecond; negative inputs clamp
    /// to zero.
    #[inline]
    pub fn from_us_f64(us: f64) -> Self {
        SimDuration((us * 1_000.0).round().max(0.0) as u64)
    }

    /// Construct from integer milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from integer seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Microseconds as a float (the paper's reporting unit).
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Time to move `bytes` at `bytes_per_sec`, rounded up to a whole
    /// nanosecond. Uses 128-bit intermediate math so multi-megabyte
    /// transfers at multi-hundred-MB/s rates do not overflow or lose
    /// precision — bandwidth curves (Fig. 9) are built from this.
    #[inline]
    pub fn for_bytes(bytes: u64, bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "bandwidth must be positive");
        let ns = (bytes as u128 * 1_000_000_000u128).div_ceil(bytes_per_sec as u128);
        SimDuration(u64::try_from(ns).expect("transfer time overflows u64 ns"))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// True if this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(d.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimTime) -> SimDuration {
        self.since(other)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(other.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, other: SimDuration) {
        *self = *self + other;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(other.0)
                .expect("SimDuration underflow; use saturating_sub"),
        )
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, other: SimDuration) {
        *self = *self - other;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(k).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}us", self.as_us())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn us_roundtrip() {
        let d = SimDuration::from_us_f64(0.24);
        assert_eq!(d.as_ns(), 240);
        assert!((d.as_us() - 0.24).abs() < 1e-9);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_us(5);
        assert_eq!(t.as_ns(), 5_000);
        assert_eq!((t + SimDuration::from_ns(1)).since(t).as_ns(), 1);
        assert_eq!(SimTime::ZERO.since(t), SimDuration::ZERO); // saturates
    }

    #[test]
    fn bytes_at_bandwidth() {
        // 128 KB at 146 MB/s ~= 898 us (the paper's Fig. 9 anchor point).
        let d = SimDuration::for_bytes(128 * 1024, 146_000_000);
        assert!((d.as_us() - 897.75).abs() < 1.0, "got {}", d.as_us());
        // Rounds up: 1 byte at 3 B/s needs ceil(1e9/3) ns.
        assert_eq!(SimDuration::for_bytes(1, 3).as_ns(), 333_333_334);
    }

    #[test]
    fn no_overflow_on_large_transfers() {
        // 1 TB at 1 MB/s = 1e6 seconds; fits comfortably.
        let d = SimDuration::for_bytes(1 << 40, 1_000_000);
        assert!(d.as_secs_f64() > 1.0e6 - 1.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        let _ = SimDuration::for_bytes(1, 0);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_us(10) * 3;
        assert_eq!(d.as_us(), 30.0);
        assert_eq!((d / 3).as_us(), 10.0);
    }
}
