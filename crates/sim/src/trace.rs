//! Stage-span tracing.
//!
//! The paper's Figures 5–7 are *timelines*: a message's journey broken into
//! named stages with per-stage durations. Protocol code records a [`Span`]
//! per stage on a named track (e.g. `"node0/send"`); the figure harnesses
//! drain the spans and print the same breakdowns the paper shows.

use std::borrow::Cow;

use crate::time::{SimDuration, SimTime};

/// One traced stage.
///
/// `track` and `stage` are `Cow<'static, str>` so the per-fragment hot
/// path records spans without allocating: protocol components intern their
/// per-node track names once at construction ([`suca_obs::intern`]) and
/// stage names are string literals.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// Grouping key, typically `"<node>/<direction>"`.
    pub track: Cow<'static, str>,
    /// Stage name, e.g. `"trap+check+translate"`.
    pub stage: Cow<'static, str>,
    /// Stage start (virtual time).
    pub start: SimTime,
    /// Stage end (virtual time).
    pub end: SimTime,
}

impl Span {
    /// Stage duration.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// Span sink owned by the engine; disabled by default (zero overhead on the
/// hot path beyond one branch).
pub struct Tracer {
    enabled: bool,
    spans: Vec<Span>,
}

impl Tracer {
    pub(crate) fn new() -> Self {
        Tracer {
            enabled: false,
            spans: Vec::new(),
        }
    }

    pub(crate) fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    pub(crate) fn span(
        &mut self,
        track: impl Into<Cow<'static, str>>,
        stage: impl Into<Cow<'static, str>>,
        start: SimTime,
        end: SimTime,
    ) {
        if !self.enabled {
            return;
        }
        self.spans.push(Span {
            track: track.into(),
            stage: stage.into(),
            start,
            end,
        });
    }

    pub(crate) fn take(&mut self) -> Vec<Span> {
        let mut spans = std::mem::take(&mut self.spans);
        spans.sort_by_key(|s| s.start);
        spans
    }
}

/// Render a list of spans as a text timeline table (one row per span),
/// matching the presentation of the paper's timeline figures.
pub fn render_timeline(spans: &[Span]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let width = spans
        .iter()
        .map(|s| s.track.len() + s.stage.len())
        .max()
        .unwrap_or(20)
        + 3;
    for s in spans {
        let label = format!("{} :: {}", s.track, s.stage);
        let _ = writeln!(
            out,
            "{label:<width$} {:>10.3} -> {:>10.3}  ({:>7.3} us)",
            s.start.as_us(),
            s.end.as_us(),
            s.duration().as_us(),
        );
    }
    out
}

/// Render spans as an ASCII Gantt chart, the visual analogue of the paper's
/// timeline figures: one row per span, bars positioned on a common time
/// axis starting at the earliest span.
pub fn render_gantt(spans: &[Span], width: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if spans.is_empty() {
        return out;
    }
    let t0 = spans.iter().map(|s| s.start).min().expect("nonempty");
    let t1 = spans.iter().map(|s| s.end).max().expect("nonempty");
    let total = t1.since(t0).as_ns().max(1);
    let label_w = spans
        .iter()
        .map(|s| s.track.len() + s.stage.len() + 4)
        .max()
        .unwrap_or(20);
    let scale = |t: SimTime| -> usize {
        ((t.since(t0).as_ns() as u128 * width as u128) / total as u128) as usize
    };
    let _ = writeln!(
        out,
        "{:<label_w$} 0{}{:.2}us",
        "",
        " ".repeat(width.saturating_sub(8)),
        t1.since(t0).as_us()
    );
    for s in spans {
        let label = format!("{} :: {}", s.track, s.stage);
        let a = scale(s.start).min(width);
        let b = scale(s.end).clamp(a + 1, width);
        let mut bar = String::with_capacity(width);
        bar.push_str(&" ".repeat(a));
        bar.push_str(&"#".repeat(b - a));
        bar.push_str(&" ".repeat(width - b));
        let _ = writeln!(
            out,
            "{label:<label_w$} |{bar}| {:.2}us",
            s.duration().as_us()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Sim;
    use crate::time::SimDuration;

    #[test]
    fn disabled_tracer_records_nothing() {
        let sim = Sim::new(1);
        sim.trace_span("t", "s", SimTime::ZERO, SimTime::from_ns(10));
        assert!(sim.take_spans().is_empty());
    }

    #[test]
    fn spans_come_back_sorted_by_start() {
        let sim = Sim::new(1);
        sim.set_tracing(true);
        let t = |ns| SimTime::from_ns(ns);
        sim.trace_span("a", "late", t(100), t(200));
        sim.trace_span("a", "early", t(0), t(50));
        let spans = sim.take_spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].stage, "early");
        assert_eq!(spans[1].stage, "late");
        assert_eq!(spans[1].duration(), SimDuration::from_ns(100));
        // Drained: second take is empty.
        assert!(sim.take_spans().is_empty());
    }

    #[test]
    fn gantt_renders_scaled_bars() {
        let t = |ns| SimTime::from_ns(ns);
        let spans = vec![
            Span {
                track: "n0/tx".into(),
                stage: "first-half".into(),
                start: t(0),
                end: t(500),
            },
            Span {
                track: "n0/tx".into(),
                stage: "second-half".into(),
                start: t(500),
                end: t(1000),
            },
        ];
        let g = render_gantt(&spans, 40);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3);
        // Equal halves get equal-ish bars.
        let count = |l: &str| l.matches('#').count();
        let (a, b) = (count(lines[1]), count(lines[2]));
        assert!((a as i64 - b as i64).abs() <= 1, "{a} vs {b}");
        assert!((19..=21).contains(&a));
        // Second bar starts where the first ended.
        assert!(lines[2].find('#').unwrap() >= lines[1].rfind('#').unwrap());
    }

    #[test]
    fn gantt_empty_is_empty() {
        assert!(render_gantt(&[], 40).is_empty());
    }

    #[test]
    fn render_is_stable() {
        let spans = vec![Span {
            track: "n0/send".into(),
            stage: "trap".into(),
            start: SimTime::ZERO,
            end: SimTime::from_ns(1_200),
        }];
        let text = render_timeline(&spans);
        assert!(text.contains("n0/send :: trap"));
        assert!(text.contains("1.200 us"));
    }
}
