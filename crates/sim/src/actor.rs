//! Thread-backed simulation actors.
//!
//! Application code in this reproduction (the processes that call the BCL
//! API, the MPI ranks, …) is written as ordinary blocking Rust. Each such
//! process runs on a real OS thread, but the engine enforces that **exactly
//! one party runs at a time** — either the scheduler or a single actor —
//! passing a baton through rendezvous channels. Execution is therefore
//! sequential and fully deterministic even though the code is multi-threaded;
//! virtual time only advances through the event queue.
//!
//! The handshake:
//!
//! ```text
//! scheduler                       actor thread
//! ---------                       ------------
//! pop WakeActor(id, gen)
//! shared.wake_tx.send(Run) ─────► wake_rx.recv() returns, user code runs
//! shared.yield_rx.recv() ◄─────── (actor parks or finishes)
//! continue event loop
//! ```
//!
//! Parks are *generational*: every park gets a fresh generation number and a
//! `WakeActor` event only resumes the actor if the generations match. Stale
//! wakeups (e.g. a signal notification racing a sleep timer) are dropped
//! instead of resuming the actor early.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver, Sender};

use crate::engine::Sim;
use crate::time::{SimDuration, SimTime};

/// Identifies an actor within one simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ActorId(pub(crate) u32);

impl ActorId {
    /// Raw index (useful for deterministic per-actor seeding).
    pub fn index(self) -> u32 {
        self.0
    }
}

/// What the scheduler tells a parked actor thread.
pub(crate) enum WakeMsg {
    /// Resume user code.
    Run,
    /// The simulation is being torn down; unwind out of user code quietly.
    Shutdown,
}

/// What an actor thread tells the scheduler when handing the baton back.
pub(crate) enum YieldMsg {
    /// The actor parked (waiting for a timer or a signal).
    Parked,
    /// The actor's body returned normally.
    Done,
    /// The actor's body panicked; payload is the formatted message.
    Panicked(String),
}

/// Zero-sized panic payload used to unwind actor threads at teardown.
/// Recognized (and swallowed) by the actor runner and the global panic hook.
pub(crate) struct ShutdownToken;

/// Channel endpoints shared between the scheduler and one actor thread.
pub(crate) struct ActorShared {
    pub(crate) wake_tx: Sender<WakeMsg>,
    pub(crate) yield_rx: Receiver<YieldMsg>,
}

/// Scheduler-side record of one actor.
pub(crate) struct ActorRecord {
    pub(crate) name: String,
    pub(crate) shared: Arc<ActorShared>,
    /// Park generation; a `WakeActor` event must match this to resume.
    pub(crate) gen: u64,
    pub(crate) status: ActorStatus,
    pub(crate) join: Option<JoinHandle<()>>,
    /// Event-queue shard this actor's wakeups land on (normally the node
    /// the process runs on; see [`Sim::spawn_pinned`](crate::Sim)).
    pub(crate) shard: u32,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum ActorStatus {
    Parked,
    Running,
    Done,
}

/// Handle passed to actor bodies; the actor's view of the simulation.
///
/// All blocking operations (`sleep`, [`crate::signal::Signal::wait`]) go
/// through this context so the engine can keep virtual time consistent.
pub struct ActorCtx {
    sim: Sim,
    id: ActorId,
    name: String,
    wake_rx: Receiver<WakeMsg>,
    yield_tx: Sender<YieldMsg>,
}

impl ActorCtx {
    /// The simulation handle (for scheduling events, reading the clock, …).
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// This actor's id.
    pub fn id(&self) -> ActorId {
        self.id
    }

    /// This actor's debug name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Advance virtual time by `d` — models this process spending `d` of
    /// CPU/elapsed time. Other events scheduled inside the window run while
    /// this actor is parked.
    pub fn sleep(&mut self, d: SimDuration) {
        if d.is_zero() {
            return self.yield_now();
        }
        let gen = self.sim.next_park_gen(self.id);
        let id = self.id;
        self.sim.schedule_wake_in(d, id, gen);
        self.park();
    }

    /// Yield the baton without advancing time: all other events scheduled at
    /// the current instant run before this actor resumes.
    pub fn yield_now(&mut self) {
        let gen = self.sim.next_park_gen(self.id);
        let id = self.id;
        self.sim.schedule_wake_in(SimDuration::ZERO, id, gen);
        self.park();
    }

    /// Park until a matching wakeup. Internal: used by `sleep` and signals,
    /// which must have arranged a wake *before* calling this.
    pub(crate) fn park(&mut self) {
        self.sim.mark_parked(self.id);
        // Hand the baton to the scheduler and wait for it back.
        self.yield_tx
            .send(YieldMsg::Parked)
            .expect("engine vanished while actor parked");
        match self.wake_rx.recv() {
            Ok(WakeMsg::Run) => {}
            Ok(WakeMsg::Shutdown) | Err(_) => panic::panic_any(ShutdownToken),
        }
    }
}

/// Spawn machinery, called from [`Sim::spawn`].
pub(crate) fn spawn_actor_thread(
    sim: Sim,
    id: ActorId,
    name: String,
    body: Box<dyn FnOnce(&mut ActorCtx) + Send + 'static>,
) -> (Arc<ActorShared>, JoinHandle<()>) {
    // Rendezvous channels: the sender blocks until the receiver takes the
    // message, which is exactly the baton-passing we need.
    let (wake_tx, wake_rx) = bounded::<WakeMsg>(0);
    let (yield_tx, yield_rx) = bounded::<YieldMsg>(0);
    let shared = Arc::new(ActorShared { wake_tx, yield_rx });

    let thread_name = format!("sim-actor-{}-{}", id.0, name);
    let ctx_name = name;
    let join = std::thread::Builder::new()
        .name(thread_name)
        .spawn(move || {
            // Wait to be scheduled for the first time.
            match wake_rx.recv() {
                Ok(WakeMsg::Run) => {}
                Ok(WakeMsg::Shutdown) | Err(_) => return,
            }
            let mut ctx = ActorCtx {
                sim,
                id,
                name: ctx_name,
                wake_rx,
                yield_tx,
            };
            let result = panic::catch_unwind(AssertUnwindSafe(|| body(&mut ctx)));
            let msg = match result {
                Ok(()) => YieldMsg::Done,
                Err(payload) => {
                    if payload.downcast_ref::<ShutdownToken>().is_some() {
                        // Teardown unwind: exit quietly, nobody is listening.
                        return;
                    }
                    let text = if let Some(s) = payload.downcast_ref::<&str>() {
                        (*s).to_string()
                    } else if let Some(s) = payload.downcast_ref::<String>() {
                        s.clone()
                    } else {
                        "<non-string panic payload>".to_string()
                    };
                    YieldMsg::Panicked(text)
                }
            };
            // If the engine is gone this send fails, which is fine.
            let _ = ctx.yield_tx.send(msg);
        })
        .expect("failed to spawn actor thread");
    (shared, join)
}

/// Install a process-global panic hook that silences [`ShutdownToken`]
/// unwinds (they are control flow, not errors) while delegating everything
/// else to the previously installed hook. Idempotent.
pub(crate) fn install_quiet_shutdown_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ShutdownToken>().is_some() {
                return;
            }
            prev(info);
        }));
    });
}
