//! The discrete-event scheduler.
//!
//! Events are `(time, seq)`-ordered, ties broken by insertion order, so runs
//! are bit-for-bit reproducible. Three kinds of events exist: boxed closures
//! (used by hardware models — NIC firmware, DMA engines, switches), actor
//! wakeups (used by thread-backed application processes, see
//! [`crate::actor`]), and unboxed poller ticks (used by descriptor-ring
//! firmware loops, see [`Sim::register_poller`]).
//!
//! # Sharded queues, one global order
//!
//! The queue is sharded: each shard (normally one per simulated node, see
//! `ClusterSpec::with_engine_shards`) owns its own binary heap plus a
//! live-event set, and a small *index heap* tracks the advertised minimum key
//! of every non-empty shard. The scheduler picks the globally smallest
//! `(time, seq)` key from the index, then **batch-drains** the winning shard
//! while its keys stay strictly below the *horizon* — the best key any other
//! shard advertises. Cross-shard pushes below the horizon tighten a
//! *pushed-min watermark*; the batch keeps draining while its next key stays
//! strictly below the watermark and ends when it reaches it. Because a
//! freshly allocated `seq` is larger than every seq already in any queue, a
//! cross-shard push *at* the horizon time can never sort before the horizon
//! event, so the time-only horizon test is conservative and the dispatch
//! order is exactly the strict global `(time, seq)` order of the
//! single-queue engine. A fixed seed therefore yields byte-identical reports
//! at any shard count; wormhole link latency (cross-node events land at
//! least one propagation delay in the future) is what makes the batches long
//! in practice.
//!
//! Mid-batch pushes onto the *drained* shard skip the advertise/index-heap
//! path entirely — the scheduler owns the shard (its `advertised` is `None`)
//! and re-advertises the true minimum at batch end, so those index entries
//! would only ever be popped as stale. The self-profiler
//! ([`suca_obs::prof`], enabled via [`Sim::set_profiling`] or
//! `SUCA_SIM_PROF`) counts batches, end causes, index churn, and per-kind
//! dispatch cost; with the `prof` cargo feature off the hooks compile out.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use parking_lot::Mutex;

use crate::actor::{
    install_quiet_shutdown_hook, spawn_actor_thread, ActorCtx, ActorId, ActorRecord, ActorStatus,
    WakeMsg, YieldMsg,
};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::{Span, Tracer};

/// Identifies a scheduled event; returned by the `schedule_*` methods and
/// accepted by [`Sim::cancel`] (used for e.g. retransmission timers).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId {
    time: SimTime,
    seq: u64,
    shard: u32,
}

/// Handle to a registered poller callback (see [`Sim::register_poller`]).
/// Scheduling a poll tick allocates nothing: the event carries only this id.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PollerId {
    idx: u32,
    shard: u32,
}

/// A registered poller callback (shared so a poll tick can run it without
/// holding the registry lock).
type PollerFn = Arc<dyn Fn(&Sim) + Send + Sync + 'static>;

enum EventAction {
    Call(Box<dyn FnOnce(&Sim) + Send + 'static>),
    Wake(ActorId, u64),
    Poll(u32),
}

struct EventEntry {
    time: SimTime,
    seq: u64,
    action: EventAction,
}

impl PartialEq for EventEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for EventEntry {}
impl PartialOrd for EventEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EventEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Why [`Sim::run`] (or [`Sim::run_until`]) returned.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RunOutcome {
    /// Event queue drained and every actor finished.
    Completed,
    /// Event queue drained but some actors are still parked waiting for a
    /// signal that can never fire. The names of the stuck actors are listed —
    /// this is how protocol-level deadlocks surface in tests.
    Deadlock(Vec<String>),
    /// `run_until` reached its time limit with work still pending.
    Pending,
}

/// One event-queue shard. `live` tracks the seqs of still-pending (never
/// fired, never cancelled) events, which makes [`Sim::cancel`] exact: a
/// cancel succeeds iff the seq is removed here, a popped event whose seq is
/// absent is a cancelled tombstone and is discarded. Nothing grows without
/// bound: every seq leaves `live` exactly once, at cancel or at pop.
struct Shard {
    queue: BinaryHeap<Reverse<EventEntry>>,
    live: HashSet<u64>,
    /// The `(time, seq)` key this shard currently advertises in the
    /// scheduler's index heap (`None` while the scheduler owns the shard
    /// during a batch, or while the shard is empty).
    advertised: Option<(SimTime, u64)>,
}

/// Actor table and span tracer: mutated only under the scheduler baton, kept
/// in one mutex separate from the hot event-queue shards.
struct ControlState {
    actors: Vec<ActorRecord>,
    tracer: Tracer,
}

/// Sentinel for "no batch in progress" in `current_shard`.
const IDLE_SHARD: u32 = u32::MAX;

pub(crate) struct SimInner {
    shards: Vec<Mutex<Shard>>,
    /// Advertised per-shard minima: `(time, seq, shard)`. Lazy — stale
    /// entries (a shard whose advertised key moved on) are skipped at pop.
    index: Mutex<BinaryHeap<Reverse<(SimTime, u64, u32)>>>,
    control: Mutex<ControlState>,
    /// Current virtual time in ns. Atomic so `Sim::now` never touches a
    /// queue lock from hot paths.
    now_ns: AtomicU64,
    /// Global event sequence counter; allocation order == program order.
    seq: AtomicU64,
    dispatched: AtomicU64,
    /// Live (never fired, never cancelled) events across all shards.
    pending: AtomicU64,
    /// Shard being batch-drained, or `IDLE_SHARD`. Doubles as the ambient
    /// placement for events scheduled without an explicit shard hint.
    current_shard: AtomicU32,
    /// Time component of the batch horizon (0 while no batch is active):
    /// a cross-shard push strictly below this must bound the batch.
    horizon_ns: AtomicU64,
    /// Smallest cross-shard push time seen below the active horizon
    /// (`u64::MAX` = none). The batch keeps draining strictly below this
    /// watermark. At the watermark time the drained shard may hold events
    /// scheduled *after* the cross-shard push (larger seq — they must sort
    /// after it), so only events strictly below the watermark are provably
    /// still the global minimum.
    batch_pushed_min_ns: AtomicU64,
    running: AtomicBool,
    seed: u64,
    /// Registered poller callbacks, indexed by `PollerId::idx`. Append-only.
    pollers: RwLock<Vec<PollerFn>>,
    /// Metrics registry lives *outside* the engine mutex: bumping a counter
    /// from inside an event handler must not touch the scheduler lock.
    metrics: suca_obs::Metrics,
    /// Per-message causal tracer / flight recorder. Also outside the engine
    /// mutex so protocol code can record events from anywhere.
    mtrace: suca_obs::trace::MsgTracer,
    /// Continuous-telemetry probe registry (sim-clock sampled rings). Also
    /// outside the engine mutex: probes are registered at construction time
    /// and sampled only from the telemetry tick.
    timeseries: suca_obs::timeseries::TimeSeries,
    /// Guard so `start_telemetry` arms exactly one sampler per run.
    pub(crate) telemetry_started: AtomicBool,
    /// Engine self-profiler cells (see [`suca_obs::prof`]). Off by default;
    /// hooks compile out without the `prof` cargo feature.
    prof: suca_obs::prof::EngineProf,
    /// Guard so `set_profiling` registers the `sim.prof.*` counter-track
    /// probes exactly once (and never for unprofiled runs, whose timeseries
    /// JSON must stay byte-identical across shard counts).
    prof_probes: AtomicBool,
    /// Online health engine (see [`suca_obs::health`]). Created unarmed —
    /// it registers its `health.*` instruments only when a harness installs
    /// rules via [`Sim::install_health`], keeping unmonitored runs'
    /// snapshots byte-identical.
    health: suca_obs::health::HealthEngine,
}

/// `SUCA_SIM_TRACE_DISPATCH` is read once per process, not once per event.
fn trace_dispatch_enabled() -> bool {
    static FLAG: OnceLock<bool> = OnceLock::new();
    *FLAG.get_or_init(|| std::env::var_os("SUCA_SIM_TRACE_DISPATCH").is_some())
}

/// Resets `running` (and the batch state) even when a dispatched handler or
/// actor panic unwinds through `run_inner`, so a harness that catches the
/// panic can run the same `Sim` again instead of dying on the reentrancy
/// assert.
struct RunningGuard<'a>(&'a SimInner);

impl Drop for RunningGuard<'_> {
    fn drop(&mut self) {
        let inner = self.0;
        let sh = inner.current_shard.load(Ordering::Relaxed);
        if sh != IDLE_SHARD {
            // A panic unwound mid-batch while the scheduler owned this shard
            // (`advertised == None`, mid-batch own-shard pushes skip the
            // index). Re-advertise its minimum or its remaining events would
            // be invisible to the next run.
            let mut g = inner.shards[sh as usize].lock();
            match g.queue.peek() {
                Some(Reverse(top)) => {
                    let key = (top.time, top.seq);
                    if g.advertised != Some(key) {
                        g.advertised = Some(key);
                        inner.index.lock().push(Reverse((key.0, key.1, sh)));
                    }
                }
                None => g.advertised = None,
            }
        }
        inner.horizon_ns.store(0, Ordering::Relaxed);
        inner.batch_pushed_min_ns.store(u64::MAX, Ordering::Relaxed);
        inner.current_shard.store(IDLE_SHARD, Ordering::Relaxed);
        inner.running.store(false, Ordering::Release);
    }
}

/// Handle to one simulation. Cheap to clone; all clones refer to the same
/// engine. Hardware components keep a `Sim` to schedule their own events.
#[derive(Clone)]
pub struct Sim {
    inner: Arc<SimInner>,
}

impl Sim {
    /// Create a single-shard simulation with the given master RNG seed. The
    /// seed fixes every random decision in the run (fault injection, jitter),
    /// so a `(seed, program)` pair is a complete reproduction recipe.
    pub fn new(seed: u64) -> Self {
        Self::new_with_shards(seed, 1)
    }

    /// Create a simulation whose event queue is split into `shards` shards
    /// (clamped to at least 1). Shard count affects scheduling *throughput*
    /// only: dispatch order is the strict global `(time, seq)` order at any
    /// shard count, so reports are byte-identical across shard counts.
    pub fn new_with_shards(seed: u64, shards: usize) -> Self {
        install_quiet_shutdown_hook();
        let shards = shards.max(1);
        let metrics = suca_obs::Metrics::new();
        metrics.set_meta("seed", seed.to_string());
        let sim = Sim {
            inner: Arc::new(SimInner {
                shards: (0..shards)
                    .map(|_| {
                        Mutex::new(Shard {
                            queue: BinaryHeap::new(),
                            live: HashSet::new(),
                            advertised: None,
                        })
                    })
                    .collect(),
                index: Mutex::new(BinaryHeap::new()),
                control: Mutex::new(ControlState {
                    actors: Vec::new(),
                    tracer: Tracer::new(),
                }),
                now_ns: AtomicU64::new(0),
                seq: AtomicU64::new(0),
                dispatched: AtomicU64::new(0),
                pending: AtomicU64::new(0),
                current_shard: AtomicU32::new(IDLE_SHARD),
                horizon_ns: AtomicU64::new(0),
                batch_pushed_min_ns: AtomicU64::new(u64::MAX),
                running: AtomicBool::new(false),
                seed,
                pollers: RwLock::new(Vec::new()),
                metrics,
                mtrace: suca_obs::trace::MsgTracer::new(),
                timeseries: suca_obs::timeseries::TimeSeries::new(),
                telemetry_started: AtomicBool::new(false),
                prof: suca_obs::prof::EngineProf::new(shards),
                prof_probes: AtomicBool::new(false),
                health: suca_obs::health::HealthEngine::new(),
            }),
        };
        if std::env::var_os("SUCA_SIM_PROF").is_some() {
            sim.set_profiling(true);
        }
        sim
    }

    /// Number of event-queue shards.
    pub fn shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        SimTime::from_ns(self.inner.now_ns.load(Ordering::Relaxed))
    }

    /// The shard new events land on when no explicit hint is given: the
    /// shard currently being drained (so work a handler or actor schedules
    /// stays local), or shard 0 outside a run.
    fn ambient_shard(&self) -> u32 {
        let cur = self.inner.current_shard.load(Ordering::Relaxed);
        if cur == IDLE_SHARD {
            0
        } else {
            cur
        }
    }

    fn resolve_hint(&self, hint: u32) -> u32 {
        hint % self.inner.shards.len() as u32
    }

    /// Schedule `f` to run `delay` after the current instant.
    pub fn schedule_in(
        &self,
        delay: SimDuration,
        f: impl FnOnce(&Sim) + Send + 'static,
    ) -> EventId {
        let time = self.now() + delay;
        self.push_event(self.ambient_shard(), time, EventAction::Call(Box::new(f)))
    }

    /// Schedule `f` at an absolute instant. Panics if `time` is in the past —
    /// a causality violation is always a modeling bug.
    pub fn schedule_at(&self, time: SimTime, f: impl FnOnce(&Sim) + Send + 'static) -> EventId {
        assert!(
            time >= self.now(),
            "cannot schedule event in the past ({time} < {})",
            self.now()
        );
        self.push_event(self.ambient_shard(), time, EventAction::Call(Box::new(f)))
    }

    /// Like [`Sim::schedule_in`] but places the event on the shard named by
    /// `hint` (normally the destination node id; reduced mod shard count).
    /// Placement never changes dispatch order — only batching locality.
    pub fn schedule_in_on(
        &self,
        hint: u32,
        delay: SimDuration,
        f: impl FnOnce(&Sim) + Send + 'static,
    ) -> EventId {
        let time = self.now() + delay;
        self.push_event(
            self.resolve_hint(hint),
            time,
            EventAction::Call(Box::new(f)),
        )
    }

    /// Like [`Sim::schedule_at`] but with an explicit shard hint.
    pub fn schedule_at_on(
        &self,
        hint: u32,
        time: SimTime,
        f: impl FnOnce(&Sim) + Send + 'static,
    ) -> EventId {
        assert!(
            time >= self.now(),
            "cannot schedule event in the past ({time} < {})",
            self.now()
        );
        self.push_event(
            self.resolve_hint(hint),
            time,
            EventAction::Call(Box::new(f)),
        )
    }

    /// Register a reusable poller callback on shard `hint`. Pollers are the
    /// zero-alloc alternative to boxed closures for recurring firmware work
    /// (descriptor-ring drains): registration allocates once, every
    /// [`Sim::schedule_poll_in`] after that is allocation-free.
    pub fn register_poller(&self, hint: u32, f: impl Fn(&Sim) + Send + Sync + 'static) -> PollerId {
        let mut pollers = self
            .inner
            .pollers
            .write()
            .expect("poller registry poisoned");
        let idx = u32::try_from(pollers.len()).expect("poller registry overflow");
        pollers.push(Arc::new(f));
        PollerId {
            idx,
            shard: self.resolve_hint(hint),
        }
    }

    /// Schedule a tick of a registered poller `delay` after the current
    /// instant. No allocation: the event carries only the [`PollerId`].
    pub fn schedule_poll_in(&self, delay: SimDuration, id: PollerId) -> EventId {
        let time = self.now() + delay;
        self.push_event(id.shard, time, EventAction::Poll(id.idx))
    }

    fn push_event(&self, shard_idx: u32, time: SimTime, action: EventAction) -> EventId {
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        // `current_shard` is written only by the scheduler thread, and while
        // a batch on shard `cur` is active the only code that can push is the
        // handler/actor the scheduler is blocked on — so `cur` cannot change
        // under us mid-push.
        let cur = self.inner.current_shard.load(Ordering::Relaxed);
        let own_batch = shard_idx == cur;
        {
            let mut sh = self.inner.shards[shard_idx as usize].lock();
            sh.queue.push(Reverse(EventEntry { time, seq, action }));
            sh.live.insert(seq);
            // Mid-batch pushes onto the drained shard skip the index: the
            // scheduler owns it (`advertised == None`) and re-advertises the
            // true minimum at batch end, so an entry pushed here could only
            // ever be popped as stale.
            if !own_batch {
                let key = (time, seq);
                if sh.advertised.is_none_or(|a| key < a) {
                    sh.advertised = Some(key);
                    self.inner
                        .index
                        .lock()
                        .push(Reverse((time, seq, shard_idx)));
                    if cfg!(feature = "prof") && self.inner.prof.enabled() {
                        self.inner.prof.index_push();
                    }
                }
            }
        }
        self.inner.pending.fetch_add(1, Ordering::Relaxed);
        // A cross-shard push strictly below the active batch horizon bounds
        // the drain window: tighten the pushed-min watermark. A push *at*
        // the horizon time is safe: this seq is fresher than the horizon
        // event's, so it sorts after it.
        let mut dirty = false;
        if !own_batch && time.as_ns() < self.inner.horizon_ns.load(Ordering::Relaxed) {
            self.inner
                .batch_pushed_min_ns
                .fetch_min(time.as_ns(), Ordering::AcqRel);
            dirty = true;
        }
        if cfg!(feature = "prof") && self.inner.prof.enabled() {
            self.inner.prof.push(!own_batch && cur != IDLE_SHARD, dirty);
        }
        EventId {
            time,
            seq,
            shard: shard_idx,
        }
    }

    /// Cancel a pending event. Returns `false` if it already fired or was
    /// already cancelled. Cancelling a wakeup event is safe: generational
    /// parking means a cancelled wake simply never matches.
    pub fn cancel(&self, id: EventId) -> bool {
        let removed = self.inner.shards[id.shard as usize]
            .lock()
            .live
            .remove(&id.seq);
        if removed {
            // The entry stays in the heap as a tombstone and is discarded
            // (without advancing time) when it reaches the front.
            self.inner.pending.fetch_sub(1, Ordering::Relaxed);
        }
        removed
    }

    /// Spawn a thread-backed actor; it starts running at the current instant
    /// (after already-scheduled events at this instant). The actor's events
    /// land on the ambient shard; use [`Sim::spawn_pinned`] to place it.
    pub fn spawn(
        &self,
        name: impl Into<String>,
        body: impl FnOnce(&mut ActorCtx) + Send + 'static,
    ) -> ActorId {
        self.spawn_pinned(self.ambient_shard(), name, body)
    }

    /// Spawn a thread-backed actor whose wakeups are pinned to the shard
    /// named by `hint` (normally the node the process runs on).
    pub fn spawn_pinned(
        &self,
        hint: u32,
        name: impl Into<String>,
        body: impl FnOnce(&mut ActorCtx) + Send + 'static,
    ) -> ActorId {
        let name = name.into();
        let shard = self.resolve_hint(hint);
        let id = ActorId(self.inner.control.lock().actors.len() as u32);
        let (shared, join) = spawn_actor_thread(self.clone(), id, name.clone(), Box::new(body));
        self.inner.control.lock().actors.push(ActorRecord {
            name,
            shared,
            gen: 0,
            status: ActorStatus::Parked,
            join: Some(join),
            shard,
        });
        let now = self.now();
        self.push_event(shard, now, EventAction::Wake(id, 0));
        id
    }

    /// Run until the event queue drains.
    pub fn run(&self) -> RunOutcome {
        self.run_inner(SimTime::MAX)
    }

    /// Run until the event queue drains or the clock would pass `limit`.
    /// On `Pending`, the clock is left at `limit`.
    pub fn run_until(&self, limit: SimTime) -> RunOutcome {
        self.run_inner(limit)
    }

    fn run_inner(&self, limit: SimTime) -> RunOutcome {
        assert!(
            !self.inner.running.swap(true, Ordering::Acquire),
            "Sim::run called reentrantly"
        );
        let _guard = RunningGuard(&self.inner);
        if cfg!(feature = "prof") && self.inner.prof.enabled() {
            crate::alloc::set_counting(true);
            let t0 = std::time::Instant::now();
            let out = self.run_loop(limit, true);
            self.inner.prof.add_run_ns(t0.elapsed().as_nanos() as u64);
            crate::alloc::set_counting(false);
            out
        } else {
            self.run_loop(limit, false)
        }
    }

    /// The scheduler loop. `prof_on` is checked once per phase, not per
    /// event; with the `prof` feature off, `run_inner` only ever passes
    /// `false` so every profiling branch folds away.
    fn run_loop(&self, limit: SimTime, prof_on: bool) -> RunOutcome {
        use std::time::Instant;
        use suca_obs::prof::BatchEnd;
        let prof = &self.inner.prof;
        let timer = |on: bool| if on { Some(Instant::now()) } else { None };
        let el = |t0: Instant| t0.elapsed().as_nanos() as u64;
        loop {
            // Pick phase: find the shard advertising the globally smallest
            // key, skipping stale index entries.
            let pick_t0 = timer(prof_on);
            let picked = loop {
                let top = self.inner.index.lock().pop();
                let Some(Reverse((t, s, sh))) = top else {
                    break None;
                };
                let fresh = self.inner.shards[sh as usize].lock().advertised == Some((t, s));
                if prof_on {
                    prof.pick_pop(!fresh);
                    prof.lock_acq(2);
                }
                if !fresh {
                    continue; // the shard's minimum moved on; a fresher entry exists
                }
                if t > limit {
                    // Leave the entry (and `advertised`) intact for a later run.
                    self.inner.index.lock().push(Reverse((t, s, sh)));
                    if prof_on {
                        prof.index_push();
                        prof.lock_acq(1);
                    }
                    break None;
                }
                break Some(sh);
            };
            let Some(sh) = picked else {
                if let Some(t0) = pick_t0 {
                    prof.add_pick_ns(el(t0));
                }
                return self.finish(limit);
            };
            // Take ownership of the shard: from here until batch end, every
            // index entry naming `sh` is stale.
            self.inner.shards[sh as usize].lock().advertised = None;
            // Horizon: the smallest *fresh* key any other shard advertises.
            // Stale entries (including our own superseded advertisements,
            // which would otherwise wedge the batch at zero progress) are
            // dropped here; the fresh one is pushed back.
            let horizon = loop {
                let top = self.inner.index.lock().pop();
                let Some(Reverse((t, s, xsh))) = top else {
                    break None;
                };
                let fresh =
                    xsh != sh && self.inner.shards[xsh as usize].lock().advertised == Some((t, s));
                if prof_on {
                    prof.horizon_pop(!fresh);
                    prof.lock_acq(2);
                }
                if fresh {
                    self.inner.index.lock().push(Reverse((t, s, xsh)));
                    if prof_on {
                        prof.index_push();
                        prof.lock_acq(1);
                    }
                    break Some((t, s));
                }
            };
            self.inner.current_shard.store(sh, Ordering::Relaxed);
            self.inner
                .batch_pushed_min_ns
                .store(u64::MAX, Ordering::Relaxed);
            self.inner.horizon_ns.store(
                horizon.map_or(u64::MAX, |(t, _)| t.as_ns()),
                Ordering::Relaxed,
            );
            if let Some(t0) = pick_t0 {
                prof.add_pick_ns(el(t0));
            }

            // Batch phase: drain this shard while it holds the global
            // minimum. The shard lock is released around each dispatch so
            // handlers can schedule freely.
            let mut batch_len: u64 = 0;
            let mut pm_seen = false;
            let mut cause = BatchEnd::Empty;
            loop {
                let pop_t0 = timer(prof_on);
                let next = {
                    let mut g = self.inner.shards[sh as usize].lock();
                    loop {
                        let Some(Reverse(e)) = g.queue.peek() else {
                            cause = BatchEnd::Empty;
                            break None;
                        };
                        if e.time > limit {
                            cause = BatchEnd::Limit;
                            break None;
                        }
                        if horizon.is_some_and(|(ht, hs)| (e.time, e.seq) >= (ht, hs)) {
                            cause = BatchEnd::Horizon;
                            break None;
                        }
                        // A cross-shard push below the horizon tightened the
                        // watermark: keep draining strictly below it (those
                        // events still precede the pushed one in global
                        // order), end the batch at or above it.
                        let pm = self.inner.batch_pushed_min_ns.load(Ordering::Acquire);
                        if pm != u64::MAX {
                            pm_seen = true;
                            if e.time.as_ns() >= pm {
                                cause = BatchEnd::Dirty;
                                break None;
                            }
                        }
                        let Reverse(e) = g.queue.pop().expect("peeked");
                        if !g.live.remove(&e.seq) {
                            continue; // cancelled tombstone: discard, no time advance
                        }
                        break Some(e);
                    }
                };
                if prof_on {
                    prof.lock_acq(1);
                    if let Some(t0) = pop_t0 {
                        prof.add_pop_ns(el(t0));
                    }
                }
                let Some(e) = next else { break };
                self.inner.now_ns.store(e.time.as_ns(), Ordering::Relaxed);
                self.inner.dispatched.fetch_add(1, Ordering::Relaxed);
                self.inner.pending.fetch_sub(1, Ordering::Relaxed);
                if trace_dispatch_enabled() {
                    let kind = match &e.action {
                        EventAction::Call(_) => "call".to_string(),
                        EventAction::Wake(id, gen) => format!("wake a{} g{gen}", id.0),
                        EventAction::Poll(idx) => format!("poll p{idx}"),
                    };
                    eprintln!("[dispatch] t={} seq={} {kind}", e.time, e.seq);
                }
                batch_len += 1;
                if prof_on {
                    let kind = match &e.action {
                        EventAction::Call(_) => suca_obs::prof::KIND_CALL,
                        EventAction::Wake(..) => suca_obs::prof::KIND_WAKE,
                        EventAction::Poll(_) => suca_obs::prof::KIND_POLL,
                    };
                    let (a0, b0) = crate::alloc::counts();
                    let t0 = Instant::now();
                    self.dispatch(e);
                    let dt = el(t0);
                    let (a1, b1) = crate::alloc::counts();
                    prof.dispatch(kind, dt, a1.saturating_sub(a0), b1.saturating_sub(b0));
                } else {
                    self.dispatch(e);
                }
            }

            // Batch end: stand down and re-advertise this shard's minimum.
            let end_t0 = timer(prof_on);
            self.inner.horizon_ns.store(0, Ordering::Relaxed);
            self.inner
                .batch_pushed_min_ns
                .store(u64::MAX, Ordering::Relaxed);
            self.inner
                .current_shard
                .store(IDLE_SHARD, Ordering::Relaxed);
            {
                let mut g = self.inner.shards[sh as usize].lock();
                match g.queue.peek() {
                    Some(Reverse(top)) => {
                        let key = (top.time, top.seq);
                        if g.advertised != Some(key) {
                            g.advertised = Some(key);
                            self.inner.index.lock().push(Reverse((key.0, key.1, sh)));
                            if prof_on {
                                prof.index_push();
                            }
                        }
                    }
                    None => g.advertised = None,
                }
            }
            if prof_on {
                prof.lock_acq(2);
                if let Some(t0) = end_t0 {
                    prof.add_batch_end_ns(el(t0));
                }
                prof.batch(
                    sh as usize,
                    batch_len,
                    cause,
                    pm_seen && cause != BatchEnd::Dirty,
                );
            }
        }
    }

    fn finish(&self, limit: SimTime) -> RunOutcome {
        let raw_pending: usize = self.inner.shards.iter().map(|s| s.lock().queue.len()).sum();
        if raw_pending > 0 {
            // Stopped by the time limit with events still queued.
            self.inner.now_ns.store(limit.as_ns(), Ordering::Relaxed);
            return RunOutcome::Pending;
        }
        let stuck: Vec<String> = self
            .inner
            .control
            .lock()
            .actors
            .iter()
            .filter(|a| a.status == ActorStatus::Parked)
            .map(|a| a.name.clone())
            .collect();
        if stuck.is_empty() {
            RunOutcome::Completed
        } else {
            RunOutcome::Deadlock(stuck)
        }
    }

    fn dispatch(&self, e: EventEntry) {
        match e.action {
            EventAction::Call(f) => {
                // Flight recorder: a panicking hardware-model handler dumps
                // the per-message trace rings before the panic propagates.
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(self)));
                if let Err(payload) = r {
                    self.inner.mtrace.dump_once("sim event handler panicked");
                    std::panic::resume_unwind(payload);
                }
            }
            EventAction::Poll(idx) => {
                let f = self.inner.pollers.read().expect("poller registry poisoned")[idx as usize]
                    .clone();
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(self)));
                if let Err(payload) = r {
                    self.inner.mtrace.dump_once("sim poller panicked");
                    std::panic::resume_unwind(payload);
                }
            }
            EventAction::Wake(id, gen) => {
                let shared = {
                    let mut ctl = self.inner.control.lock();
                    let rec = &mut ctl.actors[id.0 as usize];
                    if rec.status == ActorStatus::Parked && rec.gen == gen {
                        rec.status = ActorStatus::Running;
                        Some(rec.shared.clone())
                    } else {
                        None // stale wake: the actor moved on or finished
                    }
                };
                let Some(shared) = shared else { return };
                shared
                    .wake_tx
                    .send(WakeMsg::Run)
                    .expect("actor thread died while parked");
                match shared.yield_rx.recv().expect("actor thread hung up") {
                    YieldMsg::Parked => {} // status already set by mark_parked
                    YieldMsg::Done => {
                        self.inner.control.lock().actors[id.0 as usize].status = ActorStatus::Done;
                    }
                    YieldMsg::Panicked(msg) => {
                        let name = {
                            let mut ctl = self.inner.control.lock();
                            // Mark done so teardown does not try to shut it down.
                            ctl.actors[id.0 as usize].status = ActorStatus::Done;
                            ctl.actors[id.0 as usize].name.clone()
                        };
                        // Actor panics include failed harness assertions:
                        // dump the flight recorder before propagating.
                        self.inner
                            .mtrace
                            .dump_once(&format!("sim actor '{name}' panicked: {msg}"));
                        panic!("sim actor '{name}' panicked: {msg}");
                    }
                }
            }
        }
    }

    // ---- actor support (crate-internal) ------------------------------------

    /// Bump and return the park generation for an upcoming park.
    pub(crate) fn next_park_gen(&self, id: ActorId) -> u64 {
        let mut ctl = self.inner.control.lock();
        let rec = &mut ctl.actors[id.0 as usize];
        rec.gen += 1;
        rec.gen
    }

    /// Schedule a generational wakeup on the actor's pinned shard.
    pub(crate) fn schedule_wake_in(&self, delay: SimDuration, id: ActorId, gen: u64) -> EventId {
        let shard = self.inner.control.lock().actors[id.0 as usize].shard;
        let time = self.now() + delay;
        self.push_event(shard, time, EventAction::Wake(id, gen))
    }

    /// Schedule a generational wakeup at the current instant (signal notify).
    pub(crate) fn schedule_wake_now(&self, id: ActorId, gen: u64) -> EventId {
        self.schedule_wake_in(SimDuration::ZERO, id, gen)
    }

    /// Record that an actor is about to hand the baton back.
    pub(crate) fn mark_parked(&self, id: ActorId) {
        self.inner.control.lock().actors[id.0 as usize].status = ActorStatus::Parked;
    }

    // ---- observability ------------------------------------------------------

    /// Enable/disable span tracing (used by the timeline figures).
    pub fn set_tracing(&self, on: bool) {
        self.inner.control.lock().tracer.set_enabled(on);
    }

    /// Record a named span on a track. No-op while tracing is disabled.
    /// Pass `&'static str` (or interned) names to avoid allocating on the
    /// per-fragment path; `String` still works for dynamic names.
    pub fn trace_span(
        &self,
        track: impl Into<std::borrow::Cow<'static, str>>,
        stage: impl Into<std::borrow::Cow<'static, str>>,
        start: SimTime,
        end: SimTime,
    ) {
        self.inner
            .control
            .lock()
            .tracer
            .span(track, stage, start, end);
    }

    /// Drain all recorded spans (sorted by start time, then insertion).
    pub fn take_spans(&self) -> Vec<Span> {
        self.inner.control.lock().tracer.take()
    }

    /// The per-message causal tracer (always-armed flight recorder). Hot
    /// paths check [`suca_obs::trace::MsgTracer::enabled`] before building
    /// an event.
    pub fn msg_trace(&self) -> &suca_obs::trace::MsgTracer {
        &self.inner.mtrace
    }

    /// Record one per-message trace event.
    pub fn trace_event(&self, ev: suca_obs::trace::TraceEvent) {
        self.inner.mtrace.record(ev);
    }

    /// Snapshot of all buffered per-message trace events, merged across
    /// node rings and sorted by start time.
    pub fn trace_events(&self) -> Vec<suca_obs::trace::TraceEvent> {
        self.inner.mtrace.events()
    }

    /// The metrics registry for this run. Components register typed
    /// counters/gauges/histograms here once at construction time and keep
    /// the handles for lock-cheap hot-path updates.
    pub fn metrics(&self) -> suca_obs::Metrics {
        self.inner.metrics.clone()
    }

    /// Point-in-time copy of every registered instrument; serializes to
    /// JSON via [`suca_obs::MetricsSnapshot::to_json`].
    pub fn metrics_snapshot(&self) -> suca_obs::MetricsSnapshot {
        self.inner.metrics.snapshot()
    }

    /// Increment a named counter (name-based compat path; resolves through
    /// the metrics registry).
    pub fn add_count(&self, name: &str, n: u64) {
        self.inner.metrics.add(name, n);
    }

    /// Read a named counter (0 if never incremented).
    pub fn get_count(&self, name: &str) -> u64 {
        self.inner.metrics.get(name)
    }

    /// Snapshot all counters.
    pub fn counters(&self) -> HashMap<String, u64> {
        self.inner.metrics.counter_values().into_iter().collect()
    }

    /// Derive a deterministic, independent RNG stream for a named component.
    /// Same `(seed, label)` always yields the same stream.
    pub fn fork_rng(&self, label: &str) -> SimRng {
        SimRng::fork(self.inner.seed, label)
    }

    /// The master seed this simulation was created with.
    pub fn seed(&self) -> u64 {
        self.inner.seed
    }

    /// Number of events dispatched so far (observability / runaway-loop
    /// diagnosis).
    pub fn events_dispatched(&self) -> u64 {
        self.inner.dispatched.load(Ordering::Relaxed)
    }

    /// The continuous-telemetry probe registry. Components register named
    /// probes at construction time; the telemetry tick (see
    /// [`Sim::start_telemetry`](crate::telemetry)) samples them on the sim
    /// clock.
    pub fn timeseries(&self) -> &suca_obs::timeseries::TimeSeries {
        &self.inner.timeseries
    }

    /// Number of live (non-cancelled) events still in the queue. O(1): a
    /// counter maintained at push/pop/cancel, read every telemetry tick to
    /// decide whether the sampler reschedules itself.
    pub fn pending_events(&self) -> usize {
        self.inner.pending.load(Ordering::Relaxed) as usize
    }

    /// The online health engine. Unarmed (every hook a no-op) until a
    /// harness calls [`Sim::install_health`]; completion hooks
    /// (`suca-rpc`/`suca-load`) and the telemetry tick feed it.
    pub fn health(&self) -> &suca_obs::health::HealthEngine {
        &self.inner.health
    }

    /// Install a health rule set, arming the engine and registering its
    /// `health.*` instruments. Call once per run, before traffic starts
    /// (the cluster builder does this when a spec carries rules).
    pub fn install_health(&self, rules: Vec<suca_obs::health::HealthRule>) {
        self.inner.health.install(rules, &self.inner.metrics);
    }

    /// Enable/disable the engine self-profiler (also enabled by setting
    /// `SUCA_SIM_PROF` in the environment). While on, the scheduler counts
    /// batches, end causes, index churn and per-kind dispatch cost, and
    /// times its phases (see [`suca_obs::prof`]). The first enable also
    /// registers `sim.prof.*` telemetry probes so profiled runs export
    /// Perfetto counter tracks; unprofiled runs register nothing, keeping
    /// their timeseries JSON byte-identical across shard counts.
    pub fn set_profiling(&self, on: bool) {
        self.inner.prof.set_enabled(on);
        if on && !self.inner.prof_probes.swap(true, Ordering::Relaxed) {
            let ts = &self.inner.timeseries;
            let p = self.inner.prof.clone();
            ts.register(
                "sim.prof.events",
                suca_obs::timeseries::FABRIC_NODE,
                None,
                move |_| p.events(),
            );
            let p = self.inner.prof.clone();
            ts.register(
                "sim.prof.batches",
                suca_obs::timeseries::FABRIC_NODE,
                None,
                move |_| p.batches(),
            );
            let p = self.inner.prof.clone();
            ts.register(
                "sim.prof.index_pushes",
                suca_obs::timeseries::FABRIC_NODE,
                None,
                move |_| p.index_pushes(),
            );
            let p = self.inner.prof.clone();
            ts.register(
                "sim.prof.cross_shard_pushes",
                suca_obs::timeseries::FABRIC_NODE,
                None,
                move |_| p.cross_shard_pushes(),
            );
            let p = self.inner.prof.clone();
            ts.register(
                "sim.prof.stale_pops",
                suca_obs::timeseries::FABRIC_NODE,
                None,
                move |_| p.stale_pops(),
            );
        }
    }

    /// Is the engine self-profiler on?
    pub fn profiling(&self) -> bool {
        self.inner.prof.enabled()
    }

    /// Point-in-time copy of the self-profiler's counters and timers.
    pub fn prof_report(&self) -> suca_obs::prof::ProfReport {
        self.inner.prof.report()
    }

    pub(crate) fn inner(&self) -> &SimInner {
        &self.inner
    }
}

impl Drop for SimInner {
    fn drop(&mut self) {
        // Unwind any still-parked actor threads so tests don't leak threads.
        let mut actors = std::mem::take(&mut self.control.lock().actors);
        for rec in &mut actors {
            if rec.status != ActorStatus::Done {
                // Actor is blocked in wake_rx.recv(); Shutdown makes it
                // unwind via ShutdownToken and exit quietly. If the thread is
                // already gone the send just fails.
                let _ = rec.shared.wake_tx.send(WakeMsg::Shutdown);
            }
            if let Some(join) = rec.join.take() {
                // A finishing actor can hold the last `Sim` clone (it
                // signals the scheduler before its closure unwinds), so
                // this drop may run *on* an actor thread — joining itself
                // would be EDEADLK. Let such a thread detach instead.
                if join.thread().id() != std::thread::current().id() {
                    let _ = join.join();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn events_run_in_time_order_with_fifo_ties() {
        let sim = Sim::new(1);
        let log = Arc::new(Mutex::new(Vec::new()));
        for (i, d) in [(0u32, 30u64), (1, 10), (2, 10), (3, 20)] {
            let log = log.clone();
            sim.schedule_in(SimDuration::from_ns(d), move |_| log.lock().push(i));
        }
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(*log.lock(), vec![1, 2, 3, 0]);
        assert_eq!(sim.now().as_ns(), 30);
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let sim = Sim::new(1);
        let hits = Arc::new(AtomicU64::new(0));
        let h = hits.clone();
        let id = sim.schedule_in(SimDuration::from_us(1), move |_| {
            h.fetch_add(1, Ordering::Relaxed);
        });
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id), "double-cancel reports false");
        sim.run();
        assert_eq!(hits.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn cancel_after_fire_returns_false_and_leaks_nothing() {
        // Regression: cancelling an already-fired event used to return
        // `true` and grow the cancelled set forever (retransmission timers
        // cancel constantly).
        let sim = Sim::new(1);
        let mut ids = Vec::new();
        for _ in 0..100 {
            ids.push(sim.schedule_in(SimDuration::from_us(1), |_| {}));
        }
        assert_eq!(sim.run(), RunOutcome::Completed);
        for id in &ids {
            assert!(!sim.cancel(*id), "cancel of a fired event must be false");
            assert!(!sim.cancel(*id), "and stays false on retry");
        }
        // Nothing is retained for fired or cancelled events: the live set
        // and the queue are both empty, bounded regardless of churn.
        for sh in &sim.inner.shards {
            let g = sh.lock();
            assert!(g.live.is_empty(), "live set must drain");
            assert!(g.queue.is_empty(), "queue must drain");
        }
        assert_eq!(sim.pending_events(), 0);
    }

    #[test]
    fn cancelled_churn_stays_bounded() {
        // Schedule/cancel cycles (a retransmission timer's life) must not
        // accumulate state anywhere.
        let sim = Sim::new(1);
        for round in 0..50u64 {
            let id = sim.schedule_in(SimDuration::from_us(round + 1), |_| {});
            assert!(sim.cancel(id));
            sim.schedule_in(SimDuration::from_us(round + 1), |_| {});
            sim.run();
        }
        for sh in &sim.inner.shards {
            let g = sh.lock();
            assert!(g.live.is_empty());
            assert!(g.queue.is_empty());
        }
        assert_eq!(sim.pending_events(), 0);
    }

    #[test]
    fn panicking_handler_leaves_sim_runnable() {
        // Regression: a panic unwinding through run_inner used to leave
        // `running == true`, so the next run died on the reentrancy assert.
        let sim = Sim::new(1);
        sim.schedule_in(SimDuration::from_us(1), |_| panic!("injected"));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.run()));
        assert!(r.is_err(), "panic must propagate");
        let hits = Arc::new(AtomicU64::new(0));
        let h = hits.clone();
        sim.schedule_in(SimDuration::from_us(1), move |_| {
            h.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(sim.run(), RunOutcome::Completed, "sim must run again");
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn handlers_can_schedule_more_events() {
        let sim = Sim::new(1);
        let hits = Arc::new(AtomicU64::new(0));
        let h = hits.clone();
        sim.schedule_in(SimDuration::from_us(1), move |s| {
            let h2 = h.clone();
            s.schedule_in(SimDuration::from_us(2), move |_| {
                h2.fetch_add(1, Ordering::Relaxed);
            });
        });
        sim.run();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        assert_eq!(sim.now().as_us(), 3.0);
    }

    #[test]
    fn actor_sleep_advances_virtual_time() {
        let sim = Sim::new(1);
        let t = Arc::new(Mutex::new(SimTime::ZERO));
        let t2 = t.clone();
        sim.spawn("sleeper", move |ctx| {
            ctx.sleep(SimDuration::from_us(5));
            ctx.sleep(SimDuration::from_us(7));
            *t2.lock() = ctx.now();
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(t.lock().as_us(), 12.0);
    }

    #[test]
    fn actors_interleave_deterministically() {
        let sim = Sim::new(1);
        let log = Arc::new(Mutex::new(Vec::new()));
        for who in ["a", "b"] {
            let log = log.clone();
            sim.spawn(who, move |ctx| {
                for i in 0..3 {
                    ctx.sleep(SimDuration::from_us(10));
                    log.lock().push(format!("{who}{i}"));
                }
            });
        }
        sim.run();
        // Same sleep times -> FIFO tie-break: 'a' was spawned first.
        assert_eq!(*log.lock(), vec!["a0", "b0", "a1", "b1", "a2", "b2"]);
    }

    #[test]
    fn run_until_reports_pending() {
        let sim = Sim::new(1);
        sim.schedule_in(SimDuration::from_us(100), |_| {});
        let out = sim.run_until(SimTime::from_ns(50_000));
        assert_eq!(out, RunOutcome::Pending);
        assert_eq!(sim.now().as_us(), 50.0);
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(sim.now().as_us(), 100.0);
    }

    #[test]
    #[should_panic(expected = "sim actor 'oops' panicked: boom")]
    fn actor_panics_propagate() {
        let sim = Sim::new(1);
        sim.spawn("oops", |_| panic!("boom"));
        sim.run();
    }

    #[test]
    fn dropping_engine_reclaims_parked_actor_threads() {
        // An actor parked forever must not wedge drop.
        let sim = Sim::new(1);
        let sig = crate::signal::Signal::new(&sim);
        sim.spawn("stuck", move |ctx| {
            sig.wait(ctx); // never notified
        });
        match sim.run() {
            RunOutcome::Deadlock(names) => assert_eq!(names, vec!["stuck".to_string()]),
            other => panic!("expected deadlock, got {other:?}"),
        }
        drop(sim); // must not hang
    }

    #[test]
    fn events_dispatched_counts_and_runs_resume_after_deadlock() {
        let sim = Sim::new(1);
        let sig = crate::signal::Signal::new(&sim);
        let sig2 = sig.clone();
        sim.spawn("blocked", move |ctx| sig2.wait(ctx));
        // First run deadlocks (nothing notifies).
        assert!(matches!(sim.run(), RunOutcome::Deadlock(_)));
        let before = sim.events_dispatched();
        // New work can still be scheduled and a later run un-sticks the
        // actor.
        let sig3 = sig.clone();
        sim.schedule_in(SimDuration::from_us(1), move |_| sig3.notify());
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert!(sim.events_dispatched() > before);
    }

    #[test]
    fn counters_accumulate() {
        let sim = Sim::new(1);
        sim.add_count("traps", 1);
        sim.add_count("traps", 2);
        assert_eq!(sim.get_count("traps"), 3);
        assert_eq!(sim.get_count("absent"), 0);
    }

    #[test]
    fn fork_rng_is_deterministic_per_label() {
        let sim = Sim::new(42);
        let a1: u64 = sim.fork_rng("link0").next_u64();
        let a2: u64 = sim.fork_rng("link0").next_u64();
        let b: u64 = sim.fork_rng("link1").next_u64();
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }

    // ---- sharded-engine tests ----------------------------------------------

    /// Run a messy cross-shard program and return its dispatch log.
    fn shard_torture(shards: usize) -> (Vec<(u64, u32)>, u64) {
        shard_torture_prof(shards, false).0
    }

    /// Like [`shard_torture`] but optionally profiled; also returns the sim
    /// so callers can inspect the profiler report.
    fn shard_torture_prof(shards: usize, prof: bool) -> ((Vec<(u64, u32)>, u64), Sim) {
        let sim = Sim::new_with_shards(9, shards);
        sim.set_profiling(prof);
        let log = Arc::new(Mutex::new(Vec::new()));
        // Chains on every shard that keep rescheduling onto other shards,
        // including zero-delay cross-shard hops and same-instant ties.
        for node in 0..8u32 {
            let log = log.clone();
            sim.schedule_in_on(node, SimDuration::from_ns(u64::from(node % 3)), move |s| {
                chain(s, node, 0, log.clone());
            });
        }
        fn chain(s: &Sim, node: u32, depth: u32, log: Arc<Mutex<Vec<(u64, u32)>>>) {
            log.lock().push((s.now().as_ns(), node));
            if depth >= 6 {
                return;
            }
            let peer = (node + 1) % 8;
            let l2 = log.clone();
            s.schedule_in_on(
                peer,
                SimDuration::from_ns(u64::from(depth % 2)), // 0 or 1 ns hops
                move |s| chain(s, peer, depth + 1, l2),
            );
            if depth.is_multiple_of(3) {
                // A same-shard tie at the current instant.
                let l3 = log.clone();
                s.schedule_in(SimDuration::ZERO, move |s| {
                    l3.lock().push((s.now().as_ns(), 1000 + node));
                });
            }
        }
        assert_eq!(sim.run(), RunOutcome::Completed);
        let l = Arc::try_unwrap(log).unwrap().into_inner();
        let n = sim.events_dispatched();
        ((l, n), sim)
    }

    #[test]
    fn sharded_dispatch_order_matches_single_queue() {
        let (one, n1) = shard_torture(1);
        for shards in [2, 3, 8] {
            let (many, nm) = shard_torture(shards);
            assert_eq!(one, many, "dispatch order diverged at {shards} shards");
            assert_eq!(n1, nm);
        }
    }

    #[test]
    fn pinned_actors_on_shards_interleave_like_single_queue() {
        let run = |shards: usize| {
            let sim = Sim::new_with_shards(3, shards);
            let log = Arc::new(Mutex::new(Vec::new()));
            for (i, who) in ["a", "b", "c", "d"].iter().enumerate() {
                let log = log.clone();
                sim.spawn_pinned(i as u32, *who, move |ctx| {
                    for k in 0..4 {
                        ctx.sleep(SimDuration::from_us(10));
                        log.lock().push(format!("{who}{k}"));
                    }
                });
            }
            assert_eq!(sim.run(), RunOutcome::Completed);
            let l = log.lock().clone();
            l
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn cross_shard_zero_delay_signal_wakes_preserve_order() {
        let run = |shards: usize| {
            let sim = Sim::new_with_shards(5, shards);
            let sig = crate::signal::Signal::new(&sim);
            let log = Arc::new(Mutex::new(Vec::new()));
            for i in 0..4u32 {
                let sig = sig.clone();
                let log = log.clone();
                sim.spawn_pinned(i, format!("w{i}"), move |ctx| {
                    sig.wait(ctx);
                    log.lock().push(i);
                });
            }
            let sig2 = sig.clone();
            sim.schedule_in_on(3, SimDuration::from_us(5), move |_| sig2.notify());
            assert_eq!(sim.run(), RunOutcome::Completed);
            let l = log.lock().clone();
            l
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn cancel_works_across_shards() {
        let sim = Sim::new_with_shards(1, 4);
        let hits = Arc::new(AtomicU64::new(0));
        let h = hits.clone();
        let id = sim.schedule_in_on(2, SimDuration::from_us(1), move |_| {
            h.fetch_add(1, Ordering::Relaxed);
        });
        sim.schedule_in_on(3, SimDuration::from_us(2), |_| {});
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id));
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(hits.load(Ordering::Relaxed), 0);
        assert_eq!(sim.now().as_us(), 2.0);
    }

    #[test]
    fn pollers_fire_in_seq_order_with_zero_alloc_events() {
        let sim = Sim::new_with_shards(1, 2);
        let log = Arc::new(Mutex::new(Vec::new()));
        let l1 = log.clone();
        let p1 = sim.register_poller(0, move |s| l1.lock().push(("p1", s.now().as_ns())));
        let l2 = log.clone();
        let p2 = sim.register_poller(1, move |s| l2.lock().push(("p2", s.now().as_ns())));
        sim.schedule_poll_in(SimDuration::from_ns(10), p2);
        sim.schedule_poll_in(SimDuration::from_ns(10), p1); // tie: p2 first (earlier seq)
        sim.schedule_poll_in(SimDuration::from_ns(5), p1);
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(
            *log.lock(),
            vec![("p1", 5), ("p2", 10), ("p1", 10)],
            "poll ticks follow the global (time, seq) order"
        );
    }

    #[test]
    fn pending_events_counter_tracks_push_pop_cancel() {
        let sim = Sim::new_with_shards(1, 4);
        assert_eq!(sim.pending_events(), 0);
        let a = sim.schedule_in_on(0, SimDuration::from_us(1), |_| {});
        let _b = sim.schedule_in_on(1, SimDuration::from_us(2), |_| {});
        assert_eq!(sim.pending_events(), 2);
        assert!(sim.cancel(a));
        assert_eq!(sim.pending_events(), 1);
        sim.run();
        assert_eq!(sim.pending_events(), 0);
    }

    #[test]
    #[cfg(feature = "prof")]
    fn profiled_run_keeps_order_and_balances_counters() {
        let _arm = crate::alloc::TEST_ARM_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let ((plain, n_plain), _) = shard_torture_prof(8, false);
        let ((profiled, n_prof), sim) = shard_torture_prof(8, true);
        assert_eq!(plain, profiled, "profiling must not change dispatch order");
        assert_eq!(n_plain, n_prof);
        let r = sim.prof_report();
        assert!(r.enabled);
        assert_eq!(r.shards, 8);
        assert_eq!(r.events(), n_prof, "every dispatch attributed to a kind");
        assert_eq!(
            r.per_shard_events.iter().sum::<u64>(),
            n_prof,
            "every dispatch attributed to a shard"
        );
        assert_eq!(
            r.end_horizon + r.end_dirty + r.end_empty + r.end_limit,
            r.batches,
            "every batch has exactly one end cause"
        );
        assert_eq!(r.batch_len.sum, n_prof);
        assert!(r.pushes >= n_prof, "every dispatched event was pushed");
        assert!(r.pick_pops >= r.batches, "each batch needs a pick");
        // The deterministic counter section is byte-stable across reruns.
        let ((_, _), again) = shard_torture_prof(8, true);
        assert_eq!(
            r.counters_json(),
            again.prof_report().counters_json(),
            "profiler counters must follow the (deterministic) schedule"
        );
        // Wall clock: phases were actually timed and attribution is sane.
        assert!(r.run_ns > 0);
        assert!(r.attributed_ns() <= r.run_ns * 2, "timer nesting broken?");
    }

    #[test]
    fn disabled_profiler_counts_nothing() {
        let ((_, n), sim) = shard_torture_prof(4, false);
        assert!(n > 0);
        let r = sim.prof_report();
        assert!(!r.enabled);
        assert_eq!(r.batches, 0);
        assert_eq!(r.events(), 0);
        assert_eq!(r.pushes, 0);
        assert_eq!(r.run_ns, 0);
    }

    #[test]
    fn panic_mid_batch_re_advertises_the_owned_shard() {
        // Regression for the mid-batch ownership hole: the scheduler takes a
        // shard (`advertised = None`) and own-shard pushes skip the index,
        // so a panic unwinding mid-batch must re-advertise the shard's
        // remaining minimum or those events stay invisible forever.
        let sim = Sim::new_with_shards(1, 4);
        let hits = Arc::new(AtomicU64::new(0));
        let h = hits.clone();
        sim.schedule_in_on(1, SimDuration::from_us(1), |s| {
            // Mid-batch own-shard push (skips the index), then panic.
            s.schedule_in(SimDuration::from_us(1), |_| {
                panic!("should be cancelled-free")
            });
            panic!("injected");
        });
        sim.schedule_in_on(1, SimDuration::from_us(5), move |_| {
            h.fetch_add(1, Ordering::Relaxed);
        });
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.run()));
        assert!(r.is_err(), "panic must propagate");
        // Cancel the re-scheduled panic bomb, then the survivor must fire.
        // (Its EventId is unknown here; drain it by letting it panic again.)
        let r2 = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.run()));
        assert!(r2.is_err(), "own-shard push must also be re-advertised");
        assert_eq!(sim.run(), RunOutcome::Completed, "shard must stay visible");
        assert_eq!(hits.load(Ordering::Relaxed), 1, "survivor event must fire");
    }

    #[test]
    fn cross_shard_push_at_watermark_ends_batch_conservatively() {
        // A handler pushes cross-shard at time T and then own-shard at the
        // same T: the own-shard event carries the larger seq and must
        // dispatch *after* the cross-shard one. The watermark drain must not
        // keep draining at T.
        let run = |shards: usize| {
            let sim = Sim::new_with_shards(2, shards);
            let log = Arc::new(Mutex::new(Vec::new()));
            for node in 0..4u32 {
                let log = log.clone();
                sim.schedule_in_on(node, SimDuration::from_ns(10), move |s| {
                    let peer = (node + 1) % 4;
                    let l1 = log.clone();
                    // Cross-shard push at now+5…
                    s.schedule_in_on(peer, SimDuration::from_ns(5), move |s| {
                        l1.lock().push((s.now().as_ns(), peer, "x"));
                    });
                    // …then own-shard at the same instant (larger seq).
                    let l2 = log.clone();
                    s.schedule_in(SimDuration::from_ns(5), move |s| {
                        l2.lock().push((s.now().as_ns(), node, "o"));
                    });
                });
            }
            assert_eq!(sim.run(), RunOutcome::Completed);
            let l = log.lock().clone();
            l
        };
        let single = run(1);
        for shards in [2, 4] {
            assert_eq!(single, run(shards), "order diverged at {shards} shards");
        }
    }
}
