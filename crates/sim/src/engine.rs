//! The discrete-event scheduler.
//!
//! A classic calendar-queue engine: events are `(time, seq)`-ordered, ties
//! broken by insertion order, so runs are bit-for-bit reproducible. Two kinds
//! of events exist: boxed closures (used by hardware models — NIC firmware,
//! DMA engines, switches) and actor wakeups (used by thread-backed
//! application processes, see [`crate::actor`]).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::actor::{
    install_quiet_shutdown_hook, spawn_actor_thread, ActorCtx, ActorId, ActorRecord, ActorStatus,
    WakeMsg, YieldMsg,
};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::{Span, Tracer};

/// Identifies a scheduled event; returned by the `schedule_*` methods and
/// accepted by [`Sim::cancel`] (used for e.g. retransmission timers).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

enum EventAction {
    Call(Box<dyn FnOnce(&Sim) + Send + 'static>),
    Wake(ActorId, u64),
}

struct EventEntry {
    time: SimTime,
    seq: u64,
    action: EventAction,
}

impl PartialEq for EventEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for EventEntry {}
impl PartialOrd for EventEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EventEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Why [`Sim::run`] (or [`Sim::run_until`]) returned.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RunOutcome {
    /// Event queue drained and every actor finished.
    Completed,
    /// Event queue drained but some actors are still parked waiting for a
    /// signal that can never fire. The names of the stuck actors are listed —
    /// this is how protocol-level deadlocks surface in tests.
    Deadlock(Vec<String>),
    /// `run_until` reached its time limit with work still pending.
    Pending,
}

struct EngineState {
    now: SimTime,
    seq: u64,
    dispatched: u64,
    queue: BinaryHeap<Reverse<EventEntry>>,
    cancelled: HashSet<u64>,
    actors: Vec<ActorRecord>,
    tracer: Tracer,
    seed: u64,
    running: bool,
}

pub(crate) struct SimInner {
    state: Mutex<EngineState>,
    /// Metrics registry lives *outside* the engine mutex: bumping a counter
    /// from inside an event handler must not touch the scheduler lock.
    metrics: suca_obs::Metrics,
    /// Per-message causal tracer / flight recorder. Also outside the engine
    /// mutex so protocol code can record events from anywhere.
    mtrace: suca_obs::trace::MsgTracer,
    /// Continuous-telemetry probe registry (sim-clock sampled rings). Also
    /// outside the engine mutex: probes are registered at construction time
    /// and sampled only from the telemetry tick.
    timeseries: suca_obs::timeseries::TimeSeries,
    /// Guard so `start_telemetry` arms exactly one sampler per run.
    pub(crate) telemetry_started: std::sync::atomic::AtomicBool,
}

/// Handle to one simulation. Cheap to clone; all clones refer to the same
/// engine. Hardware components keep a `Sim` to schedule their own events.
#[derive(Clone)]
pub struct Sim {
    inner: Arc<SimInner>,
}

impl Sim {
    /// Create a simulation with the given master RNG seed. The seed fixes
    /// every random decision in the run (fault injection, jitter), so a
    /// `(seed, program)` pair is a complete reproduction recipe.
    pub fn new(seed: u64) -> Self {
        install_quiet_shutdown_hook();
        let metrics = suca_obs::Metrics::new();
        metrics.set_meta("seed", seed.to_string());
        Sim {
            inner: Arc::new(SimInner {
                state: Mutex::new(EngineState {
                    now: SimTime::ZERO,
                    seq: 0,
                    dispatched: 0,
                    queue: BinaryHeap::new(),
                    cancelled: HashSet::new(),
                    actors: Vec::new(),
                    tracer: Tracer::new(),
                    seed,
                    running: false,
                }),
                metrics,
                mtrace: suca_obs::trace::MsgTracer::new(),
                timeseries: suca_obs::timeseries::TimeSeries::new(),
                telemetry_started: std::sync::atomic::AtomicBool::new(false),
            }),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.state.lock().now
    }

    /// Schedule `f` to run `delay` after the current instant.
    pub fn schedule_in(
        &self,
        delay: SimDuration,
        f: impl FnOnce(&Sim) + Send + 'static,
    ) -> EventId {
        let mut st = self.inner.state.lock();
        let time = st.now + delay;
        Self::push_event(&mut st, time, EventAction::Call(Box::new(f)))
    }

    /// Schedule `f` at an absolute instant. Panics if `time` is in the past —
    /// a causality violation is always a modeling bug.
    pub fn schedule_at(&self, time: SimTime, f: impl FnOnce(&Sim) + Send + 'static) -> EventId {
        let mut st = self.inner.state.lock();
        assert!(
            time >= st.now,
            "cannot schedule event in the past ({time} < {})",
            st.now
        );
        Self::push_event(&mut st, time, EventAction::Call(Box::new(f)))
    }

    fn push_event(st: &mut EngineState, time: SimTime, action: EventAction) -> EventId {
        let seq = st.seq;
        st.seq += 1;
        st.queue.push(Reverse(EventEntry { time, seq, action }));
        EventId(seq)
    }

    /// Cancel a pending event. Returns `false` if it already fired or was
    /// already cancelled. Cancelling a wakeup event is safe: generational
    /// parking means a cancelled wake simply never matches.
    pub fn cancel(&self, id: EventId) -> bool {
        let mut st = self.inner.state.lock();
        if st.seq <= id.0 {
            return false;
        }
        st.cancelled.insert(id.0)
    }

    /// Spawn a thread-backed actor; it starts running at the current instant
    /// (after already-scheduled events at this instant).
    pub fn spawn(
        &self,
        name: impl Into<String>,
        body: impl FnOnce(&mut ActorCtx) + Send + 'static,
    ) -> ActorId {
        let name = name.into();
        let id = ActorId(self.inner.state.lock().actors.len() as u32);
        let (shared, join) = spawn_actor_thread(self.clone(), id, name.clone(), Box::new(body));
        let mut st = self.inner.state.lock();
        st.actors.push(ActorRecord {
            name,
            shared,
            gen: 0,
            status: ActorStatus::Parked,
            join: Some(join),
        });
        let now = st.now;
        Self::push_event(&mut st, now, EventAction::Wake(id, 0));
        id
    }

    /// Run until the event queue drains.
    pub fn run(&self) -> RunOutcome {
        self.run_inner(SimTime::MAX)
    }

    /// Run until the event queue drains or the clock would pass `limit`.
    /// On `Pending`, the clock is left at `limit`.
    pub fn run_until(&self, limit: SimTime) -> RunOutcome {
        self.run_inner(limit)
    }

    fn run_inner(&self, limit: SimTime) -> RunOutcome {
        {
            let mut st = self.inner.state.lock();
            assert!(!st.running, "Sim::run called reentrantly");
            st.running = true;
        }
        let outcome = loop {
            let next = {
                let mut st = self.inner.state.lock();
                loop {
                    match st.queue.peek() {
                        None => break None,
                        Some(Reverse(e)) if e.time > limit => break None,
                        Some(Reverse(e)) => {
                            let seq = e.seq;
                            if st.cancelled.remove(&seq) {
                                st.queue.pop();
                                continue;
                            }
                            let Reverse(e) = st.queue.pop().expect("peeked");
                            st.now = e.time;
                            st.dispatched += 1;
                            break Some(e);
                        }
                    }
                }
            };
            match next {
                None => break self.finish(limit),
                Some(e) => {
                    if std::env::var_os("SUCA_SIM_TRACE_DISPATCH").is_some() {
                        let kind = match &e.action {
                            EventAction::Call(_) => "call".to_string(),
                            EventAction::Wake(id, gen) => format!("wake a{} g{gen}", id.0),
                        };
                        eprintln!("[dispatch] t={} seq={} {kind}", e.time, e.seq);
                    }
                    self.dispatch(e)
                }
            }
        };
        self.inner.state.lock().running = false;
        outcome
    }

    fn finish(&self, limit: SimTime) -> RunOutcome {
        let mut st = self.inner.state.lock();
        if !st.queue.is_empty() {
            // Stopped by the time limit with events still pending.
            st.now = limit;
            return RunOutcome::Pending;
        }
        let stuck: Vec<String> = st
            .actors
            .iter()
            .filter(|a| a.status == ActorStatus::Parked)
            .map(|a| a.name.clone())
            .collect();
        if stuck.is_empty() {
            RunOutcome::Completed
        } else {
            RunOutcome::Deadlock(stuck)
        }
    }

    fn dispatch(&self, e: EventEntry) {
        match e.action {
            EventAction::Call(f) => {
                // Flight recorder: a panicking hardware-model handler dumps
                // the per-message trace rings before the panic propagates.
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(self)));
                if let Err(payload) = r {
                    self.inner.mtrace.dump_once("sim event handler panicked");
                    std::panic::resume_unwind(payload);
                }
            }
            EventAction::Wake(id, gen) => {
                let shared = {
                    let mut st = self.inner.state.lock();
                    let rec = &mut st.actors[id.0 as usize];
                    if rec.status == ActorStatus::Parked && rec.gen == gen {
                        rec.status = ActorStatus::Running;
                        Some(rec.shared.clone())
                    } else {
                        None // stale wake: the actor moved on or finished
                    }
                };
                let Some(shared) = shared else { return };
                shared
                    .wake_tx
                    .send(WakeMsg::Run)
                    .expect("actor thread died while parked");
                match shared.yield_rx.recv().expect("actor thread hung up") {
                    YieldMsg::Parked => {} // status already set by mark_parked
                    YieldMsg::Done => {
                        self.inner.state.lock().actors[id.0 as usize].status = ActorStatus::Done;
                    }
                    YieldMsg::Panicked(msg) => {
                        let name = {
                            let st = self.inner.state.lock();
                            st.actors[id.0 as usize].name.clone()
                        };
                        // Mark done so teardown does not try to shut it down.
                        self.inner.state.lock().actors[id.0 as usize].status = ActorStatus::Done;
                        // Actor panics include failed harness assertions:
                        // dump the flight recorder before propagating.
                        self.inner
                            .mtrace
                            .dump_once(&format!("sim actor '{name}' panicked: {msg}"));
                        panic!("sim actor '{name}' panicked: {msg}");
                    }
                }
            }
        }
    }

    // ---- actor support (crate-internal) ------------------------------------

    /// Bump and return the park generation for an upcoming park.
    pub(crate) fn next_park_gen(&self, id: ActorId) -> u64 {
        let mut st = self.inner.state.lock();
        let rec = &mut st.actors[id.0 as usize];
        rec.gen += 1;
        rec.gen
    }

    /// Schedule a generational wakeup.
    pub(crate) fn schedule_wake_in(&self, delay: SimDuration, id: ActorId, gen: u64) -> EventId {
        let mut st = self.inner.state.lock();
        let time = st.now + delay;
        Self::push_event(&mut st, time, EventAction::Wake(id, gen))
    }

    /// Schedule a generational wakeup at the current instant (signal notify).
    pub(crate) fn schedule_wake_now(&self, id: ActorId, gen: u64) -> EventId {
        self.schedule_wake_in(SimDuration::ZERO, id, gen)
    }

    /// Record that an actor is about to hand the baton back.
    pub(crate) fn mark_parked(&self, id: ActorId) {
        let mut st = self.inner.state.lock();
        st.actors[id.0 as usize].status = ActorStatus::Parked;
    }

    // ---- observability ------------------------------------------------------

    /// Enable/disable span tracing (used by the timeline figures).
    pub fn set_tracing(&self, on: bool) {
        self.inner.state.lock().tracer.set_enabled(on);
    }

    /// Record a named span on a track. No-op while tracing is disabled.
    /// Pass `&'static str` (or interned) names to avoid allocating on the
    /// per-fragment path; `String` still works for dynamic names.
    pub fn trace_span(
        &self,
        track: impl Into<std::borrow::Cow<'static, str>>,
        stage: impl Into<std::borrow::Cow<'static, str>>,
        start: SimTime,
        end: SimTime,
    ) {
        self.inner
            .state
            .lock()
            .tracer
            .span(track, stage, start, end);
    }

    /// Drain all recorded spans (sorted by start time, then insertion).
    pub fn take_spans(&self) -> Vec<Span> {
        self.inner.state.lock().tracer.take()
    }

    /// The per-message causal tracer (always-armed flight recorder). Hot
    /// paths check [`suca_obs::trace::MsgTracer::enabled`] before building
    /// an event.
    pub fn msg_trace(&self) -> &suca_obs::trace::MsgTracer {
        &self.inner.mtrace
    }

    /// Record one per-message trace event.
    pub fn trace_event(&self, ev: suca_obs::trace::TraceEvent) {
        self.inner.mtrace.record(ev);
    }

    /// Snapshot of all buffered per-message trace events, merged across
    /// node rings and sorted by start time.
    pub fn trace_events(&self) -> Vec<suca_obs::trace::TraceEvent> {
        self.inner.mtrace.events()
    }

    /// The metrics registry for this run. Components register typed
    /// counters/gauges/histograms here once at construction time and keep
    /// the handles for lock-cheap hot-path updates.
    pub fn metrics(&self) -> suca_obs::Metrics {
        self.inner.metrics.clone()
    }

    /// Point-in-time copy of every registered instrument; serializes to
    /// JSON via [`suca_obs::MetricsSnapshot::to_json`].
    pub fn metrics_snapshot(&self) -> suca_obs::MetricsSnapshot {
        self.inner.metrics.snapshot()
    }

    /// Increment a named counter (name-based compat path; resolves through
    /// the metrics registry).
    pub fn add_count(&self, name: &str, n: u64) {
        self.inner.metrics.add(name, n);
    }

    /// Read a named counter (0 if never incremented).
    pub fn get_count(&self, name: &str) -> u64 {
        self.inner.metrics.get(name)
    }

    /// Snapshot all counters.
    pub fn counters(&self) -> HashMap<String, u64> {
        self.inner.metrics.counter_values().into_iter().collect()
    }

    /// Derive a deterministic, independent RNG stream for a named component.
    /// Same `(seed, label)` always yields the same stream.
    pub fn fork_rng(&self, label: &str) -> SimRng {
        let seed = self.inner.state.lock().seed;
        SimRng::fork(seed, label)
    }

    /// The master seed this simulation was created with.
    pub fn seed(&self) -> u64 {
        self.inner.state.lock().seed
    }

    /// Number of events dispatched so far (observability / runaway-loop
    /// diagnosis).
    pub fn events_dispatched(&self) -> u64 {
        self.inner.state.lock().dispatched
    }

    /// The continuous-telemetry probe registry. Components register named
    /// probes at construction time; the telemetry tick (see
    /// [`Sim::start_telemetry`](crate::telemetry)) samples them on the sim
    /// clock.
    pub fn timeseries(&self) -> &suca_obs::timeseries::TimeSeries {
        &self.inner.timeseries
    }

    /// Number of live (non-cancelled) events still in the queue. Used by the
    /// telemetry sampler to decide whether to reschedule itself: when the
    /// tick is the only thing left, the run is over and the sampler stops.
    pub fn pending_events(&self) -> usize {
        let st = self.inner.state.lock();
        st.queue
            .iter()
            .filter(|Reverse(e)| !st.cancelled.contains(&e.seq))
            .count()
    }

    pub(crate) fn inner(&self) -> &SimInner {
        &self.inner
    }
}

impl Drop for SimInner {
    fn drop(&mut self) {
        // Unwind any still-parked actor threads so tests don't leak threads.
        let mut actors = std::mem::take(&mut self.state.lock().actors);
        for rec in &mut actors {
            if rec.status != ActorStatus::Done {
                // Actor is blocked in wake_rx.recv(); Shutdown makes it
                // unwind via ShutdownToken and exit quietly. If the thread is
                // already gone the send just fails.
                let _ = rec.shared.wake_tx.send(WakeMsg::Shutdown);
            }
            if let Some(join) = rec.join.take() {
                // A finishing actor can hold the last `Sim` clone (it
                // signals the scheduler before its closure unwinds), so
                // this drop may run *on* an actor thread — joining itself
                // would be EDEADLK. Let such a thread detach instead.
                if join.thread().id() != std::thread::current().id() {
                    let _ = join.join();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn events_run_in_time_order_with_fifo_ties() {
        let sim = Sim::new(1);
        let log = Arc::new(Mutex::new(Vec::new()));
        for (i, d) in [(0u32, 30u64), (1, 10), (2, 10), (3, 20)] {
            let log = log.clone();
            sim.schedule_in(SimDuration::from_ns(d), move |_| log.lock().push(i));
        }
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(*log.lock(), vec![1, 2, 3, 0]);
        assert_eq!(sim.now().as_ns(), 30);
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let sim = Sim::new(1);
        let hits = Arc::new(AtomicU64::new(0));
        let h = hits.clone();
        let id = sim.schedule_in(SimDuration::from_us(1), move |_| {
            h.fetch_add(1, Ordering::Relaxed);
        });
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id), "double-cancel reports false");
        sim.run();
        assert_eq!(hits.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn handlers_can_schedule_more_events() {
        let sim = Sim::new(1);
        let hits = Arc::new(AtomicU64::new(0));
        let h = hits.clone();
        sim.schedule_in(SimDuration::from_us(1), move |s| {
            let h2 = h.clone();
            s.schedule_in(SimDuration::from_us(2), move |_| {
                h2.fetch_add(1, Ordering::Relaxed);
            });
        });
        sim.run();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        assert_eq!(sim.now().as_us(), 3.0);
    }

    #[test]
    fn actor_sleep_advances_virtual_time() {
        let sim = Sim::new(1);
        let t = Arc::new(Mutex::new(SimTime::ZERO));
        let t2 = t.clone();
        sim.spawn("sleeper", move |ctx| {
            ctx.sleep(SimDuration::from_us(5));
            ctx.sleep(SimDuration::from_us(7));
            *t2.lock() = ctx.now();
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(t.lock().as_us(), 12.0);
    }

    #[test]
    fn actors_interleave_deterministically() {
        let sim = Sim::new(1);
        let log = Arc::new(Mutex::new(Vec::new()));
        for who in ["a", "b"] {
            let log = log.clone();
            sim.spawn(who, move |ctx| {
                for i in 0..3 {
                    ctx.sleep(SimDuration::from_us(10));
                    log.lock().push(format!("{who}{i}"));
                }
            });
        }
        sim.run();
        // Same sleep times -> FIFO tie-break: 'a' was spawned first.
        assert_eq!(*log.lock(), vec!["a0", "b0", "a1", "b1", "a2", "b2"]);
    }

    #[test]
    fn run_until_reports_pending() {
        let sim = Sim::new(1);
        sim.schedule_in(SimDuration::from_us(100), |_| {});
        let out = sim.run_until(SimTime::from_ns(50_000));
        assert_eq!(out, RunOutcome::Pending);
        assert_eq!(sim.now().as_us(), 50.0);
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(sim.now().as_us(), 100.0);
    }

    #[test]
    #[should_panic(expected = "sim actor 'oops' panicked: boom")]
    fn actor_panics_propagate() {
        let sim = Sim::new(1);
        sim.spawn("oops", |_| panic!("boom"));
        sim.run();
    }

    #[test]
    fn dropping_engine_reclaims_parked_actor_threads() {
        // An actor parked forever must not wedge drop.
        let sim = Sim::new(1);
        let sig = crate::signal::Signal::new(&sim);
        sim.spawn("stuck", move |ctx| {
            sig.wait(ctx); // never notified
        });
        match sim.run() {
            RunOutcome::Deadlock(names) => assert_eq!(names, vec!["stuck".to_string()]),
            other => panic!("expected deadlock, got {other:?}"),
        }
        drop(sim); // must not hang
    }

    #[test]
    fn events_dispatched_counts_and_runs_resume_after_deadlock() {
        let sim = Sim::new(1);
        let sig = crate::signal::Signal::new(&sim);
        let sig2 = sig.clone();
        sim.spawn("blocked", move |ctx| sig2.wait(ctx));
        // First run deadlocks (nothing notifies).
        assert!(matches!(sim.run(), RunOutcome::Deadlock(_)));
        let before = sim.events_dispatched();
        // New work can still be scheduled and a later run un-sticks the
        // actor.
        let sig3 = sig.clone();
        sim.schedule_in(SimDuration::from_us(1), move |_| sig3.notify());
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert!(sim.events_dispatched() > before);
    }

    #[test]
    fn counters_accumulate() {
        let sim = Sim::new(1);
        sim.add_count("traps", 1);
        sim.add_count("traps", 2);
        assert_eq!(sim.get_count("traps"), 3);
        assert_eq!(sim.get_count("absent"), 0);
    }

    #[test]
    fn fork_rng_is_deterministic_per_label() {
        let sim = Sim::new(42);
        let a1: u64 = sim.fork_rng("link0").next_u64();
        let a2: u64 = sim.fork_rng("link0").next_u64();
        let b: u64 = sim.fork_rng("link1").next_u64();
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }
}
