//! Counters and sample summaries used by the experiment harnesses.

use std::collections::HashMap;

/// Named monotonic counters (traps, interrupts, retransmissions, …).
/// Table 1 of the paper is generated from these.
#[derive(Default)]
pub struct Counters {
    map: HashMap<String, u64>,
}

impl Counters {
    /// Empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &str, n: u64) {
        *self.map.entry(name.to_string()).or_insert(0) += n;
    }

    /// Current value (0 if never written).
    pub fn get(&self, name: &str) -> u64 {
        self.map.get(name).copied().unwrap_or(0)
    }

    /// Copy of the whole map.
    pub fn snapshot(&self) -> HashMap<String, u64> {
        self.map.clone()
    }
}

/// A collection of f64 samples with summary statistics. Used for latency
/// distributions in the sweep harnesses.
#[derive(Default, Clone, Debug)]
pub struct Samples {
    values: Vec<f64>,
}

impl Samples {
    /// Empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn push(&mut self, v: f64) {
        self.values.push(v);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no samples recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean; 0 for an empty set.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Smallest sample; 0 for an empty set.
    pub fn min(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest sample; 0 for an empty set.
    pub fn max(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// p-th percentile (0..=100) by nearest-rank; 0 for an empty set.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    /// All raw values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_basic() {
        let mut c = Counters::new();
        c.add("traps", 2);
        c.add("traps", 3);
        assert_eq!(c.get("traps"), 5);
        assert_eq!(c.get("other"), 0);
        assert_eq!(c.snapshot()["traps"], 5);
    }

    #[test]
    fn samples_summary() {
        let mut s = Samples::new();
        for v in [3.0, 1.0, 2.0, 4.0] {
            s.push(v);
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 4.0);
        assert_eq!(s.percentile(50.0), 3.0); // nearest-rank of 1.5 -> idx 2
    }

    #[test]
    fn empty_samples_are_zero() {
        let s = Samples::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.percentile(50.0), 0.0);
    }
}
