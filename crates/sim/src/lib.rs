//! # suca-sim — deterministic discrete-event engine
//!
//! Foundation of the Semi-User-Level Communication Architecture
//! reproduction (Meng et al., IPPS 2002). Every hardware model (PCI bus,
//! Myrinet NIC/switch, DMA engine) and every OS cost (trap, interrupt) is
//! simulated on a virtual nanosecond clock driven by this engine, so the
//! paper's microsecond-scale timelines can be regenerated exactly and
//! reproducibly.
//!
//! Two execution styles coexist:
//!
//! * **Event handlers** — hardware components are state machines that
//!   schedule boxed closures ([`Sim::schedule_in`]).
//! * **Thread-backed actors** — application processes (the code calling the
//!   BCL/MPI APIs) run on real OS threads written as ordinary blocking Rust
//!   ([`Sim::spawn`], [`ActorCtx`]). A baton handshake guarantees exactly one
//!   party runs at a time, so execution stays deterministic.
//!
//! ```
//! use suca_sim::{Sim, SimDuration, Signal, RunOutcome};
//!
//! let sim = Sim::new(42);
//! let sig = Signal::new(&sim);
//! let sig2 = sig.clone();
//! sim.spawn("consumer", move |ctx| {
//!     sig2.wait(ctx);                      // blocks until notified
//!     assert_eq!(ctx.now().as_us(), 3.0);
//! });
//! sim.schedule_in(SimDuration::from_us(3), move |_| sig.notify());
//! assert_eq!(sim.run(), RunOutcome::Completed);
//! ```

#![warn(missing_docs)]

pub mod alloc;

mod actor;
mod engine;
mod rng;
mod signal;
mod stats;
mod telemetry;
mod time;
mod trace;

pub use actor::{ActorCtx, ActorId};
pub use engine::{EventId, PollerId, RunOutcome, Sim};
pub use rng::SimRng;
pub use signal::{Semaphore, Signal};
pub use stats::{Counters, Samples};
pub use telemetry::TelemetryConfig;
pub use time::{SimDuration, SimTime};
pub use trace::{render_gantt, render_timeline, Span};

// Re-export the observability layer so components taking a `Sim` handle can
// hold typed instrument handles without a separate suca-obs dependency.
pub use suca_obs::{Counter, Gauge, Histogram, Metrics, MetricsSnapshot};

// Per-message causal tracing (see `suca_obs::trace`): the event model, the
// flight-recorder ring, and the string interner components use for
// allocation-free track names.
pub use suca_obs::intern;
pub use suca_obs::trace as mtrace;
pub use suca_obs::trace::{MsgTracer, SampleSpec, TraceEvent, TraceId, TraceLayer, TracePhase};

// Continuous telemetry (probe rings), per-message critical-path analysis,
// and the stall watchdog (see the matching suca-obs modules).
pub use suca_obs::critpath;
pub use suca_obs::timeseries;
pub use suca_obs::timeseries::{TimeSeries, TimeSeriesSnapshot, FABRIC_NODE};
pub use suca_obs::watchdog::{Stall, Watchdog, WatchdogConfig};

// Online health engine (see `suca_obs::health`): streaming SLO windows,
// burn-rate/saturation/rate rules, and the alert lifecycle driven from the
// telemetry tick ([`Sim::install_health`] / [`Sim::health`]).
pub use suca_obs::health;
pub use suca_obs::health::{
    AlertRecord, AlertReport, DetectionSpec, HealthEngine, HealthRule, RuleKind,
};

// Engine self-profiler (see `suca_obs::prof`): the scheduler bumps these
// counters/timers when profiling is on ([`Sim::set_profiling`]).
pub use suca_obs::prof;
pub use suca_obs::prof::{EngineProf, ProfReport};
