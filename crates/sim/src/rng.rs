//! Deterministic random streams.
//!
//! Every stochastic decision in the simulator (packet drops, bit corruption,
//! jitter) draws from a [`SimRng`] forked from the master seed plus a stable
//! component label, so independent components get independent streams and a
//! run is reproducible from `(seed, program)` alone. The fork function is a
//! hand-rolled FNV-1a/splitmix64 combination rather than `DefaultHasher`
//! because the latter's output is not guaranteed stable across Rust releases.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// FNV-1a over a byte string; stable across platforms and Rust versions.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One round of splitmix64; good avalanche for seed derivation.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded RNG stream for one simulation component.
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Derive a stream from `(master_seed, label)`.
    pub fn fork(master_seed: u64, label: &str) -> Self {
        let mut state = splitmix64(master_seed ^ fnv1a(label.as_bytes()));
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_mut(8) {
            state = splitmix64(state);
            chunk.copy_from_slice(&state.to_le_bytes());
        }
        SimRng {
            inner: StdRng::from_seed(seed),
        }
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        RngCore::next_u64(&mut self.inner)
    }

    /// Uniform in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.inner.gen_range(0..n)
    }

    /// Uniform in `[lo, hi)`. Panics if the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.inner.gen_bool(p)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.r#gen::<f64>()
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_label_same_stream() {
        let mut a = SimRng::fork(7, "nic0");
        let mut b = SimRng::fork(7, "nic0");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_diverge() {
        let mut a = SimRng::fork(7, "nic0");
        let mut b = SimRng::fork(7, "nic1");
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::fork(7, "nic0");
        let mut b = SimRng::fork(8, "nic0");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::fork(1, "x");
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn below_is_in_range() {
        let mut r = SimRng::fork(1, "y");
        for _ in 0..100 {
            assert!(r.below(10) < 10);
            let v = r.range(5, 8);
            assert!((5..8).contains(&v));
        }
    }
}
