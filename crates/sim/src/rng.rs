//! Deterministic random streams.
//!
//! Every stochastic decision in the simulator (packet drops, bit corruption,
//! jitter) draws from a [`SimRng`] forked from the master seed plus a stable
//! component label, so independent components get independent streams and a
//! run is reproducible from `(seed, program)` alone. The fork function is a
//! hand-rolled FNV-1a/splitmix64 combination rather than `DefaultHasher`
//! because the latter's output is not guaranteed stable across Rust releases.
//!
//! The generator itself is xoshiro256++ (public-domain algorithm by Blackman
//! and Vigna), implemented locally so the simulator has no dependency on the
//! `rand` crate — the build environment cannot fetch external crates, and a
//! self-contained generator also guarantees stream stability across
//! dependency upgrades forever.

/// FNV-1a over a byte string; stable across platforms and Rust versions.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One round of splitmix64; good avalanche for seed derivation.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded RNG stream for one simulation component (xoshiro256++ core).
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Derive a stream from `(master_seed, label)`.
    pub fn fork(master_seed: u64, label: &str) -> Self {
        let mut state = splitmix64(master_seed ^ fnv1a(label.as_bytes()));
        let mut s = [0u64; 4];
        for w in &mut s {
            state = splitmix64(state);
            *w = state;
        }
        // xoshiro's all-zero state is a fixed point; splitmix64 cannot
        // produce four zero words from any input, but belt-and-braces:
        if s == [0, 0, 0, 0] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        SimRng { s }
    }

    /// Uniform `u64` (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }

    /// Uniform `u32`.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with uniform bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Uniform in `[0, n)`, unbiased (rejection sampling). Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "SimRng::below(0)");
        if n == 1 {
            return 0;
        }
        // Reject the biased tail of the 2^64 space.
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let x = self.next_u64();
            if x <= zone {
                return x % n;
            }
        }
    }

    /// Uniform in `[lo, hi)`. Panics if the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "SimRng::range empty ({lo}..{hi})");
        lo + self.below(hi - lo)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.unit_f64() < p
    }

    /// Uniform float in `[0, 1)` (53-bit mantissa construction).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_label_same_stream() {
        let mut a = SimRng::fork(7, "nic0");
        let mut b = SimRng::fork(7, "nic0");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_diverge() {
        let mut a = SimRng::fork(7, "nic0");
        let mut b = SimRng::fork(7, "nic1");
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::fork(7, "nic0");
        let mut b = SimRng::fork(8, "nic0");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::fork(1, "x");
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn below_is_in_range() {
        let mut r = SimRng::fork(1, "y");
        for _ in 0..100 {
            assert!(r.below(10) < 10);
            let v = r.range(5, 8);
            assert!((5..8).contains(&v));
        }
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut r = SimRng::fork(3, "f");
        for _ in 0..1000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_tracks_probability_roughly() {
        let mut r = SimRng::fork(9, "p");
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SimRng::fork(4, "bytes");
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        // Vanishingly unlikely to be all zero if filled.
        assert!(buf.iter().any(|&b| b != 0));
    }
}
