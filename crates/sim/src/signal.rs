//! Wakeup primitives for thread-backed actors.
//!
//! [`Signal`] has condition-variable semantics: `notify` wakes every actor
//! currently waiting; waiters re-check their predicate in a loop. Because
//! the engine is single-threaded-deterministic, there is no lost-wakeup
//! window between checking a predicate and calling [`Signal::wait`] — nothing
//! else can run in between.
//!
//! [`Semaphore`] builds counting-resource semantics (DMA engines, CPU slots)
//! on top of `Signal`.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::actor::{ActorCtx, ActorId};
use crate::engine::Sim;

struct SignalState {
    waiters: Vec<(ActorId, u64)>,
    notified: u64,
}

/// A broadcast wakeup channel. Clones share state.
#[derive(Clone)]
pub struct Signal {
    sim: Sim,
    state: Arc<Mutex<SignalState>>,
}

impl Signal {
    /// Create a signal bound to a simulation.
    pub fn new(sim: &Sim) -> Self {
        Signal {
            sim: sim.clone(),
            state: Arc::new(Mutex::new(SignalState {
                waiters: Vec::new(),
                notified: 0,
            })),
        }
    }

    /// Block the calling actor until the next `notify` after this call.
    ///
    /// Callers typically loop: `while !cond() { sig.wait(ctx); }`.
    pub fn wait(&self, ctx: &mut ActorCtx) {
        let gen = self.sim.next_park_gen(ctx.id());
        self.state.lock().waiters.push((ctx.id(), gen));
        ctx.park();
    }

    /// Wake every actor currently waiting. May be called from event handlers
    /// or other actors; wakeups are delivered as events at the current
    /// instant, in registration order. Each wake event lands on the waiting
    /// actor's own event-queue shard; because seq numbers are assigned here
    /// (in registration order) and dispatch follows the global `(time, seq)`
    /// order, the wake order is identical at any shard count — even for
    /// zero-delay cross-shard notifies below the batching horizon.
    pub fn notify(&self) {
        let mut st = self.state.lock();
        st.notified += 1;
        let waiters = std::mem::take(&mut st.waiters);
        drop(st);
        for (id, gen) in waiters {
            self.sim.schedule_wake_now(id, gen);
        }
    }

    /// Number of times `notify` has been called (observability for tests).
    pub fn notify_count(&self) -> u64 {
        self.state.lock().notified
    }

    /// Convenience: wait until `pred()` becomes true, re-checking after each
    /// notification. `pred` is evaluated before the first wait, so an
    /// already-true condition never blocks.
    pub fn wait_until(&self, ctx: &mut ActorCtx, mut pred: impl FnMut() -> bool) {
        while !pred() {
            self.wait(ctx);
        }
    }

    /// Wait for a notification or until `timeout` elapses, whichever comes
    /// first. Returns `true` if (possibly) notified, `false` on a pure
    /// timeout — like a condition variable, callers re-check their
    /// predicate either way.
    pub fn wait_timeout(&self, ctx: &mut ActorCtx, timeout: crate::SimDuration) -> bool {
        let deadline = ctx.now() + timeout;
        let gen = self.sim.next_park_gen(ctx.id());
        self.state.lock().waiters.push((ctx.id(), gen));
        // The same generation wakes from either source; stale ones no-op.
        self.sim.schedule_wake_in(timeout, ctx.id(), gen);
        ctx.park();
        ctx.now() < deadline
    }
}

struct SemState {
    permits: u64,
}

/// A counting semaphore over [`Signal`]; models exclusive/limited hardware
/// resources that actors contend for.
#[derive(Clone)]
pub struct Semaphore {
    state: Arc<Mutex<SemState>>,
    signal: Signal,
}

impl Semaphore {
    /// Create with an initial number of permits.
    pub fn new(sim: &Sim, permits: u64) -> Self {
        Semaphore {
            state: Arc::new(Mutex::new(SemState { permits })),
            signal: Signal::new(sim),
        }
    }

    /// Acquire one permit, blocking the actor until one is available.
    pub fn acquire(&self, ctx: &mut ActorCtx) {
        loop {
            {
                let mut st = self.state.lock();
                if st.permits > 0 {
                    st.permits -= 1;
                    return;
                }
            }
            self.signal.wait(ctx);
        }
    }

    /// Try to acquire without blocking.
    pub fn try_acquire(&self) -> bool {
        let mut st = self.state.lock();
        if st.permits > 0 {
            st.permits -= 1;
            true
        } else {
            false
        }
    }

    /// Return one permit and wake waiters.
    pub fn release(&self) {
        self.state.lock().permits += 1;
        self.signal.notify();
    }

    /// Currently available permits.
    pub fn available(&self) -> u64 {
        self.state.lock().permits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RunOutcome;
    use crate::time::SimDuration;

    #[test]
    fn signal_wakes_waiter() {
        let sim = Sim::new(1);
        let sig = Signal::new(&sim);
        let done = Arc::new(Mutex::new(false));

        let s2 = sig.clone();
        let d2 = done.clone();
        sim.spawn("waiter", move |ctx| {
            s2.wait(ctx);
            *d2.lock() = true;
        });
        let s3 = sig.clone();
        sim.schedule_in(SimDuration::from_us(5), move |_| s3.notify());

        assert_eq!(sim.run(), RunOutcome::Completed);
        assert!(*done.lock());
        assert_eq!(sim.now().as_us(), 5.0);
    }

    #[test]
    fn notify_before_wait_is_not_remembered() {
        // Condition-variable semantics: callers must check a predicate.
        let sim = Sim::new(1);
        let sig = Signal::new(&sim);
        sig.notify(); // nobody waiting; lost by design
        let sig2 = sig.clone();
        sim.spawn("late", move |ctx| {
            sig2.wait(ctx);
        });
        match sim.run() {
            RunOutcome::Deadlock(names) => assert_eq!(names, vec!["late".to_string()]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn wait_until_checks_before_blocking() {
        let sim = Sim::new(1);
        let sig = Signal::new(&sim);
        let sig2 = sig.clone();
        sim.spawn("p", move |ctx| {
            // Predicate already true: must not block.
            sig2.wait_until(ctx, || true);
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
    }

    #[test]
    fn notify_wakes_all_current_waiters_in_order() {
        let sim = Sim::new(1);
        let sig = Signal::new(&sim);
        let log: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3u32 {
            let sig = sig.clone();
            let log = log.clone();
            sim.spawn(format!("w{i}"), move |ctx| {
                sig.wait(ctx);
                log.lock().push(i);
            });
        }
        let sig2 = sig.clone();
        sim.schedule_in(SimDuration::from_us(1), move |_| sig2.notify());
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(*log.lock(), vec![0, 1, 2]);
    }

    #[test]
    fn semaphore_serializes_access() {
        let sim = Sim::new(1);
        let sem = Semaphore::new(&sim, 1);
        let max_inside = Arc::new(Mutex::new((0u32, 0u32))); // (current, max)
        for i in 0..4u32 {
            let sem = sem.clone();
            let mi = max_inside.clone();
            sim.spawn(format!("u{i}"), move |ctx| {
                sem.acquire(ctx);
                {
                    let mut g = mi.lock();
                    g.0 += 1;
                    g.1 = g.1.max(g.0);
                }
                ctx.sleep(SimDuration::from_us(10));
                mi.lock().0 -= 1;
                sem.release();
            });
        }
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(max_inside.lock().1, 1, "mutual exclusion violated");
        assert_eq!(sim.now().as_us(), 40.0, "holders serialized");
        assert_eq!(sem.available(), 1);
    }

    #[test]
    fn try_acquire_does_not_block() {
        let sim = Sim::new(1);
        let sem = Semaphore::new(&sim, 1);
        assert!(sem.try_acquire());
        assert!(!sem.try_acquire());
        sem.release();
        assert!(sem.try_acquire());
    }
}

#[cfg(test)]
mod timeout_tests {
    use super::*;
    use crate::engine::RunOutcome;
    use crate::time::SimDuration;

    #[test]
    fn wait_timeout_expires_without_notify() {
        let sim = Sim::new(1);
        let sig = Signal::new(&sim);
        sim.spawn("t", move |ctx| {
            let notified = sig.wait_timeout(ctx, SimDuration::from_us(50));
            assert!(!notified, "nothing notified this signal");
            assert_eq!(ctx.now().as_us(), 50.0);
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
    }

    #[test]
    fn wait_timeout_wakes_early_on_notify() {
        let sim = Sim::new(1);
        let sig = Signal::new(&sim);
        let sig2 = sig.clone();
        sim.spawn("t", move |ctx| {
            let notified = sig2.wait_timeout(ctx, SimDuration::from_us(500));
            assert!(notified);
            assert_eq!(ctx.now().as_us(), 10.0, "woke at notify, not deadline");
        });
        sim.schedule_in(SimDuration::from_us(10), move |_| sig.notify());
        assert_eq!(sim.run(), RunOutcome::Completed);
    }

    #[test]
    fn stale_timeout_wake_does_not_disturb_later_parks() {
        let sim = Sim::new(1);
        let sig = Signal::new(&sim);
        let sig2 = sig.clone();
        sim.spawn("t", move |ctx| {
            // Woken by notify at 10us; the timeout event at 100us is stale.
            assert!(sig2.wait_timeout(ctx, SimDuration::from_us(100)));
            // Sleep past the stale wake; it must not cut this short.
            ctx.sleep(SimDuration::from_us(500));
            assert_eq!(ctx.now().as_us(), 510.0);
        });
        sim.schedule_in(SimDuration::from_us(10), move |_| sig.notify());
        assert_eq!(sim.run(), RunOutcome::Completed);
    }
}
