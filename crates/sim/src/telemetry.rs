//! The continuous-telemetry tick: a self-rescheduling sim event that
//! samples every registered probe on a fixed virtual-time period and
//! periodically runs the stall watchdog.
//!
//! Everything here is driven by the sim clock — no wall-clock reads — so
//! with a fixed seed the exported timeseries is byte-identical across runs.
//!
//! Termination: a recurring event would keep an otherwise-finished run
//! alive forever, so each tick checks [`Sim::pending_events`] *after*
//! sampling. If the tick was the only thing left in the queue, the run is
//! over: take the final sample and stop rescheduling. Livelocked runs (a
//! wedged retransmission loop, say) always have pending timer events, so
//! the sampler — and with it the watchdog — stays alive exactly when it is
//! needed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use suca_obs::watchdog::{Watchdog, WatchdogConfig};

use crate::engine::Sim;
use crate::time::SimDuration;

/// How the telemetry sampler and stall watchdog are armed for a run.
#[derive(Clone, Debug)]
pub struct TelemetryConfig {
    /// Virtual time between probe samples.
    pub sample_period: SimDuration,
    /// Stall thresholds (chain budget, pegged-sample count, check cadence).
    pub watchdog: WatchdogConfig,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            // 10 µs: fine enough to catch queue transients at the paper's
            // 7 µs host overhead scale, coarse enough that a 100 ms run
            // stays within the bounded rings.
            sample_period: SimDuration::from_us(10),
            watchdog: WatchdogConfig::default(),
        }
    }
}

struct Driver {
    cfg: TelemetryConfig,
    watchdog: Watchdog,
    ticks: AtomicU64,
}

impl Driver {
    fn tick(self: Arc<Self>, sim: &Sim) {
        let now_ns = sim.now().as_ns();
        sim.timeseries().sample_all(now_ns);
        // Health evaluation rides the same tick, after sampling so
        // saturation rules see this tick's probe levels. No-op unless the
        // harness installed rules.
        sim.health()
            .on_tick(now_ns, sim.timeseries(), sim.msg_trace());
        let tick = self.ticks.fetch_add(1, Ordering::Relaxed) + 1;
        let every = self.cfg.watchdog.check_every.max(1) as u64;
        if tick.is_multiple_of(every) {
            let stalls = self
                .watchdog
                .check(now_ns, sim.msg_trace(), sim.timeseries());
            sim.health().note_stalls(now_ns, &stalls, sim.msg_trace());
        }
        // The tick popped itself off the queue before running, so an empty
        // queue here means nothing else will ever happen: stop.
        if sim.pending_events() == 0 {
            return;
        }
        let period = self.cfg.sample_period;
        sim.schedule_in(period, move |s| self.tick(s));
    }
}

impl Sim {
    /// Arm the telemetry sampler and stall watchdog. Idempotent: only the
    /// first call per simulation schedules the tick (cluster builders call
    /// this unconditionally). The first sample lands one period after the
    /// call; the sampler stops itself once the event queue drains.
    pub fn start_telemetry(&self, cfg: TelemetryConfig) {
        if self.inner().telemetry_started.swap(true, Ordering::SeqCst) {
            return;
        }
        let driver = Arc::new(Driver {
            watchdog: Watchdog::new(cfg.watchdog.clone(), &self.metrics()),
            cfg,
            ticks: AtomicU64::new(0),
        });
        let period = driver.cfg.sample_period;
        self.schedule_in(period, move |s| driver.tick(s));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RunOutcome;
    use crate::time::SimTime;

    #[test]
    fn sampler_samples_on_the_sim_clock_and_stops_at_drain() {
        let sim = Sim::new(1);
        let g = sim.metrics().gauge("work.depth");
        let g2 = g.clone();
        sim.timeseries()
            .register("n0.work.depth", 0, None, move |_| g2.get());
        // 95 µs of real work: gauge ramps up then down.
        for i in 0..95u64 {
            let g3 = g.clone();
            sim.schedule_in(SimDuration::from_us(i), move |_| g3.set(i % 7));
        }
        sim.start_telemetry(TelemetryConfig::default());
        sim.start_telemetry(TelemetryConfig::default()); // second call is a no-op
        assert_eq!(sim.run(), RunOutcome::Completed);
        let snap = sim.timeseries().snapshot();
        let series = snap.series("n0.work.depth").expect("probe sampled");
        assert!(
            snap.samples_taken >= 9,
            "expected ~10 samples, got {}",
            snap.samples_taken
        );
        // Sim timestamps, strictly monotone, on the 10 µs grid.
        for w in series.points.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        assert!(series.points.iter().all(|(t, _)| t % 10_000 == 0));
        // The sampler stopped itself: the run completed (no livelock) and
        // time did not run past the workload by more than one period.
        assert!(sim.now() <= SimTime::from_ns(95_000 + 10_000));
    }

    #[test]
    fn fixed_seed_gives_byte_identical_timeseries_json() {
        let run = || {
            let sim = Sim::new(7);
            let c = sim.metrics().counter("ticks");
            let c2 = c.clone();
            sim.timeseries()
                .register("n0.ticks", 0, None, move |_| c2.get());
            for i in 0..40u64 {
                let c3 = c.clone();
                sim.schedule_in(SimDuration::from_us(i * 3), move |_| c3.inc());
            }
            sim.start_telemetry(TelemetryConfig::default());
            sim.run();
            sim.timeseries().snapshot().to_json()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn watchdog_counter_registered_on_clean_run() {
        let sim = Sim::new(1);
        sim.schedule_in(SimDuration::from_us(50), |_| {});
        sim.start_telemetry(TelemetryConfig::default());
        sim.run();
        assert_eq!(sim.get_count("watchdog.stalls"), 0);
    }
}
