//! End-to-end EADI-2 tests over the full simulated cluster: matching with
//! wildcards, unexpected messages, eager↔rendezvous switchover, many-peer
//! traffic, and both SANs.

use std::sync::Arc;

use suca_cluster::ClusterSpec;
use suca_eadi::{EadiConfig, EadiEndpoint, Universe};
use suca_sim::RunOutcome;

fn pattern(len: usize, salt: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(17).wrapping_add(salt))
        .collect()
}

/// Spawn `n` EADI ranks (one per node, round-robin) and run `body(rank)`.
fn run_ranks(
    nodes: u32,
    ranks: u32,
    body: impl Fn(&mut suca_sim::ActorCtx, EadiEndpoint) + Send + Sync + 'static,
) {
    let cluster = ClusterSpec::dawning3000(nodes).build();
    let sim = cluster.sim.clone();
    let uni = Universe::new(&sim, ranks);
    let body = Arc::new(body);
    for r in 0..ranks {
        let uni = uni.clone();
        let body = body.clone();
        cluster.spawn_process(r % nodes, format!("rank{r}"), move |ctx, env| {
            let ep = EadiEndpoint::create(
                ctx,
                &env.node.bcl,
                &env.proc,
                uni,
                r,
                EadiConfig::dawning3000(),
            );
            body(ctx, ep);
        });
    }
    assert_eq!(sim.run(), RunOutcome::Completed, "EADI job hung");
}

#[test]
fn eager_send_recv_with_exact_match() {
    run_ranks(2, 2, |ctx, ep| {
        if ep.rank() == 0 {
            ep.send(ctx, 1, 42, b"hello eadi");
        } else {
            let m = ep.recv(ctx, Some(0), Some(42));
            assert_eq!((m.src, m.tag), (0, 42));
            assert_eq!(m.data, b"hello eadi");
        }
    });
}

#[test]
fn rendezvous_large_message_integrity() {
    let payload = pattern(200_000, 3);
    let expect = payload.clone();
    run_ranks(2, 2, move |ctx, ep| {
        if ep.rank() == 0 {
            ep.send(ctx, 1, 7, &payload);
        } else {
            let m = ep.recv(ctx, Some(0), Some(7));
            assert_eq!(m.data.len(), 200_000);
            assert_eq!(m.data, expect, "rendezvous payload damaged");
        }
    });
}

#[test]
fn unexpected_eager_messages_queue_and_match_later() {
    run_ranks(2, 2, |ctx, ep| {
        if ep.rank() == 0 {
            // Send before the receiver posts anything.
            ep.send(ctx, 1, 1, b"first");
            ep.send(ctx, 1, 2, b"second");
            ep.send(ctx, 1, 1, b"third");
        } else {
            ctx.sleep(suca_sim::SimDuration::from_us(500));
            // Out-of-order receives by tag; same-tag order must hold.
            let m2 = ep.recv(ctx, Some(0), Some(2));
            assert_eq!(m2.data, b"second");
            let m1 = ep.recv(ctx, Some(0), Some(1));
            assert_eq!(m1.data, b"first");
            let m3 = ep.recv(ctx, Some(0), Some(1));
            assert_eq!(m3.data, b"third");
        }
    });
}

#[test]
fn wildcard_source_and_tag() {
    run_ranks(3, 3, |ctx, ep| {
        match ep.rank() {
            0 => ep.send(ctx, 2, 10, b"from zero"),
            1 => ep.send(ctx, 2, 20, b"from one"),
            _ => {
                let mut got = Vec::new();
                for _ in 0..2 {
                    let m = ep.recv(ctx, None, None); // ANY_SOURCE, ANY_TAG
                    got.push((m.src, m.tag, m.data));
                }
                got.sort();
                assert_eq!(got[0], (0, 10, b"from zero".to_vec()));
                assert_eq!(got[1], (1, 20, b"from one".to_vec()));
            }
        }
    });
}

#[test]
fn late_receiver_rendezvous_still_completes() {
    let payload = pattern(150_000, 9);
    let expect = payload.clone();
    run_ranks(2, 2, move |ctx, ep| {
        if ep.rank() == 0 {
            ep.send(ctx, 1, 5, &payload); // RTS waits as unexpected
        } else {
            ctx.sleep(suca_sim::SimDuration::from_us(800));
            let m = ep.recv(ctx, Some(0), Some(5));
            assert_eq!(m.data, expect);
        }
    });
}

#[test]
fn nonblocking_irecv_and_test() {
    run_ranks(2, 2, |ctx, ep| {
        if ep.rank() == 0 {
            ctx.sleep(suca_sim::SimDuration::from_us(100));
            ep.send(ctx, 1, 3, b"async");
        } else {
            let req = ep.irecv(ctx, Some(0), Some(3));
            assert!(ep.test(ctx, req).is_none(), "must not be complete yet");
            let m = ep.wait(ctx, req);
            assert_eq!(m.data, b"async");
        }
    });
}

#[test]
fn intra_node_ranks_communicate_over_shared_memory() {
    // Both ranks on node 0: EADI rides the intra-node path transparently.
    run_ranks(1, 2, |ctx, ep| {
        if ep.rank() == 0 {
            ep.send(ctx, 1, 1, b"same node");
            let big = pattern(100_000, 4);
            ep.send(ctx, 1, 2, &big);
        } else {
            let m = ep.recv(ctx, Some(0), Some(1));
            assert_eq!(m.data, b"same node");
            let m = ep.recv(ctx, Some(0), Some(2));
            assert_eq!(m.data, pattern(100_000, 4));
        }
    });
}

#[test]
fn many_to_one_traffic() {
    run_ranks(4, 4, |ctx, ep| {
        if ep.rank() == 0 {
            let mut total = 0usize;
            for _ in 0..3 {
                let m = ep.recv(ctx, None, None);
                assert_eq!(m.data, pattern(10_000, m.src as u8));
                total += m.data.len();
            }
            assert_eq!(total, 30_000);
        } else {
            let r = ep.rank();
            ep.send(ctx, 0, r as i32, &pattern(10_000, r as u8));
        }
    });
}

#[test]
fn ping_pong_many_iterations_mixed_sizes() {
    run_ranks(2, 2, |ctx, ep| {
        let sizes = [0usize, 100, 4000, 5000, 40_000, 100_000];
        if ep.rank() == 0 {
            for (i, &s) in sizes.iter().enumerate() {
                ep.send(ctx, 1, i as i32, &pattern(s, i as u8));
                let back = ep.recv(ctx, Some(1), Some(i as i32));
                assert_eq!(back.data.len(), s);
            }
        } else {
            for (i, &s) in sizes.iter().enumerate() {
                let m = ep.recv(ctx, Some(0), Some(i as i32));
                assert_eq!(m.data, pattern(s, i as u8));
                ep.send(ctx, 0, i as i32, &m.data);
            }
        }
    });
}

#[test]
fn many_concurrent_rendezvous_exceed_channel_pool_and_backlog() {
    // 16 concurrent large transfers × up to 8 channels each cannot all hold
    // channels at once (64 per port); the CTS backlog must serialize the
    // excess instead of failing.
    let payloads: Vec<Vec<u8>> = (0..16u8).map(|i| pattern(150_000, i)).collect();
    let expect = payloads.clone();
    run_ranks(2, 2, move |ctx, ep| {
        if ep.rank() == 0 {
            let reqs: Vec<_> = payloads
                .iter()
                .enumerate()
                .map(|(i, p)| ep.isend(ctx, 1, i as i32, p))
                .collect();
            for r in reqs {
                ep.wait_send(ctx, r);
            }
        } else {
            // Post all receives up front so every RTS matches immediately
            // and channel pressure peaks.
            let reqs: Vec<_> = (0..16i32)
                .map(|t| ep.irecv(ctx, Some(0), Some(t)))
                .collect();
            for (i, r) in reqs.into_iter().enumerate() {
                let m = ep.wait(ctx, r);
                assert_eq!(m.data, expect[i], "transfer {i} damaged");
            }
        }
    });
}

#[test]
fn interleaved_eager_and_rendezvous_streams_stay_ordered_per_tag() {
    run_ranks(2, 2, |ctx, ep| {
        if ep.rank() == 0 {
            for i in 0..6u8 {
                // Alternate small (eager) and large (rendezvous) on one tag.
                let len = if i % 2 == 0 { 100 } else { 50_000 };
                ep.send(ctx, 1, 1, &pattern(len, i));
            }
        } else {
            for i in 0..6u8 {
                let m = ep.recv(ctx, Some(0), Some(1));
                let len = if i % 2 == 0 { 100 } else { 50_000 };
                assert_eq!(
                    m.data,
                    pattern(len, i),
                    "message {i} out of order or damaged"
                );
            }
        }
    });
}

#[test]
fn cancel_recv_releases_the_posting() {
    run_ranks(1, 2, |ctx, ep| {
        if ep.rank() == 0 {
            ctx.sleep(suca_sim::SimDuration::from_us(100));
            ep.send(ctx, 1, 7, b"late");
        } else {
            let r1 = ep.irecv(ctx, Some(0), Some(7));
            assert!(ep.cancel_recv(r1), "unmatched request must cancel");
            // The message must match a *new* request, not the cancelled one.
            let m = ep.recv(ctx, Some(0), Some(7));
            assert_eq!(m.data, b"late");
        }
    });
}
