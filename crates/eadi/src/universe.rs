//! Rank registry for an EADI job.
//!
//! MPI/PVM address peers by rank/tid; BCL addresses by `(node, port)`. Each
//! process registers its port address under its rank at startup; peers block
//! until the whole universe is present (the usual `MPI_Init` rendezvous).

use std::sync::Arc;

use parking_lot::Mutex;

use suca_bcl::ProcAddr;
use suca_sim::{ActorCtx, Signal, Sim};

struct UniverseState {
    slots: Vec<Option<ProcAddr>>,
    registered: u32,
}

/// The job-wide rank → address map.
#[derive(Clone)]
pub struct Universe {
    state: Arc<Mutex<UniverseState>>,
    signal: Signal,
}

impl Universe {
    /// A universe of `n` ranks.
    pub fn new(sim: &Sim, n: u32) -> Universe {
        Universe {
            state: Arc::new(Mutex::new(UniverseState {
                slots: vec![None; n as usize],
                registered: 0,
            })),
            signal: Signal::new(sim),
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> u32 {
        self.state.lock().slots.len() as u32
    }

    /// Register this process's port under `rank`, then block until every
    /// rank has registered.
    pub fn register_and_wait(&self, ctx: &mut ActorCtx, rank: u32, addr: ProcAddr) {
        {
            let mut st = self.state.lock();
            assert!(
                st.slots[rank as usize].is_none(),
                "rank {rank} registered twice"
            );
            st.slots[rank as usize] = Some(addr);
            st.registered += 1;
        }
        self.signal.notify();
        let state = self.state.clone();
        self.signal.wait_until(ctx, || {
            let st = state.lock();
            st.registered as usize == st.slots.len()
        });
    }

    /// Address of `rank`. Panics if called before the universe is complete.
    pub fn addr_of(&self, rank: u32) -> ProcAddr {
        self.state.lock().slots[rank as usize].expect("universe incomplete")
    }

    /// Reverse lookup: rank of a port address.
    pub fn rank_of(&self, addr: ProcAddr) -> Option<u32> {
        self.state
            .lock()
            .slots
            .iter()
            .position(|s| *s == Some(addr))
            .map(|i| i as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suca_bcl::PortId;
    use suca_os::NodeId;
    use suca_sim::RunOutcome;

    #[test]
    fn all_ranks_rendezvous() {
        let sim = Sim::new(1);
        let uni = Universe::new(&sim, 3);
        for r in 0..3u32 {
            let uni = uni.clone();
            sim.spawn(format!("r{r}"), move |ctx| {
                let addr = ProcAddr {
                    node: NodeId(r),
                    port: PortId(0),
                };
                uni.register_and_wait(ctx, r, addr);
                // After the barrier every address resolves.
                for p in 0..3 {
                    assert_eq!(uni.addr_of(p).node, NodeId(p));
                }
                assert_eq!(uni.rank_of(addr), Some(r));
            });
        }
        assert_eq!(sim.run(), RunOutcome::Completed);
    }
}
