//! # suca-eadi — the EADI-2 middle layer
//!
//! Tag/source matching with wildcards, unexpected-message queue, eager and
//! rendezvous protocols over BCL channels, request handles, and the rank
//! universe. MPI (`suca-mpi`) and PVM (`suca-pvm`) are thin layers above
//! this, exactly as on DAWNING-3000 (paper §2.1 and Figure 1).

#![warn(missing_docs)]

pub mod endpoint;
pub mod header;
pub mod universe;

pub use endpoint::{EadiConfig, EadiEndpoint, RecvDone, RecvReq, SendReq};
pub use header::{EadiHeader, EadiKind, EADI_HEADER};
pub use universe::Universe;
