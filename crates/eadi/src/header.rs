//! EADI message header.
//!
//! Every EADI control/eager message travels on the BCL system channel with
//! this 24-byte header in front of the payload. Rendezvous payload segments
//! travel header-less on normal channels (the channel number itself is the
//! context, negotiated by RTS/CTS).

use bytes::{BufMut, BytesMut};

/// Serialized header size.
pub const EADI_HEADER: usize = 24;

/// EADI message kinds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EadiKind {
    /// Small message: payload follows the header.
    Eager,
    /// Request-to-send for a rendezvous transfer (no payload).
    Rts,
    /// Clear-to-send: receiver granted channels (no payload).
    Cts,
}

impl EadiKind {
    fn to_wire(self) -> u8 {
        match self {
            EadiKind::Eager => 1,
            EadiKind::Rts => 2,
            EadiKind::Cts => 3,
        }
    }
    fn from_wire(b: u8) -> Option<Self> {
        match b {
            1 => Some(EadiKind::Eager),
            2 => Some(EadiKind::Rts),
            3 => Some(EadiKind::Cts),
            _ => None,
        }
    }
}

/// Parsed EADI header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EadiHeader {
    /// Message kind.
    pub kind: EadiKind,
    /// Application tag.
    pub tag: i32,
    /// Sending rank.
    pub src_rank: u32,
    /// Transfer id: rendezvous exchange id, or eager sequence number.
    pub xid: u32,
    /// Total message length in bytes.
    pub total_len: u32,
    /// Kind-specific: CTS → first granted channel; RTS → requested segment
    /// count.
    pub aux: u32,
}

impl EadiHeader {
    /// Serialize with `payload` appended.
    pub fn encode(&self, payload: &[u8]) -> Vec<u8> {
        let mut b = BytesMut::with_capacity(EADI_HEADER + payload.len());
        b.put_u8(self.kind.to_wire());
        b.put_u8(0);
        b.put_u16_le(0);
        b.put_i32_le(self.tag);
        b.put_u32_le(self.src_rank);
        b.put_u32_le(self.xid);
        b.put_u32_le(self.total_len);
        b.put_u32_le(self.aux);
        debug_assert_eq!(b.len(), EADI_HEADER);
        b.put_slice(payload);
        b.to_vec()
    }

    /// Parse; returns header and payload slice. `None` on malformed input.
    pub fn decode(buf: &[u8]) -> Option<(EadiHeader, &[u8])> {
        if buf.len() < EADI_HEADER {
            return None;
        }
        let kind = EadiKind::from_wire(buf[0])?;
        let i32le = |i: usize| i32::from_le_bytes(buf[i..i + 4].try_into().expect("len checked"));
        let u32le = |i: usize| u32::from_le_bytes(buf[i..i + 4].try_into().expect("len checked"));
        let h = EadiHeader {
            kind,
            tag: i32le(4),
            src_rank: u32le(8),
            xid: u32le(12),
            total_len: u32le(16),
            aux: u32le(20),
        };
        Some((h, &buf[EADI_HEADER..]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let h = EadiHeader {
            kind: EadiKind::Rts,
            tag: -77,
            src_rank: 12,
            xid: 900,
            total_len: 1 << 20,
            aux: 8,
        };
        let buf = h.encode(b"xyz");
        let (h2, payload) = EadiHeader::decode(&buf).unwrap();
        assert_eq!(h, h2);
        assert_eq!(payload, b"xyz");
    }

    #[test]
    fn rejects_short_and_bad_kind() {
        assert!(EadiHeader::decode(b"short").is_none());
        let mut buf = EadiHeader {
            kind: EadiKind::Eager,
            tag: 0,
            src_rank: 0,
            xid: 0,
            total_len: 0,
            aux: 0,
        }
        .encode(b"");
        buf[0] = 99;
        assert!(EadiHeader::decode(&buf).is_none());
    }
}
