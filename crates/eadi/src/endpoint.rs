//! The EADI-2 endpoint: tagged matching, eager/rendezvous, progress engine.
//!
//! "DAWNING-3000 implements PVM on a middle-level communication library
//! EADI-2. ADI is a standard defined to support the implementation of MPI.
//! EADI-2 extends ADI-2 to fulfil the requirements of PVM implementation.
//! EADI-2 is implemented as an independent library." (§2.1)
//!
//! What ADI-2 needs (for MPICH) plus what PVM adds:
//!
//! * tagged sends/receives with **source and tag matching**, including
//!   wildcards (PVM's `-1` semantics);
//! * an **unexpected-message queue** (eager data that beat the receive);
//! * an **eager/rendezvous switch**: small messages ride the BCL system
//!   channel behind a 24-byte header; large messages negotiate RTS/CTS and
//!   stream header-less **segments over BCL normal channels**, the channel
//!   numbers being the rendezvous context;
//! * non-blocking operations with request handles and a progress engine
//!   pumped from `wait`.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;

use suca_bcl::{BclNode, BclPort, ChannelId, ChannelKind, ProcAddr, RecvEvent, SendStatus};
use suca_mem::VirtAddr;
use suca_os::OsProcess;
use suca_sim::{ActorCtx, SimDuration};

use crate::header::{EadiHeader, EadiKind, EADI_HEADER};
use crate::universe::Universe;

/// EADI tunables and layer costs.
#[derive(Clone, Debug)]
pub struct EadiConfig {
    /// Largest payload sent eagerly (must fit a system buffer with header).
    pub eager_max: u64,
    /// Rendezvous segment size.
    pub segment_bytes: u64,
    /// Max segments per rendezvous (bounds channel usage).
    pub max_segments: u16,
    /// Sender-side per-message library overhead (queueing, header build).
    pub send_overhead: SimDuration,
    /// Receiver-side per-message overhead (matching, completion).
    pub recv_overhead: SimDuration,
}

impl EadiConfig {
    /// DAWNING-3000 calibration (feeds Table 3 through MPI/PVM).
    pub fn dawning3000() -> EadiConfig {
        EadiConfig {
            eager_max: 4096 - EADI_HEADER as u64,
            segment_bytes: 64 * 1024,
            max_segments: 8,
            send_overhead: SimDuration::from_us_f64(1.10),
            recv_overhead: SimDuration::from_us_f64(1.10),
        }
    }
}

/// Receive request handle.
pub type RecvReq = u64;

/// Send request handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendReq {
    /// Eager send: complete as soon as issued.
    Done,
    /// Rendezvous in flight, identified by its exchange id.
    Rendezvous(u32),
}

/// A completed receive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecvDone {
    /// Sending rank.
    pub src: u32,
    /// Message tag.
    pub tag: i32,
    /// Payload.
    pub data: Vec<u8>,
}

struct PostedRecv {
    req: RecvReq,
    src: Option<u32>,
    tag: Option<i32>,
}

enum Unexpected {
    Eager {
        src: u32,
        tag: i32,
        data: Vec<u8>,
    },
    Rts {
        src: u32,
        tag: i32,
        xid: u32,
        total: u64,
    },
}

struct RndvIn {
    req: RecvReq,
    src: u32,
    tag: i32,
    chan_base: u16,
    nsegs: u16,
    parts: Vec<Option<Vec<u8>>>,
    remaining: u16,
    /// Segment receive buffers to recycle at completion (kept pinned and
    /// reused across transfers, like a real MPI's registered-buffer cache).
    bufs: Vec<(VirtAddr, u64)>,
}

struct PendingSend {
    dst_rank: u32,
    data: Vec<u8>,
}

struct EadiState {
    next_xid: u32,
    next_req: u64,
    next_rid: u32,
    posted: VecDeque<PostedRecv>,
    unexpected: VecDeque<Unexpected>,
    completed: HashMap<RecvReq, RecvDone>,
    chan_to_rndv: HashMap<u16, u32>,
    rndv: HashMap<u32, RndvIn>,
    pending_sends: HashMap<u32, PendingSend>,
    seg_to_xid: HashMap<u32, u32>,
    segs_left: HashMap<u32, u32>,
    send_done: Vec<u32>,
    chan_used: Vec<bool>,
    /// Rendezvous grants waiting for channels to free up.
    cts_backlog: VecDeque<(RecvReq, u32, i32, u32, u64)>,
    /// Recycled staging buffers by size class (bytes, rounded to 4 KiB).
    buf_pool: HashMap<u64, Vec<VirtAddr>>,
    /// BCL msg id → staging buffer to recycle on send completion.
    buf_recycle: HashMap<u32, (VirtAddr, u64)>,
    /// Completions for sends launched outside the endpoint on the same
    /// port (NIC-offloaded collectives): msg id → status. The progress
    /// engine must not swallow these.
    ext_done: HashMap<u32, SendStatus>,
}

/// One process's EADI endpoint.
pub struct EadiEndpoint {
    port: BclPort,
    uni: Universe,
    rank: u32,
    cfg: EadiConfig,
    st: Mutex<EadiState>,
}

impl EadiEndpoint {
    /// Open a BCL port and join the universe as `rank`.
    pub fn create(
        ctx: &mut ActorCtx,
        node: &Arc<BclNode>,
        proc: &OsProcess,
        uni: Universe,
        rank: u32,
        cfg: EadiConfig,
    ) -> EadiEndpoint {
        let port = BclPort::open(ctx, node, proc).expect("EADI port open");
        let n_chans = node.config().limits.normal_channels as usize;
        uni.register_and_wait(ctx, rank, port.addr());
        EadiEndpoint {
            port,
            uni,
            rank,
            cfg,
            st: Mutex::new(EadiState {
                next_xid: 1,
                next_req: 1,
                next_rid: 1,
                posted: VecDeque::new(),
                unexpected: VecDeque::new(),
                completed: HashMap::new(),
                chan_to_rndv: HashMap::new(),
                rndv: HashMap::new(),
                pending_sends: HashMap::new(),
                seg_to_xid: HashMap::new(),
                segs_left: HashMap::new(),
                send_done: Vec::new(),
                chan_used: vec![false; n_chans],
                cts_backlog: VecDeque::new(),
                buf_pool: HashMap::new(),
                buf_recycle: HashMap::new(),
                ext_done: HashMap::new(),
            }),
        }
    }

    /// This endpoint's rank.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Number of ranks in the job.
    pub fn size(&self) -> u32 {
        self.uni.size()
    }

    /// The underlying BCL port (observability).
    pub fn port(&self) -> &BclPort {
        &self.port
    }

    /// Cluster-wide port address of `rank` (collective plan compilation).
    pub fn addr_of(&self, rank: u32) -> ProcAddr {
        self.uni.addr_of(rank)
    }

    /// Block until the completion of a message launched on this port
    /// outside the endpoint's own send paths (a NIC-offloaded collective)
    /// arrives, pumping the progress engine meanwhile. Returns its status.
    pub fn wait_external(&self, ctx: &mut ActorCtx, msg_id: u32) -> SendStatus {
        loop {
            if let Some(status) = self.st.lock().ext_done.remove(&msg_id) {
                return status;
            }
            self.pump_blocking(ctx);
        }
    }

    // -------------------------------------------------------------- buffers

    fn class_of(len: u64) -> u64 {
        len.max(1).div_ceil(4096) * 4096
    }

    fn take_buf(&self, len: u64) -> VirtAddr {
        let class = Self::class_of(len);
        let recycled = self.st.lock().buf_pool.get_mut(&class).and_then(Vec::pop);
        recycled.unwrap_or_else(|| self.port.alloc_buffer(class).expect("EADI staging buffer"))
    }

    fn recycle_on_completion(&self, msg_id: u32, buf: VirtAddr, len: u64) {
        self.st
            .lock()
            .buf_recycle
            .insert(msg_id, (buf, Self::class_of(len)));
    }

    // ----------------------------------------------------------------- send

    /// Blocking tagged send.
    pub fn send(&self, ctx: &mut ActorCtx, dst_rank: u32, tag: i32, data: &[u8]) {
        let req = self.isend(ctx, dst_rank, tag, data);
        self.wait_send(ctx, req);
    }

    /// Non-blocking tagged send; complete via [`EadiEndpoint::wait_send`].
    pub fn isend(&self, ctx: &mut ActorCtx, dst_rank: u32, tag: i32, data: &[u8]) -> SendReq {
        ctx.sleep(self.cfg.send_overhead);
        let dst = self.uni.addr_of(dst_rank);
        if data.len() as u64 <= self.cfg.eager_max {
            // Eager: header + payload on the system channel.
            let header = EadiHeader {
                kind: EadiKind::Eager,
                tag,
                src_rank: self.rank,
                xid: 0,
                total_len: data.len() as u32,
                aux: 0,
            };
            let wire = header.encode(data);
            let buf = self.take_buf(wire.len() as u64);
            self.port.write_buffer(buf, &wire).expect("stage eager");
            let msg_id = self
                .port
                .send(ctx, dst, ChannelId::SYSTEM, buf, wire.len() as u64)
                .expect("eager send");
            self.recycle_on_completion(msg_id, buf, wire.len() as u64);
            SendReq::Done
        } else {
            // Rendezvous: RTS now, data when CTS arrives.
            let xid = {
                let mut st = self.st.lock();
                let xid = st.next_xid;
                st.next_xid += 1;
                st.pending_sends.insert(
                    xid,
                    PendingSend {
                        dst_rank,
                        data: data.to_vec(),
                    },
                );
                xid
            };
            let header = EadiHeader {
                kind: EadiKind::Rts,
                tag,
                src_rank: self.rank,
                xid,
                total_len: data.len() as u32,
                aux: 0,
            };
            let wire = header.encode(b"");
            let buf = self.take_buf(wire.len() as u64);
            self.port.write_buffer(buf, &wire).expect("stage rts");
            let msg_id = self
                .port
                .send(ctx, dst, ChannelId::SYSTEM, buf, wire.len() as u64)
                .expect("rts send");
            self.recycle_on_completion(msg_id, buf, wire.len() as u64);
            SendReq::Rendezvous(xid)
        }
    }

    /// Block until a send request completes (buffer reusable, data on wire).
    pub fn wait_send(&self, ctx: &mut ActorCtx, req: SendReq) {
        let SendReq::Rendezvous(xid) = req else {
            return;
        };
        loop {
            {
                let mut st = self.st.lock();
                if let Some(pos) = st.send_done.iter().position(|x| *x == xid) {
                    st.send_done.swap_remove(pos);
                    return;
                }
            }
            self.pump_blocking(ctx);
        }
    }

    // ----------------------------------------------------------------- recv

    /// Blocking tagged receive with optional wildcards.
    pub fn recv(&self, ctx: &mut ActorCtx, src: Option<u32>, tag: Option<i32>) -> RecvDone {
        let req = self.irecv(ctx, src, tag);
        self.wait(ctx, req)
    }

    /// Post a non-blocking receive.
    pub fn irecv(&self, ctx: &mut ActorCtx, src: Option<u32>, tag: Option<i32>) -> RecvReq {
        let req = {
            let mut st = self.st.lock();
            let req = st.next_req;
            st.next_req += 1;
            req
        };
        // Check the unexpected queue first (in arrival order).
        let matched = {
            let mut st = self.st.lock();
            let pos = st.unexpected.iter().position(|u| {
                let (usrc, utag) = match u {
                    Unexpected::Eager { src, tag, .. } | Unexpected::Rts { src, tag, .. } => {
                        (*src, *tag)
                    }
                };
                src.is_none_or(|s| s == usrc) && tag.is_none_or(|t| t == utag)
            });
            pos.and_then(|p| st.unexpected.remove(p))
        };
        match matched {
            Some(Unexpected::Eager { src, tag, data }) => {
                self.st
                    .lock()
                    .completed
                    .insert(req, RecvDone { src, tag, data });
            }
            Some(Unexpected::Rts {
                src,
                tag,
                xid,
                total,
            }) => {
                self.grant_cts(ctx, req, src, tag, xid, total);
            }
            None => {
                self.st
                    .lock()
                    .posted
                    .push_back(PostedRecv { req, src, tag });
            }
        }
        req
    }

    /// Block until a receive request completes.
    pub fn wait(&self, ctx: &mut ActorCtx, req: RecvReq) -> RecvDone {
        loop {
            if let Some(done) = self.st.lock().completed.remove(&req) {
                ctx.sleep(self.cfg.recv_overhead);
                return done;
            }
            self.pump_blocking(ctx);
        }
    }

    /// Cancel a posted (unmatched) receive request. Returns `true` if it
    /// was still pending; `false` if it already matched (in which case the
    /// completion must still be consumed via `wait`/`test`).
    pub fn cancel_recv(&self, req: RecvReq) -> bool {
        let mut st = self.st.lock();
        let before = st.posted.len();
        st.posted.retain(|p| p.req != req);
        st.posted.len() != before
    }

    /// Non-blocking test of a receive request.
    pub fn test(&self, ctx: &mut ActorCtx, req: RecvReq) -> Option<RecvDone> {
        self.try_progress(ctx);
        let done = self.st.lock().completed.remove(&req);
        if done.is_some() {
            ctx.sleep(self.cfg.recv_overhead);
        }
        done
    }

    // ------------------------------------------------------------- progress

    /// Drain all pending completion events without blocking.
    pub fn try_progress(&self, ctx: &mut ActorCtx) {
        while let Some(ev) = self.port.poll_recv(ctx) {
            self.handle_recv_event(ctx, ev);
        }
        self.drain_send_events(ctx);
    }

    fn pump_blocking(&self, ctx: &mut ActorCtx) {
        self.port.wait_event(ctx);
        self.try_progress(ctx);
    }

    fn drain_send_events(&self, ctx: &mut ActorCtx) {
        while let Some(sev) = self.port.poll_send(ctx) {
            let mut st = self.st.lock();
            // A completion the endpoint never staged a buffer for belongs
            // to an externally launched message (offloaded collective):
            // park it for `wait_external` instead of dropping it.
            if !st.buf_recycle.contains_key(&sev.msg_id) && !st.seg_to_xid.contains_key(&sev.msg_id)
            {
                st.ext_done.insert(sev.msg_id, sev.status);
                continue;
            }
            if let Some((buf, class)) = st.buf_recycle.remove(&sev.msg_id) {
                st.buf_pool.entry(class).or_default().push(buf);
            }
            if let Some(xid) = st.seg_to_xid.remove(&sev.msg_id) {
                let left = st.segs_left.get_mut(&xid).expect("segment accounting");
                *left -= 1;
                if *left == 0 {
                    st.segs_left.remove(&xid);
                    st.pending_sends.remove(&xid);
                    st.send_done.push(xid);
                }
            }
        }
    }

    fn handle_recv_event(&self, ctx: &mut ActorCtx, ev: RecvEvent) {
        match ev.channel.kind {
            ChannelKind::System => {
                let raw = self.port.recv_bytes(ctx, &ev).expect("system payload");
                let Some((h, payload)) = EadiHeader::decode(&raw) else {
                    ctx.sim().add_count("eadi.malformed", 1);
                    return;
                };
                match h.kind {
                    EadiKind::Eager => self.on_eager(h, payload.to_vec()),
                    EadiKind::Rts => self.on_rts(ctx, h),
                    EadiKind::Cts => self.on_cts(ctx, h),
                }
            }
            ChannelKind::Normal => {
                let data = self.port.recv_bytes(ctx, &ev).expect("segment payload");
                self.on_segment(ctx, ev.channel.index, data);
            }
            ChannelKind::Open => {
                ctx.sim().add_count("eadi.unexpected_open_event", 1);
            }
        }
    }

    fn match_posted(&self, src: u32, tag: i32) -> Option<RecvReq> {
        let mut st = self.st.lock();
        let pos = st
            .posted
            .iter()
            .position(|p| p.src.is_none_or(|s| s == src) && p.tag.is_none_or(|t| t == tag))?;
        Some(st.posted.remove(pos).expect("position valid").req)
    }

    fn on_eager(&self, h: EadiHeader, data: Vec<u8>) {
        debug_assert_eq!(data.len(), h.total_len as usize);
        match self.match_posted(h.src_rank, h.tag) {
            Some(req) => {
                self.st.lock().completed.insert(
                    req,
                    RecvDone {
                        src: h.src_rank,
                        tag: h.tag,
                        data,
                    },
                );
            }
            None => self.st.lock().unexpected.push_back(Unexpected::Eager {
                src: h.src_rank,
                tag: h.tag,
                data,
            }),
        }
    }

    fn on_rts(&self, ctx: &mut ActorCtx, h: EadiHeader) {
        match self.match_posted(h.src_rank, h.tag) {
            Some(req) => self.grant_cts(ctx, req, h.src_rank, h.tag, h.xid, h.total_len as u64),
            None => self.st.lock().unexpected.push_back(Unexpected::Rts {
                src: h.src_rank,
                tag: h.tag,
                xid: h.xid,
                total: h.total_len as u64,
            }),
        }
    }

    fn segmentation(&self, total: u64) -> (u16, u64) {
        let nsegs = total
            .div_ceil(self.cfg.segment_bytes)
            .min(self.cfg.max_segments as u64)
            .max(1) as u16;
        let seg = total.div_ceil(nsegs as u64);
        (nsegs, seg)
    }

    /// Allocate channels, post segment buffers, and send CTS.
    fn grant_cts(
        &self,
        ctx: &mut ActorCtx,
        req: RecvReq,
        src: u32,
        tag: i32,
        xid: u32,
        total: u64,
    ) {
        let (nsegs, seg) = self.segmentation(total);
        // Recycled, already-pinned segment buffers where possible.
        let bufs: Vec<(VirtAddr, u64)> = (0..nsegs)
            .map(|i| {
                let this_len = seg.min(total - u64::from(i) * seg).max(1);
                (self.take_buf(this_len), Self::class_of(this_len))
            })
            .collect();
        let chan_base = {
            let mut st = self.st.lock();
            let Some(base) = find_free_run(&st.chan_used, nsegs as usize) else {
                // All channels busy with other transfers: grant later, when
                // a rendezvous completes and frees its run.
                st.cts_backlog.push_back((req, src, tag, xid, total));
                for (buf, class) in bufs {
                    st.buf_pool.entry(class).or_default().push(buf);
                }
                return;
            };
            for c in base..base + nsegs as usize {
                st.chan_used[c] = true;
            }
            let rid = st.next_rid;
            st.next_rid += 1;
            st.rndv.insert(
                rid,
                RndvIn {
                    req,
                    src,
                    tag,
                    chan_base: base as u16,
                    nsegs,
                    parts: (0..nsegs).map(|_| None).collect(),
                    remaining: nsegs,
                    bufs: bufs.clone(),
                },
            );
            for i in 0..nsegs {
                st.chan_to_rndv.insert(base as u16 + i, rid);
            }
            base as u16
        };
        // Post one buffer per segment.
        for i in 0..nsegs {
            let this_len = seg.min(total - u64::from(i) * seg);
            self.port
                .post_recv_at(ctx, chan_base + i, bufs[i as usize].0, this_len.max(1))
                .expect("post rendezvous segment");
        }
        // CTS back to the sender.
        let header = EadiHeader {
            kind: EadiKind::Cts,
            tag,
            src_rank: self.rank,
            xid,
            total_len: total as u32,
            aux: u32::from(chan_base),
        };
        let wire = header.encode(b"");
        let buf = self.take_buf(wire.len() as u64);
        self.port.write_buffer(buf, &wire).expect("stage cts");
        let dst = self.uni.addr_of(src);
        let msg_id = self
            .port
            .send(ctx, dst, ChannelId::SYSTEM, buf, wire.len() as u64)
            .expect("cts send");
        self.recycle_on_completion(msg_id, buf, wire.len() as u64);
    }

    /// Sender side: CTS arrived — stream the segments.
    fn on_cts(&self, ctx: &mut ActorCtx, h: EadiHeader) {
        let (dst_rank, data) = {
            let st = self.st.lock();
            let Some(p) = st.pending_sends.get(&h.xid) else {
                ctx.sim().add_count("eadi.orphan_cts", 1);
                return;
            };
            (p.dst_rank, p.data.clone())
        };
        let total = data.len() as u64;
        let (nsegs, seg) = self.segmentation(total);
        let chan_base = h.aux as u16;
        let dst = self.uni.addr_of(dst_rank);
        self.st.lock().segs_left.insert(h.xid, u32::from(nsegs));
        for i in 0..nsegs {
            let off = u64::from(i) * seg;
            let this_len = seg.min(total - off);
            let buf = self.take_buf(this_len);
            self.port
                .write_buffer(buf, &data[off as usize..(off + this_len) as usize])
                .expect("stage segment");
            let msg_id = self
                .port
                .send(ctx, dst, ChannelId::normal(chan_base + i), buf, this_len)
                .expect("segment send");
            let mut st = self.st.lock();
            st.seg_to_xid.insert(msg_id, h.xid);
            st.buf_recycle
                .insert(msg_id, (buf, Self::class_of(this_len)));
        }
    }

    /// Receiver side: a rendezvous segment landed.
    fn on_segment(&self, ctx: &mut ActorCtx, chan: u16, data: Vec<u8>) {
        let backlogged = {
            let mut st = self.st.lock();
            let Some(&rid) = st.chan_to_rndv.get(&chan) else {
                // Not a rendezvous channel we know — drop loudly in counters.
                return;
            };
            let r = st.rndv.get_mut(&rid).expect("rndv record");
            let idx = (chan - r.chan_base) as usize;
            debug_assert!(r.parts[idx].is_none(), "segment delivered twice");
            r.parts[idx] = Some(data);
            r.remaining -= 1;
            if r.remaining > 0 {
                None
            } else {
                let r = st.rndv.remove(&rid).expect("present");
                for i in 0..r.nsegs {
                    st.chan_to_rndv.remove(&(r.chan_base + i));
                    st.chan_used[(r.chan_base + i) as usize] = false;
                }
                for (buf, class) in &r.bufs {
                    st.buf_pool.entry(*class).or_default().push(*buf);
                }
                let mut data = Vec::new();
                for part in r.parts {
                    data.extend_from_slice(&part.expect("all parts present"));
                }
                st.completed.insert(
                    r.req,
                    RecvDone {
                        src: r.src,
                        tag: r.tag,
                        data,
                    },
                );
                // Channels just freed: serve one queued grant.
                st.cts_backlog.pop_front()
            }
        };
        if let Some((req, src, tag, xid, total)) = backlogged {
            self.grant_cts(ctx, req, src, tag, xid, total);
        }
    }
}

/// First index of a run of `n` false entries, if any.
fn find_free_run(used: &[bool], n: usize) -> Option<usize> {
    let mut run = 0;
    for (i, &u) in used.iter().enumerate() {
        if u {
            run = 0;
        } else {
            run += 1;
            if run == n {
                return Some(i + 1 - n);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_run_finder() {
        assert_eq!(find_free_run(&[false, false, true, false], 2), Some(0));
        assert_eq!(find_free_run(&[true, false, false, false], 3), Some(1));
        assert_eq!(find_free_run(&[true, false, true, false], 2), None);
        assert_eq!(find_free_run(&[], 1), None);
    }
}
