//! # suca-mesh — the custom nwrc 2-D mesh SAN
//!
//! DAWNING-3000's alternative system-area network is a custom 2-D mesh built
//! from the nwrc1032 wormhole routing chip (40 MHz, 6 channels of 32 bits)
//! fronted by the PMI960 NIC. We model it as a grid of cut-through routers
//! with dimension-order (XY) routing, implementing the same
//! [`suca_myrinet::Fabric`] trait as Myrinet — which is what makes the
//! paper's heterogeneous-network portability claim testable: the identical
//! BCL/MPI binary runs over either network (see `examples/heterogeneous.rs`).
//!
//! XY routing is deadlock-free on a mesh, and since our routes are computed
//! at injection (source routing), the model cannot deadlock by construction;
//! what it *does* reproduce is hop-count-dependent latency and per-channel
//! serialization.

#![warn(missing_docs)]

use std::sync::Arc;

use suca_sim::{Sim, SimDuration};

use suca_myrinet::fabric::{Fabric, FabricNodeId, FaultPlan, RxHandler};
use suca_myrinet::link::Link;
use suca_myrinet::switch::Switch;

/// Router port assignment on every nwrc1032.
mod port {
    pub const HOST: u8 = 0;
    pub const EAST: u8 = 1;
    pub const WEST: u8 = 2;
    pub const NORTH: u8 = 3;
    pub const SOUTH: u8 = 4;
}

/// Tunables for a mesh build-out.
#[derive(Clone, Debug)]
pub struct MeshConfig {
    /// Per-channel bandwidth: 32 bits at 40 MHz = 160 MB/s raw.
    pub channel_bytes_per_sec: u64,
    /// Per-router cut-through latency. The nwrc1032 at 40 MHz spends a few
    /// cycles per header flit; noticeably slower than the Myrinet crossbar.
    pub router_latency: SimDuration,
    /// Wire propagation per hop (2-inch AMP cables: short).
    pub propagation: SimDuration,
    /// Largest packet payload.
    pub mtu: usize,
    /// Fault injection per channel traversal.
    pub fault: FaultPlan,
}

impl MeshConfig {
    /// DAWNING-3000 nwrc calibration.
    pub fn dawning3000() -> Self {
        MeshConfig {
            channel_bytes_per_sec: 160_000_000,
            router_latency: SimDuration::from_ns(500),
            propagation: SimDuration::from_ns(20),
            mtu: 4096,
            fault: FaultPlan::NONE,
        }
    }
}

/// A built 2-D mesh.
pub struct Mesh {
    cfg: MeshConfig,
    width: u32,
    height: u32,
    /// Host→router injection links, indexed by node id.
    uplinks: Vec<Arc<Link>>,
    /// Router→host ejection links, indexed by node id (retained so chaos
    /// plans can down a host cable in both directions).
    downlinks: Vec<Arc<Link>>,
    /// The router grid, retained so chaos plans can kill channels.
    routers: Vec<Arc<Switch>>,
    endpoints: Vec<Arc<MeshEndpoint>>,
}

struct MeshEndpoint {
    node: FabricNodeId,
    handler: parking_lot::Mutex<Option<RxHandler>>,
}

impl suca_myrinet::link::PacketSink for MeshEndpoint {
    fn deliver(&self, sim: &Sim, pkt: suca_myrinet::fabric::Packet) {
        // Chaos rewiring or a corrupted route byte can steer a packet to the
        // wrong host; real NICs sink it, so we count and drop — never panic.
        if pkt.dst != self.node {
            sim.add_count("fabric.misrouted", 1);
            return;
        }
        sim.add_count("fabric.delivered", 1);
        match self.handler.lock().as_ref() {
            Some(h) => h(sim, pkt),
            None => sim.add_count("fabric.unclaimed", 1),
        }
    }
}

impl Mesh {
    /// Build a `width × height` mesh; node ids are row-major. `n_nodes` may
    /// be smaller than `width * height` (unused tail positions get routers
    /// but no hosts — matching a partially populated machine).
    pub fn build(sim: &Sim, width: u32, height: u32, n_nodes: u32, cfg: MeshConfig) -> Arc<Mesh> {
        assert!(width >= 1 && height >= 1);
        assert!(n_nodes >= 1 && n_nodes <= width * height);
        let routers: Vec<Arc<Switch>> = (0..width * height)
            .map(|i| {
                Switch::new(
                    sim,
                    format!("r{}x{}", i % width, i / width),
                    5,
                    cfg.router_latency,
                )
            })
            .collect();
        let idx = |x: u32, y: u32| (y * width + x) as usize;

        // Neighbor channels, both directions.
        for y in 0..height {
            for x in 0..width {
                let me = idx(x, y);
                if x + 1 < width {
                    let east = idx(x + 1, y);
                    routers[me].connect(
                        port::EAST as usize,
                        Link::new(
                            sim,
                            format!("m{me}->e{east}"),
                            cfg.channel_bytes_per_sec,
                            cfg.propagation,
                            cfg.fault,
                            routers[east].clone(),
                        ),
                    );
                    routers[east].connect(
                        port::WEST as usize,
                        Link::new(
                            sim,
                            format!("m{east}->w{me}"),
                            cfg.channel_bytes_per_sec,
                            cfg.propagation,
                            cfg.fault,
                            routers[me].clone(),
                        ),
                    );
                }
                if y + 1 < height {
                    let south = idx(x, y + 1);
                    routers[me].connect(
                        port::SOUTH as usize,
                        Link::new(
                            sim,
                            format!("m{me}->s{south}"),
                            cfg.channel_bytes_per_sec,
                            cfg.propagation,
                            cfg.fault,
                            routers[south].clone(),
                        ),
                    );
                    routers[south].connect(
                        port::NORTH as usize,
                        Link::new(
                            sim,
                            format!("m{south}->n{me}"),
                            cfg.channel_bytes_per_sec,
                            cfg.propagation,
                            cfg.fault,
                            routers[me].clone(),
                        ),
                    );
                }
            }
        }

        // Host channels.
        let mut uplinks = Vec::with_capacity(n_nodes as usize);
        let mut downlinks = Vec::with_capacity(n_nodes as usize);
        let mut endpoints = Vec::with_capacity(n_nodes as usize);
        for node in 0..n_nodes {
            let ep = Arc::new(MeshEndpoint {
                node: FabricNodeId(node),
                handler: parking_lot::Mutex::new(None),
            });
            let down = Link::new(
                sim,
                format!("m{node}->h{node}"),
                cfg.channel_bytes_per_sec,
                cfg.propagation,
                cfg.fault,
                ep.clone(),
            );
            routers[node as usize].connect(port::HOST as usize, down.clone());
            downlinks.push(down);
            uplinks.push(Link::new(
                sim,
                format!("h{node}->m{node}"),
                cfg.channel_bytes_per_sec,
                cfg.propagation,
                cfg.fault,
                routers[node as usize].clone(),
            ));
            endpoints.push(ep);
        }

        Arc::new(Mesh {
            cfg,
            width,
            height,
            uplinks,
            downlinks,
            routers,
            endpoints,
        })
    }

    /// Convenience: near-square mesh for `n_nodes`.
    pub fn build_square(sim: &Sim, n_nodes: u32, cfg: MeshConfig) -> Arc<Mesh> {
        let width = (n_nodes as f64).sqrt().ceil() as u32;
        let height = n_nodes.div_ceil(width);
        Self::build(sim, width, height, n_nodes, cfg)
    }

    fn coords(&self, n: FabricNodeId) -> (u32, u32) {
        (n.0 % self.width, n.0 / self.width)
    }

    /// Dimension-order (X then Y) source route, terminated by the host port.
    fn route(&self, src: FabricNodeId, dst: FabricNodeId) -> Vec<u8> {
        let (sx, sy) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        let mut r = Vec::with_capacity((sx.abs_diff(dx) + sy.abs_diff(dy) + 1) as usize);
        let mut x = sx;
        while x != dx {
            if dx > x {
                r.push(port::EAST);
                x += 1;
            } else {
                r.push(port::WEST);
                x -= 1;
            }
        }
        let mut y = sy;
        while y != dy {
            if dy > y {
                r.push(port::SOUTH);
                y += 1;
            } else {
                r.push(port::NORTH);
                y -= 1;
            }
        }
        r.push(port::HOST);
        r
    }

    /// Number of router hops between two nodes.
    pub fn hops(&self, src: FabricNodeId, dst: FabricNodeId) -> usize {
        self.route(src, dst).len()
    }

    /// Mesh dimensions.
    pub fn dims(&self) -> (u32, u32) {
        (self.width, self.height)
    }
}

impl Fabric for Mesh {
    fn name(&self) -> &'static str {
        "nwrc-mesh"
    }

    fn num_nodes(&self) -> u32 {
        self.endpoints.len() as u32
    }

    fn mtu(&self) -> usize {
        self.cfg.mtu
    }

    fn link_bytes_per_sec(&self) -> u64 {
        self.cfg.channel_bytes_per_sec
    }

    fn attach(&self, node: FabricNodeId, rx: RxHandler) {
        let mut guard = self.endpoints[node.0 as usize].handler.lock();
        assert!(guard.is_none(), "node {} attached twice", node.0);
        *guard = Some(rx);
    }

    fn inject(&self, sim: &Sim, src: FabricNodeId, dst: FabricNodeId, payload: bytes::Bytes) {
        self.inject_traced(sim, src, dst, payload, None);
    }

    fn inject_traced(
        &self,
        sim: &Sim,
        src: FabricNodeId,
        dst: FabricNodeId,
        payload: bytes::Bytes,
        trace: Option<suca_myrinet::PacketTrace>,
    ) {
        assert!(
            payload.len() <= self.cfg.mtu,
            "packet of {} B exceeds mesh MTU {}",
            payload.len(),
            self.cfg.mtu
        );
        sim.add_count("fabric.injected", 1);
        let pkt = suca_myrinet::fabric::Packet {
            src,
            dst,
            payload,
            corrupted: false,
            route: self.route(src, dst),
            route_pos: 0,
            trace,
        };
        self.uplinks[src.0 as usize].send(sim, pkt);
    }

    fn set_node_link_up(&self, _sim: &Sim, node: FabricNodeId, up: bool) -> bool {
        let Some(uplink) = self.uplinks.get(node.0 as usize) else {
            return false;
        };
        uplink.set_up(up);
        self.downlinks[node.0 as usize].set_up(up);
        true
    }

    fn set_switch_port_dead(&self, _sim: &Sim, switch: usize, port: usize, dead: bool) -> bool {
        match self.routers.get(switch) {
            Some(r) => r.set_port_dead(port, dead),
            None => false,
        }
    }

    fn num_switches(&self) -> usize {
        self.routers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use parking_lot::Mutex;
    use suca_sim::RunOutcome;

    fn listen(net: &Arc<Mesh>, node: u32) -> Arc<Mutex<Vec<Vec<u8>>>> {
        let log = Arc::new(Mutex::new(Vec::new()));
        let l = log.clone();
        net.attach(
            FabricNodeId(node),
            Box::new(move |_, pkt| l.lock().push(pkt.payload.to_vec())),
        );
        log
    }

    #[test]
    fn xy_route_shape() {
        let sim = Sim::new(1);
        let m = Mesh::build(&sim, 4, 4, 16, MeshConfig::dawning3000());
        // (0,0) -> (3,2): 3 east + 2 south + host eject = 6 hops.
        assert_eq!(m.hops(FabricNodeId(0), FabricNodeId(11)), 6);
        // Self-delivery: just the host port.
        assert_eq!(m.hops(FabricNodeId(5), FabricNodeId(5)), 1);
    }

    #[test]
    fn delivers_across_the_mesh() {
        let sim = Sim::new(1);
        let m = Mesh::build(&sim, 4, 4, 16, MeshConfig::dawning3000());
        let log = listen(&m, 15);
        m.inject(
            &sim,
            FabricNodeId(0),
            FabricNodeId(15),
            Bytes::from_static(b"diag"),
        );
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(*log.lock(), vec![b"diag".to_vec()]);
    }

    #[test]
    fn all_pairs_reachable_in_partial_mesh() {
        let sim = Sim::new(1);
        // 70 nodes in a 9x8 grid (2 unpopulated positions).
        let m = Mesh::build_square(&sim, 70, MeshConfig::dawning3000());
        let logs: Vec<_> = (0..70).map(|n| listen(&m, n)).collect();
        for src in 0..70u32 {
            for dst in 0..70u32 {
                m.inject(
                    &sim,
                    FabricNodeId(src),
                    FabricNodeId(dst),
                    Bytes::from_static(b"p"),
                );
            }
        }
        assert_eq!(sim.run(), RunOutcome::Completed);
        for (n, log) in logs.iter().enumerate() {
            assert_eq!(log.lock().len(), 70, "node {n}");
        }
    }

    #[test]
    fn farther_nodes_take_longer() {
        let time_to = |dst: u32| {
            let sim = Sim::new(1);
            let m = Mesh::build(&sim, 8, 8, 64, MeshConfig::dawning3000());
            let t = Arc::new(Mutex::new(0u64));
            let t2 = t.clone();
            m.attach(
                FabricNodeId(dst),
                Box::new(move |s, _| *t2.lock() = s.now().as_ns()),
            );
            m.inject(
                &sim,
                FabricNodeId(0),
                FabricNodeId(dst),
                Bytes::from_static(b"t"),
            );
            sim.run();
            let v = *t.lock();
            v
        };
        let near = time_to(1);
        let far = time_to(63);
        assert!(near > 0 && far > near, "near={near} far={far}");
    }

    #[test]
    fn mesh_chaos_hooks_down_host_cable_and_router_channel() {
        let sim = Sim::new(1);
        let m = Mesh::build(&sim, 2, 2, 4, MeshConfig::dawning3000());
        assert_eq!(m.num_switches(), 4);
        let log = listen(&m, 1);
        assert!(m.set_node_link_up(&sim, FabricNodeId(1), false));
        assert!(!m.set_node_link_up(&sim, FabricNodeId(9), false));
        m.inject(
            &sim,
            FabricNodeId(0),
            FabricNodeId(1),
            Bytes::from_static(b"a"),
        );
        m.inject(
            &sim,
            FabricNodeId(1),
            FabricNodeId(0),
            Bytes::from_static(b"b"),
        );
        sim.run();
        assert!(log.lock().is_empty());
        assert_eq!(sim.get_count("link.down_drops"), 2);
        assert!(m.set_node_link_up(&sim, FabricNodeId(1), true));
        // Kill router 0's east channel: node 0 -> node 1 now dies in-switch.
        assert!(m.set_switch_port_dead(&sim, 0, port::EAST as usize, true));
        assert!(!m.set_switch_port_dead(&sim, 99, 0, true));
        m.inject(
            &sim,
            FabricNodeId(0),
            FabricNodeId(1),
            Bytes::from_static(b"c"),
        );
        sim.run();
        assert!(log.lock().is_empty());
        assert_eq!(sim.get_count("switch.dead_port_drop"), 1);
        assert!(m.set_switch_port_dead(&sim, 0, port::EAST as usize, false));
        m.inject(
            &sim,
            FabricNodeId(0),
            FabricNodeId(1),
            Bytes::from_static(b"d"),
        );
        sim.run();
        assert_eq!(log.lock().len(), 1);
    }

    #[test]
    fn mesh_and_myrinet_share_the_fabric_interface() {
        // Compile-time check that both SANs are interchangeable.
        fn takes_fabric(_f: &dyn Fabric) {}
        let sim = Sim::new(1);
        let mesh = Mesh::build(&sim, 2, 2, 4, MeshConfig::dawning3000());
        let myr = suca_myrinet::Myrinet::build(&sim, 4, suca_myrinet::MyrinetConfig::dawning3000());
        takes_fabric(mesh.as_ref());
        takes_fabric(myr.as_ref());
    }
}
