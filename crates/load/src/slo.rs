//! Deterministic SLO reports: per-op-class latency percentiles, goodput,
//! and full request accounting, serialized as stable JSON under
//! `target/slo/` (override with `SUCA_SLO_DIR`).
//!
//! The JSON is hand-rolled with a fixed key order and `{:.3}` floats so a
//! fixed-seed run is byte-identical — CI diffs two runs of the clean
//! variant to prove it.

use std::fmt::Write as _;
use std::path::PathBuf;

use suca_sim::Sim;

use crate::gen::LoadStats;
use crate::kv::op_name;
use crate::kv::{OP_GET, OP_PUT, OP_SCAN};

/// Where SLO reports land: `$SUCA_SLO_DIR` or `target/slo`.
pub fn slo_dir() -> PathBuf {
    std::env::var_os("SUCA_SLO_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/slo"))
}

/// Latency summary for one op class (microseconds).
#[derive(Clone, Debug)]
pub struct ClassSlo {
    /// Op-class label (`get` / `put` / `scan`).
    pub name: String,
    /// Completed ops in this class.
    pub count: u64,
    /// Mean latency.
    pub mean_us: f64,
    /// Median.
    pub p50_us: f64,
    /// 95th percentile.
    pub p95_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// 99.9th percentile — the report's tail bucket.
    pub p999_us: f64,
    /// Worst observed.
    pub max_us: f64,
}

/// Per-tenant section of a mixed-workload report: outcome accounting for
/// one tenant's generators plus its own per-op-class latency summaries
/// (histograms named `rpc.lat.t{N}.{class}`). The identity
/// `completed + shed + timed_out == issued` must hold *per tenant*.
#[derive(Clone, Debug)]
pub struct TenantSlo {
    /// Workload label (`kv` / `pubsub` / `pipeline`).
    pub name: String,
    /// Wire tenant id.
    pub tenant: u8,
    /// Admission priority label (`high` / `low`).
    pub priority: String,
    /// Requests this tenant's generators handed to the RPC layer.
    pub issued: u64,
    /// Requests that got responses.
    pub completed: u64,
    /// Requests shed by admission control (final outcome).
    pub shed: u64,
    /// Requests that timed out (final outcome).
    pub timed_out: u64,
    /// Arrivals dropped client-side.
    pub client_shed: u64,
    /// Per-op-class latency summaries for this tenant alone.
    pub classes: Vec<ClassSlo>,
}

impl TenantSlo {
    /// True when every issued request resolved exactly once.
    pub fn accounted(&self) -> bool {
        self.completed + self.shed + self.timed_out == self.issued
    }

    /// Assemble one tenant section from the tenant's aggregated generator
    /// tallies plus its labelled latency histograms
    /// (`rpc.lat.{label}.{class}`, as created by `LatencyHists::named`).
    pub fn gather(
        sim: &Sim,
        name: &str,
        tenant: u8,
        priority: &str,
        label: &str,
        class_names: [&str; 4],
        stats: &LoadStats,
    ) -> TenantSlo {
        let snap = sim.metrics().snapshot();
        let mut classes = Vec::new();
        for cname in class_names {
            if let Some(h) = snap.histograms.get(&format!("rpc.lat.{label}.{cname}")) {
                if h.count > 0 {
                    classes.push(ClassSlo {
                        name: cname.to_string(),
                        count: h.count,
                        mean_us: h.mean() / 1_000.0,
                        p50_us: h.p50() / 1_000.0,
                        p95_us: h.p95() / 1_000.0,
                        p99_us: h.p99() / 1_000.0,
                        p999_us: h.p999() / 1_000.0,
                        max_us: h.max as f64 / 1_000.0,
                    });
                }
            }
        }
        TenantSlo {
            name: name.to_string(),
            tenant,
            priority: priority.to_string(),
            issued: stats.issued,
            completed: stats.completed,
            shed: stats.shed,
            timed_out: stats.timed_out,
            client_shed: stats.client_shed,
            classes,
        }
    }
}

/// One run variant's service-level report.
#[derive(Clone, Debug)]
pub struct SloReport {
    /// Variant label (`clean` / `overload` / `loss5`).
    pub variant: String,
    /// Fabric label (`myrinet` / `mesh`).
    pub fabric: String,
    /// Cluster size.
    pub nodes: u32,
    /// Simulated-user population.
    pub users: u64,
    /// Requests entering the RPC layer.
    pub issued: u64,
    /// Requests that got responses.
    pub completed: u64,
    /// Requests shed by server admission control (final outcome).
    pub shed: u64,
    /// Requests that timed out (final outcome).
    pub timed_out: u64,
    /// Arrivals dropped client-side before entering the RPC layer.
    pub client_shed: u64,
    /// Retry attempts beyond first sends.
    pub retries: u64,
    /// Late/duplicate responses discarded by clients.
    pub late_responses: u64,
    /// Requests terminated because the kernel declared the destination
    /// dead (0 outside chaos runs).
    pub dead_dests: u64,
    /// Shard re-homings the generators performed in response (0 outside
    /// chaos runs).
    pub re_homed: u64,
    /// Shed replies sent by servers (larger than `shed`: retries may
    /// later succeed).
    pub srv_sheds: u64,
    /// Highest admission-queue depth any server saw (must stay ≤ the
    /// configured bound — this is the boundedness proof).
    pub srv_queue_high_water: u64,
    /// Watchdog stalls during the run (0 for healthy variants).
    pub watchdog_stalls: u64,
    /// Virtual wall-clock of the whole run.
    pub elapsed_us: f64,
    /// Completed requests per virtual second.
    pub goodput_ops_per_s: f64,
    /// Per-op-class latency summaries (fixed get/put/scan order).
    pub classes: Vec<ClassSlo>,
    /// Per-tenant sections (empty for single-workload runs; populated by
    /// mixed-workload harnesses via [`TenantSlo::gather`]).
    pub tenants: Vec<TenantSlo>,
}

impl SloReport {
    /// Assemble a report from the sim's metrics registry plus the
    /// generators' aggregated tallies.
    pub fn gather(
        sim: &Sim,
        variant: &str,
        fabric: &str,
        nodes: u32,
        users: u64,
        stats: &LoadStats,
    ) -> SloReport {
        let snap = sim.metrics().snapshot();
        let elapsed_ns = sim.now().as_ns();
        let elapsed_us = elapsed_ns as f64 / 1_000.0;
        let goodput = if elapsed_ns == 0 {
            0.0
        } else {
            stats.completed as f64 / (elapsed_ns as f64 / 1e9)
        };
        let mut classes = Vec::new();
        for op in [OP_GET, OP_PUT, OP_SCAN] {
            let name = op_name(op);
            if let Some(h) = snap.histograms.get(&format!("rpc.lat.{name}")) {
                if h.count > 0 {
                    classes.push(ClassSlo {
                        name: name.to_string(),
                        count: h.count,
                        mean_us: h.mean() / 1_000.0,
                        p50_us: h.p50() / 1_000.0,
                        p95_us: h.p95() / 1_000.0,
                        p99_us: h.p99() / 1_000.0,
                        p999_us: h.p999() / 1_000.0,
                        max_us: h.max as f64 / 1_000.0,
                    });
                }
            }
        }
        SloReport {
            variant: variant.to_string(),
            fabric: fabric.to_string(),
            nodes,
            users,
            issued: stats.issued,
            completed: stats.completed,
            shed: stats.shed,
            timed_out: stats.timed_out,
            client_shed: stats.client_shed,
            retries: snap.counter("rpc.cli_retries"),
            late_responses: snap.counter("rpc.cli_late_responses"),
            dead_dests: stats.dead_dest,
            re_homed: stats.re_homed,
            srv_sheds: snap.counter("rpc.srv_sheds"),
            srv_queue_high_water: snap
                .gauges
                .get("rpc.srv_queue_depth")
                .map(|g| g.high_water)
                .unwrap_or(0),
            watchdog_stalls: snap.counter("watchdog.stalls"),
            elapsed_us,
            goodput_ops_per_s: goodput,
            classes,
            tenants: Vec::new(),
        }
    }

    /// True when every issued request resolved exactly once.
    pub fn accounted(&self) -> bool {
        self.completed + self.shed + self.timed_out == self.issued
    }

    /// Stable JSON (fixed key order, `{:.3}` floats, trailing newline).
    pub fn to_json(&self) -> String {
        let mut o = String::new();
        o.push_str("{\n");
        let _ = writeln!(o, "  \"variant\": \"{}\",", self.variant);
        let _ = writeln!(o, "  \"fabric\": \"{}\",", self.fabric);
        let _ = writeln!(o, "  \"nodes\": {},", self.nodes);
        let _ = writeln!(o, "  \"users\": {},", self.users);
        let _ = writeln!(o, "  \"issued\": {},", self.issued);
        let _ = writeln!(o, "  \"completed\": {},", self.completed);
        let _ = writeln!(o, "  \"shed\": {},", self.shed);
        let _ = writeln!(o, "  \"timed_out\": {},", self.timed_out);
        let _ = writeln!(o, "  \"client_shed\": {},", self.client_shed);
        let _ = writeln!(o, "  \"retries\": {},", self.retries);
        let _ = writeln!(o, "  \"late_responses\": {},", self.late_responses);
        let _ = writeln!(o, "  \"dead_dests\": {},", self.dead_dests);
        let _ = writeln!(o, "  \"re_homed\": {},", self.re_homed);
        let _ = writeln!(o, "  \"srv_sheds\": {},", self.srv_sheds);
        let _ = writeln!(
            o,
            "  \"srv_queue_high_water\": {},",
            self.srv_queue_high_water
        );
        let _ = writeln!(o, "  \"watchdog_stalls\": {},", self.watchdog_stalls);
        let _ = writeln!(o, "  \"elapsed_us\": {:.3},", self.elapsed_us);
        let _ = writeln!(o, "  \"goodput_ops_per_s\": {:.3},", self.goodput_ops_per_s);
        fn class_json(o: &mut String, indent: &str, classes: &[ClassSlo]) {
            for (i, c) in classes.iter().enumerate() {
                if i > 0 {
                    o.push(',');
                }
                o.push('\n');
                o.push_str(indent);
                let _ = write!(
                    o,
                    "{{\"name\": \"{}\", \"count\": {}, \"mean_us\": {:.3}, \"p50_us\": {:.3}, \
                     \"p95_us\": {:.3}, \"p99_us\": {:.3}, \"p999_us\": {:.3}, \"max_us\": {:.3}}}",
                    c.name, c.count, c.mean_us, c.p50_us, c.p95_us, c.p99_us, c.p999_us, c.max_us
                );
            }
        }
        o.push_str("  \"classes\": [");
        class_json(&mut o, "    ", &self.classes);
        if !self.classes.is_empty() {
            o.push_str("\n  ");
        }
        o.push_str("],\n");
        o.push_str("  \"tenants\": [");
        for (i, t) in self.tenants.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str("\n    {\n");
            let _ = writeln!(o, "      \"name\": \"{}\",", t.name);
            let _ = writeln!(o, "      \"tenant\": {},", t.tenant);
            let _ = writeln!(o, "      \"priority\": \"{}\",", t.priority);
            let _ = writeln!(o, "      \"issued\": {},", t.issued);
            let _ = writeln!(o, "      \"completed\": {},", t.completed);
            let _ = writeln!(o, "      \"shed\": {},", t.shed);
            let _ = writeln!(o, "      \"timed_out\": {},", t.timed_out);
            let _ = writeln!(o, "      \"client_shed\": {},", t.client_shed);
            o.push_str("      \"classes\": [");
            class_json(&mut o, "        ", &t.classes);
            if !t.classes.is_empty() {
                o.push_str("\n      ");
            }
            o.push_str("]\n    }");
        }
        if !self.tenants.is_empty() {
            o.push_str("\n  ");
        }
        o.push_str("]\n}\n");
        o
    }

    /// Write to `slo_dir()/{file_stem}.json` and return the path.
    pub fn write_named(&self, file_stem: &str) -> std::io::Result<PathBuf> {
        let dir = slo_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{file_stem}.json"));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Write to the canonical `{variant}_{fabric}.json` name.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let stem = format!("{}_{}", self.variant, self.fabric);
        self.write_named(&stem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_stable_and_parsable_shape() {
        let r = SloReport {
            variant: "clean".into(),
            fabric: "myrinet".into(),
            nodes: 4,
            users: 100,
            issued: 10,
            completed: 9,
            shed: 1,
            timed_out: 0,
            client_shed: 0,
            retries: 2,
            late_responses: 0,
            dead_dests: 0,
            re_homed: 0,
            srv_sheds: 3,
            srv_queue_high_water: 16,
            watchdog_stalls: 0,
            elapsed_us: 1234.5,
            goodput_ops_per_s: 7293.4567,
            classes: vec![ClassSlo {
                name: "get".into(),
                count: 9,
                mean_us: 12.0,
                p50_us: 10.0,
                p95_us: 20.0,
                p99_us: 30.0,
                p999_us: 40.0,
                max_us: 41.0,
            }],
            tenants: vec![TenantSlo {
                name: "kv".into(),
                tenant: 0,
                priority: "high".into(),
                issued: 10,
                completed: 9,
                shed: 1,
                timed_out: 0,
                client_shed: 0,
                classes: vec![ClassSlo {
                    name: "get".into(),
                    count: 9,
                    mean_us: 12.0,
                    p50_us: 10.0,
                    p95_us: 20.0,
                    p99_us: 30.0,
                    p999_us: 40.0,
                    max_us: 41.0,
                }],
            }],
        };
        assert!(r.accounted());
        assert!(r.tenants[0].accounted());
        let j = r.to_json();
        assert_eq!(j, r.to_json());
        assert!(j.contains("\"goodput_ops_per_s\": 7293.457,"));
        assert!(j.contains("\"p999_us\": 40.000"));
        assert!(j.contains("\"tenants\": ["));
        assert!(j.contains("\"priority\": \"high\","));
        assert!(j.ends_with("}\n"));
    }
}
