//! # suca-load — deterministic workload generation and SLO reporting
//!
//! The ROADMAP's north star is BCL serving heavy request traffic from
//! many thousands of users. This crate models exactly that, on top of
//! [`suca_rpc`]:
//!
//! * [`kv`] — a reference in-memory KV service (GET/PUT/SCAN op classes
//!   with calibrated service costs; SCAN responses are large enough to
//!   exercise the RMA response path).
//! * [`gen`] — open-loop (fixed-seed Poisson-like arrivals) and
//!   closed-loop (think-time users) generators. Thousands of simulated
//!   users are multiplexed over a few dozen client actors — one
//!   [`suca_rpc::RpcClient`] per actor — because each spawned simulation
//!   process is an OS thread.
//! * [`slo`] — a deterministic SLO report (per-op-class p50/p95/p99/p99.9,
//!   goodput, shed/timeout/retry accounting) written to `target/slo/`.
//!
//! Everything draws from [`suca_sim::SimRng`] forks, so a fixed master
//! seed reproduces the workload byte-for-byte.

#![warn(missing_docs)]

pub mod gen;
pub mod kv;
pub mod slo;

pub use gen::{
    absorb_completion, run_closed_loop, run_open_loop, ClosedLoopCfg, LatencyHists, LoadStats, Mix,
    OpenLoopCfg, ShardMap, KV_CLASSES,
};
pub use kv::{KvCosts, KvService, OP_GET, OP_PUT, OP_SCAN, SCAN_BYTES, VALUE_BYTES};
pub use slo::{slo_dir, ClassSlo, SloReport, TenantSlo};
