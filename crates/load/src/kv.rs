//! Reference in-memory KV service driven through the RPC layer.
//!
//! Values are *deterministic functions of the key* (materialized on first
//! read), so a client can verify any GET or SCAN response byte-for-byte
//! without coordinating prior PUTs — essential when thousands of users
//! hit sharded servers in arbitrary completion order.

use std::collections::HashMap;

use suca_sim::{ActorCtx, SimDuration};

/// GET op class: request is an 8-byte LE key, response is the value.
pub const OP_GET: u8 = 0;
/// PUT op class: request is key + new value, response echoes the key.
pub const OP_PUT: u8 = 1;
/// SCAN op class: request is an 8-byte LE key; the response is
/// [`SCAN_BYTES`] long — deliberately larger than a system-channel pool
/// buffer so it exercises the RMA response path.
pub const OP_SCAN: u8 = 2;

/// Bytes in a generated value.
pub const VALUE_BYTES: usize = 32;
/// Bytes in a SCAN response (> 4 KB ⇒ RMA-delivered).
pub const SCAN_BYTES: usize = 8 * 1024;

/// Human name of an op class (histogram/report labels).
pub fn op_name(op: u8) -> &'static str {
    match op {
        OP_GET => "get",
        OP_PUT => "put",
        OP_SCAN => "scan",
        _ => "other",
    }
}

fn mix64(mut x: u64) -> u64 {
    // splitmix64 finalizer — the same mixing the sim RNG builds on.
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// The canonical value for `key` (what a GET returns before any PUT).
pub fn value_for(key: u64) -> Vec<u8> {
    det_bytes(key, VALUE_BYTES)
}

/// The canonical SCAN payload for `key`.
pub fn scan_for(key: u64) -> Vec<u8> {
    det_bytes(key ^ 0x5CA7, SCAN_BYTES)
}

fn det_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut i = 0u64;
    while out.len() < len {
        out.extend_from_slice(&mix64(seed.wrapping_add(i)).to_le_bytes());
        i += 1;
    }
    out.truncate(len);
    out
}

/// Encode a GET request for `key`.
pub fn enc_get(key: u64) -> Vec<u8> {
    key.to_le_bytes().to_vec()
}

/// Encode a PUT request storing `value` at `key`.
pub fn enc_put(key: u64, value: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + value.len());
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(value);
    out
}

/// Encode a SCAN request starting at `key`.
pub fn enc_scan(key: u64) -> Vec<u8> {
    key.to_le_bytes().to_vec()
}

/// Virtual service time per op class (the handler sleeps this long,
/// modeling CPU + storage work; the RPC/BCL costs come on top).
#[derive(Clone, Copy, Debug)]
pub struct KvCosts {
    /// GET service time.
    pub get: SimDuration,
    /// PUT service time.
    pub put: SimDuration,
    /// SCAN service time.
    pub scan: SimDuration,
}

impl Default for KvCosts {
    fn default() -> Self {
        KvCosts {
            get: SimDuration::from_ns(1_500),
            put: SimDuration::from_ns(2_500),
            scan: SimDuration::from_us(12),
        }
    }
}

/// One server shard's state + service-cost model. Plug into
/// [`suca_rpc::RpcServer::serve_until_idle`] as
/// `&mut |ctx, op, req| svc.handle(ctx, op, req)`.
pub struct KvService {
    store: HashMap<u64, Vec<u8>>,
    costs: KvCosts,
}

impl KvService {
    /// Empty store with the given cost model.
    pub fn new(costs: KvCosts) -> Self {
        KvService {
            store: HashMap::new(),
            costs,
        }
    }

    /// Keys explicitly PUT so far.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when no PUT has landed yet.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Execute one request. Malformed requests get an empty response (the
    /// client treats a wrong-length payload as a failed verification, not
    /// a protocol error — the RPC layer already counted the frame good),
    /// but are *counted* (`kv.malformed` / `kv.bad_op`) so a health rule
    /// can watch servers receiving garbage.
    pub fn handle(&mut self, ctx: &mut ActorCtx, op: u8, req: &[u8]) -> Vec<u8> {
        if req.len() < 8 {
            ctx.sim().metrics().add("kv.malformed", 1);
            return Vec::new();
        }
        let key = u64::from_le_bytes([
            req[0], req[1], req[2], req[3], req[4], req[5], req[6], req[7],
        ]);
        match op {
            OP_GET => {
                ctx.sleep(self.costs.get);
                self.store
                    .get(&key)
                    .cloned()
                    .unwrap_or_else(|| value_for(key))
            }
            OP_PUT => {
                ctx.sleep(self.costs.put);
                self.store.insert(key, req[8..].to_vec());
                key.to_le_bytes().to_vec()
            }
            OP_SCAN => {
                ctx.sleep(self.costs.scan);
                scan_for(key)
            }
            _ => {
                ctx.sim().metrics().add("kv.bad_op", 1);
                Vec::new()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_are_deterministic_and_sized() {
        assert_eq!(value_for(7), value_for(7));
        assert_ne!(value_for(7), value_for(8));
        assert_eq!(value_for(7).len(), VALUE_BYTES);
        assert_eq!(scan_for(7).len(), SCAN_BYTES);
        assert_eq!(scan_for(7), scan_for(7));
    }
}
