//! Deterministic open- and closed-loop load generators.
//!
//! Each generator runs inside one simulation actor and drives one
//! [`RpcClient`], multiplexing many simulated users over it. All
//! randomness comes from a caller-supplied [`SimRng`] fork, so a fixed
//! master seed reproduces arrivals, op mixes, and key choices exactly.

use suca_bcl::{BclError, ProcAddr};
use suca_rpc::{RpcClient, RpcCompletion, RpcStatus};
use suca_sim::{ActorCtx, HealthEngine, Histogram, Metrics, SimDuration, SimRng, SimTime};

use crate::kv::{enc_get, enc_put, enc_scan, value_for, OP_GET, OP_PUT, OP_SCAN};

/// Operation mix and key-space shape shared by both generators.
#[derive(Clone, Copy, Debug)]
pub struct Mix {
    /// Probability an op is a SCAN (large RMA-delivered response).
    pub scan_ratio: f64,
    /// Probability an op is a PUT (the rest are GETs).
    pub put_ratio: f64,
    /// Keys per user; user `i` owns `[i * keys_per_user, (i+1) * ...)`,
    /// so verification never races another user's PUT.
    pub keys_per_user: u64,
}

impl Default for Mix {
    fn default() -> Self {
        Mix {
            scan_ratio: 0.05,
            put_ratio: 0.25,
            keys_per_user: 64,
        }
    }
}

/// Per-actor outcome tallies. `completed + shed + timed_out == issued`
/// must hold once the generator returns — every request is accounted for
/// exactly once.
#[derive(Clone, Copy, Debug, Default)]
pub struct LoadStats {
    /// Requests handed to the RPC layer.
    pub issued: u64,
    /// Requests that got a response.
    pub completed: u64,
    /// Requests shed by server admission control (after retries).
    pub shed: u64,
    /// Requests that timed out on their final attempt.
    pub timed_out: u64,
    /// Open-loop arrivals dropped *client-side* (no free arena slot).
    pub client_shed: u64,
    /// GET/SCAN responses whose payload failed verification.
    pub bad_payloads: u64,
    /// Ops that hit a dead destination: in-flight ones also count in
    /// `timed_out` and issue-time refusals in `client_shed`, so the
    /// accounting identity is unchanged by chaos runs.
    pub dead_dest: u64,
    /// Shard re-homings performed after dead destinations.
    pub re_homed: u64,
}

impl LoadStats {
    /// Fold another actor's tallies into this one.
    pub fn merge(&mut self, o: &LoadStats) {
        self.issued += o.issued;
        self.completed += o.completed;
        self.shed += o.shed;
        self.timed_out += o.timed_out;
        self.client_shed += o.client_shed;
        self.bad_payloads += o.bad_payloads;
        self.dead_dest += o.dead_dest;
        self.re_homed += o.re_homed;
    }

    /// True when every issued request resolved exactly once.
    pub fn accounted(&self) -> bool {
        self.completed + self.shed + self.timed_out == self.issued
    }
}

/// Shared per-op-class latency histograms (nanoseconds). The unlabelled
/// default is the KV convention `rpc.lat.{get,put,scan,other}`; labelled
/// sets (`rpc.lat.t1.{publish,…}`) back the per-tenant SLO sections of a
/// mixed-workload report.
#[derive(Clone)]
pub struct LatencyHists {
    hists: [Histogram; 4],
}

/// Histogram / SLO-report labels of the KV workload in op-class order.
pub const KV_CLASSES: [&str; 4] = ["get", "put", "scan", "other"];

impl LatencyHists {
    /// Resolve (or create) the default KV histogram set in `m` — all
    /// actors share them.
    pub fn new(m: &Metrics) -> Self {
        Self::named(m, "", KV_CLASSES)
    }

    /// Resolve (or create) a labelled histogram set: names are
    /// `rpc.lat.{label}.{class}` (`rpc.lat.{class}` with an empty label),
    /// one per op class in class-index order.
    pub fn named(m: &Metrics, label: &str, classes: [&str; 4]) -> Self {
        let name = |c: &str| {
            if label.is_empty() {
                format!("rpc.lat.{c}")
            } else {
                format!("rpc.lat.{label}.{c}")
            }
        };
        LatencyHists {
            hists: classes.map(|c| m.histogram(&name(c))),
        }
    }

    /// Record one completed-op latency (classes ≥ 3 fold into the last
    /// slot, mirroring the SLO-window convention).
    pub fn record(&self, op: u8, ns: u64) {
        self.hists[(op as usize).min(3)].record(ns);
    }
}

/// Fold one completion into the tallies and latency histograms — the
/// outcome mapping shared by every driver that does not re-home shards
/// (pub-sub, pipeline): dead destinations count alongside their timeout so
/// the accounting identity is chaos-proof.
pub fn absorb_completion(c: &RpcCompletion, stats: &mut LoadStats, hists: &LatencyHists) {
    match c.status {
        RpcStatus::Ok => {
            stats.completed += 1;
            hists.record(c.op_class, c.latency.as_ns());
        }
        RpcStatus::Shed => stats.shed += 1,
        RpcStatus::TimedOut => stats.timed_out += 1,
        RpcStatus::DeadDestination => {
            stats.timed_out += 1;
            stats.dead_dest += 1;
        }
    }
}

/// Draw one op for `user`: `(op_class, key, request payload)`.
fn pick_op(rng: &mut SimRng, mix: &Mix, user: u64) -> (u8, u64, Vec<u8>) {
    let key = user * mix.keys_per_user + rng.below(mix.keys_per_user);
    let r = rng.unit_f64();
    if r < mix.scan_ratio {
        (OP_SCAN, key, enc_scan(key))
    } else if r < mix.scan_ratio + mix.put_ratio {
        (OP_PUT, key, enc_put(key, &value_for(key)))
    } else {
        (OP_GET, key, enc_get(key))
    }
}

/// Key-sharded routing with replica failover. Shard `s` (= `key % n`)
/// starts on `servers[s]`; when the RPC layer reports a destination dead
/// every shard homed there moves to the next server in ring order (its
/// replica), so subsequent ops route around the dead node. With no
/// failures the mapping is exactly the classic `key % n` choice, keeping
/// clean runs byte-identical.
pub struct ShardMap {
    servers: Vec<ProcAddr>,
    primary: Vec<usize>,
}

impl ShardMap {
    /// One shard per server, each initially homed to itself.
    pub fn new(servers: Vec<ProcAddr>) -> ShardMap {
        assert!(!servers.is_empty(), "shard map needs servers");
        let n = servers.len();
        ShardMap {
            servers,
            primary: (0..n).collect(),
        }
    }

    /// Current home of `key`'s shard.
    pub fn addr_for(&self, key: u64) -> ProcAddr {
        let s = (key % self.servers.len() as u64) as usize;
        self.servers[self.primary[s]]
    }

    /// Move every shard homed on `dead` to its ring successor. Returns the
    /// number of shards moved (0 when a racing completion already moved
    /// them). A dead replica just re-homes again on the next report.
    pub fn re_home_away_from(&mut self, dead: ProcAddr) -> u64 {
        let n = self.servers.len();
        let mut moved = 0;
        for p in &mut self.primary {
            if self.servers[*p] == dead {
                *p = (*p + 1) % n;
                moved += 1;
            }
        }
        moved
    }
}

/// Verify a successful response against the deterministic value model.
/// PUTs always pass (the ack echoes the key); a GET of a key this run may
/// have PUT is also always `value_for(key)` since PUTs store exactly that.
fn payload_ok(c: &RpcCompletion) -> bool {
    match c.op_class {
        OP_GET => c.payload.len() == crate::kv::VALUE_BYTES,
        OP_SCAN => c.payload.len() == crate::kv::SCAN_BYTES,
        _ => true,
    }
}

#[allow(clippy::too_many_arguments)]
fn absorb(
    now: SimTime,
    tenant: u8,
    comps: Vec<RpcCompletion>,
    stats: &mut LoadStats,
    hists: &LatencyHists,
    shards: &mut ShardMap,
    health: &HealthEngine,
    mut on_done: impl FnMut(u64, SimTime),
) {
    for c in comps {
        match c.status {
            RpcStatus::Ok => {
                stats.completed += 1;
                hists.record(c.op_class, c.latency.as_ns());
                if !payload_ok(&c) {
                    stats.bad_payloads += 1;
                    // The RPC layer observed this op as Ok; the verifier
                    // knows better. Error-only observation so burn-rate
                    // rules see corruption too.
                    health.observe_error(tenant, c.op_class);
                }
            }
            RpcStatus::Shed => stats.shed += 1,
            RpcStatus::TimedOut => stats.timed_out += 1,
            RpcStatus::DeadDestination => {
                // Counted inside `timed_out` so the accounting identity
                // (`completed + shed + timed_out == issued`) is chaos-proof;
                // tracked separately so reports can show failover work.
                stats.timed_out += 1;
                stats.dead_dest += 1;
                stats.re_homed += shards.re_home_away_from(c.dst);
            }
        }
        on_done(c.token, now);
    }
}

/// Closed-loop generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct ClosedLoopCfg {
    /// Simulated users multiplexed over this actor's client.
    pub users: u32,
    /// Requests each user issues before finishing.
    pub ops_per_user: u32,
    /// Think-time bounds (uniform draw between them, exclusive of max).
    pub think_min: SimDuration,
    /// See `think_min`.
    pub think_max: SimDuration,
    /// Op mix.
    pub mix: Mix,
    /// First user index on this actor (keeps key spaces cluster-unique).
    pub user_base: u64,
}

fn think(rng: &mut SimRng, min: SimDuration, max: SimDuration) -> SimDuration {
    SimDuration::from_ns(rng.range(min.as_ns(), max.as_ns()))
}

/// Run `cfg.users` closed-loop users to completion: each user thinks,
/// issues one request, waits for its resolution, and repeats
/// `ops_per_user` times. Returns this actor's tallies.
pub fn run_closed_loop(
    ctx: &mut ActorCtx,
    client: &mut RpcClient,
    servers: &[ProcAddr],
    rng: &mut SimRng,
    cfg: &ClosedLoopCfg,
    hists: &LatencyHists,
) -> LoadStats {
    assert!(!servers.is_empty(), "closed loop needs servers");
    assert!(
        cfg.think_min < cfg.think_max,
        "think_min must be < think_max"
    );
    struct User {
        ready_at: SimTime,
        done: u32,
        waiting: bool,
    }
    let sim = ctx.sim().clone();
    let tenant = client.tenant().0;
    let c_bad_tokens = sim.metrics().counter("rpc.cli_bad_tokens");
    let start = ctx.now();
    let mut users: Vec<User> = (0..cfg.users)
        .map(|_| User {
            // Stagger starts across one think window so 2k users don't
            // stampede the fabric at t=0.
            ready_at: start + think(rng, cfg.think_min, cfg.think_max),
            done: 0,
            waiting: false,
        })
        .collect();
    let mut stats = LoadStats::default();
    let mut shards = ShardMap::new(servers.to_vec());
    let mut remaining = u64::from(cfg.users) * u64::from(cfg.ops_per_user);
    while remaining > 0 || client.in_flight() > 0 {
        let now = ctx.now();
        let mut progressed = false;
        for (i, u) in users.iter_mut().enumerate() {
            if u.waiting || u.done >= cfg.ops_per_user || u.ready_at > now {
                continue;
            }
            if !client.can_issue() {
                break;
            }
            let user_id = cfg.user_base + i as u64;
            let (op, key, payload) = pick_op(rng, &cfg.mix, user_id);
            let dst = shards.addr_for(key);
            match client.issue(ctx, dst, op, &payload, i as u64) {
                Ok(_) => {
                    stats.issued += 1;
                    u.waiting = true;
                    progressed = true;
                }
                Err(e) => {
                    // Transport refused outright (not RingFull — that is
                    // retried inside issue). Nothing entered the RPC
                    // layer, so this op counts only as a client-side drop.
                    if matches!(e, BclError::PathDead(_)) {
                        stats.dead_dest += 1;
                        stats.re_homed += shards.re_home_away_from(dst);
                    }
                    stats.client_shed += 1;
                    u.done += 1;
                    remaining -= 1;
                    u.ready_at = now + think(rng, cfg.think_min, cfg.think_max);
                }
            }
        }
        let comps = client.advance(ctx);
        progressed |= !comps.is_empty();
        absorb(
            ctx.now(),
            tenant,
            comps,
            &mut stats,
            hists,
            &mut shards,
            sim.health(),
            |tok, at| {
                // A token outside the user table is a corrupted completion:
                // count it, never index past the table.
                let Some(u) = users.get_mut(tok as usize) else {
                    c_bad_tokens.inc();
                    return;
                };
                u.waiting = false;
                u.done += 1;
                remaining = remaining.saturating_sub(1);
                u.ready_at = at + think(rng, cfg.think_min, cfg.think_max);
            },
        );
        if remaining == 0 && client.in_flight() == 0 {
            break;
        }
        if !progressed {
            // Sleep until the next user wakes (if a slot is free for it)
            // or an RPC deadline/response needs attention.
            let mut wait = SimDuration::from_us(500);
            if client.can_issue() {
                if let Some(t) = users
                    .iter()
                    .filter(|u| !u.waiting && u.done < cfg.ops_per_user)
                    .map(|u| u.ready_at)
                    .min()
                {
                    let now = ctx.now();
                    wait = if t <= now {
                        SimDuration::from_ns(1)
                    } else {
                        wait.min(t.since(now))
                    };
                }
            }
            let comps = client.pump(ctx, wait);
            absorb(
                ctx.now(),
                tenant,
                comps,
                &mut stats,
                hists,
                &mut shards,
                sim.health(),
                |tok, at| {
                    let Some(u) = users.get_mut(tok as usize) else {
                        c_bad_tokens.inc();
                        return;
                    };
                    u.waiting = false;
                    u.done += 1;
                    remaining = remaining.saturating_sub(1);
                    u.ready_at = at + think(rng, cfg.think_min, cfg.think_max);
                },
            );
        }
    }
    client.quiesce(ctx, cfg.think_max);
    stats
}

/// Open-loop generator configuration: arrivals keep coming regardless of
/// outstanding work (the overload instrument).
#[derive(Clone, Copy, Debug)]
pub struct OpenLoopCfg {
    /// Mean inter-arrival gap (exponential draws ⇒ Poisson-like process).
    pub mean_interarrival: SimDuration,
    /// How long to generate arrivals for.
    pub duration: SimDuration,
    /// Simulated-user population arrivals are attributed to.
    pub users: u32,
    /// Op mix.
    pub mix: Mix,
    /// First user index on this actor.
    pub user_base: u64,
}

fn exp_gap(rng: &mut SimRng, mean: SimDuration) -> SimDuration {
    let u = rng.unit_f64();
    SimDuration::from_ns(((-(1.0 - u).ln()) * mean.as_ns() as f64).round().max(1.0) as u64)
}

/// Run an open-loop arrival process for `cfg.duration`, then drain. When
/// the client's arena is exhausted the arrival is dropped client-side and
/// counted (`client_shed`) — open loops do not queue unboundedly.
pub fn run_open_loop(
    ctx: &mut ActorCtx,
    client: &mut RpcClient,
    servers: &[ProcAddr],
    rng: &mut SimRng,
    cfg: &OpenLoopCfg,
    hists: &LatencyHists,
) -> LoadStats {
    assert!(!servers.is_empty(), "open loop needs servers");
    let sim = ctx.sim().clone();
    let tenant = client.tenant().0;
    let c_client_shed = sim.metrics().counter("rpc.cli_client_shed");
    let start = ctx.now();
    let stop = start + cfg.duration;
    let mut next_arrival = start + exp_gap(rng, cfg.mean_interarrival);
    let mut stats = LoadStats::default();
    let mut shards = ShardMap::new(servers.to_vec());
    loop {
        let now = ctx.now();
        if now >= stop {
            break;
        }
        if next_arrival <= now {
            next_arrival += exp_gap(rng, cfg.mean_interarrival);
            let user = cfg.user_base + rng.below(u64::from(cfg.users.max(1)));
            let (op, key, payload) = pick_op(rng, &cfg.mix, user);
            if client.can_issue() {
                let dst = shards.addr_for(key);
                match client.issue(ctx, dst, op, &payload, user) {
                    Ok(_) => stats.issued += 1,
                    Err(e) => {
                        if matches!(e, BclError::PathDead(_)) {
                            stats.dead_dest += 1;
                            stats.re_homed += shards.re_home_away_from(dst);
                        }
                        stats.client_shed += 1;
                        c_client_shed.inc();
                    }
                }
            } else {
                stats.client_shed += 1;
                c_client_shed.inc();
            }
            // When the issue cost itself exceeds the inter-arrival gap the
            // loop never reaches the pump below — absorb completions and
            // expire deadlines here so responses are not discovered only
            // after the arrival window closes.
            let comps = client.advance(ctx);
            absorb(
                ctx.now(),
                tenant,
                comps,
                &mut stats,
                hists,
                &mut shards,
                sim.health(),
                |_, _| {},
            );
            continue;
        }
        let wait = next_arrival.since(now).min(stop.since(now));
        let comps = client.pump(ctx, wait);
        absorb(
            ctx.now(),
            tenant,
            comps,
            &mut stats,
            hists,
            &mut shards,
            sim.health(),
            |_, _| {},
        );
    }
    while client.in_flight() > 0 {
        let comps = client.pump(ctx, SimDuration::from_us(500));
        absorb(
            ctx.now(),
            tenant,
            comps,
            &mut stats,
            hists,
            &mut shards,
            sim.health(),
            |_, _| {},
        );
    }
    client.quiesce(ctx, cfg.mean_interarrival * 4);
    stats
}
