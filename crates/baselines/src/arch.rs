//! Comparator architecture models.
//!
//! The paper compares three *architectures* (Table 1: kernel-level,
//! user-level, semi-user-level) and four *protocols* (Table 2: BCL, GM,
//! AM-II, BIP). We model each comparator as an [`ArchModel`]: a set of
//! host/NIC cost parameters plus the structural properties (traps,
//! interrupts, copies, NIC access location) that define the architecture.
//! All run over the *same* simulated Myrinet, so measured differences are
//! exactly the architectural deltas the paper argues about.

use suca_os::OsCostModel;
use suca_sim::SimDuration;

/// Where the NIC is touched on the critical path (Table 1, third row).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NicAccess {
    /// Only kernel code touches the NIC (kernel-level and semi-user-level).
    Kernel,
    /// User code touches the NIC directly via mapped registers.
    User,
}

/// NIC-resident address-translation cache (user-level protocols). The NIC
/// has little SRAM, so the cache is small; misses stall the send while the
/// NIC fetches the translation from the host — the paper's "usage of large
/// memory" argument against user-level designs.
#[derive(Clone, Copy, Debug)]
pub struct NicTlbModel {
    /// Cached translations (VMMC-2/U-Net kept a few hundred).
    pub entries: usize,
    /// Stall per miss (NIC↔host round trip + table walk by firmware).
    pub miss_cost: SimDuration,
}

/// One comparator architecture/protocol.
#[derive(Clone, Debug)]
pub struct ArchModel {
    /// Display name.
    pub name: &'static str,
    /// Kernel traps on the send critical path.
    pub send_traps: u32,
    /// Kernel traps on the receive critical path.
    pub recv_traps: u32,
    /// Interrupts on the receive critical path.
    pub recv_interrupts: u32,
    /// Who touches the NIC.
    pub nic_access: NicAccess,
    /// Host CPU cost to issue a send, excluding per-byte copies.
    pub host_send_fixed: SimDuration,
    /// Host-side copies on the send path (user↔kernel staging), count.
    pub send_copies: u32,
    /// Host-side copies on the receive path before data is usable, count.
    pub recv_copies: u32,
    /// Bandwidth of one host-side copy.
    pub copy_bytes_per_sec: u64,
    /// NIC fixed cost per message (protocol state, header build).
    pub nic_send_fixed: SimDuration,
    /// NIC per-fragment send cost; with wire time this sets peak bandwidth.
    pub nic_per_frag: SimDuration,
    /// NIC per-fragment receive cost.
    pub nic_recv_frag: SimDuration,
    /// Receiver host cost to observe a completed message (poll or wakeup).
    pub recv_fixed: SimDuration,
    /// Whether the NIC runs a reliability protocol (acks/retransmit).
    /// Without it (BIP), faults lose data.
    pub reliable: bool,
    /// NIC address-translation cache, for user-level protocols.
    pub nic_tlb: Option<NicTlbModel>,
    /// Requires `mmap` of device memory (user-level protocols cannot exist
    /// on AIX — the paper's portability argument).
    pub needs_device_mmap: bool,
}

impl ArchModel {
    /// The causal-chain budget this architecture must satisfy: every traced
    /// message shows exactly its Table 1 kernel crossings.
    pub fn chain_policy(&self) -> suca_sim::mtrace::ChainPolicy {
        suca_sim::mtrace::ChainPolicy::architecture(
            u64::from(self.send_traps) + u64::from(self.recv_traps),
            u64::from(self.recv_interrupts),
        )
    }

    /// Kernel-level networking (TCP/UDP-like): traps on both sides, a copy
    /// on each side, an interrupt plus context switch on receive.
    pub fn kernel_level(os: &OsCostModel) -> ArchModel {
        ArchModel {
            name: "kernel-level (TCP-like)",
            send_traps: 1,
            recv_traps: 1,
            recv_interrupts: 1,
            nic_access: NicAccess::Kernel,
            // trap + socket/protocol processing (checksums, headers).
            host_send_fixed: os.trap_roundtrip() + SimDuration::from_us_f64(14.0),
            send_copies: 1,
            recv_copies: 1,
            copy_bytes_per_sec: os.copy_bytes_per_sec,
            nic_send_fixed: SimDuration::from_us_f64(4.0),
            nic_per_frag: SimDuration::from_us_f64(3.0),
            nic_recv_frag: SimDuration::from_us_f64(2.5),
            // interrupt + handler + context switch to the blocked reader +
            // recv syscall return.
            recv_fixed: os.interrupt_entry
                + os.interrupt_service
                + os.context_switch
                + os.trap_roundtrip(),
            reliable: true,
            nic_tlb: None,
            needs_device_mmap: false,
        }
    }

    /// Generic user-level messaging (the paper's comparison point): BCL
    /// minus the kernel — same library, PIO and NIC firmware costs, no trap,
    /// translations cached on the NIC.
    pub fn user_level() -> ArchModel {
        ArchModel {
            name: "user-level (generic)",
            send_traps: 0,
            recv_traps: 0,
            recv_interrupts: 0,
            nic_access: NicAccess::User,
            // lib compose 0.47 + descriptor PIO 2.40 (same 10 words, written
            // from user space through the mapped doorbell page).
            host_send_fixed: SimDuration::from_us_f64(0.47 + 2.40),
            send_copies: 0,
            recv_copies: 0,
            copy_bytes_per_sec: 350_000_000,
            // Same firmware work as BCL plus the NIC-side TLB lookup the
            // kernel no longer does for it.
            nic_send_fixed: SimDuration::from_us_f64(6.60),
            nic_per_frag: SimDuration::from_us_f64(1.60),
            nic_recv_frag: SimDuration::from_us_f64(1.45),
            recv_fixed: SimDuration::from_us_f64(1.01),
            reliable: true,
            nic_tlb: Some(NicTlbModel {
                entries: 256,
                miss_cost: SimDuration::from_us_f64(16.0),
            }),
            needs_device_mmap: true,
        }
    }

    /// GM (Myricom's message system). Paper Table 2: 11–21 µs latency on a
    /// wide variety of hosts, > 140 MB/s, no SMP support, reliable.
    pub fn gm() -> ArchModel {
        ArchModel {
            name: "GM",
            host_send_fixed: SimDuration::from_us_f64(2.2),
            nic_send_fixed: SimDuration::from_us_f64(7.6),
            nic_per_frag: SimDuration::from_us_f64(1.35),
            nic_recv_frag: SimDuration::from_us_f64(1.6),
            recv_fixed: SimDuration::from_us_f64(1.3),
            ..Self::user_level()
        }
        .named("GM")
    }

    /// AM-II (Active Messages II): RPC-style handlers with an extra
    /// receive-side copy out of a bounce buffer — which is why the paper
    /// declines to compare its bandwidth ("AM-II needs an extra memory copy
    /// when transfer a message while BCL doesn't").
    pub fn am2() -> ArchModel {
        ArchModel {
            name: "AM-II",
            host_send_fixed: SimDuration::from_us_f64(3.0),
            nic_send_fixed: SimDuration::from_us_f64(8.5),
            nic_per_frag: SimDuration::from_us_f64(2.2),
            nic_recv_frag: SimDuration::from_us_f64(1.9),
            recv_fixed: SimDuration::from_us_f64(2.4),
            recv_copies: 1,
            // Bounce-buffer drain rate: handler dispatch + copy. This is
            // what holds AM-style bulk bandwidth far below the wire.
            copy_bytes_per_sec: 95_000_000,
            ..Self::user_level()
        }
        .named("AM-II")
    }

    /// BIP (Basic Interface for Parallelism): "a very low latency. But it
    /// doesn't provide the functionality of flow control and error
    /// correction. Its bandwidth is lower than that of BCL."
    pub fn bip() -> ArchModel {
        ArchModel {
            name: "BIP",
            host_send_fixed: SimDuration::from_us_f64(1.4),
            nic_send_fixed: SimDuration::from_us_f64(2.6), // no reliability setup
            nic_per_frag: SimDuration::from_us_f64(4.4),   // but worse pipelining
            nic_recv_frag: SimDuration::from_us_f64(1.2),
            recv_fixed: SimDuration::from_us_f64(0.9),
            reliable: false,
            ..Self::user_level()
        }
        .named("BIP")
    }

    fn named(mut self, name: &'static str) -> Self {
        self.name = name;
        self
    }

    /// Host-side copy time for `len` bytes, times `copies`.
    pub fn copy_time(&self, len: u64, copies: u32) -> SimDuration {
        if len == 0 || copies == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::for_bytes(len, self.copy_bytes_per_sec) * u64::from(copies)
    }
}

/// A row of the paper's Table 1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table1Row {
    /// Architecture name.
    pub architecture: String,
    /// Traps on the full one-way critical path.
    pub os_traps: u32,
    /// Interrupts on the full one-way critical path.
    pub interrupts: u32,
    /// Where the NIC is accessed from.
    pub nic_access: &'static str,
}

/// Produce Table 1 rows: kernel-level, user-level, and semi-user-level
/// (BCL — 1 trap on send, none on receive, kernel-only NIC access).
pub fn table1(os: &OsCostModel) -> Vec<Table1Row> {
    let k = ArchModel::kernel_level(os);
    let u = ArchModel::user_level();
    vec![
        Table1Row {
            architecture: k.name.to_string(),
            os_traps: k.send_traps + k.recv_traps,
            interrupts: k.recv_interrupts,
            nic_access: "kernel",
        },
        Table1Row {
            architecture: u.name.to_string(),
            os_traps: 0,
            interrupts: 0,
            nic_access: "user",
        },
        Table1Row {
            architecture: "semi-user-level (BCL)".to_string(),
            os_traps: 1,
            interrupts: 0,
            nic_access: "kernel",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_structure() {
        let rows = table1(&OsCostModel::aix_power3());
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].os_traps, 2);
        assert_eq!(rows[0].interrupts, 1);
        assert_eq!(rows[1].os_traps, 0);
        assert_eq!(rows[2].os_traps, 1);
        assert_eq!(rows[2].interrupts, 0);
        assert_eq!(rows[2].nic_access, "kernel");
    }

    #[test]
    fn user_level_needs_mmap_kernel_level_does_not() {
        assert!(ArchModel::user_level().needs_device_mmap);
        assert!(ArchModel::gm().needs_device_mmap);
        assert!(!ArchModel::kernel_level(&OsCostModel::aix_power3()).needs_device_mmap);
    }

    #[test]
    fn bip_is_unreliable_and_cheap() {
        let b = ArchModel::bip();
        assert!(!b.reliable);
        assert!(b.nic_send_fixed < ArchModel::user_level().nic_send_fixed);
    }

    #[test]
    fn copy_time_scales() {
        let k = ArchModel::kernel_level(&OsCostModel::aix_power3());
        assert_eq!(k.copy_time(0, 1), SimDuration::ZERO);
        assert_eq!(k.copy_time(1000, 0), SimDuration::ZERO);
        assert_eq!(k.copy_time(1000, 2), k.copy_time(1000, 1) * 2);
    }
}
