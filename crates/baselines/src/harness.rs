//! Micro-benchmarks for the comparator protocols (feeds Table 2).

use std::sync::Arc;

use parking_lot::Mutex;

use suca_myrinet::{Myrinet, MyrinetConfig};
use suca_os::OsPersonality;
use suca_sim::{RunOutcome, Sim};

use crate::arch::ArchModel;
use crate::engine::BaselineNet;

/// Mean one-way latency (µs) of `arch` for `size`-byte messages between two
/// nodes of a standard DAWNING Myrinet.
pub fn arch_one_way_us(arch: ArchModel, size: usize, warmup: u32, iters: u32) -> f64 {
    let sim = Sim::new(0xBA5E);
    let fabric = Myrinet::build(&sim, 2, MyrinetConfig::dawning3000());
    // Run comparators on a mmap-capable OS so user-level protocols exist.
    let net = BaselineNet::build(&sim, fabric, arch, OsPersonality::LINUX).expect("buildable");
    let a = net.endpoint(0);
    let b = net.endpoint(1);
    let total = warmup + iters;
    let send_t = Arc::new(Mutex::new(Vec::new()));
    let recv_t = Arc::new(Mutex::new(Vec::new()));

    let st = send_t.clone();
    sim.spawn("tx", move |ctx| {
        let payload = vec![0xEEu8; size];
        for _ in 0..total {
            st.lock().push(ctx.now().as_us());
            a.send(ctx, 1, &payload, 1);
            let _ = a.recv(ctx); // pacing reply
        }
    });
    let rt = recv_t.clone();
    sim.spawn("rx", move |ctx| {
        for _ in 0..total {
            let (_, data) = b.recv(ctx);
            rt.lock().push(ctx.now().as_us());
            assert_eq!(data.len(), size);
            b.send(ctx, 0, b"", 2);
        }
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
    let st = send_t.lock();
    let rt = recv_t.lock();
    let mut sum = 0.0;
    for i in warmup as usize..total as usize {
        sum += rt[i] - st[i];
    }
    sum / iters as f64
}

/// Sustained bandwidth (MB/s) of `arch` streaming `count` messages of
/// `size` bytes.
pub fn arch_bandwidth_mbps(arch: ArchModel, size: usize, count: u32) -> f64 {
    let sim = Sim::new(0xBA5E);
    let fabric = Myrinet::build(&sim, 2, MyrinetConfig::dawning3000());
    let net = BaselineNet::build(&sim, fabric, arch, OsPersonality::LINUX).expect("buildable");
    let a = net.endpoint(0);
    let b = net.endpoint(1);
    let t0 = Arc::new(Mutex::new(0.0));
    let t1 = Arc::new(Mutex::new(0.0));

    let t0c = t0.clone();
    sim.spawn("tx", move |ctx| {
        let payload = vec![0xEEu8; size];
        *t0c.lock() = ctx.now().as_us();
        for _ in 0..count {
            a.send(ctx, 1, &payload, 1);
        }
    });
    let t1c = t1.clone();
    sim.spawn("rx", move |ctx| {
        for _ in 0..count {
            let _ = b.recv(ctx);
        }
        *t1c.lock() = ctx.now().as_us();
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
    let (start, end) = (*t0.lock(), *t1.lock());
    (size as f64 * count as f64) / (end - start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use suca_os::OsCostModel;

    #[test]
    fn user_level_latency_is_bcl_minus_the_kernel() {
        // Paper: semi-user-level adds ~4.17 us (≈22 %) to the user-level
        // one-way latency. BCL measures 18.3; user-level must come out
        // close to 18.3 - 4.17 = 14.1.
        let lat = arch_one_way_us(ArchModel::user_level(), 0, 2, 8);
        assert!(
            (lat - 14.1).abs() < 0.8,
            "user-level 0-len one-way {lat} us; expected ~14.1"
        );
    }

    #[test]
    fn kernel_level_is_much_slower() {
        let lat = arch_one_way_us(ArchModel::kernel_level(&OsCostModel::aix_power3()), 0, 2, 8);
        assert!(
            lat > 40.0,
            "kernel-level 0-len one-way {lat} us; should be tens of us"
        );
    }

    #[test]
    fn bip_has_lowest_latency_but_lower_bandwidth_than_user_level() {
        let bip_lat = arch_one_way_us(ArchModel::bip(), 0, 2, 8);
        let ul_lat = arch_one_way_us(ArchModel::user_level(), 0, 2, 8);
        assert!(bip_lat < ul_lat, "BIP {bip_lat} !< user-level {ul_lat}");
        let bip_bw = arch_bandwidth_mbps(ArchModel::bip(), 128 * 1024, 12);
        let ul_bw = arch_bandwidth_mbps(ArchModel::user_level(), 128 * 1024, 12);
        assert!(bip_bw < ul_bw, "BIP bw {bip_bw} !< user-level bw {ul_bw}");
    }

    #[test]
    fn am2_extra_copy_hurts_bandwidth() {
        let am2 = arch_bandwidth_mbps(ArchModel::am2(), 128 * 1024, 12);
        let gm = arch_bandwidth_mbps(ArchModel::gm(), 128 * 1024, 12);
        assert!(am2 < gm * 0.8, "AM-II {am2} not clearly below GM {gm}");
    }

    #[test]
    fn gm_matches_its_published_range() {
        let lat = arch_one_way_us(ArchModel::gm(), 0, 2, 8);
        assert!(
            (11.0..=21.0).contains(&lat),
            "GM latency {lat} outside the paper's 11–21 us"
        );
        let bw = arch_bandwidth_mbps(ArchModel::gm(), 128 * 1024, 12);
        assert!(bw > 140.0, "GM bandwidth {bw} not over 140 MB/s");
    }

    #[test]
    fn user_level_cannot_exist_on_aix() {
        let sim = Sim::new(1);
        let fabric = Myrinet::build(&sim, 2, MyrinetConfig::dawning3000());
        let err =
            match BaselineNet::build(&sim, fabric, ArchModel::user_level(), OsPersonality::AIX) {
                Err(e) => e,
                Ok(_) => panic!("user-level protocol must be unbuildable on AIX"),
            };
        assert_eq!(err.os, "AIX");
        // The kernel-level protocol is fine on AIX.
        let sim2 = Sim::new(1);
        let fabric2 = Myrinet::build(&sim2, 2, MyrinetConfig::dawning3000());
        assert!(BaselineNet::build(
            &sim2,
            fabric2,
            ArchModel::kernel_level(&OsCostModel::aix_power3()),
            OsPersonality::AIX
        )
        .is_ok());
    }

    #[test]
    fn reliable_archs_survive_faults_bip_loses_data() {
        let run = |arch: ArchModel| -> u32 {
            let sim = Sim::new(7);
            let mut cfg = MyrinetConfig::dawning3000();
            cfg.fault = suca_myrinet::FaultPlan {
                drop_prob: 0.05,
                corrupt_prob: 0.05,
            };
            let fabric = Myrinet::build(&sim, 2, cfg);
            let net = BaselineNet::build(&sim, fabric, arch, OsPersonality::LINUX).unwrap();
            let a = net.endpoint(0);
            let b = net.endpoint(1);
            sim.spawn("tx", move |ctx| {
                for i in 0..30u32 {
                    a.send(ctx, 1, &i.to_le_bytes(), 1);
                }
            });
            let got = Arc::new(Mutex::new(0u32));
            let g2 = got.clone();
            sim.spawn("rx", move |ctx| {
                // Poll for a bounded interval, then report what arrived.
                for _ in 0..30 {
                    ctx.sleep(suca_sim::SimDuration::from_ms(1));
                    while b.try_recv(ctx).is_some() {
                        *g2.lock() += 1;
                    }
                }
            });
            sim.run_until(suca_sim::SimTime::from_ns(60_000_000));
            let n = *got.lock();
            n
        };
        assert_eq!(run(ArchModel::user_level()), 30, "reliable arch lost data");
        assert!(
            run(ArchModel::bip()) < 30,
            "BIP should lose messages under faults (no error correction)"
        );
    }
}
