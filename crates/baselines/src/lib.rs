//! # suca-baselines — comparator communication architectures
//!
//! Kernel-level (TCP-like), user-level (generic / GM / AM-II / BIP) protocol
//! models running over the same simulated Myrinet as BCL, so Table 1
//! (architecture structure) and Table 2 (protocol performance) compare
//! exactly the deltas the paper argues about. Includes the user-level NIC
//! address-translation cache whose thrashing under large working sets is
//! the paper's scalability argument.

#![warn(missing_docs)]

pub mod arch;
pub mod engine;
pub mod harness;

pub use arch::{table1, ArchModel, NicAccess, NicTlbModel, Table1Row};
pub use engine::{BaselineNet, Endpoint, MmapUnsupported};
pub use harness::{arch_bandwidth_mbps, arch_one_way_us};
