//! A miniature protocol engine that runs any [`ArchModel`] over the shared
//! fabric.
//!
//! The comparators don't need BCL's full port/channel machinery — Table 2
//! measures point-to-point latency and bandwidth — so each node gets one
//! [`Endpoint`] with blocking `send`/`recv`. The engine reuses BCL's wire
//! format and go-back-N reliability so all protocols are on an identical
//! footing; only the `ArchModel` cost/structure parameters differ.
//!
//! Unlike BCL, baseline payloads are plain vectors rather than simulated
//! user memory: the comparators' published numbers are endpoint-to-endpoint
//! and none of the Table 2 experiments depend on *their* address
//! translation being real (the user-level NIC-TLB behaviour is modeled by
//! [`crate::arch::NicTlbModel`] cost accounting).

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Weak};

use bytes::Bytes;
use parking_lot::Mutex;

use suca_bcl::reliable::{GbnReceiver, GbnSender, GbnVerdict};
use suca_bcl::wire::{WireHeader, WireKind, HEADER_BYTES};
use suca_bcl::{ChannelId, PortId};
use suca_myrinet::{Fabric, FabricNodeId, PacketTrace, FRAMING_BYTES};
use suca_os::OsPersonality;
use suca_sim::mtrace::{stage, TraceEvent, TraceId, TraceLayer};
use suca_sim::{ActorCtx, EventId, Signal, Sim, SimDuration};

use crate::arch::ArchModel;

/// Retransmission timeout for reliable baselines.
const RETX_TIMEOUT_US: u64 = 300;
/// Go-back-N window.
const WINDOW: u32 = 32;

/// Raised when a protocol cannot exist on the host OS.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MmapUnsupported {
    /// The OS that lacks device mmap.
    pub os: &'static str,
    /// The protocol that needs it.
    pub protocol: &'static str,
}

impl core::fmt::Display for MmapUnsupported {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} requires mmap of device memory, which {} does not support",
            self.protocol, self.os
        )
    }
}
impl std::error::Error for MmapUnsupported {}

struct OutMsg {
    dst: FabricNodeId,
    msg_id: u32,
    data: Bytes,
    tlb_stall: SimDuration,
}

struct ActiveMsg {
    msg: OutMsg,
    next_off: u64,
}

struct InMsg {
    total: u64,
    received: u64,
    buf: Vec<u8>,
}

struct EpState {
    send_q: VecDeque<OutMsg>,
    /// Receive-side bounce-buffer copy engine (AM-II, kernel-level): one
    /// copy at a time; gates delivery, which is what actually caps those
    /// protocols' bandwidth.
    copy_busy_until: suca_sim::SimTime,
    active: Option<ActiveMsg>,
    busy: bool,
    retx: VecDeque<(FabricNodeId, Bytes)>,
    gbn_tx: HashMap<u32, GbnSender>,
    gbn_rx: HashMap<u32, GbnReceiver>,
    timers: HashMap<u32, EventId>,
    incoming: HashMap<(u32, u32), InMsg>,
    /// Delivered messages awaiting the application: (src node, msg id,
    /// payload) — the id lets the receive path attribute its events.
    ready: VecDeque<(u32, u32, Vec<u8>)>,
    tlb: VecDeque<(u64, u64)>, // LRU of (buffer id, page) for user-level
    next_msg: u32,
}

struct EpInner {
    sim: Sim,
    arch: ArchModel,
    fabric: Arc<dyn Fabric>,
    fid: FabricNodeId,
    frag_cap: u64,
    signal: Signal,
    state: Mutex<EpState>,
}

/// One node's endpoint for a baseline protocol.
#[derive(Clone)]
pub struct Endpoint {
    inner: Arc<EpInner>,
}

/// A baseline protocol instantiated over a fabric.
pub struct BaselineNet {
    /// Architecture being modeled.
    pub arch: ArchModel,
    endpoints: Vec<Endpoint>,
}

impl BaselineNet {
    /// Attach one endpoint per fabric node. Fails if the protocol needs
    /// device mmap and the host OS (AIX!) does not provide it — the paper's
    /// portability argument, enforced at construction.
    pub fn build(
        sim: &Sim,
        fabric: Arc<dyn Fabric>,
        arch: ArchModel,
        personality: OsPersonality,
    ) -> Result<Arc<BaselineNet>, MmapUnsupported> {
        if arch.needs_device_mmap && !personality.supports_device_mmap {
            return Err(MmapUnsupported {
                os: personality.name,
                protocol: arch.name,
            });
        }
        let frag_cap = (fabric.mtu() as u64)
            .saturating_sub(HEADER_BYTES as u64)
            .min(4096);
        let endpoints = (0..fabric.num_nodes())
            .map(|n| {
                let inner = Arc::new(EpInner {
                    sim: sim.clone(),
                    arch: arch.clone(),
                    fabric: fabric.clone(),
                    fid: FabricNodeId(n),
                    frag_cap,
                    signal: Signal::new(sim),
                    state: Mutex::new(EpState {
                        send_q: VecDeque::new(),
                        active: None,
                        busy: false,
                        retx: VecDeque::new(),
                        gbn_tx: HashMap::new(),
                        gbn_rx: HashMap::new(),
                        timers: HashMap::new(),
                        incoming: HashMap::new(),
                        ready: VecDeque::new(),
                        copy_busy_until: suca_sim::SimTime::ZERO,
                        tlb: VecDeque::new(),
                        next_msg: 0,
                    }),
                });
                let weak: Weak<EpInner> = Arc::downgrade(&inner);
                fabric.attach(
                    FabricNodeId(n),
                    Box::new(move |sim, pkt| {
                        if let Some(inner) = weak.upgrade() {
                            EpInner::on_packet(&inner, sim, pkt);
                        }
                    }),
                );
                Endpoint { inner }
            })
            .collect();
        Ok(Arc::new(BaselineNet { arch, endpoints }))
    }

    /// Endpoint on node `n`.
    pub fn endpoint(&self, n: u32) -> Endpoint {
        self.endpoints[n as usize].clone()
    }
}

impl Endpoint {
    /// Blocking host-side send. `buf_id` identifies the (conceptual) user
    /// buffer so the user-level NIC TLB can be modeled; reusing the same id
    /// re-uses cached translations, fresh ids thrash the cache.
    pub fn send(&self, ctx: &mut ActorCtx, dst: u32, data: &[u8], buf_id: u64) {
        let inner = &self.inner;
        let arch = &inner.arch;
        let t0 = ctx.now();
        // Critical-path accounting for Table 1.
        if arch.send_traps > 0 {
            ctx.sim().add_count("os.traps", u64::from(arch.send_traps));
        }
        ctx.sleep(arch.host_send_fixed + arch.copy_time(data.len() as u64, arch.send_copies));

        // NIC-side TLB for user-level protocols.
        let tlb_stall = self.tlb_stall(data.len() as u64, buf_id);

        let msg_id = {
            let mut st = inner.state.lock();
            let id = st.next_msg;
            st.next_msg += 1;
            st.send_q.push_back(OutMsg {
                dst: FabricNodeId(dst),
                msg_id: id,
                data: Bytes::copy_from_slice(data),
                tlb_stall,
            });
            id
        };
        let sim = ctx.sim();
        if sim.msg_trace().enabled() {
            let tid = TraceId::new(inner.fid.0, msg_id);
            sim.trace_event(
                TraceEvent::span(
                    tid,
                    inner.fid.0,
                    TraceLayer::Library,
                    stage::SEND,
                    t0.as_ns(),
                    ctx.now().as_ns(),
                )
                .with_bytes(data.len() as u64),
            );
            // Each architecture's extra kernel crossings show up in its
            // chain (Table 1), so the completeness checker can hold every
            // protocol to its own budget.
            for _ in 0..arch.send_traps {
                sim.trace_event(TraceEvent::instant(
                    tid,
                    inner.fid.0,
                    TraceLayer::Kernel,
                    stage::TRAP,
                    ctx.now().as_ns(),
                ));
            }
        }
        EpInner::kick(inner);
    }

    fn tlb_stall(&self, len: u64, buf_id: u64) -> SimDuration {
        let Some(tlb) = self.inner.arch.nic_tlb else {
            return SimDuration::ZERO;
        };
        let pages = len.div_ceil(4096).max(1);
        let mut st = self.inner.state.lock();
        let mut misses = 0u64;
        for p in 0..pages {
            let key = (buf_id, p);
            if let Some(pos) = st.tlb.iter().position(|k| *k == key) {
                st.tlb.remove(pos);
                st.tlb.push_back(key);
            } else {
                misses += 1;
                st.tlb.push_back(key);
                if st.tlb.len() > tlb.entries {
                    st.tlb.pop_front();
                }
            }
        }
        self.inner.sim.add_count("baseline.tlb_misses", misses);
        tlb.miss_cost * misses
    }

    /// Blocking receive: returns `(source node, payload)`.
    pub fn recv(&self, ctx: &mut ActorCtx) -> (u32, Vec<u8>) {
        let inner = self.inner.clone();
        loop {
            // NB: bind the pop before matching — an `if let` scrutinee
            // temporary would keep the MutexGuard alive across the sleep
            // below, deadlocking the whole engine.
            let got = inner.state.lock().ready.pop_front();
            if let Some((src, msg_id, data)) = got {
                let arch = &inner.arch;
                if arch.recv_traps > 0 {
                    ctx.sim().add_count("os.traps", u64::from(arch.recv_traps));
                }
                // Per-byte copy costs were paid by the delivery pipeline.
                ctx.sleep(arch.recv_fixed);
                let sim = ctx.sim();
                if sim.msg_trace().enabled() {
                    let tid = TraceId::new(src, msg_id);
                    for _ in 0..arch.recv_traps {
                        sim.trace_event(TraceEvent::instant(
                            tid,
                            inner.fid.0,
                            TraceLayer::Kernel,
                            stage::TRAP,
                            ctx.now().as_ns(),
                        ));
                    }
                    sim.trace_event(TraceEvent::instant(
                        tid,
                        inner.fid.0,
                        TraceLayer::Library,
                        stage::POLL_RECV,
                        ctx.now().as_ns(),
                    ));
                }
                return (src, data);
            }
            inner.signal.wait(ctx);
        }
    }

    /// Non-blocking variant of [`Endpoint::recv`].
    pub fn try_recv(&self, ctx: &mut ActorCtx) -> Option<(u32, Vec<u8>)> {
        let got = self.inner.state.lock().ready.pop_front();
        got.map(|(src, msg_id, data)| {
            ctx.sleep(self.inner.arch.recv_fixed);
            let sim = ctx.sim();
            if sim.msg_trace().enabled() {
                sim.trace_event(TraceEvent::instant(
                    TraceId::new(src, msg_id),
                    self.inner.fid.0,
                    TraceLayer::Library,
                    stage::POLL_RECV,
                    ctx.now().as_ns(),
                ));
            }
            (src, data)
        })
    }
}

impl EpInner {
    fn wire_time(&self, payload_len: usize) -> SimDuration {
        SimDuration::for_bytes(
            payload_len as u64 + FRAMING_BYTES,
            self.fabric.link_bytes_per_sec(),
        )
    }

    fn kick(self: &Arc<Self>) {
        let go = {
            let mut st = self.state.lock();
            if st.busy {
                false
            } else {
                st.busy = true;
                true
            }
        };
        if go {
            let me = self.clone();
            self.sim.schedule_in(SimDuration::ZERO, move |_| me.step());
        }
    }

    fn step(self: &Arc<Self>) {
        enum Work {
            Retx(FabricNodeId, Bytes),
            NewMsg(SimDuration),
            Frag(FabricNodeId, Bytes, u32, u32),
            Idle,
            Stall,
        }
        let work = {
            let mut st = self.state.lock();
            if let Some((dst, pkt)) = st.retx.pop_front() {
                Work::Retx(dst, pkt)
            } else if st.active.is_none() {
                match st.send_q.pop_front() {
                    None => {
                        st.busy = false;
                        Work::Idle
                    }
                    Some(msg) => {
                        let setup = self.arch.nic_send_fixed + msg.tlb_stall;
                        st.active = Some(ActiveMsg { msg, next_off: 0 });
                        Work::NewMsg(setup)
                    }
                }
            } else {
                let (dst, window_ok) = {
                    let a = st.active.as_ref().expect("checked");
                    (a.msg.dst, true)
                };
                let window_ok = if self.arch.reliable {
                    st.gbn_tx
                        .entry(dst.0)
                        .or_insert_with(|| GbnSender::new(WINDOW))
                        .can_send()
                } else {
                    window_ok
                };
                if !window_ok {
                    st.busy = false;
                    Work::Stall
                } else {
                    let a = st.active.as_mut().expect("checked");
                    let total = a.msg.data.len() as u64;
                    let off = a.next_off;
                    let len = self.frag_cap.min(total - off);
                    let frag = a.msg.data.slice(off as usize..(off + len) as usize);
                    a.next_off = off + len;
                    let done = a.next_off >= total;
                    let mut header = WireHeader {
                        kind: WireKind::Data,
                        channel: ChannelId::SYSTEM,
                        src_port: PortId(0),
                        dst_port: PortId(0),
                        msg_id: a.msg.msg_id,
                        seq: 0,
                        offset: off as u32,
                        total_len: total as u32,
                        frag_len: frag.len() as u32,
                        epoch: 0,
                    };
                    if self.arch.reliable {
                        let gbn = st.gbn_tx.get_mut(&dst.0).expect("created above");
                        header.seq = gbn.next_seq();
                        let pkt = gbn_encode_and_record(gbn, header, &frag);
                        if done {
                            st.active = None;
                        }
                        self.arm_timer(&mut st, dst);
                        Work::Frag(dst, pkt, header.msg_id, header.seq)
                    } else {
                        let pkt = header.encode(&frag);
                        if done {
                            st.active = None;
                        }
                        Work::Frag(dst, pkt, header.msg_id, header.seq)
                    }
                }
            }
        };
        match work {
            Work::Idle | Work::Stall => {}
            Work::NewMsg(setup) => {
                let me = self.clone();
                self.sim.schedule_in(setup, move |_| me.step());
            }
            Work::Retx(dst, pkt) => {
                let proc = self.arch.nic_per_frag;
                let tx = self.wire_time(pkt.len());
                // Recover identity from the wire header so retransmissions
                // stay attributed to their chain (timeout path only).
                let mut meta = None;
                if let Some((h, _)) = WireHeader::decode(&pkt) {
                    let tid = TraceId::new(self.fid.0, h.msg_id);
                    if self.sim.msg_trace().enabled() {
                        let start = self.sim.now();
                        self.sim.trace_event(
                            TraceEvent::span(
                                tid,
                                self.fid.0,
                                TraceLayer::Mcp,
                                stage::RETX,
                                start.as_ns(),
                                (start + proc).as_ns(),
                            )
                            .with_seq(h.seq)
                            .with_bytes(h.frag_len as u64),
                        );
                    }
                    meta = Some(PacketTrace {
                        origin: self.fid.0,
                        msg_id: h.msg_id,
                        seq: h.seq,
                    });
                }
                let fabric = self.fabric.clone();
                let fid = self.fid;
                self.sim.schedule_in(proc, move |s| {
                    fabric.inject_traced(s, fid, dst, pkt, meta);
                });
                let me = self.clone();
                self.sim.schedule_in(proc + tx, move |_| me.step());
            }
            Work::Frag(dst, pkt, msg_id, seq) => {
                let proc = self.arch.nic_per_frag;
                let tx = self.wire_time(pkt.len());
                let meta = if self.sim.msg_trace().enabled() {
                    let tid = TraceId::new(self.fid.0, msg_id);
                    let start = self.sim.now();
                    self.sim.trace_event(
                        TraceEvent::span(
                            tid,
                            self.fid.0,
                            TraceLayer::Mcp,
                            stage::INJECT,
                            start.as_ns(),
                            (start + proc).as_ns(),
                        )
                        .with_seq(seq),
                    );
                    self.sim.trace_event(
                        TraceEvent::span(
                            tid,
                            self.fid.0,
                            TraceLayer::Wire,
                            stage::WIRE_TX,
                            (start + proc).as_ns(),
                            (start + proc + tx).as_ns(),
                        )
                        .with_seq(seq)
                        .with_bytes(pkt.len() as u64),
                    );
                    Some(PacketTrace {
                        origin: self.fid.0,
                        msg_id,
                        seq,
                    })
                } else {
                    None
                };
                let fabric = self.fabric.clone();
                let fid = self.fid;
                self.sim.schedule_in(proc, move |s| {
                    fabric.inject_traced(s, fid, dst, pkt, meta);
                });
                let me = self.clone();
                self.sim.schedule_in(proc + tx, move |_| me.step());
            }
        }
    }

    fn arm_timer(self: &Arc<Self>, st: &mut EpState, dst: FabricNodeId) {
        if st.timers.contains_key(&dst.0) {
            return;
        }
        let me = self.clone();
        let id = self
            .sim
            .schedule_in(SimDuration::from_us(RETX_TIMEOUT_US), move |_| {
                me.on_timeout(dst)
            });
        st.timers.insert(dst.0, id);
    }

    fn on_timeout(self: &Arc<Self>, dst: FabricNodeId) {
        {
            let mut st = self.state.lock();
            st.timers.remove(&dst.0);
            let Some(gbn) = st.gbn_tx.get(&dst.0) else {
                return;
            };
            if gbn.in_flight() == 0 {
                return;
            }
            let pkts: Vec<Bytes> = gbn.unacked().cloned().collect();
            self.sim.add_count("baseline.retx", pkts.len() as u64);
            for p in pkts {
                st.retx.push_back((dst, p));
            }
            self.arm_timer(&mut st, dst);
        }
        self.kick();
    }

    fn on_packet(self: &Arc<Self>, sim: &Sim, pkt: suca_myrinet::Packet) {
        if pkt.corrupted {
            sim.add_count("baseline.crc_dropped", 1);
            if let Some(t) = pkt.trace {
                if sim.msg_trace().enabled() {
                    sim.trace_event(TraceEvent::instant(
                        TraceId::new(t.origin, t.msg_id),
                        self.fid.0,
                        TraceLayer::Mcp,
                        stage::DROP_CRC,
                        sim.now().as_ns(),
                    ));
                }
            }
            return;
        }
        let Some((header, payload)) = WireHeader::decode(&pkt.payload) else {
            sim.add_count("baseline.malformed", 1);
            return;
        };
        let src = pkt.src;
        match header.kind {
            WireKind::Ack => {
                let me = self.clone();
                sim.schedule_in(SimDuration::from_us_f64(0.30), move |_| {
                    me.on_ack(src, header.seq);
                });
            }
            WireKind::Data => {
                let me = self.clone();
                let proc = self.arch.recv_per_frag();
                if sim.msg_trace().enabled() {
                    let start = sim.now();
                    sim.trace_event(
                        TraceEvent::span(
                            TraceId::new(src.0, header.msg_id),
                            self.fid.0,
                            TraceLayer::Mcp,
                            stage::RX,
                            start.as_ns(),
                            (start + proc).as_ns(),
                        )
                        .with_seq(header.seq)
                        .with_bytes(header.frag_len as u64),
                    );
                }
                sim.schedule_in(proc, move |_| me.on_data(src, header, payload));
            }
            _ => sim.add_count("baseline.unexpected_kind", 1),
        }
    }

    fn on_ack(self: &Arc<Self>, src: FabricNodeId, cum: u32) {
        {
            let mut st = self.state.lock();
            let Some(gbn) = st.gbn_tx.get_mut(&src.0) else {
                return;
            };
            if gbn.on_ack(cum) == 0 {
                return;
            }
            let empty = gbn.in_flight() == 0;
            if let Some(t) = st.timers.remove(&src.0) {
                self.sim.cancel(t);
            }
            if !empty {
                self.arm_timer(&mut st, src);
            }
        }
        self.kick();
    }

    fn on_data(self: &Arc<Self>, src: FabricNodeId, header: WireHeader, payload: Bytes) {
        let mut st = self.state.lock();
        if self.arch.reliable {
            let rx = st.gbn_rx.entry(src.0).or_default();
            let verdict = rx.on_data(header.seq);
            let cum = rx.cum_ack();
            // Ack every data packet (cumulative).
            let ack = WireHeader {
                kind: WireKind::Ack,
                channel: ChannelId::SYSTEM,
                src_port: PortId(0),
                dst_port: PortId(0),
                msg_id: 0,
                seq: cum,
                offset: 0,
                total_len: 0,
                frag_len: 0,
                epoch: 0,
            };
            let fabric = self.fabric.clone();
            let fid = self.fid;
            let pkt = ack.encode(b"");
            self.sim
                .schedule_in(SimDuration::from_us_f64(0.30), move |s| {
                    fabric.inject(s, fid, src, pkt);
                });
            if verdict != GbnVerdict::Accept {
                return;
            }
        }
        let key = (src.0, header.msg_id);
        let inc = st.incoming.entry(key).or_insert_with(|| InMsg {
            total: header.total_len as u64,
            received: 0,
            buf: vec![0u8; header.total_len as usize],
        });
        let off = header.offset as usize;
        inc.buf[off..off + payload.len()].copy_from_slice(&payload);
        inc.received += payload.len() as u64;
        let complete = inc.received >= inc.total;
        if complete {
            let inc = st.incoming.remove(&key).expect("present");
            if self.arch.recv_interrupts > 0 {
                self.sim
                    .add_count("os.interrupts", u64::from(self.arch.recv_interrupts));
                if self.sim.msg_trace().enabled() {
                    let tid = TraceId::new(src.0, header.msg_id);
                    for _ in 0..self.arch.recv_interrupts {
                        self.sim.trace_event(TraceEvent::instant(
                            tid,
                            self.fid.0,
                            TraceLayer::Kernel,
                            stage::INTERRUPT,
                            self.sim.now().as_ns(),
                        ));
                    }
                }
            }
            if self.arch.recv_copies > 0 {
                // The message must be copied out of the bounce buffer before
                // it is visible (and before the buffer can take the next
                // message) — this serialized copy is the real bandwidth cap
                // of copy-on-receive protocols.
                let copy = self
                    .arch
                    .copy_time(inc.buf.len() as u64, self.arch.recv_copies);
                let start = st.copy_busy_until.max(self.sim.now());
                let done_at = start + copy;
                st.copy_busy_until = done_at;
                let me = self.clone();
                let src_id = src.0;
                let msg_id = header.msg_id;
                drop(st);
                self.sim.schedule_at(done_at, move |_| {
                    me.state.lock().ready.push_back((src_id, msg_id, inc.buf));
                    me.signal.notify();
                });
            } else {
                st.ready.push_back((src.0, header.msg_id, inc.buf));
                drop(st);
                self.signal.notify();
            }
        }
    }
}

fn gbn_encode_and_record(gbn: &mut GbnSender, header: WireHeader, frag: &Bytes) -> Bytes {
    let pkt = header.encode(frag);
    // `header.seq` was stamped from `next_seq()` under window admission,
    // so the record cannot be rejected.
    gbn.record_sent(header.seq, pkt.clone())
        .expect("seq stamped from next_seq() under window admission");
    pkt
}

impl ArchModel {
    fn recv_per_frag(&self) -> SimDuration {
        self.nic_recv_frag
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::ArchModel;
    use suca_myrinet::{Myrinet, MyrinetConfig};
    use suca_os::OsCostModel;
    use suca_sim::RunOutcome;

    fn net(arch: ArchModel) -> (Sim, Arc<BaselineNet>) {
        let sim = Sim::new(9);
        let fabric = Myrinet::build(&sim, 2, MyrinetConfig::dawning3000());
        let net = BaselineNet::build(&sim, fabric, arch, OsPersonality::LINUX).expect("buildable");
        (sim, net)
    }

    #[test]
    fn payload_integrity_through_fragmentation() {
        let (sim, net) = net(ArchModel::user_level());
        let a = net.endpoint(0);
        let b = net.endpoint(1);
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let expect = payload.clone();
        sim.spawn("tx", move |ctx| a.send(ctx, 1, &payload, 1));
        sim.spawn("rx", move |ctx| {
            let (src, data) = b.recv(ctx);
            assert_eq!(src, 0);
            assert_eq!(data, expect);
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
    }

    #[test]
    fn messages_arrive_in_send_order() {
        let (sim, net) = net(ArchModel::gm());
        let a = net.endpoint(0);
        let b = net.endpoint(1);
        sim.spawn("tx", move |ctx| {
            for i in 0..10u32 {
                a.send(ctx, 1, &i.to_le_bytes(), 1);
            }
        });
        sim.spawn("rx", move |ctx| {
            for i in 0..10u32 {
                let (_, data) = b.recv(ctx);
                assert_eq!(u32::from_le_bytes(data.try_into().expect("4")), i);
            }
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
    }

    #[test]
    fn kernel_level_counts_a_trap_per_send_and_recv() {
        let (sim, net) = net(ArchModel::kernel_level(&OsCostModel::aix_power3()));
        let a = net.endpoint(0);
        let b = net.endpoint(1);
        sim.spawn("tx", move |ctx| {
            for _ in 0..3 {
                a.send(ctx, 1, b"x", 1);
            }
        });
        sim.spawn("rx", move |ctx| {
            for _ in 0..3 {
                let _ = b.recv(ctx);
            }
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(sim.get_count("os.traps"), 6, "one per send + one per recv");
        assert_eq!(sim.get_count("os.interrupts"), 3, "one per delivery");
    }

    #[test]
    fn try_recv_is_nonblocking() {
        let (sim, net) = net(ArchModel::bip());
        let b = net.endpoint(1);
        sim.spawn("rx", move |ctx| {
            assert!(b.try_recv(ctx).is_none());
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
    }

    #[test]
    fn bidirectional_traffic_does_not_interfere() {
        let (sim, net) = net(ArchModel::user_level());
        for me in 0..2u32 {
            let ep = net.endpoint(me);
            sim.spawn(format!("p{me}"), move |ctx| {
                ep.send(ctx, 1 - me, &vec![me as u8; 30_000], 1);
                let (src, data) = ep.recv(ctx);
                assert_eq!(src, 1 - me);
                assert_eq!(data, vec![(1 - me) as u8; 30_000]);
            });
        }
        assert_eq!(sim.run(), RunOutcome::Completed);
    }
}
