//! Per-message causal tracing.
//!
//! The paper's headline claims are *path-shape* claims: exactly one trap on
//! send, zero kernel crossings and zero interrupts on receive, go-back-N
//! retransmission on the wire. Aggregate counters can only check those in
//! bulk; this module threads a [`TraceId`] through the full semi-user-level
//! path — `BclPort::send` → kmod trap → MCP descriptor + fragmentation →
//! each (re)transmission → per-hop switch traversal → remote MCP rx → data
//! DMA → completion-queue DMA → user poll — so the contract becomes a
//! per-message invariant.
//!
//! Pieces:
//!
//! * [`TraceEvent`] — one typed record (span with begin/end, or instant)
//!   tagged with layer, node, message identity, sequence number and bytes.
//! * [`MsgTracer`] — bounded per-node ring buffers holding the most recent
//!   events. Always armed (cheap: one atomic load when disabled, one short
//!   uncontended mutex per event when enabled) so it doubles as a *flight
//!   recorder*: [`MsgTracer::dump_once`] prints the rings to stderr on the
//!   first sim panic or protocol error.
//! * [`to_chrome_json`] — Chrome trace-event / Perfetto JSON exporter, one
//!   process per node and one thread per layer.
//! * [`check_completeness`] — walks every message's causal chain and
//!   asserts it is *closed*: the send reaches a completion poll or a
//!   counted drop, every retransmission is attributed to a previously
//!   injected fragment, and the per-architecture trap/interrupt budget
//!   ([`ChainPolicy`]) holds.
//! * [`record_stage_histograms`] — derives per-stage latency histograms
//!   (trap, inject, wire, dma, cq-wait) from a trace and feeds them into a
//!   [`Metrics`] registry for the latency-breakdown table.
//!
//! Times are plain nanosecond `u64`s: this crate sits *below* the simulator
//! so it cannot name `SimTime`; the engine converts at the recording site.

use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::{json_escape, Metrics};

/// Identity of one traced message: the node that originated the send plus
/// the kernel-assigned message id. The pair is unique cluster-wide because
/// msg ids are allocated per origin node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId {
    /// Node that originated the send (for RMA read *data* packets this is
    /// the requester, not the responder, so the reply joins the request's
    /// chain).
    pub origin: u32,
    /// Message id as allocated by the origin's kernel module.
    pub msg_id: u32,
}

impl TraceId {
    /// Sentinel for events that cannot be attributed to any message
    /// (e.g. a protocol-error marker for an undecodable packet). The
    /// completeness checker skips these chains.
    pub const NONE: TraceId = TraceId {
        origin: u32::MAX,
        msg_id: 0,
    };

    /// Build a trace id.
    pub const fn new(origin: u32, msg_id: u32) -> Self {
        TraceId { origin, msg_id }
    }

    /// True for the [`TraceId::NONE`] sentinel.
    pub fn is_none(&self) -> bool {
        *self == Self::NONE
    }
}

/// Which layer of the stack emitted an event. Doubles as the Perfetto
/// thread id so each node's tracks render in stack order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TraceLayer {
    /// User-space BCL library (`BclPort`).
    Library,
    /// Kernel module (the one trap) / kernel-level baselines.
    Kernel,
    /// NIC control program (firmware).
    Mcp,
    /// Links and switches.
    Wire,
    /// Data and completion-queue DMA engines.
    Dma,
    /// Request/response service layer riding on BCL (`suca-rpc`). RPC spans
    /// join the chain of the *request* message, so one trace id stitches
    /// the application-level call to every packet it caused.
    Rpc,
    /// Online health engine (`suca-obs::health`): alert-lifecycle instants.
    /// Cluster-scoped alerts render under the synthetic fabric process,
    /// per-node scopes under their node.
    Health,
}

impl TraceLayer {
    /// Stable display name (Perfetto thread name).
    pub fn as_str(&self) -> &'static str {
        match self {
            TraceLayer::Library => "library",
            TraceLayer::Kernel => "kernel",
            TraceLayer::Mcp => "mcp",
            TraceLayer::Wire => "wire",
            TraceLayer::Dma => "dma",
            TraceLayer::Rpc => "rpc",
            TraceLayer::Health => "health",
        }
    }

    /// Stable small integer (Perfetto tid within the node's process).
    pub fn index(&self) -> u32 {
        match self {
            TraceLayer::Library => 0,
            TraceLayer::Kernel => 1,
            TraceLayer::Mcp => 2,
            TraceLayer::Wire => 3,
            TraceLayer::Dma => 4,
            TraceLayer::Rpc => 5,
            TraceLayer::Health => 6,
        }
    }
}

/// Event shape: a span carries both begin and end; an instant is a point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TracePhase {
    /// `start_ns..end_ns` duration event.
    Span,
    /// Point event at `start_ns` (`end_ns == start_ns`).
    Instant,
}

/// Canonical stage names. Keeping them `&'static str` constants means
/// recording a stage never allocates and the completeness checker can
/// match by pointer-stable names.
pub mod stage {
    /// Library composes the send descriptor and traps (span, tx node).
    pub const SEND: &str = "api:send";
    /// Library-side request composition before the trap (span, tx node;
    /// nested inside [`SEND`]).
    pub const COMPOSE: &str = "api:compose";
    /// Kernel entry cost of the one send trap (span, tx node).
    pub const K_TRAP_ENTER: &str = "kernel:trap_enter";
    /// Kernel send dispatch + security checks — the copyin/validate half
    /// of the paper's "filling sending request" (span, tx node).
    pub const K_DISPATCH: &str = "kernel:dispatch";
    /// Pin-down page-table lookup / pin of the user buffer (span, tx node).
    pub const K_PIN: &str = "kernel:pin";
    /// Descriptor PIO fill + doorbell — the other half of the request fill
    /// (span, tx node).
    pub const K_PIO: &str = "kernel:pio";
    /// Kernel exit cost of the send trap (span, tx node).
    pub const K_TRAP_EXIT: &str = "kernel:trap_exit";
    /// Library consumed a receive-completion event (instant, rx node).
    pub const POLL_RECV: &str = "api:poll_recv";
    /// Library consumed a send-completion event (instant, tx node).
    pub const POLL_SEND: &str = "api:poll_send";
    /// One user→kernel trap (instant). The BCL contract: exactly 1 per
    /// inter-node send, 0 on receive.
    pub const TRAP: &str = "kernel:trap";
    /// Kernel send path: check + pin + translate + descriptor PIO (span).
    pub const IOCTL_SEND: &str = "kernel:ioctl_send";
    /// One NIC interrupt taken for this message (instant). BCL budget: 0.
    pub const INTERRUPT: &str = "kernel:interrupt";
    /// MCP fetched the descriptor and set up reliable state (span).
    pub const DESCRIPTOR: &str = "mcp:descriptor";
    /// MCP processed + injected one fragment (span; `seq`, `bytes` set).
    pub const INJECT: &str = "mcp:inject";
    /// Go-back-N retransmission of a previously injected fragment (span).
    pub const RETX: &str = "mcp:retx";
    /// Remote MCP accepted a data fragment (span; `seq` set).
    pub const RX: &str = "mcp:rx";
    /// Remote MCP discarded a duplicate/out-of-order fragment (instant).
    pub const RX_DISCARD: &str = "mcp:rx_discard";
    /// Receiver sent a Reject back to the source (instant).
    pub const REJECT_SENT: &str = "mcp:reject_sent";
    /// Sender will retry the whole message after a non-fatal Reject
    /// (instant).
    pub const MSG_RETRY: &str = "mcp:msg_retry";
    /// Sender gave up on the message — terminal (instant).
    pub const MSG_FAILED: &str = "mcp:msg_failed";
    /// Message dropped at the receiver for lack of buffer — terminal
    /// counted drop (instant).
    pub const DROP_NO_BUFFER: &str = "mcp:drop_no_buffer";
    /// Message dropped: destination port not open — terminal counted drop
    /// (instant).
    pub const DROP_NO_PORT: &str = "mcp:drop_no_port";
    /// Fragment dropped by receiver CRC check (instant).
    pub const DROP_CRC: &str = "mcp:drop_crc";
    /// Firmware protocol-state inconsistency (instant; may be
    /// [`super::TraceId::NONE`]).
    pub const PROTO_ERROR: &str = "mcp:protocol_error";
    /// Wire occupancy of one fragment on the source link (span).
    pub const WIRE_TX: &str = "wire:tx";
    /// Cut-through traversal of one switch (instant per hop).
    pub const HOP: &str = "wire:hop";
    /// Fragment dropped by link fault injection (instant).
    pub const DROP_LINK: &str = "wire:drop";
    /// Fragment corrupted by link fault injection (instant).
    pub const CORRUPT: &str = "wire:corrupt";
    /// Fragment dropped in the switching fabric (no route / unwired port)
    /// (instant).
    pub const DROP_ROUTE: &str = "wire:drop_route";
    /// Payload DMA from NIC SRAM to the user receive buffer (span).
    pub const DMA_DATA: &str = "dma:data";
    /// Completion-record DMA into the user-mapped queue (span).
    pub const DMA_CQ: &str = "dma:cq";
    /// One client-side RPC: issue through final outcome (span, client
    /// node; joins the request message's chain). Not a terminal stage —
    /// the underlying messages still close through the BCL terminals.
    pub const RPC_CALL: &str = "rpc:call";
    /// Server-side dispatch of one request: dequeue through response send
    /// (span, server node; joins the request message's chain).
    pub const RPC_SERVE: &str = "rpc:serve";
    /// Admission control shed a request at the server's bounded queue
    /// (instant, server node).
    pub const RPC_SHED: &str = "rpc:shed";
    /// Client re-issued a request after a shed reply or an attempt timeout
    /// (instant, client node; attributed to the first attempt's chain).
    pub const RPC_RETRY: &str = "rpc:retry";
    /// Client gave up on a request after exhausting its retry budget
    /// (instant, client node).
    pub const RPC_TIMEOUT: &str = "rpc:timeout";
    /// Client aborted a request because the kernel declared the
    /// destination's path dead — terminal for the RPC, re-homed by the
    /// service layer (instant, client node).
    pub const RPC_DEAD_DEST: &str = "rpc:dead_dest";
    /// Chaos injection: a link was forced down (instant,
    /// [`super::TraceId::NONE`] — injections are environment events, not
    /// part of any message chain).
    pub const CHAOS_LINK_DOWN: &str = "chaos:link_down";
    /// Chaos injection: a downed link was restored (instant).
    pub const CHAOS_LINK_UP: &str = "chaos:link_up";
    /// Chaos injection: a switch port died (instant).
    pub const CHAOS_PORT_DEAD: &str = "chaos:port_dead";
    /// Chaos injection: a NIC was reset, wiping its MCP SRAM state
    /// (instant).
    pub const CHAOS_NIC_RESET: &str = "chaos:nic_reset";
    /// Chaos injection: a whole node crashed (instant).
    pub const CHAOS_NODE_CRASH: &str = "chaos:node_crash";
    /// Chaos injection: a crashed node restarted (instant).
    pub const CHAOS_NODE_RESTART: &str = "chaos:node_restart";
    /// Fragment dropped because its link is chaos-downed (instant).
    pub const DROP_LINK_DOWN: &str = "wire:drop_link_down";
    /// Fragment dropped at a chaos-killed switch port (instant).
    pub const DROP_DEAD_PORT: &str = "wire:drop_dead_port";
    /// Fragment delivered to an endpoint that is not its destination —
    /// counted protocol drop, never a panic (instant).
    pub const DROP_MISROUTE: &str = "wire:drop_misroute";
    /// Packet dropped while its node is crashed (instant).
    pub const DROP_NODE_DOWN: &str = "mcp:drop_node_down";
    /// Packet carried a stale stream epoch — counted drop (instant).
    pub const DROP_STALE_EPOCH: &str = "mcp:drop_stale_epoch";
    /// Kernel declared the path to a destination dead after consecutive
    /// retransmission exhaustion (instant).
    pub const PATH_DEAD: &str = "mcp:path_dead";
    /// Kernel failed the connection over to the other rail (instant).
    pub const RAIL_FAILOVER: &str = "mcp:rail_failover";
    /// Epoch-resync handshake completed; the stream is live on the new
    /// epoch (instant).
    pub const EPOCH_RESYNC: &str = "mcp:epoch_resync";
    /// NIC plan interpreter accepted a collective descriptor and staged the
    /// local contribution (span, participant node).
    pub const COLL_POST: &str = "mcp:coll_post";
    /// Plan interpreter combined one peer contribution into the
    /// accumulator (instant, combining node; attributed to the *sender's*
    /// chain so fan-in joins the contributing message).
    pub const COLL_COMBINE: &str = "mcp:coll_combine";
    /// Plan interpreter finished the local schedule and DMAd the result +
    /// completion (instant, participant node).
    pub const COLL_DONE: &str = "mcp:coll_done";
    /// Health rule entered pending: first breaching tick of a scope
    /// (instant, [`super::TraceId::NONE`]; the full name is
    /// `health:pending:<rule>`).
    pub const HEALTH_PENDING: &str = "health:pending";
    /// Health alert fired after `for_ticks` breaching ticks (instant).
    pub const HEALTH_FIRING: &str = "health:firing";
    /// Health alert resolved after `clear_ticks` healthy ticks (instant).
    pub const HEALTH_RESOLVED: &str = "health:resolved";
    /// Pipeline driver planned one job's stage/task groups (instant,
    /// [`super::TraceId::NONE`], driver node).
    pub const PIPE_PLAN: &str = "pipe:plan";
    /// Pipeline driver group-scheduled one stage onto workers (instant).
    pub const PIPE_SCHED: &str = "pipe:sched";
    /// One pipeline stage's EXEC fan-out fully resolved (instant).
    pub const PIPE_EXEC: &str = "pipe:exec";
    /// One job's output-fetch phase fully resolved (instant).
    pub const PIPE_FETCH: &str = "pipe:fetch";
    /// Pub-sub room shed a slow subscriber (instant,
    /// [`super::TraceId::NONE`], serving node).
    pub const PUBSUB_SHED: &str = "pubsub:shed";
}

/// One trace record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Message this event belongs to.
    pub trace: TraceId,
    /// Node the event happened on.
    pub node: u32,
    /// Stack layer that emitted it.
    pub layer: TraceLayer,
    /// Stage name (one of [`stage`]'s constants on the built-in paths).
    pub stage: Cow<'static, str>,
    /// Span or instant.
    pub phase: TracePhase,
    /// Begin time, nanoseconds of virtual time.
    pub start_ns: u64,
    /// End time (== `start_ns` for instants).
    pub end_ns: u64,
    /// Fragment sequence number, when the event is per-fragment.
    pub seq: u32,
    /// Payload bytes carried, when meaningful.
    pub bytes: u64,
}

impl TraceEvent {
    /// A duration event.
    pub fn span(
        trace: TraceId,
        node: u32,
        layer: TraceLayer,
        stage: impl Into<Cow<'static, str>>,
        start_ns: u64,
        end_ns: u64,
    ) -> Self {
        TraceEvent {
            trace,
            node,
            layer,
            stage: stage.into(),
            phase: TracePhase::Span,
            start_ns,
            end_ns: end_ns.max(start_ns),
            seq: 0,
            bytes: 0,
        }
    }

    /// A point event.
    pub fn instant(
        trace: TraceId,
        node: u32,
        layer: TraceLayer,
        stage: impl Into<Cow<'static, str>>,
        at_ns: u64,
    ) -> Self {
        TraceEvent {
            trace,
            node,
            layer,
            stage: stage.into(),
            phase: TracePhase::Instant,
            start_ns: at_ns,
            end_ns: at_ns,
            seq: 0,
            bytes: 0,
        }
    }

    /// Attach a fragment sequence number.
    pub fn with_seq(mut self, seq: u32) -> Self {
        self.seq = seq;
        self
    }

    /// Attach a byte count.
    pub fn with_bytes(mut self, bytes: u64) -> Self {
        self.bytes = bytes;
        self
    }

    /// Span duration (0 for instants).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// Deterministic hash-based trace sampling for fleet-scale runs.
///
/// At 1,024 nodes recording every message's full causal chain is the
/// dominant observability cost (memory, serialization bytes, and ring
/// churn). A `SampleSpec` admits a message iff a splitmix64 hash of its
/// [`TraceId`] — *not* a random draw — falls below `rate_ppm`, so:
///
/// * sampling is **deterministic**: a fixed seed yields a byte-identical
///   sampled trace set on every rerun and at every shard count;
/// * a chain is sampled **consistently end to end**: every hop of an
///   admitted message is recorded on every node it touches, so sampled
///   chains stay *closed* and [`check_completeness`] budgets still hold
///   over the sampled population;
/// * unattributable events ([`TraceId::NONE`] — protocol errors, chaos
///   injections) are always admitted, so the flight recorder keeps its
///   most important cargo at any rate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SampleSpec {
    /// Admitted fraction in parts per million (1,000,000 = record all).
    pub rate_ppm: u32,
    /// Folded into the hash: different seeds sample different (equally
    /// sized) populations at the same rate.
    pub seed: u64,
}

impl SampleSpec {
    /// Record everything (the default).
    pub const ALL: SampleSpec = SampleSpec {
        rate_ppm: 1_000_000,
        seed: 0,
    };

    /// Admit ~`rate_ppm` of a million messages (clamped to the full rate).
    pub fn ratio_ppm(rate_ppm: u32) -> Self {
        SampleSpec {
            rate_ppm: rate_ppm.min(1_000_000),
            seed: 0,
        }
    }

    /// Replace the hash seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Is everything admitted?
    pub fn is_all(&self) -> bool {
        self.rate_ppm >= 1_000_000
    }

    /// Does this spec admit `trace`? Pure function of `(spec, trace)`.
    pub fn admits(&self, trace: TraceId) -> bool {
        if self.is_all() || trace.is_none() {
            return true;
        }
        // splitmix64 of the message identity, seed-perturbed: cheap, well
        // mixed, and stable across platforms.
        let mut z = ((u64::from(trace.origin) << 32) | u64::from(trace.msg_id))
            ^ self.seed
            ^ 0x9E37_79B9_7F4A_7C15;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % 1_000_000) < u64::from(self.rate_ppm)
    }
}

#[derive(Default)]
struct NodeRing {
    events: VecDeque<TraceEvent>,
    evicted: u64,
    recorded: u64,
}

struct TracerInner {
    enabled: AtomicBool,
    capacity: AtomicUsize,
    dumped: AtomicBool,
    /// Sampling state, split into atomics so the record path never takes a
    /// lock to consult it. `rate_ppm == 1_000_000` means record all.
    sample_rate_ppm: AtomicU32,
    sample_seed: AtomicU64,
    /// Events rejected by the sampler (kept for rate accounting).
    sampled_out: AtomicU64,
    /// Per-node rings, keyed by node id so sparse / sentinel ids (the
    /// fabric pseudo-node is `u32::MAX`) cost one map entry, not an index.
    rings: Mutex<BTreeMap<u32, NodeRing>>,
}

/// Default ring capacity per node. Sized so a small debugging run keeps its
/// whole history while a bandwidth sweep stays bounded (~8k events × ~100
/// bytes ≈ 1 MB per active node).
pub const DEFAULT_RING_CAPACITY: usize = 8192;

/// Bounded per-node ring buffers of [`TraceEvent`]s. Cloning shares the
/// underlying rings. Enabled by default so the flight recorder is always
/// armed; disable for perf-sensitive sweeps with [`MsgTracer::set_enabled`].
#[derive(Clone)]
pub struct MsgTracer {
    inner: Arc<TracerInner>,
}

impl Default for MsgTracer {
    fn default() -> Self {
        Self::new()
    }
}

impl MsgTracer {
    /// Tracer with [`DEFAULT_RING_CAPACITY`] events per node.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// Tracer keeping the last `capacity` events per node.
    pub fn with_capacity(capacity: usize) -> Self {
        MsgTracer {
            inner: Arc::new(TracerInner {
                enabled: AtomicBool::new(true),
                capacity: AtomicUsize::new(capacity.max(1)),
                dumped: AtomicBool::new(false),
                sample_rate_ppm: AtomicU32::new(1_000_000),
                sample_seed: AtomicU64::new(0),
                sampled_out: AtomicU64::new(0),
                rings: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Is recording on? Hot paths check this before building an event.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on/off (rings are kept either way).
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Per-node ring capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity.load(Ordering::Relaxed)
    }

    /// Resize the per-node rings (existing rings are trimmed from the
    /// oldest end).
    pub fn set_capacity(&self, capacity: usize) {
        let capacity = capacity.max(1);
        self.inner.capacity.store(capacity, Ordering::Relaxed);
        let mut rings = self.inner.rings.lock().expect("tracer poisoned");
        for ring in rings.values_mut() {
            while ring.events.len() > capacity {
                ring.events.pop_front();
                ring.evicted += 1;
            }
        }
    }

    /// The active sampling spec ([`SampleSpec::ALL`] by default).
    pub fn sampling(&self) -> SampleSpec {
        SampleSpec {
            rate_ppm: self.inner.sample_rate_ppm.load(Ordering::Relaxed),
            seed: self.inner.sample_seed.load(Ordering::Relaxed),
        }
    }

    /// Install a sampling spec. Events of unadmitted messages are dropped
    /// at [`MsgTracer::record`] before touching any ring; unattributable
    /// ([`TraceId::NONE`]) events always pass, so the flight recorder
    /// stays armed for errors at any rate.
    pub fn set_sampling(&self, spec: SampleSpec) {
        self.inner
            .sample_rate_ppm
            .store(spec.rate_ppm.min(1_000_000), Ordering::Relaxed);
        self.inner.sample_seed.store(spec.seed, Ordering::Relaxed);
    }

    /// Would an event for `trace` be recorded right now? Hot paths that
    /// build expensive events can pre-check this instead of just
    /// [`MsgTracer::enabled`].
    #[inline]
    pub fn should_record(&self, trace: TraceId) -> bool {
        self.enabled() && self.sampling().admits(trace)
    }

    /// Events rejected by the sampler so far.
    pub fn total_sampled_out(&self) -> u64 {
        self.inner.sampled_out.load(Ordering::Relaxed)
    }

    /// Record one event into its node's ring, evicting the oldest entry
    /// when full. No-op while disabled; while a sampling spec is installed,
    /// events of unadmitted messages are counted and dropped.
    pub fn record(&self, ev: TraceEvent) {
        if !self.enabled() {
            return;
        }
        if !self.sampling().admits(ev.trace) {
            self.inner.sampled_out.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let capacity = self.capacity();
        let mut rings = self.inner.rings.lock().expect("tracer poisoned");
        let ring = rings.entry(ev.node).or_default();
        ring.recorded += 1;
        if ring.events.len() >= capacity {
            ring.events.pop_front();
            ring.evicted += 1;
        }
        ring.events.push_back(ev);
    }

    /// Snapshot of every ring, merged and sorted by start time.
    pub fn events(&self) -> Vec<TraceEvent> {
        let rings = self.inner.rings.lock().expect("tracer poisoned");
        let mut all: Vec<TraceEvent> = rings
            .values()
            .flat_map(|r| r.events.iter().cloned())
            .collect();
        all.sort_by_key(|e| (e.start_ns, e.end_ns, e.node));
        all
    }

    /// Drain every ring, returning the merged sorted events.
    pub fn take_events(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = {
            let mut rings = self.inner.rings.lock().expect("tracer poisoned");
            rings
                .values_mut()
                .flat_map(|r| std::mem::take(&mut r.events))
                .collect()
        };
        all.sort_by_key(|e| (e.start_ns, e.end_ns, e.node));
        all
    }

    /// Drop all buffered events (counts are kept).
    pub fn clear(&self) {
        let mut rings = self.inner.rings.lock().expect("tracer poisoned");
        for ring in rings.values_mut() {
            ring.events.clear();
        }
    }

    /// Total events ever recorded (including since-evicted ones).
    pub fn total_recorded(&self) -> u64 {
        let rings = self.inner.rings.lock().expect("tracer poisoned");
        rings.values().map(|r| r.recorded).sum()
    }

    /// Events evicted from full rings.
    pub fn total_evicted(&self) -> u64 {
        let rings = self.inner.rings.lock().expect("tracer poisoned");
        rings.values().map(|r| r.evicted).sum()
    }

    /// Has [`MsgTracer::dump_once`] fired?
    pub fn has_dumped(&self) -> bool {
        self.inner.dumped.load(Ordering::Relaxed)
    }

    /// Render the flight-recorder contents: the last `max_per_node` events
    /// of every node's ring, newest last.
    pub fn dump(&self, max_per_node: usize) -> String {
        let rings = self.inner.rings.lock().expect("tracer poisoned");
        let mut out = String::new();
        for (&node, ring) in rings.iter() {
            if ring.recorded == 0 {
                continue;
            }
            let who = if node == crate::timeseries::FABRIC_NODE {
                "fabric".to_string()
            } else {
                format!("node {node}")
            };
            let _ = writeln!(
                out,
                "{who}: {} events recorded, {} evicted, showing last {}",
                ring.recorded,
                ring.evicted,
                ring.events.len().min(max_per_node)
            );
            let skip = ring.events.len().saturating_sub(max_per_node);
            for ev in ring.events.iter().skip(skip) {
                let _ = writeln!(
                    out,
                    "  [{:>12} ns] {:<7} {:<18} msg=({},{}) seq={} bytes={} dur={} ns",
                    ev.start_ns,
                    ev.layer.as_str(),
                    ev.stage,
                    ev.trace.origin,
                    ev.trace.msg_id,
                    ev.seq,
                    ev.bytes,
                    ev.duration_ns(),
                );
            }
        }
        if out.is_empty() {
            out.push_str("flight recorder is empty\n");
        }
        out
    }

    /// Flight-recorder trigger: on the first call, print the rings to
    /// stderr under a banner naming `reason` and return `true`; later
    /// calls are no-ops returning `false`. One dump per run keeps a
    /// cascade of failures from flooding the log.
    pub fn dump_once(&self, reason: &str) -> bool {
        if self.inner.dumped.swap(true, Ordering::SeqCst) {
            return false;
        }
        eprintln!("==== flight recorder dump: {reason} ====");
        eprint!("{}", self.dump(64));
        eprintln!("==== end flight recorder dump ====");
        true
    }
}

/// Intern a string, returning a `&'static str` that is pointer-stable for
/// the life of the process. Components intern their per-node track names
/// once at construction so per-event recording never allocates.
pub fn intern(s: &str) -> &'static str {
    static POOL: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(BTreeSet::new()));
    let mut set = pool.lock().expect("intern pool poisoned");
    if let Some(&hit) = set.get(s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    set.insert(leaked);
    leaked
}

/// Serialize events in Chrome trace-event JSON (the format Perfetto and
/// `chrome://tracing` load): one process per node, one thread per layer,
/// timestamps in microseconds of virtual time.
pub fn to_chrome_json(events: &[TraceEvent]) -> String {
    to_chrome_json_with_counters(
        events,
        &crate::timeseries::TimeSeriesSnapshot {
            samples_taken: 0,
            series: Vec::new(),
        },
    )
}

/// Perfetto pid hosting fabric-wide counter tracks (probes registered under
/// [`crate::timeseries::FABRIC_NODE`]).
pub const FABRIC_PID: u32 = 9999;

/// Like [`to_chrome_json`], but merges sampled telemetry in as Perfetto
/// counter tracks (`"ph": "C"`), one per probe, so occupancy curves render
/// beneath the message spans of the node they belong to. Fabric-wide
/// probes land in a synthetic "fabric" process ([`FABRIC_PID`]).
pub fn to_chrome_json_with_counters(
    events: &[TraceEvent],
    counters: &crate::timeseries::TimeSeriesSnapshot,
) -> String {
    let mut out = String::from("{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, line: &str| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(line);
    };

    // Metadata: name each node's process and each layer's thread so the
    // Perfetto track list reads "node 0 / library", "node 0 / kernel", …
    // Events on the fabric pseudo-node (cluster-scoped health alerts, …)
    // render under the same synthetic process as fabric-wide counters.
    let event_pid = |node: u32| {
        if node == crate::timeseries::FABRIC_NODE {
            FABRIC_PID
        } else {
            node
        }
    };
    let mut tracks: BTreeSet<(u32, TraceLayer)> = BTreeSet::new();
    let mut fabric_counters = false;
    for ev in events {
        if ev.node == crate::timeseries::FABRIC_NODE {
            fabric_counters = true;
            tracks.insert((FABRIC_PID, ev.layer));
        } else {
            tracks.insert((ev.node, ev.layer));
        }
    }
    let mut nodes: BTreeSet<u32> = tracks.iter().map(|(n, _)| *n).collect();
    nodes.remove(&FABRIC_PID);
    for s in &counters.series {
        if s.node == crate::timeseries::FABRIC_NODE {
            fabric_counters = true;
        } else {
            nodes.insert(s.node);
        }
    }
    for node in &nodes {
        push(
            &mut out,
            &mut first,
            &format!(
                "  {{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": {node}, \"tid\": 0, \
                 \"args\": {{\"name\": \"node {node}\"}}}}"
            ),
        );
    }
    if fabric_counters {
        push(
            &mut out,
            &mut first,
            &format!(
                "  {{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": {FABRIC_PID}, \
                 \"tid\": 0, \"args\": {{\"name\": \"fabric\"}}}}"
            ),
        );
    }
    for (node, layer) in &tracks {
        push(
            &mut out,
            &mut first,
            &format!(
                "  {{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": {node}, \"tid\": {tid}, \
                 \"args\": {{\"name\": \"{name}\"}}}}",
                tid = layer.index(),
                name = layer.as_str()
            ),
        );
        push(
            &mut out,
            &mut first,
            &format!(
                "  {{\"ph\": \"M\", \"name\": \"thread_sort_index\", \"pid\": {node}, \
                 \"tid\": {tid}, \"args\": {{\"sort_index\": {tid}}}}}",
                tid = layer.index()
            ),
        );
    }

    for ev in events {
        let args = format!(
            "\"args\": {{\"origin\": {}, \"msg\": {}, \"seq\": {}, \"bytes\": {}}}",
            ev.trace.origin, ev.trace.msg_id, ev.seq, ev.bytes
        );
        let common = format!(
            "\"name\": \"{}\", \"pid\": {}, \"tid\": {}, \"ts\": {:.3}",
            json_escape(&ev.stage),
            event_pid(ev.node),
            ev.layer.index(),
            ev.start_ns as f64 / 1000.0
        );
        let line = match ev.phase {
            TracePhase::Span => format!(
                "  {{\"ph\": \"X\", {common}, \"dur\": {:.3}, {args}}}",
                ev.duration_ns() as f64 / 1000.0
            ),
            TracePhase::Instant => {
                format!("  {{\"ph\": \"i\", {common}, \"s\": \"t\", {args}}}")
            }
        };
        push(&mut out, &mut first, &line);
    }

    // Telemetry probes as counter tracks, one per probe, under the pid of
    // the node they belong to.
    for s in &counters.series {
        let pid = if s.node == crate::timeseries::FABRIC_NODE {
            FABRIC_PID
        } else {
            s.node
        };
        let name = json_escape(&s.name);
        for &(t, v) in &s.points {
            push(
                &mut out,
                &mut first,
                &format!(
                    "  {{\"ph\": \"C\", \"name\": \"{name}\", \"pid\": {pid}, \"tid\": 0, \
                     \"ts\": {:.3}, \"args\": {{\"value\": {v}}}}}",
                    t as f64 / 1000.0
                ),
            );
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Per-architecture causal-chain budget. The completeness checker applies
/// it to every chain that actually put traffic on the wire.
#[derive(Clone, Debug)]
pub struct ChainPolicy {
    /// Exact number of [`stage::TRAP`] events each inter-node message must
    /// show (`None` = don't check).
    pub traps_per_msg: Option<u64>,
    /// Exact number of [`stage::INTERRUPT`] events (`None` = don't check).
    pub interrupts_per_msg: Option<u64>,
    /// Flag chains that injected fragments without a recorded
    /// [`stage::SEND`] (catches broken TraceId propagation).
    pub require_send: bool,
}

impl ChainPolicy {
    /// The paper's BCL contract: exactly 1 trap, 0 interrupts.
    pub fn bcl() -> Self {
        ChainPolicy {
            traps_per_msg: Some(1),
            interrupts_per_msg: Some(0),
            require_send: true,
        }
    }

    /// The NIC-offloaded collective contract: each participant pays exactly
    /// one initiating trap and zero interrupts, no matter how many plan
    /// steps its NIC executes — fan-in combining and fan-out forwarding are
    /// firmware-resident, so a participant's chain shows its `api:send`,
    /// the single trap, its own injected contributions, and closes on the
    /// completion poll with no further host crossings.
    pub fn collective() -> Self {
        ChainPolicy {
            traps_per_msg: Some(1),
            interrupts_per_msg: Some(0),
            require_send: true,
        }
    }

    /// A Table 1 comparator architecture with its own crossing budget.
    pub fn architecture(traps: u64, interrupts: u64) -> Self {
        ChainPolicy {
            traps_per_msg: Some(traps),
            interrupts_per_msg: Some(interrupts),
            require_send: true,
        }
    }

    /// Structural checks only (closure + retransmission attribution).
    pub fn lenient() -> Self {
        ChainPolicy {
            traps_per_msg: None,
            interrupts_per_msg: None,
            require_send: false,
        }
    }
}

/// What the checker learned about one message's chain.
#[derive(Clone, Debug)]
pub struct ChainSummary {
    /// The message.
    pub trace: TraceId,
    /// Events observed for it.
    pub events: usize,
    /// A [`stage::SEND`] was recorded.
    pub has_send: bool,
    /// First-transmission fragments injected.
    pub injects: usize,
    /// Go-back-N retransmissions.
    pub retransmissions: usize,
    /// Switch hops traversed (all fragments).
    pub hops: usize,
    /// [`stage::TRAP`] events.
    pub traps: u64,
    /// [`stage::INTERRUPT`] events.
    pub interrupts: u64,
    /// Stage that closed the chain, when closed.
    pub terminal: Option<Cow<'static, str>>,
}

impl ChainSummary {
    /// Did the chain reach a completion or a counted drop?
    pub fn closed(&self) -> bool {
        self.terminal.is_some()
    }
}

/// Result of [`check_completeness`]: per-chain summaries plus human-readable
/// violations. An empty violation list means every chain is closed and
/// within policy.
#[derive(Clone, Debug, Default)]
pub struct CompletenessReport {
    /// One summary per traced message, ordered by [`TraceId`].
    pub chains: Vec<ChainSummary>,
    /// Everything that failed, one line each.
    pub violations: Vec<String>,
}

impl CompletenessReport {
    /// No violations?
    pub fn is_closed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Total retransmissions across all chains.
    pub fn total_retransmissions(&self) -> usize {
        self.chains.iter().map(|c| c.retransmissions).sum()
    }

    /// Summary for one message.
    pub fn chain(&self, trace: TraceId) -> Option<&ChainSummary> {
        self.chains.iter().find(|c| c.trace == trace)
    }
}

/// Stages that close a chain: the sender or receiver consumed a completion
/// event, the sender gave up after exhausting retries, or the receiver
/// dropped the message as a *counted* drop.
pub fn is_terminal(stage_name: &str) -> bool {
    matches!(
        stage_name,
        stage::POLL_RECV
            | stage::POLL_SEND
            | stage::MSG_FAILED
            | stage::DROP_NO_BUFFER
            | stage::DROP_NO_PORT
    )
}

/// Walk each message's causal chain and check it is closed and within the
/// architecture's crossing budget. Chains tagged [`TraceId::NONE`] are
/// skipped (they are unattributable by construction). Trap/interrupt
/// budgets apply only to chains that injected fragments — purely
/// intra-node messages never trap by design.
pub fn check_completeness(events: &[TraceEvent], policy: &ChainPolicy) -> CompletenessReport {
    let mut chains: BTreeMap<TraceId, Vec<&TraceEvent>> = BTreeMap::new();
    for ev in events {
        if ev.trace.is_none() {
            continue;
        }
        chains.entry(ev.trace).or_default().push(ev);
    }

    let mut report = CompletenessReport::default();
    for (trace, evs) in chains {
        let mut summary = ChainSummary {
            trace,
            events: evs.len(),
            has_send: false,
            injects: 0,
            retransmissions: 0,
            hops: 0,
            traps: 0,
            interrupts: 0,
            terminal: None,
        };
        let mut inject_seqs: BTreeSet<u32> = BTreeSet::new();
        let mut retx_seqs: Vec<u32> = Vec::new();
        let mut send_start: Option<u64> = None;
        let mut first_inject: Option<u64> = None;
        for ev in &evs {
            match ev.stage.as_ref() {
                stage::SEND => {
                    summary.has_send = true;
                    send_start = Some(send_start.map_or(ev.start_ns, |t| t.min(ev.start_ns)));
                }
                stage::INJECT => {
                    summary.injects += 1;
                    inject_seqs.insert(ev.seq);
                    first_inject = Some(first_inject.map_or(ev.start_ns, |t| t.min(ev.start_ns)));
                }
                stage::RETX => {
                    summary.retransmissions += 1;
                    retx_seqs.push(ev.seq);
                }
                stage::HOP => summary.hops += 1,
                stage::TRAP => summary.traps += 1,
                stage::INTERRUPT => summary.interrupts += 1,
                _ => {}
            }
            if summary.terminal.is_none() && is_terminal(ev.stage.as_ref()) {
                summary.terminal = Some(ev.stage.clone());
            }
        }

        let tag = format!("msg (origin {}, id {})", trace.origin, trace.msg_id);
        if summary.has_send && summary.terminal.is_none() {
            report.violations.push(format!(
                "{tag}: chain never closed — send without completion, failure, or counted drop"
            ));
        }
        if policy.require_send && !summary.has_send && summary.injects > 0 {
            report.violations.push(format!(
                "{tag}: {} fragments on the wire but no api:send recorded",
                summary.injects
            ));
        }
        for seq in &retx_seqs {
            if !inject_seqs.contains(seq) {
                report.violations.push(format!(
                    "{tag}: retransmission of seq {seq} never attributed to an injected fragment"
                ));
            }
        }
        if let (Some(send), Some(inject)) = (send_start, first_inject) {
            if inject < send {
                report.violations.push(format!(
                    "{tag}: first inject at {inject} ns precedes send at {send} ns"
                ));
            }
        }
        if summary.has_send && summary.injects > 0 {
            if let Some(budget) = policy.traps_per_msg {
                if summary.traps != budget {
                    report.violations.push(format!(
                        "{tag}: {} trap events, architecture budget is {budget}",
                        summary.traps
                    ));
                }
            }
            if let Some(budget) = policy.interrupts_per_msg {
                if summary.interrupts != budget {
                    report.violations.push(format!(
                        "{tag}: {} interrupt events, architecture budget is {budget}",
                        summary.interrupts
                    ));
                }
            }
        }
        report.chains.push(summary);
    }
    report
}

/// [`check_completeness`] over a *sampled* trace population: asserts the
/// per-chain crossing budgets for every chain the sampler admitted, and
/// additionally that the trace set is exactly the sampled population — a
/// chain whose [`TraceId`] the spec does not admit leaked past the sampler
/// (or the set was recorded under a different spec), which would silently
/// bias the budget statistics. With [`SampleSpec::ALL`] this is identical
/// to [`check_completeness`].
pub fn check_completeness_sampled(
    events: &[TraceEvent],
    policy: &ChainPolicy,
    spec: SampleSpec,
) -> CompletenessReport {
    let mut report = check_completeness(events, policy);
    for c in &report.chains {
        if !spec.admits(c.trace) {
            report.violations.push(format!(
                "msg (origin {}, id {}): present in the trace set but not admitted by the \
                 sampling spec (rate {} ppm, seed {:#x})",
                c.trace.origin, c.trace.msg_id, spec.rate_ppm, spec.seed
            ));
        }
    }
    report
}

/// Histogram names fed by [`record_stage_histograms`].
pub const STAGE_HISTOGRAMS: [&str; 5] = [
    "trace.trap_ns",
    "trace.inject_ns",
    "trace.wire_ns",
    "trace.dma_ns",
    "trace.cq_wait_ns",
];

/// Derive per-stage latency histograms from a trace: for every inter-node
/// chain, total time in the kernel send path (`trace.trap_ns`), MCP
/// fragment processing (`trace.inject_ns`), wire occupancy
/// (`trace.wire_ns`), DMA (`trace.dma_ns`), and the gap between the
/// completion-queue DMA finishing and the user poll consuming it
/// (`trace.cq_wait_ns`). Returns the number of chains measured.
pub fn record_stage_histograms(events: &[TraceEvent], metrics: &Metrics) -> usize {
    let mut chains: BTreeMap<TraceId, Vec<&TraceEvent>> = BTreeMap::new();
    for ev in events {
        if !ev.trace.is_none() {
            chains.entry(ev.trace).or_default().push(ev);
        }
    }
    let trap = metrics.histogram("trace.trap_ns");
    let inject = metrics.histogram("trace.inject_ns");
    let wire = metrics.histogram("trace.wire_ns");
    let dma = metrics.histogram("trace.dma_ns");
    let cq_wait = metrics.histogram("trace.cq_wait_ns");

    let mut measured = 0usize;
    for evs in chains.values() {
        let has_send = evs.iter().any(|e| e.stage == stage::SEND);
        let injects = evs.iter().any(|e| e.stage == stage::INJECT);
        if !has_send || !injects {
            continue;
        }
        measured += 1;
        let sum_of = |name: &str| -> u64 {
            evs.iter()
                .filter(|e| e.stage == name)
                .map(|e| e.duration_ns())
                .sum()
        };
        let trap_ns = sum_of(stage::IOCTL_SEND);
        if trap_ns > 0 {
            trap.record(trap_ns);
        }
        inject.record(sum_of(stage::INJECT));
        wire.record(sum_of(stage::WIRE_TX));
        dma.record(sum_of(stage::DMA_DATA) + sum_of(stage::DMA_CQ));
        let cq_done = evs
            .iter()
            .filter(|e| e.stage == stage::DMA_CQ && e.node != e.trace.origin)
            .map(|e| e.end_ns)
            .max();
        let polled = evs
            .iter()
            .filter(|e| e.stage == stage::POLL_RECV)
            .map(|e| e.start_ns)
            .min();
        if let (Some(done), Some(poll)) = (cq_done, polled) {
            cq_wait.record(poll.saturating_sub(done));
        }
    }
    measured
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(msg: u32) -> TraceId {
        TraceId::new(0, msg)
    }

    /// A minimal closed BCL chain for msg `m`: send, trap, inject, hop,
    /// rx, dma, cq, poll.
    fn closed_chain(m: u32) -> Vec<TraceEvent> {
        let t = id(m);
        vec![
            TraceEvent::span(t, 0, TraceLayer::Library, stage::SEND, 0, 100).with_bytes(512),
            TraceEvent::instant(t, 0, TraceLayer::Kernel, stage::TRAP, 10),
            TraceEvent::span(t, 0, TraceLayer::Kernel, stage::IOCTL_SEND, 10, 90),
            TraceEvent::span(t, 0, TraceLayer::Mcp, stage::INJECT, 100, 150).with_seq(0),
            TraceEvent::span(t, 0, TraceLayer::Wire, stage::WIRE_TX, 150, 400).with_seq(0),
            TraceEvent::instant(t, 0, TraceLayer::Wire, stage::HOP, 200).with_seq(0),
            TraceEvent::span(t, 1, TraceLayer::Mcp, stage::RX, 400, 450).with_seq(0),
            TraceEvent::span(t, 1, TraceLayer::Dma, stage::DMA_DATA, 450, 600),
            TraceEvent::span(t, 1, TraceLayer::Dma, stage::DMA_CQ, 600, 700),
            TraceEvent::instant(t, 1, TraceLayer::Library, stage::POLL_RECV, 900),
        ]
    }

    #[test]
    fn ring_wraps_and_counts_evictions() {
        let tr = MsgTracer::with_capacity(4);
        for i in 0..10u64 {
            tr.record(TraceEvent::instant(
                id(2),
                0,
                TraceLayer::Mcp,
                stage::HOP,
                i,
            ));
        }
        let evs = tr.events();
        assert_eq!(evs.len(), 4);
        // The *last* four survive.
        assert_eq!(evs[0].start_ns, 6);
        assert_eq!(evs[3].start_ns, 9);
        assert_eq!(tr.total_recorded(), 10);
        assert_eq!(tr.total_evicted(), 6);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tr = MsgTracer::new();
        tr.set_enabled(false);
        tr.record(TraceEvent::instant(
            id(2),
            0,
            TraceLayer::Mcp,
            stage::HOP,
            1,
        ));
        assert!(tr.events().is_empty());
        assert_eq!(tr.total_recorded(), 0);
    }

    #[test]
    fn sampling_is_deterministic_and_chain_consistent() {
        let spec = SampleSpec::ratio_ppm(100_000).with_seed(7); // 10%
                                                                // Pure function: the admitted set is identical on every evaluation
                                                                // and does not depend on evaluation order.
        let admitted: Vec<bool> = (0..4096)
            .map(|m| spec.admits(TraceId::new(m % 64, m)))
            .collect();
        let again: Vec<bool> = (0..4096)
            .map(|m| spec.admits(TraceId::new(m % 64, m)))
            .collect();
        assert_eq!(admitted, again);
        let hits = admitted.iter().filter(|&&a| a).count();
        // 10% of 4096 ≈ 410; a well-mixed hash lands in a loose window.
        assert!((205..=820).contains(&hits), "admitted {hits} of 4096");
        // A different seed samples a different population at a similar rate.
        let other = SampleSpec::ratio_ppm(100_000).with_seed(8);
        let other_set: Vec<bool> = (0..4096)
            .map(|m| other.admits(TraceId::new(m % 64, m)))
            .collect();
        assert_ne!(admitted, other_set);
        // NONE is always admitted; rate 100% admits everything.
        assert!(spec.admits(TraceId::NONE));
        assert!(SampleSpec::ALL.admits(TraceId::new(3, 9)));
    }

    #[test]
    fn sampled_tracer_drops_unadmitted_chains_whole() {
        let tr = MsgTracer::new();
        let spec = SampleSpec::ratio_ppm(200_000).with_seed(42);
        tr.set_sampling(spec);
        assert_eq!(tr.sampling(), spec);
        for m in 0..64u32 {
            for ev in closed_chain(m) {
                tr.record(ev);
            }
        }
        let events = tr.events();
        let chain_len = closed_chain(0).len() as u64;
        // Every surviving event belongs to an admitted chain, and admitted
        // chains survive *complete* — sampling never truncates a chain.
        let mut per_chain: BTreeMap<TraceId, u64> = BTreeMap::new();
        for ev in &events {
            assert!(spec.admits(ev.trace), "unadmitted event survived");
            *per_chain.entry(ev.trace).or_default() += 1;
        }
        for (t, n) in &per_chain {
            assert_eq!(*n, chain_len, "chain {t:?} truncated");
        }
        let admitted = (0..64u32).filter(|&m| spec.admits(id(m))).count() as u64;
        assert_eq!(per_chain.len() as u64, admitted);
        assert_eq!(tr.total_recorded(), admitted * chain_len);
        assert_eq!(tr.total_sampled_out(), (64 - admitted) * chain_len);
        // NONE events bypass the sampler entirely (flight-recorder cargo).
        tr.record(TraceEvent::instant(
            TraceId::NONE,
            0,
            TraceLayer::Mcp,
            stage::PROTO_ERROR,
            5,
        ));
        assert_eq!(tr.total_recorded(), admitted * chain_len + 1);
        // The sampled population passes the budget check as-is…
        let report = check_completeness_sampled(&tr.events(), &ChainPolicy::bcl(), spec);
        assert!(report.is_closed(), "{:?}", report.violations);
        assert_eq!(report.chains.len() as u64, admitted);
        // …and a chain outside the sampled population is flagged.
        let leaked = (0..u32::MAX)
            .find(|&m| !spec.admits(id(m)))
            .expect("some chain unadmitted");
        let mut evs = tr.events();
        evs.extend(closed_chain(leaked));
        let report = check_completeness_sampled(&evs, &ChainPolicy::bcl(), spec);
        assert!(!report.is_closed());
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("not admitted by the sampling spec")));
    }

    #[test]
    fn events_merge_sorted_across_nodes() {
        let tr = MsgTracer::new();
        tr.record(TraceEvent::instant(
            id(2),
            1,
            TraceLayer::Mcp,
            stage::RX,
            50,
        ));
        tr.record(TraceEvent::instant(
            id(2),
            0,
            TraceLayer::Mcp,
            stage::HOP,
            10,
        ));
        let evs = tr.take_events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].start_ns, 10);
        assert!(tr.take_events().is_empty(), "drained");
    }

    #[test]
    fn dump_once_fires_exactly_once() {
        let tr = MsgTracer::new();
        tr.record(TraceEvent::instant(
            id(2),
            0,
            TraceLayer::Mcp,
            stage::HOP,
            1,
        ));
        assert!(!tr.has_dumped());
        assert!(tr.dump_once("unit test"));
        assert!(tr.has_dumped());
        assert!(!tr.dump_once("again"), "second dump suppressed");
        let text = tr.dump(16);
        assert!(text.contains("mcp"));
        assert!(text.contains("msg=(0,2)"));
    }

    #[test]
    fn set_capacity_trims_existing_rings() {
        let tr = MsgTracer::with_capacity(8);
        for i in 0..8u64 {
            tr.record(TraceEvent::instant(
                id(2),
                0,
                TraceLayer::Mcp,
                stage::HOP,
                i,
            ));
        }
        tr.set_capacity(2);
        let evs = tr.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].start_ns, 6);
    }

    #[test]
    fn chrome_json_is_balanced_and_typed() {
        let j = to_chrome_json(&closed_chain(2));
        assert!(j.contains("\"traceEvents\""));
        assert!(j.contains("\"ph\": \"X\""));
        assert!(j.contains("\"ph\": \"i\""));
        assert!(j.contains("\"process_name\""));
        assert!(j.contains("\"name\": \"node 0\""));
        assert!(j.contains("\"name\": \"api:send\""));
        let depth = j.chars().fold(0i32, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
    }

    #[test]
    fn chrome_json_merges_counter_tracks() {
        let ts = crate::timeseries::TimeSeries::new();
        ts.register("n0.mcp.send_queue", 0, Some(64), |_| 3);
        ts.register(
            "link.sw0->n1.backlog_bytes",
            crate::timeseries::FABRIC_NODE,
            None,
            |_| 4096,
        );
        ts.sample_all(1_000);
        ts.sample_all(2_000);
        let j = to_chrome_json_with_counters(&closed_chain(2), &ts.snapshot());
        assert!(j.contains("\"ph\": \"C\""), "counter events present");
        assert!(j.contains("\"name\": \"n0.mcp.send_queue\""));
        assert!(
            j.contains(&format!("\"pid\": {FABRIC_PID}")),
            "fabric probe under the fabric pseudo-process"
        );
        assert!(j.contains("\"name\": \"fabric\""));
        assert!(j.contains("\"ts\": 1.000"), "sample at 1 us");
        assert!(j.contains("\"args\": {\"value\": 4096}"));
        // Still a balanced document with the span events intact.
        assert!(j.contains("\"ph\": \"X\""));
        let depth = j.chars().fold(0i32, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
    }

    #[test]
    fn checker_accepts_closed_bcl_chain() {
        let report = check_completeness(&closed_chain(2), &ChainPolicy::bcl());
        assert!(report.is_closed(), "{:?}", report.violations);
        let chain = report.chain(id(2)).expect("chain present");
        assert_eq!(chain.traps, 1);
        assert_eq!(chain.interrupts, 0);
        assert_eq!(chain.injects, 1);
        assert_eq!(chain.hops, 1);
        assert_eq!(chain.terminal.as_deref(), Some(stage::POLL_RECV));
    }

    #[test]
    fn checker_flags_unclosed_chain() {
        let mut evs = closed_chain(2);
        evs.retain(|e| e.stage != stage::POLL_RECV);
        let report = check_completeness(&evs, &ChainPolicy::bcl());
        assert!(!report.is_closed());
        assert!(report.violations[0].contains("never closed"));
    }

    #[test]
    fn checker_flags_extra_trap_and_interrupt() {
        let mut evs = closed_chain(2);
        evs.push(TraceEvent::instant(
            id(2),
            0,
            TraceLayer::Kernel,
            stage::TRAP,
            20,
        ));
        evs.push(TraceEvent::instant(
            id(2),
            1,
            TraceLayer::Kernel,
            stage::INTERRUPT,
            500,
        ));
        let report = check_completeness(&evs, &ChainPolicy::bcl());
        assert_eq!(report.violations.len(), 2, "{:?}", report.violations);
        // The same chain passes under a 2-trap/1-interrupt architecture.
        let report = check_completeness(&evs, &ChainPolicy::architecture(2, 1));
        assert!(report.is_closed(), "{:?}", report.violations);
    }

    #[test]
    fn checker_attributes_retransmissions() {
        let mut evs = closed_chain(2);
        evs.push(TraceEvent::span(id(2), 0, TraceLayer::Mcp, stage::RETX, 700, 750).with_seq(0));
        let report = check_completeness(&evs, &ChainPolicy::bcl());
        assert!(report.is_closed(), "{:?}", report.violations);
        assert_eq!(report.total_retransmissions(), 1);
        // A retransmission of a seq that was never injected is a violation.
        evs.push(TraceEvent::span(id(2), 0, TraceLayer::Mcp, stage::RETX, 800, 850).with_seq(9));
        let report = check_completeness(&evs, &ChainPolicy::bcl());
        assert!(report.violations.iter().any(|v| v.contains("seq 9")));
    }

    #[test]
    fn checker_flags_wire_traffic_without_send() {
        let mut evs = closed_chain(2);
        evs.retain(|e| e.stage != stage::SEND);
        let report = check_completeness(&evs, &ChainPolicy::bcl());
        assert!(report.violations.iter().any(|v| v.contains("no api:send")));
        assert!(check_completeness(&evs, &ChainPolicy::lenient()).is_closed());
    }

    #[test]
    fn checker_skips_unattributable_events() {
        let evs = [TraceEvent::instant(
            TraceId::NONE,
            0,
            TraceLayer::Mcp,
            stage::PROTO_ERROR,
            5,
        )];
        let report = check_completeness(&evs, &ChainPolicy::bcl());
        assert!(report.chains.is_empty());
        assert!(report.is_closed());
    }

    #[test]
    fn terminal_failure_and_drop_close_chains() {
        for terminal in [
            stage::MSG_FAILED,
            stage::DROP_NO_BUFFER,
            stage::DROP_NO_PORT,
        ] {
            let mut evs = closed_chain(2);
            evs.retain(|e| e.stage != stage::POLL_RECV);
            evs.push(TraceEvent::instant(
                id(2),
                1,
                TraceLayer::Mcp,
                terminal,
                950,
            ));
            let report = check_completeness(&evs, &ChainPolicy::bcl());
            assert!(report.is_closed(), "{terminal}: {:?}", report.violations);
            assert_eq!(
                report.chain(id(2)).unwrap().terminal.as_deref(),
                Some(terminal)
            );
        }
    }

    #[test]
    fn stage_histograms_measure_chains() {
        let m = Metrics::new();
        let n = record_stage_histograms(&closed_chain(2), &m);
        assert_eq!(n, 1);
        let snap = m.snapshot();
        assert_eq!(snap.histograms["trace.trap_ns"].count, 1);
        assert_eq!(snap.histograms["trace.trap_ns"].max, 80);
        assert_eq!(snap.histograms["trace.inject_ns"].max, 50);
        assert_eq!(snap.histograms["trace.wire_ns"].max, 250);
        assert_eq!(snap.histograms["trace.dma_ns"].max, 250);
        // cq DMA ends at 700, poll at 900.
        assert_eq!(snap.histograms["trace.cq_wait_ns"].max, 200);
    }

    #[test]
    fn intern_returns_pointer_stable_strings() {
        let a = intern("unit-test-track/n0");
        let b = intern(&String::from("unit-test-track/n0"));
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(a, "unit-test-track/n0");
    }
}
