//! Continuous resource telemetry: sampled occupancy series on the sim clock.
//!
//! Counters ([`crate::Metrics`]) aggregate over a whole run and the tracer
//! ([`crate::trace`]) follows individual messages; neither shows how
//! *occupancy* — queue depths, go-back-N windows, NIC SRAM, pinned host
//! memory, link backlog — evolves **during** a run. This module adds that
//! time dimension:
//!
//! * Components register [`Probe`]s at construction time: a name, the node
//!   it belongs to, an optional capacity, and a sampling closure.
//! * A driver (the simulator's telemetry tick — this crate sits below the
//!   engine and never schedules anything itself) calls
//!   [`TimeSeries::sample_all`] at a fixed virtual-time period; every probe
//!   is read and the `(t_ns, value)` point lands in a bounded per-probe
//!   ring.
//! * Snapshots serialize to deterministic JSON (probes sorted by name,
//!   virtual timestamps only) so fixed seeds produce byte-identical files,
//!   and feed Perfetto counter tracks
//!   ([`crate::trace::to_chrome_json_with_counters`]).
//! * Probes with a declared capacity track how many *consecutive* samples
//!   sat at or above it — the stall watchdog's "pegged" signal
//!   ([`crate::watchdog`]).
//!
//! Sampling closures run under the registry lock and must not call back
//! into the [`TimeSeries`] they are registered with.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Mutex;

use crate::json_escape;

/// Pseudo-node id for fabric-wide probes (per-link backlog, trunk
/// utilization) that belong to no single host. Rendered as node `-1` in
/// JSON and grouped under a synthetic "fabric" process in Perfetto.
pub const FABRIC_NODE: u32 = u32::MAX;

/// Default bound on each probe's sample ring. At the default 10 µs sampling
/// period this keeps ~41 ms of history per probe.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

type SampleFn = Box<dyn Fn(u64) -> u64 + Send + Sync>;

struct Probe {
    name: String,
    node: u32,
    capacity: Option<u64>,
    sample: SampleFn,
    ring: VecDeque<(u64, u64)>,
    evicted: u64,
    /// Consecutive samples at/above `capacity` (0 when capacity is None).
    pegged_streak: u32,
    /// The watchdog already reported this probe as pegged.
    pegged_flagged: bool,
}

struct Inner {
    probes: Vec<Probe>,
    ring_capacity: usize,
    samples_taken: u64,
    last_sample_ns: u64,
}

/// The probe registry plus the bounded sample rings. One per simulation,
/// held (like [`crate::Metrics`]) outside the engine lock.
pub struct TimeSeries {
    inner: Mutex<Inner>,
}

impl Default for TimeSeries {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeSeries {
    /// Empty registry with [`DEFAULT_RING_CAPACITY`] samples per probe.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// Empty registry keeping the last `ring_capacity` samples per probe.
    pub fn with_capacity(ring_capacity: usize) -> Self {
        TimeSeries {
            inner: Mutex::new(Inner {
                probes: Vec::new(),
                ring_capacity: ring_capacity.max(1),
                samples_taken: 0,
                last_sample_ns: 0,
            }),
        }
    }

    /// Register a probe. `sample` is called with the current virtual time
    /// in nanoseconds at every sampling tick and must be cheap and
    /// side-effect-free. `capacity` (when known) declares the level at
    /// which the resource is *full*, enabling pegged-at-capacity detection.
    ///
    /// Panics on a duplicate name: probe names are the JSON identity and
    /// must be unique per run.
    pub fn register(
        &self,
        name: impl Into<String>,
        node: u32,
        capacity: Option<u64>,
        sample: impl Fn(u64) -> u64 + Send + Sync + 'static,
    ) {
        let name = name.into();
        let mut inner = self.inner.lock().expect("timeseries poisoned");
        assert!(
            !inner.probes.iter().any(|p| p.name == name),
            "duplicate telemetry probe {name:?}"
        );
        let cap = inner.ring_capacity;
        inner.probes.push(Probe {
            name,
            node,
            capacity,
            sample: Box::new(sample),
            ring: VecDeque::with_capacity(cap.min(1024)),
            evicted: 0,
            pegged_streak: 0,
            pegged_flagged: false,
        });
    }

    /// Number of registered probes.
    pub fn probe_count(&self) -> usize {
        self.inner.lock().expect("timeseries poisoned").probes.len()
    }

    /// Sorted names of every registered probe.
    pub fn probe_names(&self) -> Vec<String> {
        let inner = self.inner.lock().expect("timeseries poisoned");
        let mut names: Vec<String> = inner.probes.iter().map(|p| p.name.clone()).collect();
        names.sort();
        names
    }

    /// Sampling ticks taken so far.
    pub fn samples_taken(&self) -> u64 {
        self.inner
            .lock()
            .expect("timeseries poisoned")
            .samples_taken
    }

    /// Read every probe at virtual time `now_ns` and append the points to
    /// the rings (evicting the oldest points when full). Called by the
    /// simulator's telemetry tick; probes are visited in registration
    /// order, which is deterministic under a fixed seed.
    pub fn sample_all(&self, now_ns: u64) {
        let mut inner = self.inner.lock().expect("timeseries poisoned");
        let ring_capacity = inner.ring_capacity;
        inner.samples_taken += 1;
        inner.last_sample_ns = now_ns;
        for p in inner.probes.iter_mut() {
            let v = (p.sample)(now_ns);
            if p.ring.len() >= ring_capacity {
                p.ring.pop_front();
                p.evicted += 1;
            }
            p.ring.push_back((now_ns, v));
            match p.capacity {
                Some(cap) if cap > 0 && v >= cap => {
                    p.pegged_streak = p.pegged_streak.saturating_add(1)
                }
                _ => {
                    p.pegged_streak = 0;
                    p.pegged_flagged = false;
                }
            }
        }
    }

    /// Visit every probe's most recent sample without copying any ring:
    /// `f(name, node, capacity, latest_value)`, in registration order,
    /// skipping probes not yet sampled. The health engine's saturation
    /// rules read levels through this on every tick — [`Self::snapshot`]
    /// would clone the full history each time.
    pub fn for_each_latest(&self, mut f: impl FnMut(&str, u32, Option<u64>, u64)) {
        let inner = self.inner.lock().expect("timeseries poisoned");
        for p in &inner.probes {
            if let Some(&(_, v)) = p.ring.back() {
                f(&p.name, p.node, p.capacity, v);
            }
        }
    }

    /// Probes that have now been at/above their declared capacity for at
    /// least `min_samples` consecutive samples and were not yet reported.
    /// Each probe is returned once per continuous pegged episode (the flag
    /// rearms when the probe drops below capacity). Returns
    /// `(name, capacity, streak)` tuples.
    pub fn newly_pegged(&self, min_samples: u32) -> Vec<(String, u64, u32)> {
        let mut inner = self.inner.lock().expect("timeseries poisoned");
        let mut out = Vec::new();
        for p in inner.probes.iter_mut() {
            if !p.pegged_flagged && p.capacity.is_some() && p.pegged_streak >= min_samples.max(1) {
                p.pegged_flagged = true;
                out.push((p.name.clone(), p.capacity.unwrap_or(0), p.pegged_streak));
            }
        }
        out
    }

    /// Point-in-time copy of every probe's ring, sorted by probe name.
    pub fn snapshot(&self) -> TimeSeriesSnapshot {
        let inner = self.inner.lock().expect("timeseries poisoned");
        let mut series: Vec<SeriesSnapshot> = inner
            .probes
            .iter()
            .map(|p| SeriesSnapshot {
                name: p.name.clone(),
                node: p.node,
                capacity: p.capacity,
                evicted: p.evicted,
                points: p.ring.iter().copied().collect(),
            })
            .collect();
        series.sort_by(|a, b| a.name.cmp(&b.name));
        TimeSeriesSnapshot {
            samples_taken: inner.samples_taken,
            series,
        }
    }

    /// Render the last `max_points` samples of every probe — the telemetry
    /// window the stall watchdog dumps to stderr next to the flight
    /// recorder.
    pub fn render_last_window(&self, max_points: usize) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        for s in &snap.series {
            let skip = s.points.len().saturating_sub(max_points);
            let _ = write!(out, "  {}", s.name);
            if let Some(cap) = s.capacity {
                let _ = write!(out, " (cap {cap})");
            }
            out.push_str(": ");
            for (i, (t, v)) in s.points.iter().skip(skip).enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{v}@{t}ns");
            }
            if s.points.is_empty() {
                out.push_str("(no samples)");
            }
            out.push('\n');
        }
        if out.is_empty() {
            out.push_str("  (no probes registered)\n");
        }
        out
    }
}

/// One probe's sampled history.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeriesSnapshot {
    /// Probe name (unique per run).
    pub name: String,
    /// Owning node, or [`FABRIC_NODE`] for fabric-wide probes.
    pub node: u32,
    /// Declared capacity, when the resource has one.
    pub capacity: Option<u64>,
    /// Points evicted from the bounded ring before this snapshot.
    pub evicted: u64,
    /// `(t_ns, value)` samples, oldest first, strictly increasing in time.
    pub points: Vec<(u64, u64)>,
}

/// A full registry snapshot: every probe's ring, sorted by name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimeSeriesSnapshot {
    /// Sampling ticks taken over the whole run (≥ points kept per ring).
    pub samples_taken: u64,
    /// Per-probe series, sorted by probe name.
    pub series: Vec<SeriesSnapshot>,
}

impl TimeSeriesSnapshot {
    /// No probes registered?
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Series by probe name.
    pub fn series(&self, name: &str) -> Option<&SeriesSnapshot> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Serialize as deterministic JSON: probes sorted by name, points in
    /// time order, no floats, no wall-clock anywhere — fixed seeds produce
    /// byte-identical output. Fabric-wide probes render `"node": -1`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"samples_taken\": {},\n  \"series\": [",
            self.samples_taken
        );
        for (i, s) in self.series.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let node = if s.node == FABRIC_NODE {
                "-1".to_string()
            } else {
                s.node.to_string()
            };
            let cap = s
                .capacity
                .map(|c| c.to_string())
                .unwrap_or_else(|| "null".to_string());
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"node\": {node}, \"capacity\": {cap}, \
                 \"evicted\": {}, \"points\": [",
                json_escape(&s.name),
                s.evicted
            );
            for (j, (t, v)) in s.points.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[{t}, {v}]");
            }
            out.push_str("]}");
        }
        out.push_str(if self.series.is_empty() {
            "]\n}\n"
        } else {
            "\n  ]\n}\n"
        });
        out
    }
}

/// Collapse a probe name to its cluster-wide rollup group.
///
/// Per-node probes are named `n<node>.[p<port>.]<resource>` and per-link
/// probes `link.<label>.<resource>`; at fleet scale (1,024 nodes, thousands
/// of links) one series per probe is the artifact-size bottleneck. The
/// rollup groups by *resource*:
///
/// * `n12.mcp.send_queue` → `mcp.send_queue`
/// * `n3.p7000.rpc.inflight` → `rpc.inflight`
/// * `link.sw0->n1.backlog_bytes` → `link.*.backlog_bytes`
/// * anything else keeps its name (already cluster-wide).
pub fn rollup_key(name: &str) -> String {
    fn strip_indexed(s: &str, tag: char) -> Option<&str> {
        let rest = s.strip_prefix(tag)?;
        let dot = rest.find('.')?;
        if dot > 0 && rest[..dot].bytes().all(|b| b.is_ascii_digit()) {
            Some(&rest[dot + 1..])
        } else {
            None
        }
    }
    if let Some(rest) = strip_indexed(name, 'n') {
        let rest = strip_indexed(rest, 'p').unwrap_or(rest);
        return rest.to_string();
    }
    if let Some(rest) = name.strip_prefix("link.") {
        if let Some(dot) = rest.find('.') {
            return format!("link.*.{}", &rest[dot + 1..]);
        }
    }
    name.to_string()
}

/// One rollup group: every member probe's points folded per timestamp.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RollupSeries {
    /// Group key from [`rollup_key`].
    pub key: String,
    /// Probes folded into this group.
    pub members: u64,
    /// Sum of the members' declared capacities (None when no member
    /// declares one) — `sum` vs `capacity_sum` is the fleet-wide
    /// utilization.
    pub capacity_sum: Option<u64>,
    /// Total ring evictions across members.
    pub evicted: u64,
    /// `(t_ns, probes_sampled, min, max, sum)` per tick, oldest first.
    /// `probes_sampled` can be < `members` when a probe registered
    /// mid-run or its ring evicted older points.
    pub points: Vec<(u64, u64, u64, u64, u64)>,
}

/// Cluster-level timeseries rollup: output size is O(groups × ring length),
/// independent of node count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RollupSnapshot {
    /// Sampling ticks taken over the whole run.
    pub samples_taken: u64,
    /// Probes folded in.
    pub probes: u64,
    /// Groups sorted by key.
    pub groups: Vec<RollupSeries>,
}

impl TimeSeriesSnapshot {
    /// Fold every per-node/per-link series into cluster-wide groups (see
    /// [`rollup_key`]). All probes are sampled at the same tick timestamps,
    /// so the per-timestamp (min, max, sum) is an exact aggregate, not an
    /// approximation.
    pub fn rollup(&self) -> RollupSnapshot {
        use std::collections::BTreeMap;
        struct Acc {
            members: u64,
            capacity_sum: Option<u64>,
            evicted: u64,
            points: BTreeMap<u64, (u64, u64, u64, u64)>,
        }
        let mut groups: BTreeMap<String, Acc> = BTreeMap::new();
        for s in &self.series {
            let acc = groups.entry(rollup_key(&s.name)).or_insert_with(|| Acc {
                members: 0,
                capacity_sum: None,
                evicted: 0,
                points: BTreeMap::new(),
            });
            acc.members += 1;
            if let Some(c) = s.capacity {
                acc.capacity_sum = Some(acc.capacity_sum.unwrap_or(0).saturating_add(c));
            }
            acc.evicted += s.evicted;
            for &(t, v) in &s.points {
                let e = acc.points.entry(t).or_insert((0, u64::MAX, 0, 0));
                e.0 += 1;
                e.1 = e.1.min(v);
                e.2 = e.2.max(v);
                e.3 = e.3.saturating_add(v);
            }
        }
        RollupSnapshot {
            samples_taken: self.samples_taken,
            probes: self.series.len() as u64,
            groups: groups
                .into_iter()
                .map(|(key, a)| RollupSeries {
                    key,
                    members: a.members,
                    capacity_sum: a.capacity_sum,
                    evicted: a.evicted,
                    points: a
                        .points
                        .into_iter()
                        .map(|(t, (n, mn, mx, sum))| (t, n, mn, mx, sum))
                        .collect(),
                })
                .collect(),
        }
    }
}

impl RollupSnapshot {
    /// Serialize as deterministic JSON (groups sorted by key, virtual
    /// timestamps only): fixed seeds produce byte-identical output.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"schema\": \"suca.timeseries_rollup.v1\",\n  \"samples_taken\": {},\n  \
             \"probes\": {},\n  \"groups\": [",
            self.samples_taken, self.probes
        );
        for (i, g) in self.groups.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let cap = g
                .capacity_sum
                .map(|c| c.to_string())
                .unwrap_or_else(|| "null".to_string());
            let _ = write!(
                out,
                "    {{\"key\": \"{}\", \"members\": {}, \"capacity_sum\": {cap}, \
                 \"evicted\": {}, \"points\": [",
                json_escape(&g.key),
                g.members,
                g.evicted
            );
            for (j, (t, n, mn, mx, sum)) in g.points.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[{t}, {n}, {mn}, {mx}, {sum}]");
            }
            out.push_str("]}");
        }
        out.push_str(if self.groups.is_empty() {
            "]\n}\n"
        } else {
            "\n  ]\n}\n"
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_sample_in_time_order() {
        let ts = TimeSeries::new();
        ts.register("a.depth", 0, Some(4), |_| 2);
        ts.register("b.level", 1, None, |now| now / 10);
        ts.sample_all(0);
        ts.sample_all(10);
        ts.sample_all(20);
        let snap = ts.snapshot();
        assert_eq!(snap.samples_taken, 3);
        let a = snap.series("a.depth").expect("probe a");
        assert_eq!(a.points, vec![(0, 2), (10, 2), (20, 2)]);
        assert_eq!(a.capacity, Some(4));
        let b = snap.series("b.level").expect("probe b");
        assert_eq!(b.points, vec![(0, 0), (10, 1), (20, 2)]);
        assert!(b.capacity.is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate telemetry probe")]
    fn duplicate_probe_names_panic() {
        let ts = TimeSeries::new();
        ts.register("x", 0, None, |_| 0);
        ts.register("x", 0, None, |_| 0);
    }

    #[test]
    fn rings_are_bounded() {
        let ts = TimeSeries::with_capacity(3);
        ts.register("q", 0, None, |now| now);
        for t in 0..10 {
            ts.sample_all(t);
        }
        let s = ts.snapshot();
        let q = s.series("q").unwrap();
        assert_eq!(q.points, vec![(7, 7), (8, 8), (9, 9)]);
        assert_eq!(q.evicted, 7);
        assert_eq!(s.samples_taken, 10);
    }

    #[test]
    fn pegged_detection_requires_consecutive_samples() {
        let ts = TimeSeries::new();
        let level = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(8));
        let l2 = level.clone();
        ts.register("full", 0, Some(8), move |_| {
            l2.load(std::sync::atomic::Ordering::Relaxed)
        });
        ts.sample_all(0);
        ts.sample_all(1);
        assert!(ts.newly_pegged(3).is_empty(), "streak of 2 < 3");
        // A dip resets the streak.
        level.store(0, std::sync::atomic::Ordering::Relaxed);
        ts.sample_all(2);
        level.store(9, std::sync::atomic::Ordering::Relaxed);
        ts.sample_all(3);
        ts.sample_all(4);
        assert!(ts.newly_pegged(3).is_empty(), "streak restarted after dip");
        ts.sample_all(5);
        let pegged = ts.newly_pegged(3);
        assert_eq!(pegged.len(), 1);
        assert_eq!(pegged[0].0, "full");
        assert_eq!(pegged[0].1, 8);
        assert_eq!(pegged[0].2, 3);
        // Reported once per episode.
        ts.sample_all(6);
        assert!(ts.newly_pegged(3).is_empty());
    }

    #[test]
    fn json_is_sorted_and_deterministic() {
        let build = || {
            let ts = TimeSeries::new();
            ts.register("z.last", 1, None, |_| 7);
            ts.register("a.first", 0, Some(10), |_| 3);
            ts.register("fabric.link", FABRIC_NODE, None, |_| 1);
            ts.sample_all(100);
            ts.sample_all(200);
            ts.snapshot().to_json()
        };
        let j1 = build();
        let j2 = build();
        assert_eq!(j1, j2, "same construction ⇒ byte-identical JSON");
        let a = j1.find("a.first").expect("a.first present");
        let f = j1.find("fabric.link").expect("fabric.link present");
        let z = j1.find("z.last").expect("z.last present");
        assert!(a < f && f < z, "series sorted by name");
        assert!(j1.contains("\"node\": -1"), "fabric node renders as -1");
        assert!(j1.contains("\"capacity\": null"));
        assert!(j1.contains("\"capacity\": 10"));
        assert!(j1.contains("[100, 3], [200, 3]"));
        let depth = j1.chars().fold(0i32, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0, "balanced JSON");
    }

    #[test]
    fn empty_registry_serializes() {
        let j = TimeSeries::new().snapshot().to_json();
        assert!(j.contains("\"series\": []"));
    }

    #[test]
    fn rollup_keys_strip_node_port_and_link_labels() {
        assert_eq!(rollup_key("n12.mcp.send_queue"), "mcp.send_queue");
        assert_eq!(rollup_key("n3.p7000.rpc.inflight"), "rpc.inflight");
        assert_eq!(rollup_key("n0.nic.sram_used"), "nic.sram_used");
        assert_eq!(
            rollup_key("link.sw0->n1.backlog_bytes"),
            "link.*.backlog_bytes"
        );
        assert_eq!(rollup_key("link.n5->sw2.busy"), "link.*.busy");
        // Not an indexed prefix: left alone.
        assert_eq!(rollup_key("nic.sram_used"), "nic.sram_used");
        assert_eq!(rollup_key("sim.prof.batches"), "sim.prof.batches");
        assert_eq!(rollup_key("nx.y"), "nx.y");
    }

    #[test]
    fn rollup_aggregates_exactly_per_tick() {
        let ts = TimeSeries::new();
        for n in 0..8u32 {
            ts.register(format!("n{n}.mcp.send_queue"), n, Some(64), move |_| {
                u64::from(n) * 10
            });
        }
        ts.register("link.sw0->n1.busy", FABRIC_NODE, None, |_| 1);
        ts.register("link.sw0->n2.busy", FABRIC_NODE, None, |_| 3);
        ts.sample_all(100);
        ts.sample_all(200);
        let roll = ts.snapshot().rollup();
        assert_eq!(roll.probes, 10);
        assert_eq!(roll.groups.len(), 2, "10 probes fold to 2 groups");
        let q = roll
            .groups
            .iter()
            .find(|g| g.key == "mcp.send_queue")
            .unwrap();
        assert_eq!(q.members, 8);
        assert_eq!(q.capacity_sum, Some(8 * 64));
        assert_eq!(q.points, vec![(100, 8, 0, 70, 280), (200, 8, 0, 70, 280)]);
        let busy = roll.groups.iter().find(|g| g.key == "link.*.busy").unwrap();
        assert_eq!(busy.members, 2);
        assert_eq!(busy.capacity_sum, None);
        assert_eq!(busy.points, vec![(100, 2, 1, 3, 4), (200, 2, 1, 3, 4)]);
        // Output size is per-group, not per-probe: a 64-node registry rolls
        // up to the same group count.
        let big = TimeSeries::new();
        for n in 0..64u32 {
            big.register(format!("n{n}.mcp.send_queue"), n, Some(64), |_| 1);
        }
        big.sample_all(100);
        let bigroll = big.snapshot().rollup();
        assert_eq!(bigroll.groups.len(), 1);
        assert_eq!(bigroll.groups[0].points.len(), 1);
        // Deterministic, schema-tagged, balanced JSON.
        let j1 = roll.to_json();
        let j2 = ts.snapshot().rollup().to_json();
        assert_eq!(j1, j2);
        assert!(j1.contains("\"schema\": \"suca.timeseries_rollup.v1\""));
        assert!(j1.contains("[100, 8, 0, 70, 280]"));
        let depth = j1.chars().fold(0i32, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0, "balanced JSON");
    }

    #[test]
    fn rollup_counts_partial_ticks_from_late_probes() {
        let ts = TimeSeries::new();
        ts.register("n0.q", 0, None, |_| 5);
        ts.sample_all(10);
        // A probe registered mid-run (e.g. an RPC client spawning late).
        ts.register("n1.q", 1, None, |_| 7);
        ts.sample_all(20);
        let roll = ts.snapshot().rollup();
        let q = roll.groups.iter().find(|g| g.key == "q").unwrap();
        assert_eq!(q.members, 2);
        assert_eq!(q.points, vec![(10, 1, 5, 5, 5), (20, 2, 5, 7, 12)]);
    }

    #[test]
    fn last_window_renders_capacity_and_values() {
        let ts = TimeSeries::new();
        ts.register("n0.q", 0, Some(4), |_| 4);
        ts.sample_all(10);
        ts.sample_all(20);
        let w = ts.render_last_window(1);
        assert!(w.contains("n0.q (cap 4): 4@20ns"), "{w}");
        assert!(!w.contains("4@10ns"), "window bounded: {w}");
    }
}
