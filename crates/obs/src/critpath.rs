//! Per-message critical-path analysis over the [`crate::trace`] event
//! stream.
//!
//! For every traced message the analyzer computes where its end-to-end
//! latency actually went: a timeline sweep from the `api:send` begin to the
//! terminal stage attributes each elementary time slice to the
//! *innermost* active span (latest start wins; ties go to the span that
//! ends first), so nested stages (`kernel:pio` inside `kernel:ioctl_send`
//! inside `api:send`) charge only their own work and pipelined stages
//! (NIC descriptor fetch overlapping the trap exit) don't double-count.
//! Slices covered by no span are *wait* — scheduling or queueing gaps.
//!
//! [`bottleneck_report`] aggregates messages into size buckets and reports
//! per-stage latency shares plus a dominant-stage histogram. For the
//! host-side identities of the paper's Fig 5/7 the report also sums raw
//! span durations (the kernel sub-stages are sequential on the host
//! timeline, so durations are exact there): request fill sums
//! `kernel:dispatch` and `kernel:pio`; kernel-resident extra sums
//! `kernel:trap_enter`, `kernel:dispatch`, `kernel:pin`, `kernel:trap_exit`.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use crate::trace::{is_terminal, stage, TraceEvent, TraceId, TracePhase};

/// Where one message's latency went.
#[derive(Clone, Debug)]
pub struct MessageCritPath {
    /// The message.
    pub trace: TraceId,
    /// Payload bytes (from the `api:send` span).
    pub bytes: u64,
    /// `api:send` begin, virtual ns.
    pub start_ns: u64,
    /// Send begin → terminal stage end (or last event when unclosed).
    pub total_ns: u64,
    /// Duration of the `api:send` span (host-side overhead window).
    pub send_ns: u64,
    /// Slices covered by no span: queueing/scheduling gaps.
    pub wait_ns: u64,
    /// Per-stage self time from the sweep (sums with `wait_ns` to
    /// `total_ns`).
    pub self_ns: BTreeMap<String, u64>,
    /// Per-stage summed raw span durations (overlap not removed).
    pub span_ns: BTreeMap<String, u64>,
    /// Stage with the largest self time (ties: alphabetically first).
    pub dominant: String,
    /// The chain reached a terminal stage.
    pub closed: bool,
}

impl MessageCritPath {
    /// Self time of one stage (0 when absent).
    pub fn self_time(&self, stage_name: &str) -> u64 {
        self.self_ns.get(stage_name).copied().unwrap_or(0)
    }

    /// Summed span duration of one stage (0 when absent).
    pub fn span_time(&self, stage_name: &str) -> u64 {
        self.span_ns.get(stage_name).copied().unwrap_or(0)
    }
}

/// Analyze every chain in `events` that recorded an `api:send`. Chains
/// without a terminal stage are still returned (with `closed == false`)
/// so callers can distinguish "slow" from "wedged". Results are ordered by
/// [`TraceId`].
pub fn analyze(events: &[TraceEvent]) -> Vec<MessageCritPath> {
    let mut chains: BTreeMap<TraceId, Vec<&TraceEvent>> = BTreeMap::new();
    for ev in events {
        if !ev.trace.is_none() {
            chains.entry(ev.trace).or_default().push(ev);
        }
    }

    let mut out = Vec::new();
    for (trace, evs) in chains {
        let Some(send) = evs
            .iter()
            .filter(|e| e.stage.as_ref() == stage::SEND)
            .min_by_key(|e| e.start_ns)
        else {
            continue; // no root: a partial chain (e.g. the send was evicted)
        };
        let start = send.start_ns;
        let terminal_end = evs
            .iter()
            .filter(|e| is_terminal(e.stage.as_ref()))
            .map(|e| e.end_ns)
            .max();
        let closed = terminal_end.is_some();
        let end = terminal_end
            .unwrap_or_else(|| evs.iter().map(|e| e.end_ns).max().unwrap_or(start))
            .max(start);

        // Spans clipped to the [start, end] window.
        let mut spans: Vec<(u64, u64, &str)> = evs
            .iter()
            .filter(|e| e.phase == TracePhase::Span && e.end_ns > e.start_ns)
            .map(|e| (e.start_ns.max(start), e.end_ns.min(end), e.stage.as_ref()))
            .filter(|(s, e, _)| e > s)
            .collect();
        spans.sort();

        let mut bounds: BTreeSet<u64> = BTreeSet::new();
        bounds.insert(start);
        bounds.insert(end);
        for &(s, e, _) in &spans {
            bounds.insert(s);
            bounds.insert(e);
        }

        let mut self_ns: BTreeMap<String, u64> = BTreeMap::new();
        let mut wait_ns = 0u64;
        let mut prev: Option<u64> = None;
        for &b in &bounds {
            if let Some(a) = prev {
                let slice = b - a;
                // Innermost active span: latest start, then earliest end,
                // then first stage name — fully deterministic.
                let winner = spans
                    .iter()
                    .filter(|(s, e, _)| *s <= a && *e >= b)
                    .max_by_key(|(s, e, name)| (*s, Reverse(*e), Reverse(*name)));
                match winner {
                    Some((_, _, name)) => *self_ns.entry((*name).to_string()).or_insert(0) += slice,
                    None => wait_ns += slice,
                }
            }
            prev = Some(b);
        }

        let mut span_ns: BTreeMap<String, u64> = BTreeMap::new();
        for &(s, e, name) in &spans {
            *span_ns.entry(name.to_string()).or_insert(0) += e - s;
        }

        let dominant = self_ns
            .iter()
            .fold(("<none>", 0u64), |best, (name, &ns)| {
                if ns > best.1 {
                    (name.as_str(), ns)
                } else {
                    best
                }
            })
            .0
            .to_string();

        out.push(MessageCritPath {
            trace,
            bytes: send.bytes,
            start_ns: start,
            total_ns: end - start,
            send_ns: send.duration_ns(),
            wait_ns,
            self_ns,
            span_ns,
            dominant,
            closed,
        });
    }
    out
}

/// Aggregate over all messages in one size bucket.
#[derive(Clone, Debug)]
pub struct BucketReport {
    /// Human label ("0 B", "≤ 4 KiB", …).
    pub label: String,
    /// Inclusive upper byte bound of the bucket (0 for the 0 B bucket).
    pub max_bytes: u64,
    /// Closed messages aggregated.
    pub messages: usize,
    /// Summed end-to-end latency.
    pub total_ns: u64,
    /// Summed wait (uncovered) time.
    pub wait_ns: u64,
    /// Summed per-stage self time.
    pub stage_self_ns: BTreeMap<String, u64>,
    /// Summed per-stage raw span durations.
    pub stage_span_ns: BTreeMap<String, u64>,
    /// How many messages each stage dominated.
    pub dominant: BTreeMap<String, usize>,
}

impl BucketReport {
    /// Fraction of the bucket's end-to-end latency self-attributed to
    /// `stage_name`.
    pub fn self_share(&self, stage_name: &str) -> f64 {
        if self.total_ns == 0 {
            return 0.0;
        }
        self.stage_self_ns.get(stage_name).copied().unwrap_or(0) as f64 / self.total_ns as f64
    }

    /// Mean summed span duration of one stage per message, in ns.
    pub fn span_ns_per_msg(&self, stage_name: &str) -> f64 {
        if self.messages == 0 {
            return 0.0;
        }
        self.stage_span_ns.get(stage_name).copied().unwrap_or(0) as f64 / self.messages as f64
    }

    /// Mean host-side send overhead (the `api:send` span) per message, ns.
    pub fn host_ns_per_msg(&self) -> f64 {
        self.span_ns_per_msg(stage::SEND)
    }

    /// Fig 5 identity: share of the host send overhead spent filling the
    /// send request (kernel dispatch + descriptor PIO). The sub-stages are
    /// sequential on the host timeline, so raw durations are exact.
    pub fn request_fill_share(&self) -> f64 {
        let host = self.span_ns_per_msg(stage::SEND);
        if host == 0.0 {
            return 0.0;
        }
        (self.span_ns_per_msg(stage::K_DISPATCH) + self.span_ns_per_msg(stage::K_PIO)) / host
    }

    /// Fig 7 identity: the kernel-resident extra a user-level protocol
    /// skips — trap enter/exit, dispatch + security, pin-down lookup. The
    /// descriptor PIO is excluded (both architectures pay it).
    pub fn kernel_ns_per_msg(&self) -> f64 {
        self.span_ns_per_msg(stage::K_TRAP_ENTER)
            + self.span_ns_per_msg(stage::K_DISPATCH)
            + self.span_ns_per_msg(stage::K_PIN)
            + self.span_ns_per_msg(stage::K_TRAP_EXIT)
    }

    /// Stages by descending self time.
    pub fn stages_by_self_time(&self) -> Vec<(&str, u64)> {
        let mut v: Vec<(&str, u64)> = self
            .stage_self_ns
            .iter()
            .map(|(k, &ns)| (k.as_str(), ns))
            .collect();
        v.sort_by_key(|&(name, ns)| (Reverse(ns), name));
        v
    }
}

/// The full bottleneck report: one [`BucketReport`] per message-size
/// bucket, ordered by size.
#[derive(Clone, Debug)]
pub struct BottleneckReport {
    /// Size buckets, ascending.
    pub buckets: Vec<BucketReport>,
    /// Chains skipped because they never closed.
    pub unclosed: usize,
}

/// Bucket key: 0 stays its own bucket; anything else rounds up to the next
/// power of two.
fn bucket_bound(bytes: u64) -> u64 {
    if bytes == 0 {
        0
    } else {
        bytes.next_power_of_two()
    }
}

fn bucket_label(max_bytes: u64) -> String {
    match max_bytes {
        0 => "0 B".to_string(),
        b if b < 1024 => format!("≤ {b} B"),
        b if b < 1024 * 1024 => format!("≤ {} KiB", b / 1024),
        b => format!("≤ {} MiB", b / (1024 * 1024)),
    }
}

/// Aggregate per-message critical paths into the per-size-bucket
/// bottleneck report. Unclosed chains are counted but not aggregated.
pub fn bottleneck_report(paths: &[MessageCritPath]) -> BottleneckReport {
    let mut buckets: BTreeMap<u64, BucketReport> = BTreeMap::new();
    let mut unclosed = 0usize;
    for p in paths {
        if !p.closed {
            unclosed += 1;
            continue;
        }
        let bound = bucket_bound(p.bytes);
        let b = buckets.entry(bound).or_insert_with(|| BucketReport {
            label: bucket_label(bound),
            max_bytes: bound,
            messages: 0,
            total_ns: 0,
            wait_ns: 0,
            stage_self_ns: BTreeMap::new(),
            stage_span_ns: BTreeMap::new(),
            dominant: BTreeMap::new(),
        });
        b.messages += 1;
        b.total_ns += p.total_ns;
        b.wait_ns += p.wait_ns;
        for (name, &ns) in &p.self_ns {
            *b.stage_self_ns.entry(name.clone()).or_insert(0) += ns;
        }
        for (name, &ns) in &p.span_ns {
            *b.stage_span_ns.entry(name.clone()).or_insert(0) += ns;
        }
        *b.dominant.entry(p.dominant.clone()).or_insert(0) += 1;
    }
    BottleneckReport {
        buckets: buckets.into_values().collect(),
        unclosed,
    }
}

impl BottleneckReport {
    /// Bucket containing messages of `bytes` payload, if any were seen.
    pub fn bucket_for(&self, bytes: u64) -> Option<&BucketReport> {
        let bound = bucket_bound(bytes);
        self.buckets.iter().find(|b| b.max_bytes == bound)
    }

    /// Render the human-readable report the `repro_all` telemetry harness
    /// prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for b in &self.buckets {
            let mean_us = b.total_ns as f64 / b.messages.max(1) as f64 / 1000.0;
            let wait_us = b.wait_ns as f64 / b.messages.max(1) as f64 / 1000.0;
            let _ = writeln!(
                out,
                "{}: {} msgs, mean one-way {mean_us:.2} us (wait {wait_us:.2} us)",
                b.label, b.messages
            );
            let shares: Vec<String> = b
                .stages_by_self_time()
                .iter()
                .filter(|&&(_, ns)| ns > 0)
                .take(6)
                .map(|&(name, _)| format!("{name} {:.1}%", b.self_share(name) * 100.0))
                .collect();
            let _ = writeln!(out, "  top self-time shares: {}", shares.join(", "));
            let dom: Vec<String> = b
                .dominant
                .iter()
                .map(|(name, n)| format!("{name} x{n}"))
                .collect();
            let _ = writeln!(out, "  dominant stage: {}", dom.join(", "));
            if b.host_ns_per_msg() > 0.0 {
                let _ = writeln!(
                    out,
                    "  host send overhead {:.2} us; request fill (dispatch+PIO) {:.1}%; \
                     kernel stages {:.2} us",
                    b.host_ns_per_msg() / 1000.0,
                    b.request_fill_share() * 100.0,
                    b.kernel_ns_per_msg() / 1000.0
                );
            }
        }
        if self.unclosed > 0 {
            let _ = writeln!(out, "({} unclosed chains excluded)", self.unclosed);
        }
        if out.is_empty() {
            out.push_str("(no closed chains)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceEvent, TraceLayer};

    /// The calibrated 0 B sender timeline (ns, from the DAWNING-3000 cost
    /// model): compose 470, trap enter 1100, dispatch+security 1550, pin
    /// lookup 450, descriptor PIO 2400, trap exit 1070 ⇒ host 7040; then
    /// NIC descriptor 6600 (overlapping trap exit), inject 1600, wire, rx
    /// 1450, cq DMA 370, poll at 18300.
    fn zero_b_chain() -> Vec<TraceEvent> {
        let t = TraceId::new(0, 2);
        vec![
            TraceEvent::span(t, 0, TraceLayer::Library, stage::SEND, 0, 7040),
            TraceEvent::span(t, 0, TraceLayer::Library, stage::COMPOSE, 0, 470),
            TraceEvent::span(t, 0, TraceLayer::Kernel, stage::K_TRAP_ENTER, 470, 1570),
            TraceEvent::instant(t, 0, TraceLayer::Kernel, stage::TRAP, 1570),
            TraceEvent::span(t, 0, TraceLayer::Kernel, stage::IOCTL_SEND, 1570, 5970),
            TraceEvent::span(t, 0, TraceLayer::Kernel, stage::K_DISPATCH, 1570, 3120),
            TraceEvent::span(t, 0, TraceLayer::Kernel, stage::K_PIN, 3120, 3570),
            TraceEvent::span(t, 0, TraceLayer::Kernel, stage::K_PIO, 3570, 5970),
            TraceEvent::span(t, 0, TraceLayer::Kernel, stage::K_TRAP_EXIT, 5970, 7040),
            TraceEvent::span(t, 0, TraceLayer::Mcp, stage::DESCRIPTOR, 5970, 12570),
            TraceEvent::span(t, 0, TraceLayer::Mcp, stage::INJECT, 12570, 14170).with_seq(0),
            TraceEvent::span(t, 0, TraceLayer::Wire, stage::WIRE_TX, 14170, 14470).with_seq(0),
            TraceEvent::span(t, 1, TraceLayer::Mcp, stage::RX, 14470, 15920).with_seq(0),
            TraceEvent::span(t, 1, TraceLayer::Dma, stage::DMA_CQ, 15920, 16290),
            TraceEvent::instant(t, 1, TraceLayer::Library, stage::POLL_RECV, 18300),
        ]
    }

    #[test]
    fn sweep_attributes_nested_and_overlapping_spans() {
        let paths = analyze(&zero_b_chain());
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert!(p.closed);
        assert_eq!(p.total_ns, 18300);
        assert_eq!(p.send_ns, 7040);
        assert_eq!(p.bytes, 0);
        // Nested kernel sub-stages fully cover the ioctl span.
        assert_eq!(p.self_time(stage::IOCTL_SEND), 0);
        assert_eq!(p.self_time(stage::K_DISPATCH), 1550);
        assert_eq!(p.self_time(stage::K_PIN), 450);
        assert_eq!(p.self_time(stage::K_PIO), 2400);
        // Trap exit overlaps the NIC descriptor fetch: the tie on start
        // goes to the span ending first (the trap exit), so the
        // descriptor keeps only its exclusive tail.
        assert_eq!(p.self_time(stage::K_TRAP_EXIT), 1070);
        assert_eq!(p.self_time(stage::DESCRIPTOR), 12570 - 7040);
        // The api:send envelope is fully covered by its children.
        assert_eq!(p.self_time(stage::SEND), 0);
        // Gap between cq DMA end (16290) and the poll (18300).
        assert_eq!(p.wait_ns, 18300 - 16290);
        // Self times + wait account for the whole window.
        let covered: u64 = p.self_ns.values().sum();
        assert_eq!(covered + p.wait_ns, p.total_ns);
        assert_eq!(p.dominant, stage::DESCRIPTOR);
    }

    #[test]
    fn report_reproduces_fig5_fig7_identities() {
        let paths = analyze(&zero_b_chain());
        let report = bottleneck_report(&paths);
        let b = report.bucket_for(0).expect("0 B bucket");
        assert_eq!(b.messages, 1);
        assert!((b.host_ns_per_msg() - 7040.0).abs() < 1e-9);
        // Fig 5: request fill = (1550 + 2400) / 7040 = 56.1 % > 50 %.
        let fill = b.request_fill_share();
        assert!((fill - 3950.0 / 7040.0).abs() < 1e-9, "fill = {fill}");
        assert!(fill > 0.5);
        // Fig 7: kernel extra = 1100 + 1550 + 450 + 1070 = 4170 ns.
        assert!((b.kernel_ns_per_msg() - 4170.0).abs() < 1e-9);
        let text = report.render();
        assert!(text.contains("0 B: 1 msgs"), "{text}");
        assert!(text.contains("request fill"), "{text}");
    }

    #[test]
    fn unclosed_chains_are_counted_not_aggregated() {
        let mut evs = zero_b_chain();
        evs.retain(|e| e.stage.as_ref() != stage::POLL_RECV);
        let paths = analyze(&evs);
        assert_eq!(paths.len(), 1);
        assert!(!paths[0].closed);
        let report = bottleneck_report(&paths);
        assert_eq!(report.unclosed, 1);
        assert!(report.buckets.is_empty());
        assert!(report.render().contains("1 unclosed"));
    }

    #[test]
    fn size_buckets_split_and_label() {
        let mk = |msg: u32, bytes: u64| {
            let t = TraceId::new(0, msg);
            vec![
                TraceEvent::span(t, 0, TraceLayer::Library, stage::SEND, 0, 100).with_bytes(bytes),
                TraceEvent::span(t, 0, TraceLayer::Wire, stage::WIRE_TX, 100, 300),
                TraceEvent::instant(t, 1, TraceLayer::Library, stage::POLL_RECV, 400),
            ]
        };
        let mut evs = mk(2, 0);
        evs.extend(mk(4, 4096));
        evs.extend(mk(6, 65536));
        let report = bottleneck_report(&analyze(&evs));
        let labels: Vec<&str> = report.buckets.iter().map(|b| b.label.as_str()).collect();
        assert_eq!(labels, ["0 B", "≤ 4 KiB", "≤ 64 KiB"]);
        assert!(
            report.bucket_for(3000).is_some(),
            "3000 B rounds up to 4 KiB"
        );
        assert!(report.bucket_for(100).is_none(), "no ≤128 B bucket");
    }

    #[test]
    fn wire_dominates_large_messages() {
        // 64 KiB shape: short host window, long wire occupancy.
        let t = TraceId::new(0, 8);
        let evs = vec![
            TraceEvent::span(t, 0, TraceLayer::Library, stage::SEND, 0, 8000).with_bytes(65536),
            TraceEvent::span(t, 0, TraceLayer::Wire, stage::WIRE_TX, 8000, 420_000),
            TraceEvent::span(t, 1, TraceLayer::Dma, stage::DMA_DATA, 420_000, 450_000),
            TraceEvent::instant(t, 1, TraceLayer::Library, stage::POLL_RECV, 452_000),
        ];
        let paths = analyze(&evs);
        assert_eq!(paths[0].dominant, stage::WIRE_TX);
        let report = bottleneck_report(&paths);
        let b = report.bucket_for(65536).unwrap();
        assert!(b.self_share(stage::WIRE_TX) > 0.5);
    }
}
