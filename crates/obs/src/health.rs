//! Online health engine: streaming SLO windows, a declarative rule engine,
//! and a pending → firing → resolved alert lifecycle — all evaluated on the
//! simulator's telemetry tick so the system knows it is unhealthy *while*
//! it is unhealthy, not in a post-mortem report.
//!
//! Pieces:
//!
//! * **Streaming SLO windows** ([`HealthEngine::observe_rpc`]) — per-tenant,
//!   per-RPC-class latency/goodput/error accumulators, rotated into a
//!   bounded ring of per-tick buckets on every telemetry tick. Quantiles
//!   over "the last N ticks" are exact log2-bucket merges
//!   ([`crate::HistogramSnapshot`]), available during the run. Rules scope
//!   to one tenant via [`HealthRule::for_tenant`], so a multi-tenant run
//!   can alert on exactly the workload that is burning its budget.
//! * **Rule engine** ([`HealthRule`]) — multi-window burn-rate and tail-latency
//!   rules over the SLO windows, capacity-saturation rules with hysteresis
//!   over the registered telemetry probes, and counter-rate rules (protocol
//!   errors, path deaths, fault-symptom drops). The stall watchdog feeds in
//!   as one more rule family via [`HealthEngine::note_stalls`], keeping its
//!   `watchdog.stalls` counter semantics untouched.
//! * **Alert lifecycle** — per (rule, scope) state machine: a breach must
//!   persist `for_ticks` consecutive ticks to fire and stay healthy
//!   `clear_ticks` ticks to resolve. Transitions bump `health.*` metrics,
//!   record Perfetto instants on the `health` track, and trip the
//!   flight recorder once per run on the first firing.
//! * **Deterministic report** ([`AlertReport`], schema `suca.health.v1`) —
//!   fire/clear sim-times plus measured fault-detection latency against a
//!   caller-supplied injection schedule ([`DetectionSpec`]). Every input is
//!   a deterministic function of the sim clock, so a fixed seed yields a
//!   byte-identical report at any engine shard count.
//!
//! The engine is created **unarmed** and registers nothing: harnesses that
//! never install rules see byte-identical metric/timeseries artifacts.
//! Arming happens once via [`HealthEngine::install`]; the hot-path hooks
//! cost one relaxed atomic load while unarmed.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::timeseries::{TimeSeries, FABRIC_NODE};
use crate::trace::{stage, MsgTracer, TraceEvent, TraceId, TraceLayer};
use crate::watchdog::Stall;
use crate::{json_escape, Counter, Gauge, HistogramSnapshot, Metrics};

/// Schema tag carried in every [`AlertReport`].
pub const SCHEMA: &str = "suca.health.v1";

/// RPC op classes tracked by the SLO windows, in class-index order. Classes
/// ≥ 3 fold into `other` (mirrors the `rpc.lat.*` histogram convention).
pub const CLASS_NAMES: [&str; 4] = ["get", "put", "scan", "other"];

/// Tenants tracked by the SLO windows. Tenant ids ≥ `MAX_TENANTS - 1`
/// fold into the last bucket (same convention as op classes), so the
/// per-tick state stays bounded no matter what ids a workload invents.
pub const MAX_TENANTS: usize = 4;

/// Where alert reports land: `$SUCA_HEALTH_DIR` or `target/health`.
pub fn health_dir() -> PathBuf {
    std::env::var_os("SUCA_HEALTH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/health"))
}

fn class_idx(op_class: u8) -> usize {
    (op_class as usize).min(3)
}

fn tenant_idx(tenant: u8) -> usize {
    (tenant as usize).min(MAX_TENANTS - 1)
}

/// What a rule watches. All thresholds are integers (parts-per-million for
/// ratios) so evaluation is exact and platform-independent.
#[derive(Clone, Debug)]
pub enum RuleKind {
    /// Multi-window error-budget burn rate: fires when, over **both** the
    /// short and the long window, `errors / events` exceeds
    /// `budget_ppm × factor` (as a ratio of 1e6) with at least `min_events`
    /// events in each window. The classic SRE fast-burn/slow-burn pair is
    /// two of these with different windows and factors.
    BurnRate {
        /// Restrict to one tenant (folded per [`MAX_TENANTS`]); `None`
        /// spans all tenants.
        tenant: Option<u8>,
        /// Restrict to one op class (index into [`CLASS_NAMES`]); `None`
        /// spans all classes.
        class: Option<u8>,
        /// Error budget in parts-per-million of events (1000 = 0.1%).
        budget_ppm: u32,
        /// Burn multiplier the windows must exceed.
        factor: u32,
        /// Short window, in telemetry ticks.
        short_ticks: u32,
        /// Long window, in telemetry ticks.
        long_ticks: u32,
        /// Minimum events per window before the rule can breach.
        min_events: u64,
    },
    /// Tail-latency rule: fires when the merged p99 over both windows
    /// exceeds `threshold_ns`, with at least `min_events` per window.
    LatencyP99 {
        /// Restrict to one tenant; `None` spans all tenants.
        tenant: Option<u8>,
        /// Restrict to one op class; `None` spans all classes.
        class: Option<u8>,
        /// p99 threshold in nanoseconds of virtual time.
        threshold_ns: u64,
        /// Short window, in telemetry ticks.
        short_ticks: u32,
        /// Long window, in telemetry ticks.
        long_ticks: u32,
        /// Minimum events per window before the rule can breach.
        min_events: u64,
    },
    /// Capacity saturation with hysteresis, one scope per matching probe:
    /// every registered probe with a declared capacity whose name equals
    /// `probe_suffix` or ends in `.probe_suffix` participates. While idle
    /// the scope breaches at `value ≥ capacity × fire_ppm / 1e6`; while
    /// firing it is healthy only at `value ≤ capacity × clear_ppm / 1e6` —
    /// levels in between hold the current state, so a level flapping around
    /// one threshold cannot flap the alert.
    Saturation {
        /// Probe-name suffix selecting the scopes (e.g. `mcp.send_queue`).
        probe_suffix: String,
        /// Fire threshold in ppm of the probe's declared capacity.
        fire_ppm: u32,
        /// Clear threshold in ppm of capacity (≤ `fire_ppm`).
        clear_ppm: u32,
    },
    /// Counter-rate rule: fires while the named counter grew by at least
    /// `threshold` over the last `window_ticks` ticks. Fault symptoms
    /// (`link.down_drops`, `mcp.path_deaths`, …) are rate rules: the alert
    /// resolves naturally once the symptom stops and the window drains.
    Rate {
        /// Counter name in the run's metrics registry.
        counter: String,
        /// Look-back window, in telemetry ticks.
        window_ticks: u32,
        /// Minimum delta over the window to breach.
        threshold: u64,
    },
}

/// One declarative health rule: a [`RuleKind`] plus the alert lifecycle
/// thresholds shared by every kind.
#[derive(Clone, Debug)]
pub struct HealthRule {
    /// Unique rule name (report/trace identity).
    pub name: String,
    /// What it watches.
    pub kind: RuleKind,
    /// Consecutive breaching ticks before a pending alert fires.
    pub for_ticks: u32,
    /// Consecutive healthy ticks before a firing alert resolves.
    pub clear_ticks: u32,
}

impl HealthRule {
    /// Burn-rate rule with default lifecycle (fire after 2 breaching ticks,
    /// resolve after 20 healthy ones).
    pub fn burn_rate(
        name: impl Into<String>,
        class: Option<u8>,
        budget_ppm: u32,
        factor: u32,
        short_ticks: u32,
        long_ticks: u32,
        min_events: u64,
    ) -> Self {
        HealthRule {
            name: name.into(),
            kind: RuleKind::BurnRate {
                tenant: None,
                class,
                budget_ppm,
                factor,
                short_ticks,
                long_ticks,
                min_events,
            },
            for_ticks: 2,
            clear_ticks: 20,
        }
    }

    /// Tail-latency rule with default lifecycle.
    pub fn latency_p99(
        name: impl Into<String>,
        class: Option<u8>,
        threshold_ns: u64,
        short_ticks: u32,
        long_ticks: u32,
        min_events: u64,
    ) -> Self {
        HealthRule {
            name: name.into(),
            kind: RuleKind::LatencyP99 {
                tenant: None,
                class,
                threshold_ns,
                short_ticks,
                long_ticks,
                min_events,
            },
            for_ticks: 2,
            clear_ticks: 20,
        }
    }

    /// Saturation rule with default lifecycle.
    pub fn saturation(
        name: impl Into<String>,
        probe_suffix: impl Into<String>,
        fire_ppm: u32,
        clear_ppm: u32,
    ) -> Self {
        HealthRule {
            name: name.into(),
            kind: RuleKind::Saturation {
                probe_suffix: probe_suffix.into(),
                fire_ppm,
                clear_ppm: clear_ppm.min(fire_ppm),
            },
            for_ticks: 2,
            clear_ticks: 20,
        }
    }

    /// Counter-rate rule with default lifecycle.
    pub fn rate(
        name: impl Into<String>,
        counter: impl Into<String>,
        window_ticks: u32,
        threshold: u64,
    ) -> Self {
        HealthRule {
            name: name.into(),
            kind: RuleKind::Rate {
                counter: counter.into(),
                window_ticks,
                threshold: threshold.max(1),
            },
            for_ticks: 2,
            clear_ticks: 20,
        }
    }

    /// Override the fire/resolve persistence thresholds.
    pub fn with_lifecycle(mut self, for_ticks: u32, clear_ticks: u32) -> Self {
        self.for_ticks = for_ticks.max(1);
        self.clear_ticks = clear_ticks.max(1);
        self
    }

    /// Scope a burn-rate or tail-latency rule to one tenant's SLO window
    /// (no-op for saturation/rate kinds, which have no tenant dimension).
    pub fn for_tenant(mut self, t: u8) -> Self {
        match &mut self.kind {
            RuleKind::BurnRate { tenant, .. } | RuleKind::LatencyP99 { tenant, .. } => {
                *tenant = Some(t);
            }
            RuleKind::Saturation { .. } | RuleKind::Rate { .. } => {}
        }
        self
    }

    fn kind_label(&self) -> &'static str {
        match self.kind {
            RuleKind::BurnRate { .. } => "burn_rate",
            RuleKind::LatencyP99 { .. } => "latency_p99",
            RuleKind::Saturation { .. } => "saturation",
            RuleKind::Rate { .. } => "rate",
        }
    }
}

/// One alert instance: created when a pending breach fires, closed when the
/// scope stays healthy for the rule's `clear_ticks`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AlertRecord {
    /// Rule that fired.
    pub rule: String,
    /// Scope within the rule (class, probe, or counter name).
    pub scope: String,
    /// Sim-time the first breaching tick was observed (pending).
    pub pending_ns: u64,
    /// Sim-time the alert fired.
    pub fired_ns: u64,
    /// Sim-time the alert resolved (`None` = still firing at report time).
    pub resolved_ns: Option<u64>,
}

/// One entry of a fault-injection schedule to measure detection against.
#[derive(Clone, Debug)]
pub struct DetectionSpec {
    /// Fault kind label (report row identity).
    pub kind: String,
    /// Sim-time the fault was injected.
    pub injected_ns: u64,
    /// Rules eligible to detect it (empty = any rule counts).
    pub rules: Vec<String>,
    /// Detection deadline: a matching alert must fire within this much
    /// sim-time of injection.
    pub bound_ns: u64,
}

/// Measured detection outcome for one [`DetectionSpec`].
#[derive(Clone, Debug)]
pub struct DetectionRow {
    /// Fault kind.
    pub kind: String,
    /// Injection sim-time.
    pub injected_ns: u64,
    /// `(rule, scope)` of the earliest matching alert, when detected.
    pub detected_by: Option<(String, String)>,
    /// Fire sim-time of that alert.
    pub fired_ns: Option<u64>,
    /// Resolve sim-time of that alert.
    pub resolved_ns: Option<u64>,
}

impl DetectionRow {
    /// Injection-to-fire latency (None = undetected within bound).
    pub fn detect_ns(&self) -> Option<u64> {
        self.fired_ns.map(|f| f.saturating_sub(self.injected_ns))
    }

    /// Fire-to-resolve latency (None = undetected or unresolved).
    pub fn clear_ns(&self) -> Option<u64> {
        match (self.fired_ns, self.resolved_ns) {
            (Some(f), Some(r)) => Some(r.saturating_sub(f)),
            _ => None,
        }
    }
}

/// Tri-state rule evaluation: `Hold` is the hysteresis band (keep the
/// current state, count toward neither firing nor resolving).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Eval {
    Breach,
    Hold,
    Healthy,
}

/// Per-tick, per-class SLO accumulator.
#[derive(Clone)]
struct ClassBucket {
    hist: HistogramSnapshot,
    ok: u64,
    err: u64,
    bytes: u64,
}

impl ClassBucket {
    fn new() -> Self {
        ClassBucket {
            hist: HistogramSnapshot::empty(),
            ok: 0,
            err: 0,
            bytes: 0,
        }
    }

    fn record(&mut self, ok: bool, latency_ns: u64, bytes: u64) {
        self.hist.min = if self.hist.count == 0 {
            latency_ns
        } else {
            self.hist.min.min(latency_ns)
        };
        self.hist.count += 1;
        self.hist.sum = self.hist.sum.saturating_add(latency_ns);
        self.hist.max = self.hist.max.max(latency_ns);
        let b = (64 - latency_ns.leading_zeros()) as usize;
        self.hist.buckets[b] += 1;
        if ok {
            self.ok += 1;
        } else {
            self.err += 1;
        }
        self.bytes = self.bytes.saturating_add(bytes);
    }
}

/// One tick's accumulators: tenant-major, class-minor.
type TickBuckets = [[ClassBucket; 4]; MAX_TENANTS];

fn fresh_tick() -> TickBuckets {
    std::array::from_fn(|_| std::array::from_fn(|_| ClassBucket::new()))
}

/// Streaming per-tenant, per-class SLO windows: one open per-tick bucket
/// grid plus a bounded ring of closed ones.
struct SloWindows {
    open: TickBuckets,
    closed: VecDeque<TickBuckets>,
    max_ticks: usize,
}

impl SloWindows {
    fn new(max_ticks: usize) -> Self {
        SloWindows {
            open: fresh_tick(),
            closed: VecDeque::with_capacity(max_ticks + 1),
            max_ticks: max_ticks.max(1),
        }
    }

    fn rotate(&mut self) {
        let done = std::mem::replace(&mut self.open, fresh_tick());
        if self.closed.len() >= self.max_ticks {
            self.closed.pop_front();
        }
        self.closed.push_back(done);
    }

    /// Merge the last `ticks` closed buckets for `tenant`/`class` (`None`
    /// = all): `(latency histogram, ok, err)`.
    fn window(
        &self,
        tenant: Option<u8>,
        class: Option<u8>,
        ticks: u32,
    ) -> (HistogramSnapshot, u64, u64) {
        let mut hist = HistogramSnapshot::empty();
        let (mut ok, mut err) = (0u64, 0u64);
        let mut fold = |b: &ClassBucket| {
            hist.merge(&b.hist);
            ok += b.ok;
            err += b.err;
        };
        for tick in self.closed.iter().rev().take(ticks.max(1) as usize) {
            let tenants: &[[ClassBucket; 4]] = match tenant {
                Some(t) => std::slice::from_ref(&tick[tenant_idx(t)]),
                None => tick.as_slice(),
            };
            for classes in tenants {
                match class {
                    Some(c) => fold(&classes[class_idx(c)]),
                    None => classes.iter().for_each(&mut fold),
                }
            }
        }
        (hist, ok, err)
    }
}

/// Alert state for one (rule, scope) pair.
#[derive(Default)]
struct ScopeState {
    breach_streak: u32,
    pending_since_ns: u64,
    healthy_streak: u32,
    /// Index into `alerts` while firing.
    firing: Option<usize>,
}

struct EngineState {
    rules: Vec<HealthRule>,
    windows: SloWindows,
    /// Per-rule counter-sample rings (empty for non-rate rules).
    rate_rings: Vec<VecDeque<u64>>,
    scopes: BTreeMap<(usize, String), ScopeState>,
    alerts: Vec<AlertRecord>,
    ticks: u64,
    metrics: Metrics,
    c_evals: Counter,
    c_fired: Counter,
    c_resolved: Counter,
    g_firing: Gauge,
}

/// The online health engine. One per simulation, created unarmed (zero
/// registry footprint) and armed once via [`HealthEngine::install`]; driven
/// by the telemetry tick.
pub struct HealthEngine {
    armed: AtomicBool,
    state: Mutex<Option<EngineState>>,
}

impl Default for HealthEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl HealthEngine {
    /// An unarmed engine: every hook is a no-op costing one atomic load.
    pub fn new() -> Self {
        HealthEngine {
            armed: AtomicBool::new(false),
            state: Mutex::new(None),
        }
    }

    /// Is a rule set installed?
    #[inline]
    pub fn armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    /// Install `rules` and register the `health.*` instruments. Call once
    /// per run, before traffic starts; a second call replaces nothing and
    /// panics — a run has exactly one rule set or none.
    pub fn install(&self, rules: Vec<HealthRule>, metrics: &Metrics) {
        let mut st = self.state.lock().expect("health poisoned");
        assert!(st.is_none(), "health rules already installed for this run");
        let mut max_window = 1u32;
        let mut rate_rings = Vec::with_capacity(rules.len());
        for r in &rules {
            match &r.kind {
                RuleKind::BurnRate {
                    short_ticks,
                    long_ticks,
                    ..
                }
                | RuleKind::LatencyP99 {
                    short_ticks,
                    long_ticks,
                    ..
                } => {
                    max_window = max_window.max(*short_ticks).max(*long_ticks);
                    rate_rings.push(VecDeque::new());
                }
                RuleKind::Rate { window_ticks, .. } => {
                    rate_rings.push(VecDeque::with_capacity(*window_ticks as usize + 1));
                }
                RuleKind::Saturation { .. } => rate_rings.push(VecDeque::new()),
            }
        }
        *st = Some(EngineState {
            windows: SloWindows::new(max_window as usize),
            rules,
            rate_rings,
            scopes: BTreeMap::new(),
            alerts: Vec::new(),
            ticks: 0,
            metrics: metrics.clone(),
            c_evals: metrics.counter("health.evals"),
            c_fired: metrics.counter("health.alerts_fired"),
            c_resolved: metrics.counter("health.alerts_resolved"),
            g_firing: metrics.gauge("health.firing"),
        });
        self.armed.store(true, Ordering::Release);
    }

    /// Completion hook (the `suca-rpc` client calls this for every resolved
    /// request): fold one RPC outcome into the open SLO bucket of its
    /// tenant and class.
    #[inline]
    pub fn observe_rpc(&self, tenant: u8, op_class: u8, ok: bool, latency_ns: u64, bytes: u64) {
        if !self.armed() {
            return;
        }
        let mut st = self.state.lock().expect("health poisoned");
        if let Some(st) = st.as_mut() {
            st.windows.open[tenant_idx(tenant)][class_idx(op_class)].record(ok, latency_ns, bytes);
        }
    }

    /// Error-only hook (the `suca-load` verifier calls this when a payload
    /// fails verification): counts an error event without a latency sample.
    #[inline]
    pub fn observe_error(&self, tenant: u8, op_class: u8) {
        if !self.armed() {
            return;
        }
        let mut st = self.state.lock().expect("health poisoned");
        if let Some(st) = st.as_mut() {
            st.windows.open[tenant_idx(tenant)][class_idx(op_class)].err += 1;
        }
    }

    /// Watchdog bridge: each stall the watchdog reports becomes an
    /// immediately-firing alert under the `watchdog.chain` /
    /// `watchdog.pegged` rule family. The watchdog keeps its own
    /// `watchdog.stalls` counter and stderr/flight-recorder behavior; this
    /// only adds the alert-lifecycle view. Stall alerts never resolve — a
    /// wedged chain or a capacity-pegged probe past the watchdog threshold
    /// is an incident, not a transient.
    pub fn note_stalls(&self, now_ns: u64, stalls: &[Stall], tracer: &MsgTracer) {
        if !self.armed() || stalls.is_empty() {
            return;
        }
        let mut guard = self.state.lock().expect("health poisoned");
        let Some(st) = guard.as_mut() else {
            return;
        };
        for s in stalls {
            let (rule, scope) = match s {
                Stall::Chain { origin, msg_id, .. } => (
                    "watchdog.chain".to_string(),
                    format!("origin{origin}.msg{msg_id}"),
                ),
                Stall::Pegged { probe, .. } => ("watchdog.pegged".to_string(), probe.clone()),
            };
            st.c_fired.inc();
            st.g_firing.add(1);
            emit_instant(tracer, stage::HEALTH_FIRING, &rule, &scope, now_ns);
            st.alerts.push(AlertRecord {
                rule,
                scope,
                pending_ns: now_ns,
                fired_ns: now_ns,
                resolved_ns: None,
            });
        }
    }

    /// Telemetry-tick driver: rotate the SLO windows, then evaluate every
    /// rule and step the per-scope alert state machines. Deterministic:
    /// inputs are the sim clock, the (shard-invariant) counters/probes, and
    /// the completion stream.
    pub fn on_tick(&self, now_ns: u64, series: &TimeSeries, tracer: &MsgTracer) {
        if !self.armed() {
            return;
        }
        let mut guard = self.state.lock().expect("health poisoned");
        let Some(st) = guard.as_mut() else {
            return;
        };
        st.ticks += 1;
        st.windows.rotate();

        // Evaluate each rule into (scope → eval) pairs first, then step the
        // state machines, so the borrow of `st.windows` / `st.rate_rings`
        // ends before the mutable walk over `st.scopes`.
        let mut evals: Vec<(usize, String, Eval)> = Vec::new();
        for (idx, rule) in st.rules.iter().enumerate() {
            match &rule.kind {
                RuleKind::BurnRate {
                    tenant,
                    class,
                    budget_ppm,
                    factor,
                    short_ticks,
                    long_ticks,
                    min_events,
                } => {
                    let breach = |ticks: u32| -> bool {
                        let (_, ok, err) = st.windows.window(*tenant, *class, ticks);
                        let events = ok + err;
                        events >= (*min_events).max(1)
                            && (err as u128) * 1_000_000
                                > (events as u128) * u128::from(*budget_ppm) * u128::from(*factor)
                    };
                    let e = if breach(*short_ticks) && breach(*long_ticks) {
                        Eval::Breach
                    } else {
                        Eval::Healthy
                    };
                    evals.push((idx, slo_scope(*tenant, *class), e));
                }
                RuleKind::LatencyP99 {
                    tenant,
                    class,
                    threshold_ns,
                    short_ticks,
                    long_ticks,
                    min_events,
                } => {
                    let breach = |ticks: u32| -> bool {
                        let (hist, ok, err) = st.windows.window(*tenant, *class, ticks);
                        ok + err >= (*min_events).max(1) && hist.p99() > *threshold_ns as f64
                    };
                    let e = if breach(*short_ticks) && breach(*long_ticks) {
                        Eval::Breach
                    } else {
                        Eval::Healthy
                    };
                    evals.push((idx, slo_scope(*tenant, *class), e));
                }
                RuleKind::Saturation {
                    probe_suffix,
                    fire_ppm,
                    clear_ppm,
                } => {
                    series.for_each_latest(|name, _node, capacity, value| {
                        let matches = name == probe_suffix
                            || (name.len() > probe_suffix.len()
                                && name.ends_with(probe_suffix.as_str())
                                && name.as_bytes()[name.len() - probe_suffix.len() - 1] == b'.');
                        let Some(cap) = capacity else { return };
                        if !matches || cap == 0 {
                            return;
                        }
                        let v = u128::from(value) * 1_000_000;
                        let e = if v >= u128::from(cap) * u128::from(*fire_ppm) {
                            Eval::Breach
                        } else if v <= u128::from(cap) * u128::from(*clear_ppm) {
                            Eval::Healthy
                        } else {
                            Eval::Hold
                        };
                        evals.push((idx, name.to_string(), e));
                    });
                }
                RuleKind::Rate {
                    counter,
                    window_ticks,
                    threshold,
                } => {
                    let ring = &mut st.rate_rings[idx];
                    let v = st.metrics.get(counter);
                    if ring.len() > *window_ticks as usize {
                        ring.pop_front();
                    }
                    ring.push_back(v);
                    let delta = v - ring.front().copied().unwrap_or(v);
                    let e = if delta >= *threshold {
                        Eval::Breach
                    } else {
                        Eval::Healthy
                    };
                    evals.push((idx, counter.clone(), e));
                }
            }
        }

        for (idx, scope, eval) in evals {
            st.c_evals.inc();
            let key = (idx, scope);
            let state = st.scopes.entry(key.clone()).or_default();
            let rule = &st.rules[idx];
            match state.firing {
                Some(alert_idx) => {
                    if eval == Eval::Healthy {
                        state.healthy_streak += 1;
                        if state.healthy_streak >= rule.clear_ticks.max(1) {
                            st.alerts[alert_idx].resolved_ns = Some(now_ns);
                            state.firing = None;
                            state.healthy_streak = 0;
                            state.breach_streak = 0;
                            st.c_resolved.inc();
                            st.g_firing.sub(1);
                            emit_instant(
                                tracer,
                                stage::HEALTH_RESOLVED,
                                &rule.name,
                                &key.1,
                                now_ns,
                            );
                        }
                    } else {
                        state.healthy_streak = 0;
                    }
                }
                None => {
                    if eval == Eval::Breach {
                        state.breach_streak += 1;
                        if state.breach_streak == 1 {
                            state.pending_since_ns = now_ns;
                            emit_instant(tracer, stage::HEALTH_PENDING, &rule.name, &key.1, now_ns);
                        }
                        if state.breach_streak >= rule.for_ticks.max(1) {
                            st.alerts.push(AlertRecord {
                                rule: rule.name.clone(),
                                scope: key.1.clone(),
                                pending_ns: state.pending_since_ns,
                                fired_ns: now_ns,
                                resolved_ns: None,
                            });
                            state.firing = Some(st.alerts.len() - 1);
                            state.breach_streak = 0;
                            st.c_fired.inc();
                            st.g_firing.add(1);
                            emit_instant(tracer, stage::HEALTH_FIRING, &rule.name, &key.1, now_ns);
                            tracer.dump_once(&format!(
                                "health alert firing: {} [{}] at t={now_ns} ns",
                                rule.name, key.1
                            ));
                        }
                    } else {
                        state.breach_streak = 0;
                    }
                }
            }
        }
    }

    /// Alerts recorded so far (fired ones only; a pending streak that never
    /// fires is not an alert).
    pub fn alerts(&self) -> Vec<AlertRecord> {
        self.state
            .lock()
            .expect("health poisoned")
            .as_ref()
            .map(|st| st.alerts.clone())
            .unwrap_or_default()
    }

    /// Alerts fired so far.
    pub fn fired_count(&self) -> u64 {
        self.alerts().len() as u64
    }

    /// Alerts currently firing (fired, not yet resolved).
    pub fn active_count(&self) -> u64 {
        self.alerts()
            .iter()
            .filter(|a| a.resolved_ns.is_none())
            .count() as u64
    }

    /// Has no alert fired? (Trivially true while unarmed.)
    pub fn is_silent(&self) -> bool {
        self.fired_count() == 0
    }

    /// Merged SLO window over the last `ticks` closed ticks for `tenant` /
    /// `class` (`None` = all): `(latency histogram, ok, err)`. The online
    /// query the rules themselves evaluate — exposed for harness asserts.
    pub fn window(
        &self,
        tenant: Option<u8>,
        class: Option<u8>,
        ticks: u32,
    ) -> (HistogramSnapshot, u64, u64) {
        self.state
            .lock()
            .expect("health poisoned")
            .as_ref()
            .map(|st| st.windows.window(tenant, class, ticks))
            .unwrap_or((HistogramSnapshot::empty(), 0, 0))
    }

    /// Build the deterministic report: rule set, every alert's lifecycle
    /// times, and — when `detections` is non-empty — the measured
    /// detection/clear latency per injected fault.
    pub fn report(
        &self,
        harness: &str,
        variant: &str,
        seed: u64,
        detections: &[DetectionSpec],
    ) -> AlertReport {
        let guard = self.state.lock().expect("health poisoned");
        let (rules, alerts, ticks) = match guard.as_ref() {
            Some(st) => (st.rules.clone(), st.alerts.clone(), st.ticks),
            None => (Vec::new(), Vec::new(), 0),
        };
        drop(guard);
        let mut sorted = alerts;
        sorted
            .sort_by(|a, b| (a.fired_ns, &a.rule, &a.scope).cmp(&(b.fired_ns, &b.rule, &b.scope)));
        let detections = detections
            .iter()
            .map(|spec| {
                let hit = sorted
                    .iter()
                    .filter(|a| spec.rules.is_empty() || spec.rules.contains(&a.rule))
                    .filter(|a| {
                        a.fired_ns >= spec.injected_ns
                            && a.fired_ns <= spec.injected_ns.saturating_add(spec.bound_ns)
                    })
                    .min_by_key(|a| (a.fired_ns, a.rule.clone(), a.scope.clone()));
                DetectionRow {
                    kind: spec.kind.clone(),
                    injected_ns: spec.injected_ns,
                    detected_by: hit.map(|a| (a.rule.clone(), a.scope.clone())),
                    fired_ns: hit.map(|a| a.fired_ns),
                    resolved_ns: hit.and_then(|a| a.resolved_ns),
                }
            })
            .collect();
        AlertReport {
            harness: harness.to_string(),
            variant: variant.to_string(),
            seed,
            ticks,
            rules,
            alerts: sorted,
            detections,
        }
    }
}

/// Scope label for an SLO-window rule: `all`, `scan`, `t1.all`,
/// `t2.scan`. Tenant ids are folded the same way the windows fold them,
/// so the label always names the bucket actually watched.
fn slo_scope(tenant: Option<u8>, class: Option<u8>) -> String {
    let class_name = class.map_or("all", |c| CLASS_NAMES[class_idx(c)]);
    match tenant {
        Some(t) => format!("t{}.{class_name}", tenant_idx(t)),
        None => class_name.to_string(),
    }
}

/// Record one health-lifecycle instant on the Perfetto `health` track. The
/// event is unattributable ([`TraceId::NONE`]), so it bypasses trace
/// sampling and the completeness checker; per-probe scopes (`n<node>.…`)
/// land on their node's track, everything else on the fabric track.
fn emit_instant(
    tracer: &MsgTracer,
    stage_name: &'static str,
    rule: &str,
    scope: &str,
    now_ns: u64,
) {
    if !tracer.enabled() {
        return;
    }
    let node = scope
        .strip_prefix('n')
        .and_then(|rest| rest.split('.').next())
        .and_then(|digits| digits.parse::<u32>().ok())
        .unwrap_or(FABRIC_NODE);
    tracer.record(TraceEvent::instant(
        TraceId::NONE,
        node,
        TraceLayer::Health,
        format!("{stage_name}:{rule}"),
        now_ns,
    ));
}

/// Deterministic alert report (`suca.health.v1`). Hand-rolled JSON with a
/// fixed key order, integer sim-times, and sorted alerts: a fixed seed
/// yields a byte-identical file at any engine shard count.
#[derive(Clone, Debug)]
pub struct AlertReport {
    /// Harness name (`rpc_slo`, `chaos_slo`, …).
    pub harness: String,
    /// Variant label (`clean`, `storm`, …).
    pub variant: String,
    /// Master RNG seed of the run.
    pub seed: u64,
    /// Telemetry ticks the engine evaluated.
    pub ticks: u64,
    /// Installed rule set.
    pub rules: Vec<HealthRule>,
    /// Every fired alert, sorted by (fired_ns, rule, scope).
    pub alerts: Vec<AlertRecord>,
    /// Measured detection rows (empty when no schedule was supplied).
    pub detections: Vec<DetectionRow>,
}

/// Summarize a set of latency samples for the report: exact integer
/// count/min/max plus a log2-interpolated p50 — enough to read detection
/// speed off the artifact without floats beyond one `{:.1}`.
fn latency_summary(out: &mut String, values: &[u64]) {
    let mut hist = HistogramSnapshot::empty();
    for &v in values {
        hist.min = if hist.count == 0 { v } else { hist.min.min(v) };
        hist.count += 1;
        hist.sum = hist.sum.saturating_add(v);
        hist.max = hist.max.max(v);
        hist.buckets[(64 - v.leading_zeros()) as usize] += 1;
    }
    let _ = write!(
        out,
        "{{\"count\": {}, \"min\": {}, \"max\": {}, \"sum\": {}, \"p50\": {:.1}}}",
        hist.count,
        hist.min,
        hist.max,
        hist.sum,
        hist.p50()
    );
}

impl AlertReport {
    /// Did any alert fire?
    pub fn is_silent(&self) -> bool {
        self.alerts.is_empty()
    }

    /// Alerts never resolved by the end of the run.
    pub fn unresolved(&self) -> usize {
        self.alerts
            .iter()
            .filter(|a| a.resolved_ns.is_none())
            .count()
    }

    /// Detection rows that missed their bound.
    pub fn undetected(&self) -> Vec<&DetectionRow> {
        self.detections
            .iter()
            .filter(|d| d.fired_ns.is_none())
            .collect()
    }

    /// Serialize (fixed key order, sorted alerts, virtual times only).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"schema\": \"{SCHEMA}\",\n  \"harness\": \"{}\",\n  \"variant\": \"{}\",\n  \
             \"seed\": {},\n  \"ticks\": {},\n  \"counts\": {{\"fired\": {}, \"resolved\": {}, \
             \"active\": {}}},\n  \"rules\": [",
            json_escape(&self.harness),
            json_escape(&self.variant),
            self.seed,
            self.ticks,
            self.alerts.len(),
            self.alerts.len() - self.unresolved(),
            self.unresolved(),
        );
        for (i, r) in self.rules.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"kind\": \"{}\", \"for_ticks\": {}, \"clear_ticks\": {}}}",
                json_escape(&r.name),
                r.kind_label(),
                r.for_ticks,
                r.clear_ticks
            );
        }
        out.push_str(if self.rules.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"alerts\": [");
        for (i, a) in self.alerts.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let resolved = a
                .resolved_ns
                .map(|r| r.to_string())
                .unwrap_or_else(|| "null".to_string());
            let _ = write!(
                out,
                "    {{\"rule\": \"{}\", \"scope\": \"{}\", \"pending_ns\": {}, \
                 \"fired_ns\": {}, \"resolved_ns\": {resolved}}}",
                json_escape(&a.rule),
                json_escape(&a.scope),
                a.pending_ns,
                a.fired_ns
            );
        }
        out.push_str(if self.alerts.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"detections\": [");
        for (i, d) in self.detections.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let by = d
                .detected_by
                .as_ref()
                .map(|(r, s)| format!("\"{}[{}]\"", json_escape(r), json_escape(s)))
                .unwrap_or_else(|| "null".to_string());
            let opt = |v: Option<u64>| v.map(|v| v.to_string()).unwrap_or_else(|| "null".into());
            let _ = write!(
                out,
                "    {{\"kind\": \"{}\", \"injected_ns\": {}, \"detected_by\": {by}, \
                 \"fired_ns\": {}, \"resolved_ns\": {}, \"detect_ns\": {}, \"clear_ns\": {}}}",
                json_escape(&d.kind),
                d.injected_ns,
                opt(d.fired_ns),
                opt(d.resolved_ns),
                opt(d.detect_ns()),
                opt(d.clear_ns())
            );
        }
        out.push_str(if self.detections.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        let detect: Vec<u64> = self
            .detections
            .iter()
            .filter_map(|d| d.detect_ns())
            .collect();
        let clear: Vec<u64> = self
            .detections
            .iter()
            .filter_map(|d| d.clear_ns())
            .collect();
        out.push_str("  \"detect_latency_ns\": ");
        latency_summary(&mut out, &detect);
        out.push_str(",\n  \"clear_latency_ns\": ");
        latency_summary(&mut out, &clear);
        out.push_str("\n}\n");
        out
    }

    /// Write to `health_dir()/{file_stem}.json` and return the path.
    pub fn write_named(&self, file_stem: &str) -> std::io::Result<PathBuf> {
        let dir = health_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{file_stem}.json"));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_with(rules: Vec<HealthRule>) -> (HealthEngine, Metrics, TimeSeries, MsgTracer) {
        let m = Metrics::new();
        let h = HealthEngine::new();
        h.install(rules, &m);
        (h, m, TimeSeries::new(), MsgTracer::new())
    }

    #[test]
    fn unarmed_engine_registers_nothing_and_ignores_hooks() {
        let h = HealthEngine::new();
        assert!(!h.armed());
        h.observe_rpc(0, 0, true, 100, 32);
        h.observe_error(0, 1);
        assert!(h.is_silent());
        let report = h.report("unit", "clean", 7, &[]);
        assert!(report.is_silent());
        assert_eq!(report.ticks, 0);
    }

    #[test]
    fn burn_rate_fires_after_for_ticks_and_resolves_after_clear_ticks() {
        let rule = HealthRule::burn_rate("burn", None, 10_000, 10, 3, 6, 5).with_lifecycle(2, 3);
        let (h, _m, ts, tr) = engine_with(vec![rule]);
        let mut t = 0u64;
        let tick = |h: &HealthEngine, t: &mut u64| {
            *t += 10_000;
            h.on_tick(*t, &ts, &tr);
        };
        // Healthy traffic: plenty of events, no errors.
        for _ in 0..6 {
            for _ in 0..10 {
                h.observe_rpc(0, 0, true, 5_000, 32);
            }
            tick(&h, &mut t);
        }
        assert!(h.is_silent(), "clean traffic is alert-silent");
        // All-error traffic: breach persists, fires after for_ticks = 2.
        for i in 0..6 {
            for _ in 0..10 {
                h.observe_rpc(0, 0, false, 5_000, 0);
            }
            tick(&h, &mut t);
            if i == 0 {
                assert!(h.is_silent(), "one breaching tick is pending, not firing");
            }
        }
        assert_eq!(h.fired_count(), 1);
        assert_eq!(h.active_count(), 1);
        let alerts = h.alerts();
        assert_eq!(alerts[0].rule, "burn");
        assert_eq!(alerts[0].scope, "all");
        assert!(alerts[0].pending_ns < alerts[0].fired_ns);
        assert!(tr.has_dumped(), "flight recorder captured on first firing");
        // Healthy again: short window (3 ticks) drains, then clear_ticks = 3
        // healthy evaluations resolve it.
        for _ in 0..10 {
            for _ in 0..10 {
                h.observe_rpc(0, 0, true, 5_000, 32);
            }
            tick(&h, &mut t);
        }
        assert_eq!(h.active_count(), 0, "alert resolved after recovery");
        let alerts = h.alerts();
        assert!(alerts[0].resolved_ns.is_some());
        assert!(alerts[0].resolved_ns.unwrap() > alerts[0].fired_ns);
    }

    #[test]
    fn burn_rate_needs_min_events() {
        let rule = HealthRule::burn_rate("burn", None, 1_000, 1, 2, 4, 50).with_lifecycle(1, 2);
        let (h, _m, ts, tr) = engine_with(vec![rule]);
        // 100% errors but below min_events: never fires.
        for i in 0..8 {
            h.observe_rpc(0, 0, false, 1_000, 0);
            h.on_tick((i + 1) * 10_000, &ts, &tr);
        }
        assert!(h.is_silent(), "insufficient data never breaches");
    }

    #[test]
    fn latency_rule_watches_p99_per_class() {
        let rule =
            HealthRule::latency_p99("slow-scan", Some(2), 1_000_000, 2, 4, 3).with_lifecycle(1, 2);
        let (h, _m, ts, tr) = engine_with(vec![rule]);
        for i in 0..4 {
            for _ in 0..5 {
                h.observe_rpc(0, 2, true, 50_000, 8192); // 50 µs scans: fine
                h.observe_rpc(0, 0, true, 9_000_000, 32); // slow GETs: other class
            }
            h.on_tick((i + 1) * 10_000, &ts, &tr);
        }
        assert!(h.is_silent(), "class filter keeps slow GETs out of scope");
        for i in 4..8 {
            for _ in 0..5 {
                h.observe_rpc(0, 2, true, 8_000_000, 8192); // 8 ms scans
            }
            h.on_tick((i + 1) * 10_000, &ts, &tr);
        }
        assert_eq!(h.fired_count(), 1);
        assert_eq!(h.alerts()[0].scope, "scan");
    }

    #[test]
    fn tenant_scoped_burn_rate_isolates_tenants() {
        let rule = HealthRule::burn_rate("t1.burn", None, 10_000, 10, 2, 4, 5)
            .for_tenant(1)
            .with_lifecycle(1, 2);
        let (h, _m, ts, tr) = engine_with(vec![rule]);
        // Tenant 0 burns its entire budget; tenant 1 is healthy → silent.
        for i in 0..4u64 {
            for _ in 0..10 {
                h.observe_rpc(0, 0, false, 1_000, 0);
                h.observe_rpc(1, 0, true, 1_000, 32);
            }
            h.on_tick((i + 1) * 10_000, &ts, &tr);
        }
        assert!(h.is_silent(), "tenant filter keeps tenant 0 errors out");
        // Tenant 1 burns → fires with a tenant-scoped label.
        for i in 4..8u64 {
            for _ in 0..10 {
                h.observe_rpc(1, 0, false, 1_000, 0);
            }
            h.on_tick((i + 1) * 10_000, &ts, &tr);
        }
        assert_eq!(h.fired_count(), 1);
        assert_eq!(h.alerts()[0].scope, "t1.all");
        // Per-tenant window queries see only their tenant (ring holds the
        // last 4 ticks: tenant 1 all-error, tenant 0 idle).
        let (_, ok1, err1) = h.window(Some(1), None, 4);
        assert_eq!((ok1, err1), (0, 40));
        let (_, ok0, err0) = h.window(Some(0), None, 4);
        assert_eq!((ok0, err0), (0, 0));
    }

    #[test]
    fn saturation_hysteresis_holds_between_thresholds() {
        let rule = HealthRule::saturation("queue-sat", "mcp.send_queue", 900_000, 400_000)
            .with_lifecycle(2, 2);
        let (h, _m, ts, tr) = engine_with(vec![rule]);
        let level = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let l2 = level.clone();
        ts.register("n3.mcp.send_queue", 3, Some(100), move |_| {
            l2.load(std::sync::atomic::Ordering::Relaxed)
        });
        // An unrelated probe with capacity must not create a scope.
        ts.register("n3.nic.sram_used", 3, Some(100), |_| 100);
        let mut t = 0u64;
        let step = |h: &HealthEngine, lvl: u64, t: &mut u64| {
            level.store(lvl, std::sync::atomic::Ordering::Relaxed);
            *t += 10_000;
            ts.sample_all(*t);
            h.on_tick(*t, &ts, &tr);
        };
        step(&h, 95, &mut t); // breach 1
        step(&h, 95, &mut t); // breach 2 → fires
        assert_eq!(h.fired_count(), 1);
        assert_eq!(h.alerts()[0].scope, "n3.mcp.send_queue");
        // 60% sits between clear (40%) and fire (90%): holds firing.
        for _ in 0..6 {
            step(&h, 60, &mut t);
        }
        assert_eq!(h.active_count(), 1, "hysteresis band holds the alert");
        step(&h, 10, &mut t);
        step(&h, 10, &mut t);
        assert_eq!(h.active_count(), 0, "below clear threshold resolves");
    }

    #[test]
    fn rate_rule_fires_on_counter_delta_and_resolves_when_it_stops() {
        let rule = HealthRule::rate("drops", "link.down_drops", 3, 2).with_lifecycle(1, 2);
        let (h, m, ts, tr) = engine_with(vec![rule]);
        let c = m.counter("link.down_drops");
        let mut t = 0u64;
        let tick = |h: &HealthEngine, t: &mut u64| {
            *t += 10_000;
            h.on_tick(*t, &ts, &tr);
        };
        tick(&h, &mut t);
        assert!(h.is_silent());
        c.add(5);
        tick(&h, &mut t);
        assert_eq!(h.fired_count(), 1, "delta 5 ≥ threshold 2 fires");
        assert_eq!(h.alerts()[0].scope, "link.down_drops");
        // Counter stops moving: window drains, then clear_ticks resolve.
        for _ in 0..6 {
            tick(&h, &mut t);
        }
        assert_eq!(h.active_count(), 0);
    }

    #[test]
    fn stalls_become_firing_alerts() {
        let (h, m, _ts, tr) = engine_with(vec![]);
        h.note_stalls(
            1_000,
            &[
                Stall::Chain {
                    origin: 2,
                    msg_id: 9,
                    age_ns: 500,
                },
                Stall::Pegged {
                    probe: "n1.nic.sram_used".to_string(),
                    capacity: 64,
                    streak: 12,
                },
            ],
            &tr,
        );
        let alerts = h.alerts();
        assert_eq!(alerts.len(), 2);
        assert_eq!(alerts[0].rule, "watchdog.chain");
        assert_eq!(alerts[0].scope, "origin2.msg9");
        assert_eq!(alerts[1].rule, "watchdog.pegged");
        assert_eq!(m.get("health.alerts_fired"), 2);
        assert_eq!(h.active_count(), 2, "stall alerts never resolve");
    }

    #[test]
    fn windows_rotate_and_merge_exactly() {
        let rule = HealthRule::burn_rate("burn", None, 1_000, 1, 2, 4, 1_000_000);
        let (h, _m, ts, tr) = engine_with(vec![rule]);
        // Tick 1: two GETs; tick 2: one PUT; tick 3: empty.
        h.observe_rpc(0, 0, true, 100, 32);
        h.observe_rpc(0, 0, true, 300, 32);
        h.on_tick(10_000, &ts, &tr);
        h.observe_rpc(0, 1, true, 200, 32);
        h.on_tick(20_000, &ts, &tr);
        h.on_tick(30_000, &ts, &tr);
        // Empty window: deterministic zeros, no NaN.
        let (hist, ok, err) = h.window(None, None, 1);
        assert_eq!((hist.count, ok, err), (0, 0, 0));
        assert_eq!(hist.p99(), 0.0);
        // Last 2 ticks: just the PUT — single-sample window is exact.
        let (hist, ok, _) = h.window(None, None, 2);
        assert_eq!((hist.count, ok), (1, 1));
        assert_eq!(hist.p50(), 200.0);
        assert_eq!(hist.p99(), 200.0);
        // Last 3 ticks: all three samples, exact log2-bucket merge.
        let (hist, ok, err) = h.window(None, None, 3);
        assert_eq!((hist.count, ok, err), (3, 3, 0));
        assert_eq!(hist.min, 100);
        assert_eq!(hist.max, 300);
        // Class filter: the GET class window excludes the PUT.
        let (hist, _, _) = h.window(None, Some(0), 3);
        assert_eq!(hist.count, 2);
    }

    #[test]
    fn report_is_deterministic_and_measures_detection() {
        let build = || {
            let rule = HealthRule::rate("drops", "link.down_drops", 2, 1).with_lifecycle(1, 2);
            let (h, m, ts, tr) = engine_with(vec![rule]);
            let c = m.counter("link.down_drops");
            let mut t = 0u64;
            for i in 0..12 {
                if i == 3 {
                    c.add(4); // fault symptom at t = 40 µs
                }
                t += 10_000;
                h.on_tick(t, &ts, &tr);
            }
            h.report(
                "unit",
                "storm",
                0xC4A05,
                &[
                    DetectionSpec {
                        kind: "link_flap".to_string(),
                        injected_ns: 35_000,
                        rules: vec!["drops".to_string()],
                        bound_ns: 50_000,
                    },
                    DetectionSpec {
                        kind: "never_injected".to_string(),
                        injected_ns: 500_000,
                        rules: vec![],
                        bound_ns: 10_000,
                    },
                ],
            )
        };
        let r1 = build();
        let r2 = build();
        assert_eq!(r1.to_json(), r2.to_json(), "byte-identical reports");
        assert_eq!(r1.alerts.len(), 1);
        assert_eq!(r1.unresolved(), 0, "rate alert resolved after drain");
        let d = &r1.detections[0];
        assert_eq!(d.detected_by.as_ref().unwrap().0, "drops");
        assert_eq!(d.fired_ns, Some(40_000));
        assert_eq!(d.detect_ns(), Some(5_000));
        assert!(d.clear_ns().unwrap() > 0);
        assert!(r1.detections[1].fired_ns.is_none(), "bound enforced");
        assert_eq!(r1.undetected().len(), 1);
        let j = r1.to_json();
        assert!(j.contains("\"schema\": \"suca.health.v1\""));
        assert!(j.contains("\"detect_ns\": 5000"));
        let depth = j.chars().fold(0i32, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0, "balanced JSON");
    }

    #[test]
    #[should_panic(expected = "already installed")]
    fn double_install_panics() {
        let m = Metrics::new();
        let h = HealthEngine::new();
        h.install(vec![], &m);
        h.install(vec![], &m);
    }

    #[test]
    fn health_instruments_register_only_when_armed() {
        let m = Metrics::new();
        let _h = HealthEngine::new();
        assert!(!m.counter_values().contains_key("health.alerts_fired"));
        let h2 = HealthEngine::new();
        h2.install(vec![], &m);
        assert!(m.counter_values().contains_key("health.alerts_fired"));
        assert_eq!(m.get("health.evals"), 0);
    }

    #[test]
    fn health_trace_instants_land_on_the_health_track() {
        let rule = HealthRule::rate("drops", "x.drops", 2, 1).with_lifecycle(1, 1);
        let (h, m, ts, tr) = engine_with(vec![rule]);
        h.on_tick(10_000, &ts, &tr); // baseline sample of the counter
        m.counter("x.drops").add(3);
        h.on_tick(20_000, &ts, &tr);
        let evs = tr.events();
        let fire = evs
            .iter()
            .find(|e| e.stage.as_ref().starts_with(stage::HEALTH_FIRING))
            .expect("firing instant recorded");
        assert_eq!(fire.layer, TraceLayer::Health);
        assert_eq!(fire.node, FABRIC_NODE, "cluster scope → fabric track");
        assert!(fire.trace.is_none(), "health instants are unattributable");
        assert!(fire.stage.as_ref().ends_with(":drops"));
    }
}
