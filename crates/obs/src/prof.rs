//! Engine self-profiler.
//!
//! PRs 2–3 instrumented the *simulated machine*; nothing measured the
//! *simulator*. This module holds the counters and wall-clock accumulators
//! the sharded scheduler (`suca-sim`'s engine) bumps while it runs, so a
//! slow 512-node sweep can explain its own slowdown:
//!
//! * **batch shape** — length histogram plus why each batch ended
//!   (horizon hit, cross-shard dirty push, shard drained empty, time
//!   limit) and how often a dirty push was absorbed without ending the
//!   batch;
//! * **index churn** — index-heap pops split into fresh vs stale for both
//!   the pick and the horizon phases, and index re-advertisements;
//! * **push traffic** — total pushes, cross-shard pushes, pushes that
//!   landed below an active batch horizon;
//! * **dispatch cost** — per-event-kind (closure / actor wake / poller)
//!   counts, wall time, and heap allocations attributed by reading the
//!   counting allocator around each dispatch;
//! * **scheduler wall clock** — the run loop's time split into named
//!   phases (pick+horizon, queue pop, dispatch by kind, batch end) so a
//!   report can state what fraction of the wall clock is attributed.
//!
//! Lock accounting is phase-based: `lock_acquisitions` counts every
//! scheduler-side `lock()` exactly, while `lock_hold_ns` is approximated
//! by the pop and batch-end phase wall time — both phases run entirely
//! under the shard lock (dispatch never does).
//!
//! The profiler is **off by default**. Disabled cost is one relaxed atomic
//! load per hook, and builds without the engine's `prof` cargo feature
//! compile every hook out entirely. Counters in [`ProfReport::counters_json`]
//! are deterministic for a fixed seed (they follow the dispatch schedule);
//! wall-clock and allocation numbers are not and live in separate JSON
//! sections.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::HistogramSnapshot;

/// Event-kind index for closure events.
pub const KIND_CALL: usize = 0;
/// Event-kind index for actor wakeups.
pub const KIND_WAKE: usize = 1;
/// Event-kind index for poller ticks.
pub const KIND_POLL: usize = 2;

const KIND_NAMES: [&str; 3] = ["call", "wake", "poll"];

/// Why a batch drain stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchEnd {
    /// The shard's next key reached the cross-shard horizon.
    Horizon,
    /// A cross-shard push landed below the remaining drain window.
    Dirty,
    /// The shard drained empty.
    Empty,
    /// The shard's next event lies past the run's time limit.
    Limit,
}

const HIST_BUCKETS: usize = 65;

#[derive(Default)]
struct Counters {
    batches: AtomicU64,
    end_horizon: AtomicU64,
    end_dirty: AtomicU64,
    end_empty: AtomicU64,
    end_limit: AtomicU64,
    dirty_continues: AtomicU64,
    batch_len_sum: AtomicU64,
    batch_len_min: AtomicU64,
    batch_len_max: AtomicU64,
    pick_pops: AtomicU64,
    pick_stale_pops: AtomicU64,
    horizon_pops: AtomicU64,
    horizon_stale_pops: AtomicU64,
    index_pushes: AtomicU64,
    pushes: AtomicU64,
    cross_shard_pushes: AtomicU64,
    dirty_pushes: AtomicU64,
}

struct ProfShared {
    enabled: AtomicBool,
    c: Counters,
    batch_len_buckets: [AtomicU64; HIST_BUCKETS],
    dispatch_count: [AtomicU64; 3],
    dispatch_ns: [AtomicU64; 3],
    alloc_count: [AtomicU64; 3],
    alloc_bytes: [AtomicU64; 3],
    per_shard_events: Vec<AtomicU64>,
    per_shard_batches: Vec<AtomicU64>,
    run_ns: AtomicU64,
    pick_ns: AtomicU64,
    pop_ns: AtomicU64,
    batch_end_ns: AtomicU64,
    lock_acquisitions: AtomicU64,
}

/// Shared handle to one engine's profiler state. Cloning shares the cells;
/// every hook is a relaxed atomic op, safe from any thread.
#[derive(Clone)]
pub struct EngineProf {
    inner: Arc<ProfShared>,
}

impl EngineProf {
    /// Fresh, disabled profiler for an engine with `shards` event-queue
    /// shards.
    pub fn new(shards: usize) -> Self {
        EngineProf {
            inner: Arc::new(ProfShared {
                enabled: AtomicBool::new(false),
                c: Counters {
                    batch_len_min: AtomicU64::new(u64::MAX),
                    ..Counters::default()
                },
                batch_len_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                dispatch_count: std::array::from_fn(|_| AtomicU64::new(0)),
                dispatch_ns: std::array::from_fn(|_| AtomicU64::new(0)),
                alloc_count: std::array::from_fn(|_| AtomicU64::new(0)),
                alloc_bytes: std::array::from_fn(|_| AtomicU64::new(0)),
                per_shard_events: (0..shards).map(|_| AtomicU64::new(0)).collect(),
                per_shard_batches: (0..shards).map(|_| AtomicU64::new(0)).collect(),
                run_ns: AtomicU64::new(0),
                pick_ns: AtomicU64::new(0),
                pop_ns: AtomicU64::new(0),
                batch_end_ns: AtomicU64::new(0),
                lock_acquisitions: AtomicU64::new(0),
            }),
        }
    }

    /// Is profiling on? The engine checks this once per hook.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Turn profiling on/off. Accumulated numbers are kept either way.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// One index pop during the pick phase (`stale` = the entry no longer
    /// matched its shard's advertisement).
    #[inline]
    pub fn pick_pop(&self, stale: bool) {
        self.inner.c.pick_pops.fetch_add(1, Ordering::Relaxed);
        if stale {
            self.inner.c.pick_stale_pops.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// One index pop during the horizon phase.
    #[inline]
    pub fn horizon_pop(&self, stale: bool) {
        self.inner.c.horizon_pops.fetch_add(1, Ordering::Relaxed);
        if stale {
            self.inner
                .c
                .horizon_stale_pops
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// One entry (re-)advertised into the index heap.
    #[inline]
    pub fn index_push(&self) {
        self.inner.c.index_pushes.fetch_add(1, Ordering::Relaxed);
    }

    /// One event pushed. `cross` = the push targeted a shard other than the
    /// one being batch-drained; `dirty` = it also landed below the active
    /// drain window and tightened/ended the batch.
    #[inline]
    pub fn push(&self, cross: bool, dirty: bool) {
        self.inner.c.pushes.fetch_add(1, Ordering::Relaxed);
        if cross {
            self.inner
                .c
                .cross_shard_pushes
                .fetch_add(1, Ordering::Relaxed);
        }
        if dirty {
            self.inner.c.dirty_pushes.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// One scheduler-side lock acquisition.
    #[inline]
    pub fn lock_acq(&self, n: u64) {
        self.inner.lock_acquisitions.fetch_add(n, Ordering::Relaxed);
    }

    /// One finished batch on shard `shard`: `len` events drained, why it
    /// stopped, and whether it absorbed a dirty push without ending
    /// (`continued`).
    pub fn batch(&self, shard: usize, len: u64, cause: BatchEnd, continued: bool) {
        let c = &self.inner.c;
        c.batches.fetch_add(1, Ordering::Relaxed);
        c.batch_len_sum.fetch_add(len, Ordering::Relaxed);
        c.batch_len_min.fetch_min(len, Ordering::Relaxed);
        c.batch_len_max.fetch_max(len, Ordering::Relaxed);
        let bucket = (64 - len.leading_zeros()) as usize;
        self.inner.batch_len_buckets[bucket].fetch_add(1, Ordering::Relaxed);
        match cause {
            BatchEnd::Horizon => c.end_horizon.fetch_add(1, Ordering::Relaxed),
            BatchEnd::Dirty => c.end_dirty.fetch_add(1, Ordering::Relaxed),
            BatchEnd::Empty => c.end_empty.fetch_add(1, Ordering::Relaxed),
            BatchEnd::Limit => c.end_limit.fetch_add(1, Ordering::Relaxed),
        };
        if continued {
            c.dirty_continues.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(cell) = self.inner.per_shard_batches.get(shard) {
            cell.fetch_add(1, Ordering::Relaxed);
            self.inner.per_shard_events[shard].fetch_add(len, Ordering::Relaxed);
        }
    }

    /// One dispatched event of `kind` that took `ns` wall nanoseconds and
    /// made `allocs` heap allocations totalling `alloc_bytes`.
    #[inline]
    pub fn dispatch(&self, kind: usize, ns: u64, allocs: u64, alloc_bytes: u64) {
        self.inner.dispatch_count[kind].fetch_add(1, Ordering::Relaxed);
        self.inner.dispatch_ns[kind].fetch_add(ns, Ordering::Relaxed);
        self.inner.alloc_count[kind].fetch_add(allocs, Ordering::Relaxed);
        self.inner.alloc_bytes[kind].fetch_add(alloc_bytes, Ordering::Relaxed);
    }

    /// Add wall time to the pick+horizon phase.
    #[inline]
    pub fn add_pick_ns(&self, ns: u64) {
        self.inner.pick_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Add wall time to the queue-pop phase (runs under the shard lock).
    #[inline]
    pub fn add_pop_ns(&self, ns: u64) {
        self.inner.pop_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Add wall time to the batch-end phase (runs under the shard lock).
    #[inline]
    pub fn add_batch_end_ns(&self, ns: u64) {
        self.inner.batch_end_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Add wall time to the whole run loop.
    #[inline]
    pub fn add_run_ns(&self, ns: u64) {
        self.inner.run_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Batches drained so far (cheap; for counter-track probes).
    pub fn batches(&self) -> u64 {
        self.inner.c.batches.load(Ordering::Relaxed)
    }

    /// Index-heap (re-)advertisements so far.
    pub fn index_pushes(&self) -> u64 {
        self.inner.c.index_pushes.load(Ordering::Relaxed)
    }

    /// Cross-shard pushes so far.
    pub fn cross_shard_pushes(&self) -> u64 {
        self.inner.c.cross_shard_pushes.load(Ordering::Relaxed)
    }

    /// Stale index pops so far (pick + horizon phases).
    pub fn stale_pops(&self) -> u64 {
        self.inner.c.pick_stale_pops.load(Ordering::Relaxed)
            + self.inner.c.horizon_stale_pops.load(Ordering::Relaxed)
    }

    /// Total events dispatched while profiling (all kinds).
    pub fn events(&self) -> u64 {
        self.inner
            .dispatch_count
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Point-in-time report.
    pub fn report(&self) -> ProfReport {
        let s = &self.inner;
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let batches = ld(&s.c.batches);
        let batch_len = HistogramSnapshot {
            count: batches,
            sum: ld(&s.c.batch_len_sum),
            min: if batches == 0 {
                0
            } else {
                ld(&s.c.batch_len_min)
            },
            max: ld(&s.c.batch_len_max),
            buckets: s.batch_len_buckets.iter().map(ld).collect(),
        };
        ProfReport {
            enabled: self.enabled(),
            shards: s.per_shard_events.len(),
            batches,
            batch_len,
            end_horizon: ld(&s.c.end_horizon),
            end_dirty: ld(&s.c.end_dirty),
            end_empty: ld(&s.c.end_empty),
            end_limit: ld(&s.c.end_limit),
            dirty_continues: ld(&s.c.dirty_continues),
            pick_pops: ld(&s.c.pick_pops),
            pick_stale_pops: ld(&s.c.pick_stale_pops),
            horizon_pops: ld(&s.c.horizon_pops),
            horizon_stale_pops: ld(&s.c.horizon_stale_pops),
            index_pushes: ld(&s.c.index_pushes),
            pushes: ld(&s.c.pushes),
            cross_shard_pushes: ld(&s.c.cross_shard_pushes),
            dirty_pushes: ld(&s.c.dirty_pushes),
            dispatch_count: s.dispatch_count.each_ref().map(ld),
            dispatch_ns: s.dispatch_ns.each_ref().map(ld),
            alloc_count: s.alloc_count.each_ref().map(ld),
            alloc_bytes: s.alloc_bytes.each_ref().map(ld),
            per_shard_events: s.per_shard_events.iter().map(ld).collect(),
            run_ns: ld(&s.run_ns),
            pick_ns: ld(&s.pick_ns),
            pop_ns: ld(&s.pop_ns),
            batch_end_ns: ld(&s.batch_end_ns),
            lock_acquisitions: ld(&s.lock_acquisitions),
        }
    }
}

/// Point-in-time copy of every profiler cell, serializable as JSON.
#[derive(Clone, Debug)]
pub struct ProfReport {
    /// Was profiling on when the report was taken?
    pub enabled: bool,
    /// Event-queue shards in the profiled engine.
    pub shards: usize,
    /// Batches drained.
    pub batches: u64,
    /// Batch-length histogram (log2 buckets, exact count/sum/min/max).
    pub batch_len: HistogramSnapshot,
    /// Batches ended by reaching the cross-shard horizon.
    pub end_horizon: u64,
    /// Batches ended by a cross-shard push below the drain window.
    pub end_dirty: u64,
    /// Batches ended by draining the shard empty.
    pub end_empty: u64,
    /// Batches ended by the run's time limit.
    pub end_limit: u64,
    /// Batches that absorbed a dirty push and kept draining.
    pub dirty_continues: u64,
    /// Index pops in the pick phase.
    pub pick_pops: u64,
    /// Pick-phase pops that were stale.
    pub pick_stale_pops: u64,
    /// Index pops in the horizon phase.
    pub horizon_pops: u64,
    /// Horizon-phase pops that were stale.
    pub horizon_stale_pops: u64,
    /// Entries (re-)advertised into the index heap.
    pub index_pushes: u64,
    /// Events pushed.
    pub pushes: u64,
    /// Pushes that targeted a shard other than the one being drained.
    pub cross_shard_pushes: u64,
    /// Cross-shard pushes that landed below an active drain window.
    pub dirty_pushes: u64,
    /// Dispatched events by kind (`[call, wake, poll]`).
    pub dispatch_count: [u64; 3],
    /// Dispatch wall nanoseconds by kind.
    pub dispatch_ns: [u64; 3],
    /// Heap allocations made during dispatch, by kind (0 without the
    /// engine's `prof` feature).
    pub alloc_count: [u64; 3],
    /// Heap bytes allocated during dispatch, by kind.
    pub alloc_bytes: [u64; 3],
    /// Events drained per shard (deterministic; sums to total dispatches
    /// while profiling).
    pub per_shard_events: Vec<u64>,
    /// Run-loop wall nanoseconds.
    pub run_ns: u64,
    /// Pick+horizon phase wall nanoseconds.
    pub pick_ns: u64,
    /// Queue-pop phase wall nanoseconds (under the shard lock).
    pub pop_ns: u64,
    /// Batch-end phase wall nanoseconds (under the shard lock).
    pub batch_end_ns: u64,
    /// Scheduler-side lock acquisitions.
    pub lock_acquisitions: u64,
}

impl ProfReport {
    /// Total dispatched events (all kinds).
    pub fn events(&self) -> u64 {
        self.dispatch_count.iter().sum()
    }

    /// Mean batch length (0 when no batches ran).
    pub fn mean_batch_len(&self) -> f64 {
        self.batch_len.mean()
    }

    /// Wall nanoseconds attributed to a named phase (pick+horizon, pop,
    /// per-kind dispatch, batch end).
    pub fn attributed_ns(&self) -> u64 {
        self.pick_ns + self.pop_ns + self.batch_end_ns + self.dispatch_ns.iter().sum::<u64>()
    }

    /// Percentage of the run loop's wall clock attributed to named phases
    /// (100.0 when the loop never ran).
    pub fn attributed_pct(&self) -> f64 {
        if self.run_ns == 0 {
            100.0
        } else {
            self.attributed_ns() as f64 / self.run_ns as f64 * 100.0
        }
    }

    /// Approximate scheduler lock-hold wall nanoseconds (the pop and
    /// batch-end phases run entirely under the shard lock).
    pub fn lock_hold_ns(&self) -> u64 {
        self.pop_ns + self.batch_end_ns
    }

    fn write_counters(&self, out: &mut String, indent: &str) {
        let top = self
            .batch_len
            .buckets
            .iter()
            .rposition(|&b| b != 0)
            .map(|i| i + 1)
            .unwrap_or(0);
        let buckets: Vec<String> = self.batch_len.buckets[..top]
            .iter()
            .map(|b| b.to_string())
            .collect();
        let shard_events: Vec<String> = self
            .per_shard_events
            .iter()
            .map(|e| e.to_string())
            .collect();
        let _ = write!(
            out,
            "{indent}\"batches\": {},\n\
             {indent}\"batch_len\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
             \"p50\": {:.1}, \"p99\": {:.1}, \"log2_buckets\": [{}]}},\n\
             {indent}\"end_causes\": {{\"horizon\": {}, \"dirty\": {}, \"empty\": {}, \
             \"limit\": {}}},\n\
             {indent}\"dirty_continues\": {},\n\
             {indent}\"index\": {{\"pick_pops\": {}, \"pick_stale_pops\": {}, \
             \"horizon_pops\": {}, \"horizon_stale_pops\": {}, \"pushes\": {}}},\n\
             {indent}\"pushes\": {{\"total\": {}, \"cross_shard\": {}, \"dirty\": {}}},\n\
             {indent}\"dispatch\": {{",
            self.batches,
            self.batch_len.count,
            self.batch_len.sum,
            self.batch_len.min,
            self.batch_len.max,
            self.batch_len.p50(),
            self.batch_len.p99(),
            buckets.join(", "),
            self.end_horizon,
            self.end_dirty,
            self.end_empty,
            self.end_limit,
            self.dirty_continues,
            self.pick_pops,
            self.pick_stale_pops,
            self.horizon_pops,
            self.horizon_stale_pops,
            self.index_pushes,
            self.pushes,
            self.cross_shard_pushes,
            self.dirty_pushes,
        );
        for (i, name) in KIND_NAMES.iter().enumerate() {
            let _ = write!(
                out,
                "{}\"{name}\": {}",
                if i == 0 { "" } else { ", " },
                self.dispatch_count[i]
            );
        }
        let _ = write!(
            out,
            "}},\n{indent}\"per_shard_events\": [{}]",
            shard_events.join(", ")
        );
    }

    /// The deterministic (schedule-following) counters only — what the
    /// determinism tests byte-compare. No wall clock, no allocator numbers.
    pub fn counters_json(&self) -> String {
        let mut out = String::from("{\n");
        self.write_counters(&mut out, "  ");
        out.push_str("\n}\n");
        out
    }

    /// Full report: deterministic counters plus wall-clock and allocation
    /// sections (those vary run to run).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = write!(
            out,
            "  \"schema\": \"suca.prof.v1\",\n  \"enabled\": {},\n  \"shards\": {},\n  \
             \"counters\": {{\n",
            self.enabled, self.shards
        );
        self.write_counters(&mut out, "    ");
        out.push_str("\n  },\n  \"wall\": {\n");
        let _ = write!(
            out,
            "    \"run_ns\": {},\n    \"pick_ns\": {},\n    \"pop_ns\": {},\n",
            self.run_ns, self.pick_ns, self.pop_ns
        );
        for (i, name) in KIND_NAMES.iter().enumerate() {
            let _ = writeln!(out, "    \"dispatch_{name}_ns\": {},", self.dispatch_ns[i]);
        }
        let _ = write!(
            out,
            "    \"batch_end_ns\": {},\n    \"attributed_ns\": {},\n    \
             \"attributed_pct\": {:.1},\n    \"lock_acquisitions\": {},\n    \
             \"lock_hold_ns\": {}\n  }},\n  \"alloc\": {{",
            self.batch_end_ns,
            self.attributed_ns(),
            self.attributed_pct(),
            self.lock_acquisitions,
            self.lock_hold_ns(),
        );
        for (i, name) in KIND_NAMES.iter().enumerate() {
            let _ = write!(
                out,
                "{}\"{name}\": {{\"count\": {}, \"bytes\": {}}}",
                if i == 0 { "" } else { ", " },
                self.alloc_count[i],
                self.alloc_bytes[i]
            );
        }
        out.push_str("}\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_prof() -> EngineProf {
        let p = EngineProf::new(4);
        p.set_enabled(true);
        p.pick_pop(false);
        p.pick_pop(true);
        p.horizon_pop(true);
        p.horizon_pop(false);
        p.index_push();
        p.push(true, true);
        p.push(false, false);
        p.batch(0, 3, BatchEnd::Horizon, false);
        p.batch(1, 1, BatchEnd::Dirty, false);
        p.batch(0, 8, BatchEnd::Empty, true);
        p.dispatch(KIND_CALL, 100, 2, 64);
        p.dispatch(KIND_WAKE, 5000, 0, 0);
        p.dispatch(KIND_POLL, 50, 0, 0);
        p.add_pick_ns(10);
        p.add_pop_ns(20);
        p.add_batch_end_ns(30);
        p.add_run_ns(6000);
        p.lock_acq(7);
        p
    }

    #[test]
    fn counters_accumulate_and_report() {
        let r = sample_prof().report();
        assert_eq!(r.batches, 3);
        assert_eq!(r.batch_len.count, 3);
        assert_eq!(r.batch_len.sum, 12);
        assert_eq!(r.batch_len.min, 1);
        assert_eq!(r.batch_len.max, 8);
        assert_eq!(
            (r.end_horizon, r.end_dirty, r.end_empty, r.end_limit),
            (1, 1, 1, 0)
        );
        assert_eq!(r.dirty_continues, 1);
        assert_eq!((r.pick_pops, r.pick_stale_pops), (2, 1));
        assert_eq!((r.horizon_pops, r.horizon_stale_pops), (2, 1));
        assert_eq!((r.pushes, r.cross_shard_pushes, r.dirty_pushes), (2, 1, 1));
        assert_eq!(r.events(), 3);
        assert_eq!(r.per_shard_events, vec![11, 1, 0, 0]);
        assert_eq!(r.lock_acquisitions, 7);
        assert_eq!(r.lock_hold_ns(), 50);
        // 10 + 20 + 30 + 5150 of 6000 ns attributed.
        assert_eq!(r.attributed_ns(), 5210);
        assert!(
            (r.attributed_pct() - 86.8).abs() < 0.1,
            "{}",
            r.attributed_pct()
        );
    }

    #[test]
    fn report_json_is_balanced_and_schema_tagged() {
        let j = sample_prof().report().to_json();
        assert!(j.contains("\"schema\": \"suca.prof.v1\""));
        assert!(j.contains("\"end_causes\""));
        assert!(j.contains("\"attributed_pct\""));
        assert!(j.contains("\"per_shard_events\": [11, 1, 0, 0]"));
        let depth = j.chars().fold(0i32, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0, "balanced JSON:\n{j}");
    }

    #[test]
    fn counters_json_excludes_wall_clock() {
        let j = sample_prof().report().counters_json();
        assert!(j.contains("\"batches\": 3"));
        assert!(!j.contains("_ns\""), "wall-clock leaked into {j}");
        assert!(!j.contains("alloc"), "allocator numbers leaked into {j}");
    }

    #[test]
    fn empty_report_is_sane() {
        let r = EngineProf::new(1).report();
        assert_eq!(r.batches, 0);
        assert_eq!(r.batch_len.min, 0);
        assert_eq!(r.attributed_pct(), 100.0);
        let j = r.to_json();
        assert!(j.contains("\"log2_buckets\": []"));
    }
}
