//! Observability for the SUCA stack.
//!
//! Every layer of the simulated system — the kernel module, the MCP
//! firmware, the fabric, the DMA engines, the completion queues — registers
//! typed instruments into one shared [`Metrics`] registry and a whole run
//! can be serialized as a single machine-readable snapshot. Table 1 of the
//! paper (traps/interrupts per operation) is *derived* from these counters
//! rather than asserted from code inspection.
//!
//! Design constraints, in order:
//!
//! 1. **Hot paths must be lock-cheap.** A [`Counter`] or [`Gauge`] handle is
//!    an `Arc` around atomics; incrementing one is a single relaxed atomic
//!    op, with no registry lock and no engine lock. Components look their
//!    instruments up once at construction time and keep the handle.
//! 2. **Name-based access must still work.** The original `Sim::add_count`
//!    string API is preserved (it now resolves through the registry), so
//!    call sites that fire rarely — error paths, per-node dynamic names —
//!    need no handle plumbing.
//! 3. **No external dependencies.** The snapshot is hand-rolled JSON; the
//!    build environment cannot fetch serde.
//!
//! Names are hierarchical dotted paths (`kmod.pin_hits`, `fabric.dropped`,
//! `dma.h2s.busy_ns`) and snapshots list them in sorted order so diffs of
//! two runs line up.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

pub mod critpath;
pub mod health;
pub mod prof;
pub mod timeseries;
pub mod trace;
pub mod watchdog;

pub use trace::intern;

/// A monotonically increasing counter. Cloning shares the underlying cell.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct GaugeCell {
    value: AtomicU64,
    high_water: AtomicU64,
}

/// An instantaneous level (queue depth, bytes in flight) that also tracks
/// its high-water mark. Cloning shares the underlying cell.
#[derive(Clone)]
pub struct Gauge(Arc<GaugeCell>);

impl Gauge {
    /// Set the current level and fold it into the high-water mark.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.value.store(v, Ordering::Relaxed);
        self.0.high_water.fetch_max(v, Ordering::Relaxed);
    }

    /// Raise the level by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        let new = self.0.value.fetch_add(n, Ordering::Relaxed) + n;
        self.0.high_water.fetch_max(new, Ordering::Relaxed);
    }

    /// Lower the level by `n` (saturating at 0).
    #[inline]
    pub fn sub(&self, n: u64) {
        // fetch_update loops only under contention; sim increments are
        // serialized by the event loop so this is effectively one CAS.
        let _ = self
            .0
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.value.load(Ordering::Relaxed)
    }

    /// Highest level ever set.
    #[inline]
    pub fn high_water(&self) -> u64 {
        self.0.high_water.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets: bucket `k` holds values in `[2^(k-1), 2^k)`,
/// bucket 0 holds the value 0. u64 needs 65.
const HIST_BUCKETS: usize = 65;

#[derive(Clone)]
struct HistState {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; HIST_BUCKETS],
}

/// A log2-bucketed histogram of u64 samples (latencies in ns, sizes in
/// bytes). Cloning shares the underlying cell. Recording takes a short
/// uncontended mutex — use it for per-message events, not per-byte ones.
#[derive(Clone)]
pub struct Histogram(Arc<Mutex<HistState>>);

impl Histogram {
    fn new() -> Self {
        Histogram(Arc::new(Mutex::new(HistState {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        })))
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        let mut st = self.0.lock().expect("histogram poisoned");
        st.count += 1;
        st.sum = st.sum.saturating_add(v);
        st.min = st.min.min(v);
        st.max = st.max.max(v);
        let bucket = (64 - v.leading_zeros()) as usize;
        st.buckets[bucket] += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.0.lock().expect("histogram poisoned").count
    }

    fn snap(&self) -> HistogramSnapshot {
        let st = self.0.lock().expect("histogram poisoned").clone();
        HistogramSnapshot {
            count: st.count,
            sum: st.sum,
            min: if st.count == 0 { 0 } else { st.min },
            max: st.max,
            buckets: st.buckets.to_vec(),
        }
    }
}

struct RegistryInner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    meta: Mutex<BTreeMap<String, String>>,
}

/// The shared registry handle. Cheap to clone; all clones see the same
/// instruments. One `Metrics` exists per simulation run.
#[derive(Clone)]
pub struct Metrics {
    inner: Arc<RegistryInner>,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Fresh, empty registry.
    pub fn new() -> Self {
        Metrics {
            inner: Arc::new(RegistryInner {
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                meta: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Register (or fetch) the counter `name`. Call once at construction
    /// time and keep the returned handle; increments through the handle
    /// never touch the registry again.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.counters.lock().expect("registry poisoned");
        map.entry(name.to_string())
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// Register (or fetch) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.gauges.lock().expect("registry poisoned");
        map.entry(name.to_string())
            .or_insert_with(|| {
                Gauge(Arc::new(GaugeCell {
                    value: AtomicU64::new(0),
                    high_water: AtomicU64::new(0),
                }))
            })
            .clone()
    }

    /// Register (or fetch) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.inner.histograms.lock().expect("registry poisoned");
        map.entry(name.to_string())
            .or_insert_with(Histogram::new)
            .clone()
    }

    /// Name-based counter increment (compat path, e.g. dynamic per-node
    /// names). One registry-map lock per call — fine off the hot path.
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Name-based counter read (0 if never registered).
    pub fn get(&self, name: &str) -> u64 {
        self.inner
            .counters
            .lock()
            .expect("registry poisoned")
            .get(name)
            .map(|c| c.get())
            .unwrap_or(0)
    }

    /// Attach a key/value annotation carried in every snapshot (seed,
    /// cluster size, harness name, …).
    pub fn set_meta(&self, key: &str, value: impl Into<String>) {
        self.inner
            .meta
            .lock()
            .expect("registry poisoned")
            .insert(key.to_string(), value.into());
    }

    /// Sorted copy of all counter values.
    pub fn counter_values(&self) -> BTreeMap<String, u64> {
        self.inner
            .counters
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Consistent point-in-time copy of every instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            meta: self.inner.meta.lock().expect("registry poisoned").clone(),
            counters: self.counter_values(),
            gauges: self
                .inner
                .gauges
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(k, g)| {
                    (
                        k.clone(),
                        GaugeSnapshot {
                            value: g.get(),
                            high_water: g.high_water(),
                        },
                    )
                })
                .collect(),
            histograms: self
                .inner
                .histograms
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(k, h)| (k.clone(), h.snap()))
                .collect(),
        }
    }
}

/// Point-in-time gauge state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Level at snapshot time.
    pub value: u64,
    /// Highest level observed.
    pub high_water: u64,
}

/// Point-in-time histogram state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// log2 buckets; index `k` counts samples in `[2^(k-1), 2^k)`.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// An empty snapshot — the identity element for [`HistogramSnapshot::merge`].
    pub fn empty() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: vec![0; HIST_BUCKETS],
        }
    }

    /// Fold `other` into `self`, bucket by bucket. The merge is **exact**:
    /// because per-node histograms share the same fixed log2 bucket edges,
    /// a hierarchical per-node → cluster rollup loses nothing — count,
    /// sum, min, max, every bucket, and therefore every interpolated
    /// quantile equal those of one histogram fed the whole population.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (k, &b) in other.buckets.iter().enumerate() {
            self.buckets[k] += b;
        }
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated quantile `q` in `[0, 1]`, interpolated linearly inside
    /// the containing log2 bucket (bucket `k` spans `[2^(k-1), 2^k)`) and
    /// clamped to the observed `[min, max]` so single-valued histograms
    /// report exact quantiles. Total: returns 0 when empty, treats a NaN
    /// `q` as 1, clamps infinities, and never yields NaN — required by the
    /// health rules, which evaluate freshly-rotated (possibly empty)
    /// windows every tick.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = if q.is_nan() { 1.0 } else { q.clamp(0.0, 1.0) };
        let rank = q * self.count as f64;
        let mut cum = 0.0;
        for (k, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let c = c as f64;
            if cum + c >= rank {
                let (lo, hi) = if k == 0 {
                    (0.0, 0.0)
                } else {
                    (2f64.powi(k as i32 - 1), 2f64.powi(k as i32))
                };
                let frac = ((rank - cum) / c).clamp(0.0, 1.0);
                let v = lo + frac * (hi - lo);
                return v.clamp(self.min as f64, self.max as f64);
            }
            cum += c;
        }
        self.max as f64
    }

    /// Median estimate.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile estimate (the SLO-report tail bucket).
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }
}

/// A full registry snapshot: metadata plus every instrument, sorted by
/// name. Serializes to JSON for the experiment harnesses.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Run annotations (seed, harness, cluster size, …).
    pub meta: BTreeMap<String, String>,
    /// Counter values.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values + high-water marks.
    pub gauges: BTreeMap<String, GaugeSnapshot>,
    /// Histogram summaries.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Escape a string for inclusion in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl MetricsSnapshot {
    /// Counter value by name (0 if absent) — convenience for assertions.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Number of distinct counters in the snapshot.
    pub fn counter_count(&self) -> usize {
        self.counters.len()
    }

    /// Serialize as pretty-printed JSON (2-space indent, keys sorted).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"meta\": {");
        Self::write_map(&mut out, self.meta.iter(), |out, v| {
            let _ = write!(out, "\"{}\"", json_escape(v));
        });
        out.push_str("},\n  \"counters\": {");
        Self::write_map(&mut out, self.counters.iter(), |out, v| {
            let _ = write!(out, "{v}");
        });
        out.push_str("},\n  \"gauges\": {");
        Self::write_map(&mut out, self.gauges.iter(), |out, g| {
            let _ = write!(
                out,
                "{{\"value\": {}, \"high_water\": {}}}",
                g.value, g.high_water
            );
        });
        out.push_str("},\n  \"histograms\": {");
        Self::write_map(&mut out, self.histograms.iter(), |out, h| {
            // Buckets are elided above the top non-zero one to keep the
            // files diffable.
            let top = h
                .buckets
                .iter()
                .rposition(|&b| b != 0)
                .map(|i| i + 1)
                .unwrap_or(0);
            let buckets: Vec<String> = h.buckets[..top].iter().map(|b| b.to_string()).collect();
            let _ = write!(
                out,
                "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"p50\": {:.1}, \"p95\": {:.1}, \"p99\": {:.1}, \"log2_buckets\": [{}]}}",
                h.count,
                h.sum,
                h.min,
                h.max,
                h.p50(),
                h.p95(),
                h.p99(),
                buckets.join(", ")
            );
        });
        out.push_str("}\n}\n");
        out
    }

    fn write_map<'a, V: 'a>(
        out: &mut String,
        entries: impl ExactSizeIterator<Item = (&'a String, &'a V)>,
        mut write_value: impl FnMut(&mut String, &V),
    ) {
        let n = entries.len();
        if n == 0 {
            return;
        }
        out.push('\n');
        for (i, (k, v)) in entries.enumerate() {
            let _ = write!(out, "    \"{}\": ", json_escape(k));
            write_value(out, v);
            out.push_str(if i + 1 < n { ",\n" } else { "\n" });
        }
        out.push_str("  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_state() {
        let m = Metrics::new();
        let a = m.counter("x.hits");
        let b = m.counter("x.hits");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(m.get("x.hits"), 3);
        assert_eq!(m.get("absent"), 0);
    }

    #[test]
    fn name_based_add_reaches_same_cell() {
        let m = Metrics::new();
        let h = m.counter("y");
        m.add("y", 5);
        assert_eq!(h.get(), 5);
    }

    #[test]
    fn gauge_tracks_high_water() {
        let m = Metrics::new();
        let g = m.gauge("q.depth");
        g.set(3);
        g.add(4);
        g.sub(6);
        assert_eq!(g.get(), 1);
        assert_eq!(g.high_water(), 7);
        g.sub(100);
        assert_eq!(g.get(), 0, "sub saturates");
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let m = Metrics::new();
        let h = m.histogram("lat");
        for v in [0, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        let s = h.snap();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1010);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        assert_eq!(s.buckets[0], 1); // 0
        assert_eq!(s.buckets[1], 1); // 1
        assert_eq!(s.buckets[2], 2); // 2, 3
        assert_eq!(s.buckets[3], 1); // 4
        assert_eq!(s.buckets[10], 1); // 1000 in [512, 1024)
        assert!((s.mean() - 1010.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let m = Metrics::new();
        let h = m.histogram("lat");
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snap();
        // Log2 interpolation is coarse but must bracket the true value
        // within the containing power-of-two bucket.
        let p50 = s.p50();
        assert!((256.0..=512.0).contains(&p50), "p50 = {p50}");
        let p99 = s.p99();
        assert!((512.0..=1000.0).contains(&p99), "p99 = {p99}");
        assert!(s.p50() <= s.p95() && s.p95() <= s.p99());
        assert!(s.quantile(1.0) <= s.max as f64);
    }

    #[test]
    fn quantiles_clamp_to_observed_range() {
        let m = Metrics::new();
        let h = m.histogram("lat");
        for _ in 0..10 {
            h.record(100);
        }
        let s = h.snap();
        // All mass in one bucket, min == max: every quantile is exact.
        assert_eq!(s.p50(), 100.0);
        assert_eq!(s.p99(), 100.0);
        assert_eq!(s.quantile(0.0), 100.0);
    }

    #[test]
    fn quantiles_of_empty_histogram_are_zero() {
        let m = Metrics::new();
        let s = m.histogram("empty").snap();
        assert_eq!(s.p50(), 0.0);
        assert_eq!(s.p99(), 0.0);
        assert_eq!(s.quantile(0.0), 0.0);
        assert_eq!(s.quantile(1.0), 0.0);
    }

    #[test]
    fn quantiles_of_single_sample_are_exact() {
        let m = Metrics::new();
        let h = m.histogram("lat");
        h.record(777);
        let s = h.snap();
        // One sample: min == max == 777, so the bucket interpolation must
        // clamp every quantile to the observed value.
        for q in [0.0, 0.01, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 777.0, "q = {q}");
        }
        // A zero-valued single sample exercises bucket 0's (0, 0) range.
        let z = m.histogram("zero");
        z.record(0);
        let s = z.snap();
        assert_eq!(s.p50(), 0.0);
        assert_eq!(s.p99(), 0.0);
    }

    #[test]
    fn quantiles_are_total_over_degenerate_q() {
        // The health rules evaluate quantiles of freshly-rotated windows on
        // every tick; a degenerate q must never produce NaN or a panic.
        let m = Metrics::new();
        let empty = m.histogram("empty").snap();
        for q in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -3.0, 7.0] {
            assert!(empty.quantile(q).is_finite());
            assert_eq!(empty.quantile(q), 0.0, "empty window stays 0");
        }
        let h = m.histogram("lat");
        h.record(100);
        h.record(900);
        let s = h.snap();
        assert_eq!(s.quantile(f64::NAN), s.quantile(1.0), "NaN q reads as 1");
        assert_eq!(s.quantile(f64::INFINITY), 900.0);
        assert_eq!(s.quantile(f64::NEG_INFINITY), 100.0);
        assert_eq!(s.quantile(-3.0), 100.0);
        assert_eq!(s.quantile(7.0), 900.0);
        assert!(!s.quantile(f64::NAN).is_nan());
    }

    #[test]
    fn p99_of_two_samples_lands_on_the_larger() {
        let m = Metrics::new();
        let h = m.histogram("lat");
        h.record(1);
        h.record(1000);
        let s = h.snap();
        // rank = 0.99 × 2 = 1.98 falls in the second sample's bucket
        // [512, 1024); interpolation then clamps to the observed max.
        assert_eq!(s.p99(), 1000.0);
        assert_eq!(s.quantile(1.0), 1000.0);
        // The low quantiles stay inside the smaller sample's bucket and
        // never exceed the larger sample.
        assert!(s.p50() >= s.min as f64 && s.p50() <= s.max as f64);
        assert!(s.p50() <= s.p99());
        // Out-of-range q is clamped, not extrapolated.
        assert_eq!(s.quantile(2.0), 1000.0);
        assert!(s.quantile(-1.0) >= s.min as f64);
    }

    #[test]
    fn merged_histograms_equal_whole_population() {
        // Satellite contract: a per-node → cluster rollup must be exact.
        // Spread a deterministic sample stream over 8 "node" histograms,
        // merge the snapshots, and compare against one histogram that saw
        // every sample: every field — and so every quantile — is equal.
        let m = Metrics::new();
        let whole = m.histogram("whole");
        let parts: Vec<Histogram> = (0..8).map(|n| m.histogram(&format!("node{n}"))).collect();
        let mut x = 0x9E3779B97F4A7C15u64;
        for i in 0..10_000u64 {
            // splitmix64 stream: values spanning many buckets.
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            let v = (z ^ (z >> 31)) >> (z % 50);
            whole.record(v);
            parts[(i % 8) as usize].record(v);
        }
        let mut merged = HistogramSnapshot::empty();
        for p in &parts {
            merged.merge(&p.snap());
        }
        let w = whole.snap();
        assert_eq!(merged, w, "bucket-exact merge");
        for q in [0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            assert_eq!(merged.quantile(q), w.quantile(q), "q = {q}");
        }
        assert_eq!(merged.mean(), w.mean());
        // Identity + commutativity spot checks.
        let mut id = HistogramSnapshot::empty();
        id.merge(&w);
        assert_eq!(id, w);
        let mut rev = HistogramSnapshot::empty();
        for p in parts.iter().rev() {
            rev.merge(&p.snap());
        }
        assert_eq!(rev, merged);
    }

    #[test]
    fn json_includes_quantiles() {
        let m = Metrics::new();
        m.histogram("sz").record(100);
        let j = m.snapshot().to_json();
        assert!(j.contains("\"p50\": 100.0"), "{j}");
        assert!(j.contains("\"p99\": 100.0"));
    }

    #[test]
    fn empty_histogram_snapshot_is_zeroed() {
        let m = Metrics::new();
        let s = m.histogram("empty").snap();
        assert_eq!((s.count, s.sum, s.min, s.max), (0, 0, 0, 0));
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let m = Metrics::new();
        m.add("b", 2);
        m.add("a", 1);
        m.gauge("g").set(9);
        m.set_meta("seed", "42");
        let s = m.snapshot();
        let names: Vec<&String> = s.counters.keys().collect();
        assert_eq!(names, ["a", "b"]);
        assert_eq!(s.counter("a"), 1);
        assert_eq!(s.gauges["g"].high_water, 9);
        assert_eq!(s.meta["seed"], "42");
    }

    #[test]
    fn json_shape_is_valid_and_stable() {
        let m = Metrics::new();
        m.set_meta("harness", "unit \"test\"");
        m.add("fabric.dropped", 1);
        m.gauge("cq.depth").set(4);
        m.histogram("sz").record(100);
        let j = m.snapshot().to_json();
        // Structural checks (no JSON parser available offline).
        assert!(j.starts_with("{\n"));
        assert!(j.ends_with("}\n"));
        assert!(j.contains("\"harness\": \"unit \\\"test\\\"\""));
        assert!(j.contains("\"fabric.dropped\": 1"));
        assert!(j.contains("\"value\": 4, \"high_water\": 4"));
        assert!(j.contains("\"count\": 1, \"sum\": 100"));
        // Balanced braces/brackets.
        let depth = j.chars().fold(0i32, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
    }

    #[test]
    fn empty_registry_serializes() {
        let j = Metrics::new().snapshot().to_json();
        assert!(j.contains("\"counters\": {}"));
    }

    #[test]
    fn json_escape_control_chars() {
        assert_eq!(json_escape("a\tb\n"), "a\\tb\\n");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
