//! Stall watchdog: turns "the simulation silently degraded" into a
//! first-class, dumped, counted event.
//!
//! Two stall signals, both checked from the simulator's telemetry tick:
//!
//! 1. **Open chain over budget** — a traced message recorded an
//!    [`stage::SEND`](crate::trace::stage::SEND) but no terminal stage, and
//!    its newest event is older than a configurable sim-time budget. A
//!    wedged retransmission loop keeps generating events, so the chain
//!    stays in the ring while never closing — exactly the livelock shape a
//!    deadlock detector misses.
//! 2. **Probe pegged at capacity** — a telemetry probe with a declared
//!    capacity sat at/above it for M consecutive samples
//!    ([`TimeSeries::newly_pegged`]).
//!
//! On the first stall the watchdog dumps the flight recorder
//! ([`MsgTracer::dump_once`]) and the last telemetry window to stderr;
//! every distinct stalled chain/probe increments the `watchdog.stalls`
//! counter exactly once, so clean runs can assert `watchdog.stalls == 0`.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::timeseries::TimeSeries;
use crate::trace::{is_terminal, stage, MsgTracer, TraceId};
use crate::{Counter, Metrics};

/// Stall thresholds. The defaults are deliberately generous: they must stay
/// silent across every clean harness (including 128 KB bandwidth sweeps
/// where a single message legitimately lives for ~1 ms of virtual time)
/// while still firing within a bounded sim-time on a genuinely wedged run.
#[derive(Clone, Debug)]
pub struct WatchdogConfig {
    /// Flag a chain whose newest event is older than this and which never
    /// reached a terminal stage (virtual nanoseconds).
    pub chain_budget_ns: u64,
    /// Flag a probe at/above its capacity for this many consecutive
    /// samples.
    pub pegged_samples: u32,
    /// Run the (comparatively expensive) checks every N sampling ticks.
    pub check_every: u32,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            // 250 ms of virtual time: ~250× the longest clean message
            // lifetime observed across the repro harnesses.
            chain_budget_ns: 250_000_000,
            // At the default 10 µs period: ~5 ms continuously full.
            pegged_samples: 512,
            check_every: 50,
        }
    }
}

struct WatchState {
    flagged_chains: std::collections::BTreeSet<(u32, u32)>,
    telemetry_dumped: bool,
}

/// One detected stall, reported by [`Watchdog::check`]. The telemetry
/// driver forwards these to the health engine, where they surface as
/// immediately-firing `watchdog.*` alerts; the `watchdog.stalls` counter
/// and the stderr/flight-recorder response are unchanged.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stall {
    /// A traced message chain recorded a send but no terminal stage and has
    /// been silent past the budget.
    Chain {
        /// Origin node of the stuck message.
        origin: u32,
        /// Message id within the origin.
        msg_id: u32,
        /// Sim-time since the chain's newest event.
        age_ns: u64,
    },
    /// A capacity probe sat at/above its declared capacity for the
    /// configured number of consecutive samples.
    Pegged {
        /// Probe name (e.g. `n3.nic.sram_used`).
        probe: String,
        /// Declared capacity.
        capacity: u64,
        /// Consecutive samples at/above capacity.
        streak: u32,
    },
}

/// The stall detector. One per simulation, driven by the telemetry tick.
pub struct Watchdog {
    cfg: WatchdogConfig,
    stalls: Counter,
    state: Mutex<WatchState>,
}

impl Watchdog {
    /// Build a watchdog and register its `watchdog.stalls` counter (so the
    /// zero shows up in every snapshot — "0 stalls" is the clean-run
    /// claim).
    pub fn new(cfg: WatchdogConfig, metrics: &Metrics) -> Self {
        Watchdog {
            cfg,
            stalls: metrics.counter("watchdog.stalls"),
            state: Mutex::new(WatchState {
                flagged_chains: std::collections::BTreeSet::new(),
                telemetry_dumped: false,
            }),
        }
    }

    /// Configured thresholds.
    pub fn config(&self) -> &WatchdogConfig {
        &self.cfg
    }

    /// Stalls counted so far.
    pub fn stalls(&self) -> u64 {
        self.stalls.get()
    }

    /// Run both stall checks at virtual time `now_ns`. Returns the *new*
    /// stalls (each distinct chain/probe is reported once).
    pub fn check(&self, now_ns: u64, tracer: &MsgTracer, series: &TimeSeries) -> Vec<Stall> {
        let mut new_stalls = Vec::new();

        // Signal 1: open chains over budget. A chain whose SEND survives in
        // the bounded ring is by construction recent enough to judge; once
        // the SEND is evicted the chain is skipped (eviction is
        // oldest-first, so a terminal can never be evicted before its
        // send).
        let events = tracer.events();
        let mut chains: BTreeMap<TraceId, (bool, bool, u64)> = BTreeMap::new();
        for ev in &events {
            if ev.trace.is_none() {
                continue;
            }
            let e = chains.entry(ev.trace).or_insert((false, false, 0));
            if ev.stage.as_ref() == stage::SEND {
                e.0 = true;
            }
            if is_terminal(ev.stage.as_ref()) {
                e.1 = true;
            }
            e.2 = e.2.max(ev.end_ns);
        }
        for (trace, (has_send, closed, last_ns)) in chains {
            if !has_send || closed {
                continue;
            }
            let age = now_ns.saturating_sub(last_ns);
            if age <= self.cfg.chain_budget_ns {
                continue;
            }
            let fresh = {
                let mut st = self.state.lock().expect("watchdog poisoned");
                st.flagged_chains.insert((trace.origin, trace.msg_id))
            };
            if fresh {
                self.stalls.inc();
                new_stalls.push(Stall::Chain {
                    origin: trace.origin,
                    msg_id: trace.msg_id,
                    age_ns: age,
                });
                self.trip(
                    &format!(
                        "watchdog: chain (origin {}, msg {}) open for {age} ns \
                         (budget {} ns) at t={now_ns} ns",
                        trace.origin, trace.msg_id, self.cfg.chain_budget_ns
                    ),
                    tracer,
                    series,
                );
            }
        }

        // Signal 2: probes pegged at capacity. `newly_pegged` reports each
        // probe once per continuous episode.
        for (name, cap, streak) in series.newly_pegged(self.cfg.pegged_samples) {
            self.stalls.inc();
            self.trip(
                &format!(
                    "watchdog: probe {name} pegged at capacity {cap} for \
                     {streak} consecutive samples at t={now_ns} ns"
                ),
                tracer,
                series,
            );
            new_stalls.push(Stall::Pegged {
                probe: name,
                capacity: cap,
                streak,
            });
        }
        new_stalls
    }

    /// Stall response: one flight-recorder dump per run (the tracer's
    /// one-shot), one telemetry-window dump per run, and a stderr line per
    /// stall.
    fn trip(&self, reason: &str, tracer: &MsgTracer, series: &TimeSeries) {
        eprintln!("[watchdog] {reason}");
        tracer.dump_once(reason);
        let dump_window = {
            let mut st = self.state.lock().expect("watchdog poisoned");
            !std::mem::replace(&mut st.telemetry_dumped, true)
        };
        if dump_window {
            eprintln!("==== telemetry window (last 16 samples per probe) ====");
            eprint!("{}", series.render_last_window(16));
            eprintln!("==== end telemetry window ====");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceEvent, TraceLayer};

    fn open_chain(tracer: &MsgTracer, msg: u32, at_ns: u64) {
        let t = TraceId::new(0, msg);
        tracer.record(TraceEvent::span(
            t,
            0,
            TraceLayer::Library,
            stage::SEND,
            at_ns,
            at_ns + 100,
        ));
        tracer.record(
            TraceEvent::span(
                t,
                0,
                TraceLayer::Mcp,
                stage::INJECT,
                at_ns + 100,
                at_ns + 150,
            )
            .with_seq(0),
        );
    }

    #[test]
    fn open_chain_over_budget_counts_once() {
        let m = Metrics::new();
        let tracer = MsgTracer::new();
        let ts = TimeSeries::new();
        let wd = Watchdog::new(
            WatchdogConfig {
                chain_budget_ns: 1_000,
                pegged_samples: 4,
                check_every: 1,
            },
            &m,
        );
        open_chain(&tracer, 2, 0);
        assert!(wd.check(500, &tracer, &ts).is_empty(), "within budget");
        let stalls = wd.check(5_000, &tracer, &ts);
        assert_eq!(stalls.len(), 1, "over budget");
        assert!(
            matches!(
                stalls[0],
                Stall::Chain {
                    origin: 0,
                    msg_id: 2,
                    ..
                }
            ),
            "stall identifies the chain: {stalls:?}"
        );
        assert!(
            wd.check(9_000, &tracer, &ts).is_empty(),
            "same chain not recounted"
        );
        assert_eq!(wd.stalls(), 1);
        assert_eq!(m.get("watchdog.stalls"), 1);
        assert!(tracer.has_dumped(), "flight recorder tripped");
    }

    #[test]
    fn closed_chain_never_stalls() {
        let m = Metrics::new();
        let tracer = MsgTracer::new();
        let ts = TimeSeries::new();
        let wd = Watchdog::new(
            WatchdogConfig {
                chain_budget_ns: 1_000,
                pegged_samples: 4,
                check_every: 1,
            },
            &m,
        );
        open_chain(&tracer, 2, 0);
        tracer.record(TraceEvent::instant(
            TraceId::new(0, 2),
            1,
            TraceLayer::Library,
            stage::POLL_RECV,
            400,
        ));
        assert!(wd.check(1_000_000, &tracer, &ts).is_empty());
        assert_eq!(wd.stalls(), 0);
        assert!(!tracer.has_dumped());
    }

    #[test]
    fn pegged_probe_counts_as_stall() {
        let m = Metrics::new();
        let tracer = MsgTracer::new();
        let ts = TimeSeries::new();
        ts.register("n0.sram", 0, Some(8), |_| 8);
        let wd = Watchdog::new(
            WatchdogConfig {
                chain_budget_ns: 1_000_000,
                pegged_samples: 3,
                check_every: 1,
            },
            &m,
        );
        for t in 0..3u64 {
            ts.sample_all(t * 10);
        }
        let stalls = wd.check(30, &tracer, &ts);
        assert_eq!(stalls.len(), 1);
        assert!(
            matches!(&stalls[0], Stall::Pegged { probe, capacity: 8, .. } if probe == "n0.sram"),
            "stall identifies the probe: {stalls:?}"
        );
        assert_eq!(wd.stalls(), 1);
        // Still pegged — but the episode was already reported.
        ts.sample_all(40);
        assert!(wd.check(50, &tracer, &ts).is_empty());
    }
}
