//! PCI programmed-I/O cost model.
//!
//! The paper measures its testbed PCI at **0.24 µs per word written** to the
//! NIC and **0.98 µs per word read** from it, and observes that filling the
//! send-request descriptor over PIO consumes more than half of the 7.04 µs
//! send overhead. Those two constants therefore anchor the whole Fig. 5
//! timeline; the `ablations` harness sweeps them to reproduce the paper's
//! "a good motherboard can improve the I/O performance heavily" discussion.

use suca_sim::SimDuration;

/// Cost model for one host↔device bus.
#[derive(Clone, Debug)]
pub struct PciModel {
    /// Cost of one 32-bit PIO write from host to device memory.
    pub pio_write_word: SimDuration,
    /// Cost of one 32-bit PIO read by the host from device memory.
    pub pio_read_word: SimDuration,
    /// Sustained DMA bandwidth between host memory and device memory.
    pub dma_bytes_per_sec: u64,
    /// Fixed cost to program one DMA descriptor and start the engine.
    pub dma_setup: SimDuration,
}

impl PciModel {
    /// DAWNING-3000 testbed calibration (paper §5.1): PIO write 0.24 µs,
    /// read 0.98 µs; 64-bit/33 MHz PCI sustaining ~220 MB/s of DMA.
    pub fn dawning3000() -> Self {
        PciModel {
            pio_write_word: SimDuration::from_us_f64(0.24),
            pio_read_word: SimDuration::from_us_f64(0.98),
            dma_bytes_per_sec: 220_000_000,
            dma_setup: SimDuration::from_us_f64(0.30),
        }
    }

    /// A "good motherboard" variant for the ablation: ~4× faster PIO and a
    /// 66 MHz bus.
    pub fn fast_pci() -> Self {
        PciModel {
            pio_write_word: SimDuration::from_us_f64(0.06),
            pio_read_word: SimDuration::from_us_f64(0.25),
            dma_bytes_per_sec: 440_000_000,
            dma_setup: SimDuration::from_us_f64(0.15),
        }
    }

    /// Cost of writing `words` 32-bit words via PIO.
    pub fn pio_write(&self, words: u64) -> SimDuration {
        self.pio_write_word * words
    }

    /// Cost of reading `words` 32-bit words via PIO.
    pub fn pio_read(&self, words: u64) -> SimDuration {
        self.pio_read_word * words
    }

    /// Pure transfer time for a DMA of `len` bytes (excluding setup and
    /// engine queueing, which [`crate::dma::DmaEngine`] accounts for).
    pub fn dma_transfer(&self, len: u64) -> SimDuration {
        if len == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::for_bytes(len, self.dma_bytes_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let m = PciModel::dawning3000();
        assert_eq!(m.pio_write(1).as_ns(), 240);
        assert_eq!(m.pio_read(1).as_ns(), 980);
        // Descriptor fill of ~16 words is > half of the 7.04 us send
        // overhead, as the paper observes.
        assert!(m.pio_write(16).as_us() > 7.04 / 2.0);
    }

    #[test]
    fn zero_len_dma_is_free() {
        let m = PciModel::dawning3000();
        assert_eq!(m.dma_transfer(0), SimDuration::ZERO);
    }

    #[test]
    fn fast_pci_is_faster_everywhere() {
        let slow = PciModel::dawning3000();
        let fast = PciModel::fast_pci();
        assert!(fast.pio_write(10) < slow.pio_write(10));
        assert!(fast.pio_read(10) < slow.pio_read(10));
        assert!(fast.dma_transfer(4096) < slow.dma_transfer(4096));
    }
}
