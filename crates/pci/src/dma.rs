//! DMA engine model.
//!
//! A Myrinet M2M-PCI64A carries several independent DMA engines (host↔SRAM,
//! SRAM→wire, wire→SRAM). Each [`DmaEngine`] serializes its own transfers —
//! a request issued while the engine is busy queues behind the current one —
//! which is what produces the store-and-forward pipelining visible in the
//! bandwidth curve (Fig. 9). The actual byte movement is performed by the
//! completion closure, so data and timing stay consistent.

use std::sync::Arc;

use parking_lot::Mutex;

use suca_sim::{Counter, Gauge, Sim, SimDuration, SimTime};

use crate::bus::PciModel;

struct EngineState {
    busy_until: SimTime,
    completed: u64,
    bytes_moved: u64,
}

/// One serialized DMA engine.
#[derive(Clone)]
pub struct DmaEngine {
    sim: Sim,
    name: &'static str,
    setup: SimDuration,
    bytes_per_sec: u64,
    state: Arc<Mutex<EngineState>>,
    // Typed metric handles (registered once; hot-path updates are atomic).
    transfers: Counter,
    busy_ns: Counter,
    queued_bytes: Gauge,
}

impl DmaEngine {
    /// Create an engine with explicit rate parameters.
    pub fn new(sim: &Sim, name: &'static str, setup: SimDuration, bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0);
        let metrics = sim.metrics();
        DmaEngine {
            sim: sim.clone(),
            name,
            setup,
            bytes_per_sec,
            state: Arc::new(Mutex::new(EngineState {
                busy_until: SimTime::ZERO,
                completed: 0,
                bytes_moved: 0,
            })),
            transfers: metrics.counter(&format!("dma.{name}.transfers")),
            busy_ns: metrics.counter(&format!("dma.{name}.busy_ns")),
            queued_bytes: metrics.gauge(&format!("dma.{name}.queued_bytes")),
        }
    }

    /// Create an engine from a [`PciModel`] (host↔device transfers).
    pub fn from_pci(sim: &Sim, name: &'static str, pci: &PciModel) -> Self {
        Self::new(sim, name, pci.dma_setup, pci.dma_bytes_per_sec)
    }

    /// Submit a transfer of `len` bytes. `on_done` runs (as a simulation
    /// event) when the transfer completes; it should perform the byte copy
    /// and any follow-up notification. Returns the completion time.
    pub fn submit(&self, len: u64, on_done: impl FnOnce(&Sim) + Send + 'static) -> SimTime {
        let now = self.sim.now();
        let duration = self.setup
            + if len == 0 {
                SimDuration::ZERO
            } else {
                SimDuration::for_bytes(len, self.bytes_per_sec)
            };
        let done = {
            let mut st = self.state.lock();
            let start = st.busy_until.max(now);
            let done = start + duration;
            st.busy_until = done;
            st.completed += 1;
            st.bytes_moved += len;
            done
        };
        self.transfers.inc();
        self.busy_ns.add(duration.as_ns());
        self.queued_bytes.add(len);
        let queued = self.queued_bytes.clone();
        self.sim.schedule_at(done, move |s| {
            queued.sub(len);
            on_done(s);
        });
        done
    }

    /// Instant at which the engine becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.state.lock().busy_until
    }

    /// (transfers completed or queued, bytes moved).
    pub fn stats(&self) -> (u64, u64) {
        let st = self.state.lock();
        (st.completed, st.bytes_moved)
    }

    /// Engine name (for counters and traces).
    pub fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use suca_sim::RunOutcome;

    #[test]
    fn transfer_takes_setup_plus_bytes() {
        let sim = Sim::new(1);
        let eng = DmaEngine::new(&sim, "t", SimDuration::from_us(1), 100_000_000);
        let done = Arc::new(AtomicU64::new(0));
        let d = done.clone();
        eng.submit(1000, move |s| {
            d.store(s.now().as_ns(), Ordering::Relaxed);
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        // 1 us setup + 1000 B / 100 MB/s = 10 us transfer.
        assert_eq!(done.load(Ordering::Relaxed), 11_000);
    }

    #[test]
    fn engine_serializes_back_to_back_transfers() {
        let sim = Sim::new(1);
        let eng = DmaEngine::new(&sim, "t", SimDuration::ZERO, 1_000_000_000);
        let times = Arc::new(Mutex::new(Vec::new()));
        for _ in 0..3 {
            let t = times.clone();
            eng.submit(1000, move |s| t.lock().push(s.now().as_ns()));
        }
        sim.run();
        assert_eq!(*times.lock(), vec![1_000, 2_000, 3_000]);
        assert_eq!(eng.stats(), (3, 3000));
    }

    #[test]
    fn idle_engine_starts_at_now() {
        let sim = Sim::new(1);
        let eng = DmaEngine::new(&sim, "t", SimDuration::ZERO, 1_000_000_000);
        let eng2 = eng.clone();
        let fin = Arc::new(AtomicU64::new(0));
        let f2 = fin.clone();
        sim.schedule_in(SimDuration::from_us(100), move |_| {
            eng2.submit(1000, move |s| {
                f2.store(s.now().as_ns(), Ordering::Relaxed);
            });
        });
        sim.run();
        // Starts at 100 us, not at the engine's stale busy_until of 0.
        assert_eq!(fin.load(Ordering::Relaxed), 101_000);
    }

    #[test]
    fn zero_len_costs_only_setup() {
        let sim = Sim::new(1);
        let eng = DmaEngine::new(&sim, "t", SimDuration::from_us(2), 1_000);
        let done = eng.submit(0, |_| {});
        assert_eq!(done.as_us(), 2.0);
        sim.run();
    }
}
