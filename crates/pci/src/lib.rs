//! # suca-pci — I/O bus substrate
//!
//! PIO cost model (the paper's 0.24 µs/word write, 0.98 µs/word read) and
//! serialized DMA engines. The BCL kernel module pays PIO costs to fill send
//! descriptors; the NIC's DMA engines move payloads between host memory and
//! NIC SRAM.

#![warn(missing_docs)]

pub mod bus;
pub mod dma;

pub use bus::PciModel;
pub use dma::DmaEngine;
