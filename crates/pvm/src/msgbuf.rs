//! PVM-style typed message buffers.
//!
//! PVM transmits self-describing buffers: each `pvm_pk*` call appends a
//! typed section, and the receiver must unpack with matching types (this is
//! how real PVM catches mismatched pack/unpack sequences). The encoding is
//! the in-order section list: `type byte | count u32 | payload`.

/// Section types.
const T_I32: u8 = 1;
const T_F64: u8 = 2;
const T_BYTES: u8 = 3;
const T_STR: u8 = 4;

/// Error from unpacking.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum UnpackError {
    /// Buffer exhausted.
    OutOfData,
    /// Next section has a different type than requested.
    TypeMismatch {
        /// What the caller asked for.
        wanted: &'static str,
        /// What the buffer holds.
        found: u8,
    },
    /// Section is malformed (truncated payload).
    Corrupt,
}

impl core::fmt::Display for UnpackError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            UnpackError::OutOfData => write!(f, "unpack past end of message"),
            UnpackError::TypeMismatch { wanted, found } => {
                write!(
                    f,
                    "unpack type mismatch: wanted {wanted}, found tag {found}"
                )
            }
            UnpackError::Corrupt => write!(f, "corrupt message section"),
        }
    }
}
impl std::error::Error for UnpackError {}

/// A buffer being packed for sending.
///
/// ```
/// use suca_pvm::{PackBuf, UnpackBuf};
/// let mut pk = PackBuf::new();
/// pk.pack_str("answer").pack_i32(&[42]);
/// let mut up = UnpackBuf::new(pk.finish().to_vec());
/// assert_eq!(up.unpack_str().unwrap(), "answer");
/// assert_eq!(up.unpack_i32().unwrap(), vec![42]);
/// // Type confusion is caught:
/// assert!(up.unpack_f64().is_err());
/// ```
#[derive(Default, Clone, Debug)]
pub struct PackBuf {
    data: Vec<u8>,
}

impl PackBuf {
    /// Fresh empty buffer (`pvm_initsend`).
    pub fn new() -> PackBuf {
        PackBuf::default()
    }

    fn section(&mut self, t: u8, count: u32, payload: &[u8]) {
        self.data.push(t);
        self.data.extend_from_slice(&count.to_le_bytes());
        self.data.extend_from_slice(payload);
    }

    /// `pvm_pkint`.
    pub fn pack_i32(&mut self, v: &[i32]) -> &mut Self {
        let mut p = Vec::with_capacity(v.len() * 4);
        for x in v {
            p.extend_from_slice(&x.to_le_bytes());
        }
        self.section(T_I32, v.len() as u32, &p);
        self
    }

    /// `pvm_pkdouble`.
    pub fn pack_f64(&mut self, v: &[f64]) -> &mut Self {
        let mut p = Vec::with_capacity(v.len() * 8);
        for x in v {
            p.extend_from_slice(&x.to_le_bytes());
        }
        self.section(T_F64, v.len() as u32, &p);
        self
    }

    /// `pvm_pkbyte`.
    pub fn pack_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.section(T_BYTES, v.len() as u32, v);
        self
    }

    /// `pvm_pkstr`.
    pub fn pack_str(&mut self, s: &str) -> &mut Self {
        self.section(T_STR, s.len() as u32, s.as_bytes());
        self
    }

    /// Encoded wire bytes.
    pub fn finish(&self) -> &[u8] {
        &self.data
    }

    /// Encoded size.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if nothing has been packed.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// A received buffer being unpacked.
#[derive(Clone, Debug)]
pub struct UnpackBuf {
    data: Vec<u8>,
    pos: usize,
}

impl UnpackBuf {
    /// Wrap received bytes.
    pub fn new(data: Vec<u8>) -> UnpackBuf {
        UnpackBuf { data, pos: 0 }
    }

    fn section(&mut self, t: u8, wanted: &'static str) -> Result<(usize, u32), UnpackError> {
        if self.pos >= self.data.len() {
            return Err(UnpackError::OutOfData);
        }
        let found = self.data[self.pos];
        if found != t {
            return Err(UnpackError::TypeMismatch { wanted, found });
        }
        if self.pos + 5 > self.data.len() {
            return Err(UnpackError::Corrupt);
        }
        let count = u32::from_le_bytes(
            self.data[self.pos + 1..self.pos + 5]
                .try_into()
                .expect("4 bytes"),
        );
        Ok((self.pos + 5, count))
    }

    /// `pvm_upkint`.
    pub fn unpack_i32(&mut self) -> Result<Vec<i32>, UnpackError> {
        let (start, count) = self.section(T_I32, "i32")?;
        let end = start + count as usize * 4;
        if end > self.data.len() {
            return Err(UnpackError::Corrupt);
        }
        let out = self.data[start..end]
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().expect("4")))
            .collect();
        self.pos = end;
        Ok(out)
    }

    /// `pvm_upkdouble`.
    pub fn unpack_f64(&mut self) -> Result<Vec<f64>, UnpackError> {
        let (start, count) = self.section(T_F64, "f64")?;
        let end = start + count as usize * 8;
        if end > self.data.len() {
            return Err(UnpackError::Corrupt);
        }
        let out = self.data[start..end]
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8")))
            .collect();
        self.pos = end;
        Ok(out)
    }

    /// `pvm_upkbyte`.
    pub fn unpack_bytes(&mut self) -> Result<Vec<u8>, UnpackError> {
        let (start, count) = self.section(T_BYTES, "bytes")?;
        let end = start + count as usize;
        if end > self.data.len() {
            return Err(UnpackError::Corrupt);
        }
        let out = self.data[start..end].to_vec();
        self.pos = end;
        Ok(out)
    }

    /// `pvm_upkstr`.
    pub fn unpack_str(&mut self) -> Result<String, UnpackError> {
        let (start, count) = self.section(T_STR, "str")?;
        let end = start + count as usize;
        if end > self.data.len() {
            return Err(UnpackError::Corrupt);
        }
        let s =
            String::from_utf8(self.data[start..end].to_vec()).map_err(|_| UnpackError::Corrupt)?;
        self.pos = end;
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_mixed_sections_in_order() {
        let mut pk = PackBuf::new();
        pk.pack_i32(&[1, -2, 3])
            .pack_f64(&[2.5])
            .pack_str("dawning")
            .pack_bytes(&[9, 9]);
        let mut up = UnpackBuf::new(pk.finish().to_vec());
        assert_eq!(up.unpack_i32().unwrap(), vec![1, -2, 3]);
        assert_eq!(up.unpack_f64().unwrap(), vec![2.5]);
        assert_eq!(up.unpack_str().unwrap(), "dawning");
        assert_eq!(up.unpack_bytes().unwrap(), vec![9, 9]);
        assert_eq!(up.unpack_i32(), Err(UnpackError::OutOfData));
    }

    #[test]
    fn type_mismatch_is_detected() {
        let mut pk = PackBuf::new();
        pk.pack_f64(&[1.0]);
        let mut up = UnpackBuf::new(pk.finish().to_vec());
        assert!(matches!(
            up.unpack_i32(),
            Err(UnpackError::TypeMismatch { wanted: "i32", .. })
        ));
    }

    #[test]
    fn truncated_buffer_is_corrupt() {
        let mut pk = PackBuf::new();
        pk.pack_bytes(&[1, 2, 3, 4]);
        let mut raw = pk.finish().to_vec();
        raw.truncate(raw.len() - 2);
        let mut up = UnpackBuf::new(raw);
        assert_eq!(up.unpack_bytes(), Err(UnpackError::Corrupt));
    }

    #[test]
    fn empty_sections_are_fine() {
        let mut pk = PackBuf::new();
        pk.pack_i32(&[]).pack_bytes(&[]);
        let mut up = UnpackBuf::new(pk.finish().to_vec());
        assert_eq!(up.unpack_i32().unwrap(), Vec::<i32>::new());
        assert_eq!(up.unpack_bytes().unwrap(), Vec::<u8>::new());
    }
}
