//! # suca-pvm — PVM-like layer over EADI-2
//!
//! Typed pack/unpack message buffers and the task API (`pvm_mytid`,
//! `pvm_initsend`/`pvm_pk*`/`pvm_send`, `pvm_recv` with `-1` wildcards),
//! implemented over EADI-2 as on DAWNING-3000 (paper §2.1). Table 3's PVM
//! rows are measured through this layer.

#![warn(missing_docs)]

pub mod msgbuf;
pub mod task;

pub use msgbuf::{PackBuf, UnpackBuf, UnpackError};
pub use task::{PvmConfig, PvmMessage, PvmTask};
