//! PVM task API over EADI-2.
//!
//! DAWNING-3000 "implements PVM on a middle-level communication library
//! EADI-2 … Compared with implementing PVM directly using BCL, this method
//! simplifies the implementation of PVM" (paper §2.1). A [`PvmTask`] is a
//! rank in the job (its *tid*), with PVM's `initsend`/`pack*`/`send` /
//! `recv`/`upk*` call shape, including `-1` wildcards for both tid and tag.

use std::sync::Arc;

use parking_lot::Mutex;

use suca_bcl::BclNode;
use suca_eadi::{EadiConfig, EadiEndpoint, Universe};
use suca_os::OsProcess;
use suca_sim::{ActorCtx, SimDuration};

use crate::msgbuf::{PackBuf, UnpackBuf};

/// PVM layer costs.
#[derive(Clone, Debug)]
pub struct PvmConfig {
    /// Per-call sender overhead (buffer management, routing decision).
    pub send_overhead: SimDuration,
    /// Per-call receiver overhead (buffer switch, status).
    pub recv_overhead: SimDuration,
    /// Pack/unpack throughput: PVM's typed encoding touches every byte.
    pub pack_bytes_per_sec: u64,
    /// EADI configuration underneath.
    pub eadi: EadiConfig,
}

impl PvmConfig {
    /// DAWNING-3000 calibration (Table 3's PVM rows).
    pub fn dawning3000() -> PvmConfig {
        PvmConfig {
            send_overhead: SimDuration::from_us_f64(0.55),
            recv_overhead: SimDuration::from_us_f64(0.55),
            pack_bytes_per_sec: 4_000_000_000,
            eadi: EadiConfig::dawning3000(),
        }
    }
}

/// A received PVM message: envelope + unpack buffer.
pub struct PvmMessage {
    /// Sender's tid.
    pub src_tid: u32,
    /// Message tag.
    pub tag: i32,
    /// Unpack cursor over the typed payload.
    pub buf: UnpackBuf,
}

/// One PVM task (process) in the virtual machine.
pub struct PvmTask {
    eadi: EadiEndpoint,
    cfg: PvmConfig,
    sendbuf: Mutex<PackBuf>,
}

impl PvmTask {
    /// Enroll in the virtual machine as task `tid` (`pvm_mytid`).
    pub fn enroll(
        ctx: &mut ActorCtx,
        node: &Arc<BclNode>,
        proc: &OsProcess,
        universe: Universe,
        tid: u32,
        cfg: PvmConfig,
    ) -> PvmTask {
        let eadi = EadiEndpoint::create(ctx, node, proc, universe, tid, cfg.eadi.clone());
        PvmTask {
            eadi,
            cfg,
            sendbuf: Mutex::new(PackBuf::new()),
        }
    }

    /// This task's tid.
    pub fn tid(&self) -> u32 {
        self.eadi.rank()
    }

    /// Tasks in the virtual machine.
    pub fn ntasks(&self) -> u32 {
        self.eadi.size()
    }

    /// `pvm_initsend`: reset the send buffer; returns a guard to pack into.
    pub fn initsend(&self) -> parking_lot::MutexGuard<'_, PackBuf> {
        let mut b = self.sendbuf.lock();
        *b = PackBuf::new();
        b
    }

    fn pack_cost(&self, bytes: u64) -> SimDuration {
        if bytes == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::for_bytes(bytes, self.cfg.pack_bytes_per_sec)
        }
    }

    /// `pvm_send`: ship the current send buffer to `dst` with `tag`.
    pub fn send(&self, ctx: &mut ActorCtx, dst_tid: u32, tag: i32) {
        assert!(tag >= 0, "PVM user tags are non-negative");
        let data = std::mem::take(&mut *self.sendbuf.lock());
        ctx.sleep(self.cfg.send_overhead + self.pack_cost(data.len() as u64));
        self.eadi.send(ctx, dst_tid, tag, data.finish());
    }

    /// `pvm_recv`: blocking receive; `tid = -1` and/or `tag = -1` wildcard.
    pub fn recv(&self, ctx: &mut ActorCtx, tid: i32, tag: i32) -> PvmMessage {
        let src = (tid >= 0).then_some(tid as u32);
        let tagf = (tag >= 0).then_some(tag);
        let done = self.eadi.recv(ctx, src, tagf);
        ctx.sleep(self.cfg.recv_overhead + self.pack_cost(done.data.len() as u64));
        PvmMessage {
            src_tid: done.src,
            tag: done.tag,
            buf: UnpackBuf::new(done.data),
        }
    }

    /// `pvm_nrecv`: non-blocking receive attempt.
    pub fn nrecv(&self, ctx: &mut ActorCtx, tid: i32, tag: i32) -> Option<PvmMessage> {
        let src = (tid >= 0).then_some(tid as u32);
        let tagf = (tag >= 0).then_some(tag);
        let req = self.eadi.irecv(ctx, src, tagf);
        match self.eadi.test(ctx, req) {
            Some(done) => {
                ctx.sleep(self.cfg.recv_overhead + self.pack_cost(done.data.len() as u64));
                Some(PvmMessage {
                    src_tid: done.src,
                    tag: done.tag,
                    buf: UnpackBuf::new(done.data),
                })
            }
            None => {
                // PVM's nrecv leaves nothing posted on a miss; cancel ours
                // (if it matched in the meantime, drain the completion so
                // matching state stays consistent — semantically the message
                // is simply "available for the next recv", but our requests
                // are single-use).
                if !self.eadi.cancel_recv(req) {
                    if let Some(done) = self.eadi.test(ctx, req) {
                        ctx.sleep(self.cfg.recv_overhead + self.pack_cost(done.data.len() as u64));
                        return Some(PvmMessage {
                            src_tid: done.src,
                            tag: done.tag,
                            buf: UnpackBuf::new(done.data),
                        });
                    }
                }
                None
            }
        }
    }

    /// `pvm_bcast`-ish: send the current buffer to every other task.
    pub fn mcast(&self, ctx: &mut ActorCtx, tag: i32) {
        assert!(tag >= 0);
        let data = std::mem::take(&mut *self.sendbuf.lock());
        ctx.sleep(self.cfg.send_overhead + self.pack_cost(data.len() as u64));
        for t in 0..self.ntasks() {
            if t != self.tid() {
                self.eadi.send(ctx, t, tag, data.finish());
            }
        }
    }
}
