//! PVM layer end-to-end over the simulated cluster.

use std::sync::Arc;

use suca_cluster::ClusterSpec;
use suca_eadi::Universe;
use suca_pvm::{PvmConfig, PvmTask};
use suca_sim::RunOutcome;

fn pvm_job(
    nodes: u32,
    tasks: u32,
    body: impl Fn(&mut suca_sim::ActorCtx, &PvmTask) + Send + Sync + 'static,
) {
    let cluster = ClusterSpec::dawning3000(nodes).build();
    let sim = cluster.sim.clone();
    let uni = Universe::new(&sim, tasks);
    let body = Arc::new(body);
    for t in 0..tasks {
        let uni = uni.clone();
        let body = body.clone();
        cluster.spawn_process(t % nodes, format!("pvm{t}"), move |ctx, env| {
            let task = PvmTask::enroll(
                ctx,
                &env.node.bcl,
                &env.proc,
                uni,
                t,
                PvmConfig::dawning3000(),
            );
            body(ctx, &task);
        });
    }
    assert_eq!(sim.run(), RunOutcome::Completed, "PVM job hung");
}

#[test]
fn typed_roundtrip_between_tasks() {
    pvm_job(2, 2, |ctx, task| {
        if task.tid() == 0 {
            task.initsend()
                .pack_str("measurement")
                .pack_i32(&[42, -7])
                .pack_f64(&[3.125, 2.5]);
            task.send(ctx, 1, 11);
        } else {
            let mut m = task.recv(ctx, 0, 11);
            assert_eq!(m.buf.unpack_str().unwrap(), "measurement");
            assert_eq!(m.buf.unpack_i32().unwrap(), vec![42, -7]);
            assert_eq!(m.buf.unpack_f64().unwrap(), vec![3.125, 2.5]);
            assert_eq!((m.src_tid, m.tag), (0, 11));
        }
    });
}

#[test]
fn wildcard_recv_collects_from_all() {
    pvm_job(3, 3, |ctx, task| {
        if task.tid() == 0 {
            let mut seen = Vec::new();
            for _ in 0..2 {
                let mut m = task.recv(ctx, -1, -1);
                seen.push((m.src_tid, m.buf.unpack_i32().unwrap()[0]));
            }
            seen.sort_unstable();
            assert_eq!(seen, vec![(1, 100), (2, 200)]);
        } else {
            task.initsend().pack_i32(&[task.tid() as i32 * 100]);
            task.send(ctx, 0, 5);
        }
    });
}

#[test]
fn mcast_reaches_everyone() {
    pvm_job(2, 4, |ctx, task| {
        if task.tid() == 0 {
            task.initsend().pack_str("to all");
            task.mcast(ctx, 9);
        } else {
            let mut m = task.recv(ctx, 0, 9);
            assert_eq!(m.buf.unpack_str().unwrap(), "to all");
        }
    });
}

#[test]
fn large_typed_payload_uses_rendezvous() {
    pvm_job(2, 2, |ctx, task| {
        let doubles: Vec<f64> = (0..20_000).map(|i| i as f64 * 0.5).collect();
        if task.tid() == 0 {
            task.initsend().pack_f64(&doubles);
            task.send(ctx, 1, 1);
        } else {
            let mut m = task.recv(ctx, 0, 1);
            let got = m.buf.unpack_f64().unwrap();
            assert_eq!(got.len(), 20_000);
            assert_eq!(got[19_999], 19_999.0 * 0.5);
        }
    });
}

#[test]
fn nrecv_returns_none_before_arrival() {
    pvm_job(1, 2, |ctx, task| {
        if task.tid() == 0 {
            ctx.sleep(suca_sim::SimDuration::from_us(200));
            task.initsend().pack_i32(&[1]);
            task.send(ctx, 1, 2);
        } else {
            assert!(task.nrecv(ctx, 0, 2).is_none());
            // Blocking recv still completes.
            let mut m = task.recv(ctx, 0, 2);
            assert_eq!(m.buf.unpack_i32().unwrap(), vec![1]);
        }
    });
}

#[test]
fn master_worker_pattern() {
    // Classic PVM shape: master farms out work, collects typed results.
    pvm_job(4, 4, |ctx, task| {
        if task.tid() == 0 {
            for w in 1..4u32 {
                task.initsend().pack_i32(&[(w * 11) as i32]);
                task.send(ctx, w, 1);
            }
            let mut sum = 0i64;
            for _ in 1..4 {
                let mut m = task.recv(ctx, -1, 2);
                sum += i64::from(m.buf.unpack_i32().unwrap()[0]);
            }
            assert_eq!(sum, i64::from(11 * 2 + 22 * 2 + 33 * 2));
        } else {
            let mut m = task.recv(ctx, 0, 1);
            let x = m.buf.unpack_i32().unwrap()[0];
            task.initsend().pack_i32(&[x * 2]);
            task.send(ctx, 0, 2);
        }
    });
}
