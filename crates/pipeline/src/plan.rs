//! Job planning: deterministic task-to-worker group schedules.
//!
//! Pure (no sim, no I/O): a plan is a function of `(job, stage, tasks,
//! workers)` alone, so a fixed seed reproduces placement exactly and any
//! engine shard count computes the same schedule.

/// Shape of one pipeline job.
#[derive(Clone, Copy, Debug)]
pub struct PipelineSpec {
    /// Stages per job (each stage runs all tasks).
    pub stages: u32,
    /// Tasks per stage.
    pub tasks: u32,
    /// Input bytes per task EXEC request.
    pub input_bytes: usize,
    /// Output bytes each task materializes (fetched after the last stage;
    /// sized above the inline bound so fetches exercise RMA delivery).
    pub output_bytes: usize,
}

impl Default for PipelineSpec {
    fn default() -> Self {
        PipelineSpec {
            stages: 3,
            tasks: 16,
            input_bytes: 256,
            output_bytes: 6 * 1024,
        }
    }
}

/// One worker's share of a stage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskGroup {
    /// Index into the driver's worker list.
    pub worker: usize,
    /// Task ids assigned to that worker, ascending.
    pub tasks: Vec<u32>,
}

/// Group-schedule one stage: task `t` lands on worker
/// `(t + job + stage) % n_workers`. The rotation spreads consecutive
/// jobs/stages across workers while staying a pure function of its
/// inputs. Groups come back in worker order; every task appears exactly
/// once.
pub fn plan_stage(job: u32, stage: u32, tasks: u32, n_workers: usize) -> Vec<TaskGroup> {
    assert!(n_workers > 0, "plan needs workers");
    let mut groups: Vec<TaskGroup> = (0..n_workers)
        .map(|w| TaskGroup {
            worker: w,
            tasks: Vec::new(),
        })
        .collect();
    for t in 0..tasks {
        let w = ((t as usize) + (job as usize) + (stage as usize)) % n_workers;
        groups[w].tasks.push(t);
    }
    groups.retain(|g| !g.tasks.is_empty());
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_task_exactly_once() {
        for (job, stage, tasks, workers) in [(0, 0, 16, 5), (3, 2, 7, 3), (9, 1, 1, 8)] {
            let groups = plan_stage(job, stage, tasks, workers);
            let mut seen: Vec<u32> = groups.iter().flat_map(|g| g.tasks.clone()).collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..tasks).collect::<Vec<_>>());
            for g in &groups {
                assert!(g.worker < workers);
                assert!(g.tasks.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn rotation_shifts_with_job_and_stage() {
        let a = plan_stage(0, 0, 4, 4);
        let b = plan_stage(1, 0, 4, 4);
        let c = plan_stage(0, 1, 4, 4);
        assert_ne!(a, b);
        assert_eq!(b, c); // job and stage rotate identically
        assert_eq!(a, plan_stage(0, 0, 4, 4)); // pure
    }
}
