//! The pipeline driver: plan → group-schedule → execute → output-fetch,
//! with per-stage event monitoring.
//!
//! Each phase records its wall-clock into a `pipeline.stage_ns.*`
//! histogram and drops an instant on the trace's pipeline track, so the
//! mixed harness's telemetry shows where a tenant's time goes stage by
//! stage.

use suca_bcl::{BclError, ProcAddr};
use suca_load::{absorb_completion, LatencyHists, LoadStats};
use suca_rpc::{RpcClient, RpcStatus};
use suca_sim::mtrace::stage;
use suca_sim::{ActorCtx, Histogram, SimDuration, TraceEvent, TraceId, TraceLayer};

use crate::plan::{plan_stage, PipelineSpec, TaskGroup};
use crate::worker::{checksum, enc_exec, enc_fetch, output_for, OP_EXEC, OP_FETCH};

/// Driver configuration.
#[derive(Clone, Copy, Debug)]
pub struct DriverCfg {
    /// Jobs to run back to back.
    pub jobs: u32,
    /// Shape of each job.
    pub spec: PipelineSpec,
    /// Modeled planning time per job (control-plane work).
    pub plan_cost: SimDuration,
    /// Modeled group-scheduling time per stage.
    pub sched_cost: SimDuration,
    /// Gap between jobs.
    pub job_gap: SimDuration,
}

impl Default for DriverCfg {
    fn default() -> Self {
        DriverCfg {
            jobs: 4,
            spec: PipelineSpec::default(),
            plan_cost: SimDuration::from_us(5),
            sched_cost: SimDuration::from_us(2),
            job_gap: SimDuration::from_us(50),
        }
    }
}

/// What the driver observed beyond the RPC tallies.
#[derive(Clone, Copy, Debug, Default)]
pub struct DriverStats {
    /// Jobs that ran every stage and fetched every output.
    pub jobs_done: u64,
    /// EXEC completions verified (checksum matched).
    pub execs_ok: u64,
    /// FETCH completions verified (body matched the output model).
    pub fetches_ok: u64,
    /// Checksum / body mismatches — must be 0 on clean runs.
    pub verify_failures: u64,
}

/// Per-stage duration histograms (`pipeline.stage_ns.{plan,sched,exec,fetch}`).
struct StageHists {
    plan: Histogram,
    sched: Histogram,
    exec: Histogram,
    fetch: Histogram,
}

/// Run `cfg.jobs` pipeline jobs over `workers`. RPC outcomes land in the
/// returned [`LoadStats`] (identity holds); verification results in
/// [`DriverStats`]. Failed verifications also feed the health engine's
/// error windows for this client's tenant.
pub fn run_driver(
    ctx: &mut ActorCtx,
    client: &mut RpcClient,
    workers: &[ProcAddr],
    cfg: &DriverCfg,
    hists: &LatencyHists,
) -> (LoadStats, DriverStats) {
    assert!(!workers.is_empty(), "pipeline driver needs workers");
    let sim = ctx.sim().clone();
    let m = sim.metrics();
    let stage_hists = StageHists {
        plan: m.histogram("pipeline.stage_ns.plan"),
        sched: m.histogram("pipeline.stage_ns.sched"),
        exec: m.histogram("pipeline.stage_ns.exec"),
        fetch: m.histogram("pipeline.stage_ns.fetch"),
    };
    let c_jobs = m.counter("pipeline.jobs_done");
    let node = client.addr().node.0;
    let mut stats = LoadStats::default();
    let mut drv = DriverStats::default();
    for job in 0..cfg.jobs {
        // Plan: compute every stage's groups up front (pure function).
        let t0 = ctx.now();
        ctx.sleep(cfg.plan_cost);
        let plans: Vec<Vec<TaskGroup>> = (0..cfg.spec.stages)
            .map(|s| plan_stage(job, s, cfg.spec.tasks, workers.len()))
            .collect();
        stage_hists.plan.record(ctx.now().since(t0).as_ns());
        instant(ctx, node, stage::PIPE_PLAN);
        let mut job_ok = true;
        for (s, groups) in plans.iter().enumerate() {
            let t0 = ctx.now();
            ctx.sleep(cfg.sched_cost);
            stage_hists.sched.record(ctx.now().since(t0).as_ns());
            instant(ctx, node, stage::PIPE_SCHED);
            let t0 = ctx.now();
            let ok = run_exec_stage(
                ctx, client, workers, job, s as u32, groups, cfg, hists, &mut stats, &mut drv,
            );
            job_ok &= ok;
            stage_hists.exec.record(ctx.now().since(t0).as_ns());
            instant(ctx, node, stage::PIPE_EXEC);
        }
        // Output fetch: collect the last stage's materialized outputs.
        let t0 = ctx.now();
        let last = cfg.spec.stages.saturating_sub(1);
        let groups = plan_stage(job, last, cfg.spec.tasks, workers.len());
        job_ok &= run_fetch_stage(
            ctx, client, workers, job, last, &groups, cfg, hists, &mut stats, &mut drv,
        );
        stage_hists.fetch.record(ctx.now().since(t0).as_ns());
        instant(ctx, node, stage::PIPE_FETCH);
        if job_ok {
            drv.jobs_done += 1;
            c_jobs.inc();
        }
        ctx.sleep(cfg.job_gap);
    }
    client.quiesce(ctx, cfg.job_gap);
    (stats, drv)
}

/// Fan one stage's EXEC requests out to their group workers and pump every
/// one to resolution. Returns true when all tasks completed verified.
#[allow(clippy::too_many_arguments)]
fn run_exec_stage(
    ctx: &mut ActorCtx,
    client: &mut RpcClient,
    workers: &[ProcAddr],
    job: u32,
    s: u32,
    groups: &[TaskGroup],
    cfg: &DriverCfg,
    hists: &LatencyHists,
    stats: &mut LoadStats,
    drv: &mut DriverStats,
) -> bool {
    let input = vec![0x50u8; cfg.spec.input_bytes];
    let mut all_ok = true;
    let mut queue: Vec<(usize, u32)> = groups
        .iter()
        .flat_map(|g| g.tasks.iter().map(|&t| (g.worker, t)))
        .collect();
    queue.reverse(); // pop() issues in ascending task order
    while !queue.is_empty() || client.in_flight() > 0 {
        while client.can_issue() {
            let Some((w, t)) = queue.pop() else {
                break;
            };
            match client.issue(
                ctx,
                workers[w],
                OP_EXEC,
                &enc_exec(job, s, t, &input),
                u64::from(t),
            ) {
                Ok(_) => stats.issued += 1,
                Err(e) => {
                    if matches!(e, BclError::PathDead(_)) {
                        stats.dead_dest += 1;
                    }
                    stats.client_shed += 1;
                    all_ok = false;
                }
            }
        }
        for c in client.pump(ctx, SimDuration::from_us(200)) {
            if c.status == RpcStatus::Ok {
                let want = checksum(&output_for(job, s, c.token as u32, cfg.spec.output_bytes));
                if c.payload.len() == 8
                    && u64::from_le_bytes(c.payload[..8].try_into().unwrap()) == want
                {
                    drv.execs_ok += 1;
                } else {
                    drv.verify_failures += 1;
                    stats.bad_payloads += 1;
                    ctx.sim().metrics().add("pipeline.verify_failures", 1);
                    ctx.sim().health().observe_error(client.tenant().0, OP_EXEC);
                    all_ok = false;
                }
            } else {
                all_ok = false;
            }
            absorb_completion(&c, stats, hists);
        }
    }
    all_ok
}

/// Fetch and verify every last-stage output.
#[allow(clippy::too_many_arguments)]
fn run_fetch_stage(
    ctx: &mut ActorCtx,
    client: &mut RpcClient,
    workers: &[ProcAddr],
    job: u32,
    s: u32,
    groups: &[TaskGroup],
    cfg: &DriverCfg,
    hists: &LatencyHists,
    stats: &mut LoadStats,
    drv: &mut DriverStats,
) -> bool {
    let mut all_ok = true;
    let mut queue: Vec<(usize, u32)> = groups
        .iter()
        .flat_map(|g| g.tasks.iter().map(|&t| (g.worker, t)))
        .collect();
    queue.reverse();
    while !queue.is_empty() || client.in_flight() > 0 {
        while client.can_issue() {
            let Some((w, t)) = queue.pop() else {
                break;
            };
            match client.issue(
                ctx,
                workers[w],
                OP_FETCH,
                &enc_fetch(job, s, t),
                u64::from(t),
            ) {
                Ok(_) => stats.issued += 1,
                Err(e) => {
                    if matches!(e, BclError::PathDead(_)) {
                        stats.dead_dest += 1;
                    }
                    stats.client_shed += 1;
                    all_ok = false;
                }
            }
        }
        for c in client.pump(ctx, SimDuration::from_us(200)) {
            if c.status == RpcStatus::Ok {
                if c.payload == output_for(job, s, c.token as u32, cfg.spec.output_bytes) {
                    drv.fetches_ok += 1;
                } else {
                    drv.verify_failures += 1;
                    stats.bad_payloads += 1;
                    ctx.sim().metrics().add("pipeline.verify_failures", 1);
                    ctx.sim()
                        .health()
                        .observe_error(client.tenant().0, OP_FETCH);
                    all_ok = false;
                }
            } else {
                all_ok = false;
            }
            absorb_completion(&c, stats, hists);
        }
    }
    all_ok
}

/// Unattributable instant on the trace's pipeline stages (the driver's
/// node), mirroring the health-lifecycle pattern.
fn instant(ctx: &ActorCtx, node: u32, stage_name: &'static str) {
    let sim = ctx.sim();
    if sim.msg_trace().enabled() {
        sim.trace_event(TraceEvent::instant(
            TraceId::NONE,
            node,
            TraceLayer::Rpc,
            stage_name,
            ctx.now().as_ns(),
        ));
    }
}
