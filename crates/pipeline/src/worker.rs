//! The pipeline worker service: execute tasks, materialize outputs, serve
//! fetches.
//!
//! Outputs are deterministic functions of `(job, stage, task)` so the
//! driver verifies every EXEC checksum and FETCH body without shipping
//! expected data around — the same trick as the KV value model.

use std::collections::HashMap;

use suca_rpc::{RpcReply, RpcRequest};
use suca_sim::{ActorCtx, Counter, Metrics, SimDuration};

/// EXEC op class: request is `job u32 | stage u32 | task u32 | input`;
/// response is the 8-byte checksum of the materialized output.
pub const OP_EXEC: u8 = 0;
/// FETCH op class: request is `job u32 | stage u32 | task u32`; response
/// is the stored output (RMA-delivered when it exceeds the inline bound).
pub const OP_FETCH: u8 = 1;

/// Histogram / SLO-report labels in op-class order.
pub const CLASS_NAMES: [&str; 4] = ["exec", "fetch", "plan", "other"];

fn mix64(mut x: u64) -> u64 {
    // splitmix64 finalizer — the same mixing the sim RNG builds on.
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// The canonical output of task `(job, stage, task)`.
pub fn output_for(job: u32, stage: u32, task: u32, len: usize) -> Vec<u8> {
    let seed = (u64::from(job) << 40) ^ (u64::from(stage) << 20) ^ u64::from(task) ^ 0x9172;
    let mut out = Vec::with_capacity(len);
    let mut i = 0u64;
    while out.len() < len {
        out.extend_from_slice(&mix64(seed.wrapping_add(i)).to_le_bytes());
        i += 1;
    }
    out.truncate(len);
    out
}

/// Order-sensitive checksum (the EXEC acknowledgement body).
pub fn checksum(data: &[u8]) -> u64 {
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    for chunk in data.chunks(8) {
        let mut b = [0u8; 8];
        b[..chunk.len()].copy_from_slice(chunk);
        acc = mix64(acc ^ u64::from_le_bytes(b));
    }
    acc
}

/// Encode an EXEC request.
pub fn enc_exec(job: u32, stage: u32, task: u32, input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + input.len());
    out.extend_from_slice(&job.to_le_bytes());
    out.extend_from_slice(&stage.to_le_bytes());
    out.extend_from_slice(&task.to_le_bytes());
    out.extend_from_slice(input);
    out
}

/// Encode a FETCH request.
pub fn enc_fetch(job: u32, stage: u32, task: u32) -> Vec<u8> {
    enc_exec(job, stage, task, &[])
}

/// Decode the `(job, stage, task)` header shared by both op classes.
pub fn dec_header(buf: &[u8]) -> Option<(u32, u32, u32, &[u8])> {
    if buf.len() < 12 {
        return None;
    }
    let f = |o: usize| u32::from_le_bytes([buf[o], buf[o + 1], buf[o + 2], buf[o + 3]]);
    Some((f(0), f(4), f(8), &buf[12..]))
}

/// Virtual service time per op class.
#[derive(Clone, Copy, Debug)]
pub struct PipelineCosts {
    /// Base EXEC service time.
    pub exec: SimDuration,
    /// Additional EXEC time per input KiB.
    pub exec_per_kib: SimDuration,
    /// FETCH service time (storage read).
    pub fetch: SimDuration,
}

impl Default for PipelineCosts {
    fn default() -> Self {
        PipelineCosts {
            exec: SimDuration::from_us(8),
            exec_per_kib: SimDuration::from_us(2),
            fetch: SimDuration::from_us(3),
        }
    }
}

/// One node's worker: task outputs keyed by `(job, stage, task)`.
pub struct PipelineWorker {
    outputs: HashMap<(u32, u32, u32), Vec<u8>>,
    output_bytes: usize,
    costs: PipelineCosts,
    c_exec: Counter,
    c_fetch: Counter,
    c_fetch_miss: Counter,
    c_malformed: Counter,
}

impl PipelineWorker {
    /// Empty worker materializing `output_bytes` per task.
    pub fn new(m: &Metrics, output_bytes: usize, costs: PipelineCosts) -> Self {
        PipelineWorker {
            outputs: HashMap::new(),
            output_bytes,
            costs,
            c_exec: m.counter("pipeline.tasks_exec"),
            c_fetch: m.counter("pipeline.fetches"),
            c_fetch_miss: m.counter("pipeline.fetch_miss"),
            c_malformed: m.counter("pipeline.malformed"),
        }
    }

    /// Tasks whose outputs this worker currently holds.
    pub fn stored(&self) -> usize {
        self.outputs.len()
    }

    /// Execute one request. Malformed payloads get an empty, counted
    /// response (the driver counts it as a failed verification).
    pub fn handle(&mut self, ctx: &mut ActorCtx, req: &RpcRequest<'_>) -> RpcReply {
        let Some((job, stage, task, input)) = dec_header(req.payload) else {
            self.c_malformed.inc();
            return RpcReply::inline(Vec::new());
        };
        match req.op_class {
            OP_EXEC => {
                let cost = self.costs.exec
                    + self.costs.exec_per_kib * ((input.len() as u64).div_ceil(1024));
                ctx.sleep(cost);
                let out = output_for(job, stage, task, self.output_bytes);
                let sum = checksum(&out);
                self.outputs.insert((job, stage, task), out);
                self.c_exec.inc();
                RpcReply::inline(sum.to_le_bytes().to_vec())
            }
            OP_FETCH => {
                ctx.sleep(self.costs.fetch);
                self.c_fetch.inc();
                let out = match self.outputs.get(&(job, stage, task)) {
                    Some(o) => o.clone(),
                    None => {
                        // A fetch racing a lost EXEC (retried elsewhere, or
                        // shed): recompute — outputs are deterministic — but
                        // count the miss so placement bugs surface.
                        self.c_fetch_miss.inc();
                        output_for(job, stage, task, self.output_bytes)
                    }
                };
                RpcReply::inline(out)
            }
            _ => {
                self.c_malformed.inc();
                RpcReply::inline(Vec::new())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_and_checksums_are_deterministic() {
        assert_eq!(output_for(1, 2, 3, 64), output_for(1, 2, 3, 64));
        assert_ne!(output_for(1, 2, 3, 64), output_for(1, 2, 4, 64));
        assert_eq!(checksum(b"abc"), checksum(b"abc"));
        assert_ne!(checksum(b"abc"), checksum(b"abd"));
    }

    #[test]
    fn header_roundtrip() {
        let wire = enc_exec(7, 1, 42, b"in");
        assert_eq!(dec_header(&wire), Some((7, 1, 42, &b"in"[..])));
        assert!(dec_header(&wire[..11]).is_none());
    }
}
