//! # suca-pipeline — staged dataflow over cluster nodes
//!
//! The third tenant workload of the multi-tenant layer: batch jobs that
//! run `plan → group-schedule → execute → output-fetch` over a set of
//! worker nodes, all through the tenant-stamped RPC layer.
//!
//! * **Planning** ([`plan_stage`]) — pure, deterministic task-to-worker
//!   rotation; any engine shard count computes identical placement.
//! * **Workers** ([`PipelineWorker`]) — EXEC materializes a deterministic
//!   output per `(job, stage, task)` and acks its checksum; FETCH returns
//!   the stored output (sized past the inline bound, so output collection
//!   exercises RMA delivery).
//! * **Driver** ([`run_driver`]) — fans each stage out, verifies every
//!   checksum and fetched body against the output model, and feeds
//!   per-stage durations into `pipeline.stage_ns.*` histograms plus
//!   `pipe:*` trace instants — the per-stage event monitoring the mixed
//!   harness's telemetry shows.

#![warn(missing_docs)]

pub mod driver;
pub mod plan;
pub mod worker;

pub use driver::{run_driver, DriverCfg, DriverStats};
pub use plan::{plan_stage, PipelineSpec, TaskGroup};
pub use worker::{
    checksum, dec_header, enc_exec, enc_fetch, output_for, PipelineCosts, PipelineWorker,
    CLASS_NAMES, OP_EXEC, OP_FETCH,
};
