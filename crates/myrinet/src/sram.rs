//! NIC-resident SRAM accounting.
//!
//! LANai boards carried only a small local memory (the paper leans on this:
//! the NIC *cannot* hold a big address-translation table, which is why the
//! semi-user-level design keeps the pin-down table in host memory). The MCP
//! stages packets through SRAM buffers; this pool enforces the capacity so
//! protocols experience back-pressure when staging outruns draining.

use std::sync::Arc;

use parking_lot::Mutex;

use suca_sim::Gauge;

struct PoolInner {
    capacity: u64,
    used: u64,
    high_water: u64,
    gauge: Option<Gauge>,
}

/// Byte-granular SRAM allocator. Clones share the pool.
#[derive(Clone)]
pub struct SramPool {
    inner: Arc<Mutex<PoolInner>>,
}

/// RAII lease on SRAM bytes; returned to the pool on drop.
pub struct SramLease {
    pool: SramPool,
    len: u64,
}

impl SramPool {
    /// Pool with `capacity` bytes (M2M-PCI64A boards shipped with 2–8 MB;
    /// the MCP reserves most of it for staging buffers).
    pub fn new(capacity: u64) -> Self {
        SramPool {
            inner: Arc::new(Mutex::new(PoolInner {
                capacity,
                used: 0,
                high_water: 0,
                gauge: None,
            })),
        }
    }

    /// Mirror the pool's occupancy (and hence its high-water mark) into a
    /// registry gauge. The gauge cell may be shared cluster-wide, so the
    /// pool publishes add/sub deltas rather than absolute levels.
    pub fn attach_gauge(&self, gauge: Gauge) {
        let mut st = self.inner.lock();
        gauge.add(st.used);
        st.gauge = Some(gauge);
    }

    /// Try to lease `len` bytes; `None` if the pool cannot satisfy it.
    pub fn try_alloc(&self, len: u64) -> Option<SramLease> {
        let mut st = self.inner.lock();
        if st.used + len > st.capacity {
            return None;
        }
        st.used += len;
        st.high_water = st.high_water.max(st.used);
        if let Some(g) = &st.gauge {
            g.add(len);
        }
        Some(SramLease {
            pool: self.clone(),
            len,
        })
    }

    /// Bytes currently leased.
    pub fn used(&self) -> u64 {
        self.inner.lock().used
    }

    /// Largest simultaneous usage observed.
    pub fn high_water(&self) -> u64 {
        self.inner.lock().high_water
    }

    /// Total capacity.
    pub fn capacity(&self) -> u64 {
        self.inner.lock().capacity
    }
}

impl SramLease {
    /// Leased size.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True for a zero-byte lease.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for SramLease {
    fn drop(&mut self) {
        let mut st = self.pool.inner.lock();
        st.used -= self.len;
        if let Some(g) = &st.gauge {
            g.sub(self.len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_and_release() {
        let pool = SramPool::new(100);
        let a = pool.try_alloc(60).unwrap();
        assert_eq!(pool.used(), 60);
        assert!(pool.try_alloc(50).is_none(), "over capacity");
        let b = pool.try_alloc(40).unwrap();
        assert_eq!(pool.used(), 100);
        drop(a);
        assert_eq!(pool.used(), 40);
        drop(b);
        assert_eq!(pool.used(), 0);
        assert_eq!(pool.high_water(), 100);
    }

    #[test]
    fn zero_byte_lease_is_fine() {
        let pool = SramPool::new(0);
        let l = pool.try_alloc(0).unwrap();
        assert!(l.is_empty());
    }
}
