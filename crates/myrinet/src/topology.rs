//! Whole-network construction and source routing.
//!
//! DAWNING-3000 interconnects its 70 nodes with 8-port M2M-OCT-SW8 switches.
//! We build a linear array of switches: each switch hosts up to
//! `hosts_per_switch` NICs on its low ports and uses two high ports as left/
//! right neighbor trunks. Source routes are computed at injection time, as
//! Myrinet does: one route byte per switch hop.

use std::sync::Arc;

use parking_lot::Mutex;

use suca_sim::mtrace::stage as trace_stage;
use suca_sim::{Sim, SimDuration};

use crate::fabric::{Fabric, FabricNodeId, FaultPlan, Packet, PacketTrace, RxHandler};
use crate::link::{Link, PacketSink};
use crate::switch::Switch;

/// Tunables for a Myrinet build-out.
#[derive(Clone, Debug)]
pub struct MyrinetConfig {
    /// Per-direction link bandwidth. DAWNING-3000: 1.28 Gb/s ⇒ 160 MB/s.
    pub link_bytes_per_sec: u64,
    /// Cable propagation delay per link.
    pub propagation: SimDuration,
    /// Switch cut-through latency per hop.
    pub switch_cut_through: SimDuration,
    /// Hosts attached per switch (radix 8 minus two trunk ports).
    pub hosts_per_switch: usize,
    /// Largest packet payload; protocols fragment above this.
    pub mtu: usize,
    /// Link-level fault injection.
    pub fault: FaultPlan,
}

impl MyrinetConfig {
    /// DAWNING-3000 calibration. The 160 MB/s link rate is the paper's
    /// "peak performance of Myrinet switch is around 160 MB/s".
    pub fn dawning3000() -> Self {
        MyrinetConfig {
            link_bytes_per_sec: 160_000_000,
            propagation: SimDuration::from_ns(50),
            switch_cut_through: SimDuration::from_ns(300),
            hosts_per_switch: 6,
            mtu: 4096,
            fault: FaultPlan::NONE,
        }
    }

    /// Same network with fault injection enabled (for reliability tests).
    pub fn with_faults(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }
}

/// NIC attachment endpoint: terminates a switch→host link and dispatches to
/// the protocol's registered handler.
struct NicEndpoint {
    node: FabricNodeId,
    handler: Mutex<Option<RxHandler>>,
}

impl PacketSink for NicEndpoint {
    fn deliver(&self, sim: &Sim, pkt: Packet) {
        // A packet can reach the wrong endpoint when chaos rewires the
        // fabric under it (or a corrupted route byte survives). Real NICs
        // sink such packets; panicking a sim thread is never acceptable.
        if pkt.dst != self.node {
            sim.add_count("fabric.misrouted", 1);
            crate::switch::trace_wire_instant(sim, &pkt, trace_stage::DROP_MISROUTE);
            return;
        }
        sim.add_count("fabric.delivered", 1);
        let guard = self.handler.lock();
        match guard.as_ref() {
            Some(h) => h(sim, pkt),
            None => {
                // No protocol attached: hardware would sink the packet.
                sim.add_count("fabric.unclaimed", 1);
            }
        }
    }
}

/// A built Myrinet network.
pub struct Myrinet {
    cfg: MyrinetConfig,
    /// Host→switch uplinks, indexed by node.
    uplinks: Vec<Arc<Link>>,
    /// Switch→host downlinks, indexed by node (retained for chaos hooks:
    /// a node's "link down" kills both directions).
    downlinks: Vec<Arc<Link>>,
    /// The switch array, retained so chaos plans can kill ports.
    switches: Vec<Arc<Switch>>,
    endpoints: Vec<Arc<NicEndpoint>>,
}

/// Trunk port indices on every switch.
const PORT_RIGHT: usize = 6;
const PORT_LEFT: usize = 7;

impl Myrinet {
    /// Build a network with `n_nodes` attachment points.
    pub fn build(sim: &Sim, n_nodes: u32, cfg: MyrinetConfig) -> Arc<Myrinet> {
        assert!(n_nodes > 0);
        assert!(cfg.hosts_per_switch >= 1 && cfg.hosts_per_switch <= PORT_RIGHT);
        let h = cfg.hosts_per_switch;
        let n_switches = (n_nodes as usize).div_ceil(h);

        let switches: Vec<Arc<Switch>> = (0..n_switches)
            .map(|i| Switch::new(sim, format!("sw{i}"), 8, cfg.switch_cut_through))
            .collect();

        // Trunks between neighboring switches, both directions.
        for i in 0..n_switches.saturating_sub(1) {
            let right = Link::new(
                sim,
                format!("sw{i}->sw{}", i + 1),
                cfg.link_bytes_per_sec,
                cfg.propagation,
                cfg.fault,
                switches[i + 1].clone() as Arc<dyn PacketSink>,
            );
            switches[i].connect(PORT_RIGHT, right);
            let left = Link::new(
                sim,
                format!("sw{}->sw{i}", i + 1),
                cfg.link_bytes_per_sec,
                cfg.propagation,
                cfg.fault,
                switches[i].clone() as Arc<dyn PacketSink>,
            );
            switches[i + 1].connect(PORT_LEFT, left);
        }

        // Host links, both directions.
        let mut uplinks = Vec::with_capacity(n_nodes as usize);
        let mut downlinks = Vec::with_capacity(n_nodes as usize);
        let mut endpoints = Vec::with_capacity(n_nodes as usize);
        for node in 0..n_nodes {
            let sw = node as usize / h;
            let port = node as usize % h;
            let ep = Arc::new(NicEndpoint {
                node: FabricNodeId(node),
                handler: Mutex::new(None),
            });
            let down = Link::new(
                sim,
                format!("sw{sw}->n{node}"),
                cfg.link_bytes_per_sec,
                cfg.propagation,
                cfg.fault,
                ep.clone() as Arc<dyn PacketSink>,
            );
            switches[sw].connect(port, down.clone());
            downlinks.push(down);
            let up = Link::new(
                sim,
                format!("n{node}->sw{sw}"),
                cfg.link_bytes_per_sec,
                cfg.propagation,
                cfg.fault,
                switches[sw].clone() as Arc<dyn PacketSink>,
            );
            uplinks.push(up);
            endpoints.push(ep);
        }

        Arc::new(Myrinet {
            cfg,
            uplinks,
            downlinks,
            switches,
            endpoints,
        })
    }

    /// Source route from `src` to `dst`: a port byte per switch visited.
    fn route(&self, src: FabricNodeId, dst: FabricNodeId) -> Vec<u8> {
        let h = self.cfg.hosts_per_switch;
        let src_sw = src.0 as usize / h;
        let dst_sw = dst.0 as usize / h;
        let mut route = Vec::with_capacity(src_sw.abs_diff(dst_sw) + 1);
        let mut cur = src_sw;
        while cur != dst_sw {
            if dst_sw > cur {
                route.push(PORT_RIGHT as u8);
                cur += 1;
            } else {
                route.push(PORT_LEFT as u8);
                cur -= 1;
            }
        }
        route.push((dst.0 as usize % h) as u8);
        route
    }

    /// Number of switch hops between two nodes (for latency assertions).
    pub fn hops(&self, src: FabricNodeId, dst: FabricNodeId) -> usize {
        self.route(src, dst).len()
    }
}

impl Fabric for Myrinet {
    fn name(&self) -> &'static str {
        "myrinet"
    }

    fn num_nodes(&self) -> u32 {
        self.endpoints.len() as u32
    }

    fn mtu(&self) -> usize {
        self.cfg.mtu
    }

    fn link_bytes_per_sec(&self) -> u64 {
        self.cfg.link_bytes_per_sec
    }

    fn attach(&self, node: FabricNodeId, rx: RxHandler) {
        let ep = &self.endpoints[node.0 as usize];
        let mut guard = ep.handler.lock();
        assert!(guard.is_none(), "node {} attached twice", node.0);
        *guard = Some(rx);
    }

    fn inject(&self, sim: &Sim, src: FabricNodeId, dst: FabricNodeId, payload: bytes::Bytes) {
        self.inject_traced(sim, src, dst, payload, None);
    }

    fn inject_traced(
        &self,
        sim: &Sim,
        src: FabricNodeId,
        dst: FabricNodeId,
        payload: bytes::Bytes,
        trace: Option<PacketTrace>,
    ) {
        assert!(
            payload.len() <= self.cfg.mtu,
            "packet of {} B exceeds MTU {} — fragmentation is the protocol's job",
            payload.len(),
            self.cfg.mtu
        );
        sim.add_count("fabric.injected", 1);
        let pkt = Packet {
            src,
            dst,
            payload,
            corrupted: false,
            route: self.route(src, dst),
            route_pos: 0,
            trace,
        };
        self.uplinks[src.0 as usize].send(sim, pkt);
    }

    fn set_node_link_up(&self, _sim: &Sim, node: FabricNodeId, up: bool) -> bool {
        let Some(uplink) = self.uplinks.get(node.0 as usize) else {
            return false;
        };
        // A host cable carries both directions: kill the uplink and the
        // switch-side downlink together.
        uplink.set_up(up);
        self.downlinks[node.0 as usize].set_up(up);
        true
    }

    fn set_switch_port_dead(&self, _sim: &Sim, switch: usize, port: usize, dead: bool) -> bool {
        match self.switches.get(switch) {
            Some(sw) => sw.set_port_dead(port, dead),
            None => false,
        }
    }

    fn num_switches(&self) -> usize {
        self.switches.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use suca_sim::RunOutcome;

    type Arrivals = Arc<Mutex<Vec<(u64, Vec<u8>, bool)>>>;

    fn collect_arrivals(sim: &Sim, net: &Arc<Myrinet>, node: u32) -> Arrivals {
        let log = Arc::new(Mutex::new(Vec::new()));
        let l2 = log.clone();
        net.attach(
            FabricNodeId(node),
            Box::new(move |s, pkt| {
                l2.lock()
                    .push((s.now().as_ns(), pkt.payload.to_vec(), pkt.corrupted));
            }),
        );
        let _ = sim;
        log
    }

    #[test]
    fn same_switch_delivery() {
        let sim = Sim::new(1);
        let net = Myrinet::build(&sim, 4, MyrinetConfig::dawning3000());
        let log = collect_arrivals(&sim, &net, 1);
        net.inject(
            &sim,
            FabricNodeId(0),
            FabricNodeId(1),
            Bytes::from_static(b"ping"),
        );
        assert_eq!(sim.run(), RunOutcome::Completed);
        let got = log.lock();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, b"ping");
        // 2 links * (20 B / 160 MB/s = 125 ns + 50 ns prop) + 300 ns switch.
        assert_eq!(got[0].0, 2 * (125 + 50) + 300);
        assert_eq!(net.hops(FabricNodeId(0), FabricNodeId(1)), 1);
    }

    #[test]
    fn cross_switch_routing() {
        let sim = Sim::new(1);
        let net = Myrinet::build(&sim, 14, MyrinetConfig::dawning3000());
        // Node 0 on sw0, node 13 on sw2: two trunk hops.
        assert_eq!(net.hops(FabricNodeId(0), FabricNodeId(13)), 3);
        let log = collect_arrivals(&sim, &net, 13);
        net.inject(
            &sim,
            FabricNodeId(0),
            FabricNodeId(13),
            Bytes::from_static(b"x"),
        );
        sim.run();
        assert_eq!(log.lock().len(), 1);
        // And the reverse direction too.
        let back = collect_arrivals(&sim, &net, 0);
        net.inject(
            &sim,
            FabricNodeId(13),
            FabricNodeId(0),
            Bytes::from_static(b"y"),
        );
        sim.run();
        assert_eq!(back.lock().len(), 1);
    }

    #[test]
    fn all_pairs_reachable_in_70_node_cluster() {
        let sim = Sim::new(1);
        let net = Myrinet::build(&sim, 70, MyrinetConfig::dawning3000());
        let counts: Vec<_> = (0..70).map(|n| collect_arrivals(&sim, &net, n)).collect();
        for src in 0..70u32 {
            for dst in 0..70u32 {
                net.inject(
                    &sim,
                    FabricNodeId(src),
                    FabricNodeId(dst),
                    Bytes::copy_from_slice(&src.to_le_bytes()),
                );
            }
        }
        assert_eq!(sim.run(), RunOutcome::Completed);
        for (n, log) in counts.iter().enumerate() {
            assert_eq!(log.lock().len(), 70, "node {n} missed packets");
        }
        assert_eq!(sim.get_count("fabric.delivered"), 70 * 70);
    }

    #[test]
    #[should_panic(expected = "exceeds MTU")]
    fn oversized_packet_panics() {
        let sim = Sim::new(1);
        let net = Myrinet::build(&sim, 2, MyrinetConfig::dawning3000());
        net.inject(
            &sim,
            FabricNodeId(0),
            FabricNodeId(1),
            Bytes::from(vec![0u8; 5000]),
        );
    }

    #[test]
    fn node_link_chaos_hook_downs_both_directions() {
        let sim = Sim::new(1);
        let net = Myrinet::build(&sim, 4, MyrinetConfig::dawning3000());
        let at1 = collect_arrivals(&sim, &net, 1);
        let at2 = collect_arrivals(&sim, &net, 2);
        assert!(net.set_node_link_up(&sim, FabricNodeId(1), false));
        assert!(!net.set_node_link_up(&sim, FabricNodeId(99), false));
        // Outbound from the downed node and inbound toward it both blackhole.
        net.inject(
            &sim,
            FabricNodeId(1),
            FabricNodeId(2),
            Bytes::from_static(b"a"),
        );
        net.inject(
            &sim,
            FabricNodeId(0),
            FabricNodeId(1),
            Bytes::from_static(b"b"),
        );
        sim.run();
        assert!(at1.lock().is_empty());
        assert!(at2.lock().is_empty());
        assert_eq!(sim.get_count("link.down_drops"), 2);
        // Revival restores both directions.
        assert!(net.set_node_link_up(&sim, FabricNodeId(1), true));
        net.inject(
            &sim,
            FabricNodeId(1),
            FabricNodeId(2),
            Bytes::from_static(b"c"),
        );
        net.inject(
            &sim,
            FabricNodeId(0),
            FabricNodeId(1),
            Bytes::from_static(b"d"),
        );
        sim.run();
        assert_eq!(at1.lock().len(), 1);
        assert_eq!(at2.lock().len(), 1);
    }

    #[test]
    fn switch_port_chaos_hook_is_bounds_checked() {
        let sim = Sim::new(1);
        let net = Myrinet::build(&sim, 14, MyrinetConfig::dawning3000());
        assert_eq!(net.num_switches(), 3);
        let log = collect_arrivals(&sim, &net, 13);
        // Kill sw0's right trunk: cross-switch traffic from node 0 dies at
        // the switch, counted, without panicking.
        assert!(net.set_switch_port_dead(&sim, 0, PORT_RIGHT, true));
        assert!(!net.set_switch_port_dead(&sim, 7, 0, true));
        assert!(!net.set_switch_port_dead(&sim, 0, 200, true));
        net.inject(
            &sim,
            FabricNodeId(0),
            FabricNodeId(13),
            Bytes::from_static(b"x"),
        );
        sim.run();
        assert!(log.lock().is_empty());
        assert_eq!(sim.get_count("switch.dead_port_drop"), 1);
        assert!(net.set_switch_port_dead(&sim, 0, PORT_RIGHT, false));
        net.inject(
            &sim,
            FabricNodeId(0),
            FabricNodeId(13),
            Bytes::from_static(b"y"),
        );
        sim.run();
        assert_eq!(log.lock().len(), 1);
    }

    #[test]
    fn unclaimed_packets_are_counted_not_lost_silently() {
        let sim = Sim::new(1);
        let net = Myrinet::build(&sim, 2, MyrinetConfig::dawning3000());
        net.inject(
            &sim,
            FabricNodeId(0),
            FabricNodeId(1),
            Bytes::from_static(b"z"),
        );
        sim.run();
        assert_eq!(sim.get_count("fabric.unclaimed"), 1);
    }
}
