//! The system-area-network abstraction.
//!
//! BCL's heterogeneous-network claim (paper §3, benefit 3) is that the NIC is
//! invisible to user space, so the same binary runs over Myrinet or the
//! custom nwrc 2-D mesh. We encode that as the [`Fabric`] trait: a protocol
//! stack (BCL's MCP, the GM-like baseline, …) talks only to this trait, and
//! the two SAN crates implement it.
//!
//! Payload bytes are opaque to the fabric — protocols serialize their own
//! headers into the payload, exactly as on real hardware. The fabric adds a
//! fixed per-packet framing overhead (route bytes + CRC) to the wire length.

use bytes::Bytes;

use suca_sim::Sim;

/// Index of a host attachment point (one per node NIC).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FabricNodeId(pub u32);

/// Per-message trace identity carried alongside a packet so switches and
/// links — which never parse protocol headers, matching the hardware — can
/// still attribute hop/drop events to the message. This is simulator
/// metadata, not wire bytes: it does not count toward `wire_len`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PacketTrace {
    /// Node that originated the traced message.
    pub origin: u32,
    /// Message id allocated by the origin.
    pub msg_id: u32,
    /// Fragment sequence number.
    pub seq: u32,
}

/// One packet in flight.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Injecting NIC.
    pub src: FabricNodeId,
    /// Destination NIC.
    pub dst: FabricNodeId,
    /// Protocol payload (headers included).
    pub payload: Bytes,
    /// Set by fault injection when the packet was damaged in flight; the
    /// receiving firmware's CRC check observes this and discards the packet.
    pub corrupted: bool,
    /// Source route: output-port index at each switch/router hop.
    pub route: Vec<u8>,
    /// Next hop to consume from `route`.
    pub route_pos: usize,
    /// Trace identity for per-message causal tracing (`None` for untraced
    /// traffic). Survives corruption so damaged packets stay attributable.
    pub trace: Option<PacketTrace>,
}

impl Packet {
    /// Bytes that occupy the wire: payload plus framing (route + type + CRC).
    pub fn wire_len(&self) -> u64 {
        self.payload.len() as u64 + FRAMING_BYTES
    }
}

/// Per-packet framing overhead on the wire (Myrinet header, padded route
/// bytes, trailing CRC-32).
pub const FRAMING_BYTES: u64 = 16;

/// Receive callback a protocol registers on its NIC attachment. Runs as a
/// simulation event at packet-arrival time.
pub type RxHandler = Box<dyn Fn(&Sim, Packet) + Send + Sync + 'static>;

/// Stochastic fault injection applied per link traversal.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultPlan {
    /// Probability a packet is silently dropped on a link.
    pub drop_prob: f64,
    /// Probability a packet is delivered with a bad CRC.
    pub corrupt_prob: f64,
}

impl FaultPlan {
    /// No faults (the default).
    pub const NONE: FaultPlan = FaultPlan {
        drop_prob: 0.0,
        corrupt_prob: 0.0,
    };
}

/// A system-area network a protocol stack can attach to.
pub trait Fabric: Send + Sync {
    /// Human-readable name ("myrinet", "nwrc-mesh").
    fn name(&self) -> &'static str;

    /// Number of host attachment points.
    fn num_nodes(&self) -> u32;

    /// Largest payload one packet may carry. Protocols fragment above this.
    fn mtu(&self) -> usize;

    /// Per-direction bandwidth of a host link. NIC firmware uses this to
    /// pace injection (the LANai polls send-DMA completion before starting
    /// the next fragment).
    fn link_bytes_per_sec(&self) -> u64;

    /// Register the receive handler for a node's NIC. Panics if the node is
    /// out of range or already attached — both are wiring bugs.
    fn attach(&self, node: FabricNodeId, rx: RxHandler);

    /// Inject a packet. The fabric models transmission, switching and fault
    /// injection, then invokes the destination's handler (if the packet
    /// survives). Panics if `payload` exceeds the MTU — fragmentation is the
    /// protocol's job and an oversized packet is a protocol bug.
    fn inject(&self, sim: &Sim, src: FabricNodeId, dst: FabricNodeId, payload: Bytes);

    /// [`Fabric::inject`] with per-message trace identity attached. The
    /// default implementation discards the metadata so fabrics that predate
    /// tracing keep working; fabrics that model hops override it to tag the
    /// packet.
    fn inject_traced(
        &self,
        sim: &Sim,
        src: FabricNodeId,
        dst: FabricNodeId,
        payload: Bytes,
        trace: Option<PacketTrace>,
    ) {
        let _ = trace;
        self.inject(sim, src, dst, payload);
    }

    /// Chaos hook: force a node's host link up or down (both directions).
    /// While down, every traversal is a counted drop — the packet is
    /// consumed, nothing is delivered. Returns `false` when this fabric has
    /// no such hook (the default), so chaos controllers stay fabric-agnostic.
    fn set_node_link_up(&self, sim: &Sim, node: FabricNodeId, up: bool) -> bool {
        let _ = (sim, node, up);
        false
    }

    /// Chaos hook: kill or revive one output port of one switch/router.
    /// Packets routed through a dead port are counted drops. Returns `false`
    /// when unsupported or out of range.
    fn set_switch_port_dead(&self, sim: &Sim, switch: usize, port: usize, dead: bool) -> bool {
        let _ = (sim, switch, port, dead);
        false
    }

    /// Number of switching elements (for chaos plans to pick targets from).
    /// `0` when the fabric exposes no switch hooks.
    fn num_switches(&self) -> usize {
        0
    }
}
