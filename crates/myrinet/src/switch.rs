//! Cut-through crossbar switches (M2M-OCT-SW8 model).
//!
//! A Myrinet switch reads the leading route byte of a packet, strips it, and
//! forwards the packet out of that port after a small cut-through latency.
//! Output-port contention is inherited from the output [`Link`]'s
//! serialization; the crossbar itself is non-blocking.

use std::sync::Arc;

use parking_lot::Mutex;

use suca_sim::mtrace::{stage, TraceEvent, TraceId, TraceLayer};
use suca_sim::{Counter, Sim, SimDuration};

use crate::fabric::Packet;
use crate::link::{Link, PacketSink};

/// Record a wire-layer instant for a packet carrying trace identity. The
/// event lands on the *origin* node's ring so a message's whole journey
/// stays together even when it crosses many switches.
pub(crate) fn trace_wire_instant(sim: &Sim, pkt: &Packet, stage_name: &'static str) {
    let Some(t) = pkt.trace else { return };
    if !sim.msg_trace().enabled() {
        return;
    }
    sim.trace_event(
        TraceEvent::instant(
            TraceId::new(t.origin, t.msg_id),
            t.origin,
            TraceLayer::Wire,
            stage_name,
            sim.now().as_ns(),
        )
        .with_seq(t.seq)
        .with_bytes(pkt.wire_len()),
    );
}

/// One crossbar switch with up to `radix` output ports.
pub struct Switch {
    label: String,
    cut_through: SimDuration,
    out: Mutex<Vec<Option<Arc<Link>>>>,
    /// Chaos state: ports the controller has killed. Packets routed through
    /// a dead port are counted drops, never panics.
    dead: Mutex<Vec<bool>>,
    unwired_drops: Counter,
    route_exhausted_drops: Counter,
    dead_port_drops: Counter,
}

impl Switch {
    /// Create a switch with `radix` (initially unwired) ports.
    pub fn new(
        sim: &Sim,
        label: impl Into<String>,
        radix: usize,
        cut_through: SimDuration,
    ) -> Arc<Switch> {
        let metrics = sim.metrics();
        Arc::new(Switch {
            label: label.into(),
            cut_through,
            out: Mutex::new(vec![None; radix]),
            dead: Mutex::new(vec![false; radix]),
            unwired_drops: metrics.counter("switch.unwired_drop"),
            route_exhausted_drops: metrics.counter("switch.route_exhausted_drop"),
            dead_port_drops: metrics.counter("switch.dead_port_drop"),
        })
    }

    /// Wire output port `port` to `link`. Panics on double-wiring: topology
    /// construction bugs should fail loudly.
    pub fn connect(&self, port: usize, link: Arc<Link>) {
        let mut out = self.out.lock();
        assert!(
            out[port].is_none(),
            "switch {} port {port} wired twice",
            self.label
        );
        out[port] = Some(link);
    }

    /// Switch radix.
    pub fn radix(&self) -> usize {
        self.out.lock().len()
    }

    /// Chaos hook: kill or revive an output port. Out-of-range ports return
    /// `false` (a chaos plan naming a bad port must not panic the sim).
    pub fn set_port_dead(&self, port: usize, dead: bool) -> bool {
        let mut d = self.dead.lock();
        match d.get_mut(port) {
            Some(slot) => {
                *slot = dead;
                true
            }
            None => false,
        }
    }
}

impl PacketSink for Switch {
    fn deliver(&self, sim: &Sim, mut pkt: Packet) {
        // Malformed routes can reach a switch from fault injection (a
        // corrupted route byte) — they must never panic the sim thread.
        // The packet is counted and dropped; end-to-end reliability
        // (go-back-N in the MCP) recovers it like any other loss.
        if pkt.route_pos >= pkt.route.len() {
            self.route_exhausted_drops.inc();
            trace_wire_instant(sim, &pkt, stage::DROP_ROUTE);
            return;
        }
        let port = pkt.route[pkt.route_pos] as usize;
        pkt.route_pos += 1;
        if self.dead.lock().get(port).copied().unwrap_or(false) {
            self.dead_port_drops.inc();
            trace_wire_instant(sim, &pkt, stage::DROP_DEAD_PORT);
            return;
        }
        let link = {
            let out = self.out.lock();
            match out.get(port).and_then(|l| l.as_ref()) {
                Some(link) => link.clone(),
                None => {
                    self.unwired_drops.inc();
                    trace_wire_instant(sim, &pkt, stage::DROP_ROUTE);
                    return;
                }
            }
        };
        trace_wire_instant(sim, &pkt, stage::HOP);
        let cut = self.cut_through;
        sim.schedule_in(cut, move |s| link.send(s, pkt));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{FabricNodeId, FaultPlan};
    use bytes::Bytes;

    struct Recorder(Mutex<Vec<u64>>);
    impl PacketSink for Recorder {
        fn deliver(&self, sim: &Sim, _pkt: Packet) {
            self.0.lock().push(sim.now().as_ns());
        }
    }

    #[test]
    fn routes_through_ports_with_cut_through_latency() {
        let sim = Sim::new(1);
        let rec = Arc::new(Recorder(Mutex::new(Vec::new())));
        let sw = Switch::new(&sim, "sw0", 8, SimDuration::from_ns(300));
        let out = Link::new(
            &sim,
            "out",
            160_000_000,
            SimDuration::ZERO,
            FaultPlan::NONE,
            rec.clone(),
        );
        sw.connect(3, out);
        let pkt = Packet {
            src: FabricNodeId(0),
            dst: FabricNodeId(1),
            payload: Bytes::from_static(b""), // 16 B framing -> 100 ns at 160 MB/s
            corrupted: false,
            route: vec![3],
            route_pos: 0,
            trace: None,
        };
        sw.deliver(&sim, pkt);
        sim.run();
        assert_eq!(*rec.0.lock(), vec![400]); // 300 cut-through + 100 wire
    }

    #[test]
    fn unwired_port_is_a_counted_drop() {
        let sim = Sim::new(1);
        let sw = Switch::new(&sim, "swx", 8, SimDuration::ZERO);
        let pkt = Packet {
            src: FabricNodeId(0),
            dst: FabricNodeId(1),
            payload: Bytes::from_static(b""),
            corrupted: false,
            route: vec![5],
            route_pos: 0,
            trace: None,
        };
        sw.deliver(&sim, pkt);
        sim.run();
        assert_eq!(sim.get_count("switch.unwired_drop"), 1);
    }

    #[test]
    fn out_of_radix_port_is_a_counted_drop() {
        // A corrupted route byte can name a port past the radix; that must
        // not panic either.
        let sim = Sim::new(1);
        let sw = Switch::new(&sim, "swx", 8, SimDuration::ZERO);
        let pkt = Packet {
            src: FabricNodeId(0),
            dst: FabricNodeId(1),
            payload: Bytes::from_static(b""),
            corrupted: false,
            route: vec![200],
            route_pos: 0,
            trace: None,
        };
        sw.deliver(&sim, pkt);
        sim.run();
        assert_eq!(sim.get_count("switch.unwired_drop"), 1);
    }

    #[test]
    fn dead_port_is_a_counted_drop_and_revivable() {
        let sim = Sim::new(1);
        let rec = Arc::new(Recorder(Mutex::new(Vec::new())));
        let sw = Switch::new(&sim, "swx", 8, SimDuration::ZERO);
        let out = Link::new(
            &sim,
            "out",
            160_000_000,
            SimDuration::ZERO,
            FaultPlan::NONE,
            rec.clone(),
        );
        sw.connect(3, out);
        assert!(sw.set_port_dead(3, true));
        assert!(
            !sw.set_port_dead(99, true),
            "out of range: refused, no panic"
        );
        let mk = || Packet {
            src: FabricNodeId(0),
            dst: FabricNodeId(1),
            payload: Bytes::from_static(b""),
            corrupted: false,
            route: vec![3],
            route_pos: 0,
            trace: None,
        };
        sw.deliver(&sim, mk());
        sim.run();
        assert_eq!(sim.get_count("switch.dead_port_drop"), 1);
        assert!(rec.0.lock().is_empty());
        assert!(sw.set_port_dead(3, false));
        sw.deliver(&sim, mk());
        sim.run();
        assert_eq!(rec.0.lock().len(), 1, "revived port forwards again");
    }

    #[test]
    fn exhausted_route_is_a_counted_drop() {
        let sim = Sim::new(1);
        let sw = Switch::new(&sim, "swx", 8, SimDuration::ZERO);
        let pkt = Packet {
            src: FabricNodeId(0),
            dst: FabricNodeId(1),
            payload: Bytes::from_static(b""),
            corrupted: false,
            route: vec![],
            route_pos: 0,
            trace: None,
        };
        sw.deliver(&sim, pkt);
        sim.run();
        assert_eq!(sim.get_count("switch.route_exhausted_drop"), 1);
    }
}
