//! Point-to-point Myrinet links.
//!
//! Each link is full-duplex; we model one [`Link`] per direction. A link
//! serializes packets (1.28 Gb/s ≙ 160 MB/s per direction on DAWNING-3000),
//! adds a propagation delay, and applies stochastic fault injection with a
//! per-link deterministic RNG stream.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use suca_sim::mtrace::stage as trace_stage;
use suca_sim::{Counter, Sim, SimDuration, SimRng, SimTime};

use crate::fabric::{FaultPlan, Packet};

/// Anything that can accept a packet coming off a link (a switch or a NIC).
pub trait PacketSink: Send + Sync {
    /// Handle an arriving packet at the current simulation instant.
    fn deliver(&self, sim: &Sim, pkt: Packet);
}

struct LinkState {
    busy_until: SimTime,
    rng: SimRng,
    sent: u64,
    sent_bytes: u64,
    dropped: u64,
    corrupted: u64,
}

/// One unidirectional link.
pub struct Link {
    label: String,
    bytes_per_sec: u64,
    propagation: SimDuration,
    fault: FaultPlan,
    dst: Arc<dyn PacketSink>,
    /// Chaos state: a downed link consumes packets without delivering
    /// (counted). Flipped by the chaos controller via [`Link::set_up`].
    up: AtomicBool,
    state: Mutex<LinkState>,
    // Typed metric handles, registered once at link creation; shared cells
    // across all links ("fabric.*" / "link.*" are fabric-wide totals).
    drops: Counter,
    corruptions: Counter,
    tx_bytes: Counter,
    down_drops: Counter,
}

impl Link {
    /// Create a link delivering into `dst`.
    pub fn new(
        sim: &Sim,
        label: impl Into<String>,
        bytes_per_sec: u64,
        propagation: SimDuration,
        fault: FaultPlan,
        dst: Arc<dyn PacketSink>,
    ) -> Arc<Link> {
        assert!(bytes_per_sec > 0);
        let label = label.into();
        let rng = sim.fork_rng(&format!("link:{label}"));
        let metrics = sim.metrics();
        let link = Arc::new(Link {
            label,
            bytes_per_sec,
            propagation,
            fault,
            dst,
            up: AtomicBool::new(true),
            drops: metrics.counter("fabric.dropped"),
            corruptions: metrics.counter("fabric.corrupted"),
            tx_bytes: metrics.counter("link.tx_bytes"),
            down_drops: metrics.counter("link.down_drops"),
            state: Mutex::new(LinkState {
                busy_until: SimTime::ZERO,
                rng,
                sent: 0,
                sent_bytes: 0,
                dropped: 0,
                corrupted: 0,
            }),
        });
        // Per-link telemetry probes. Bytes-in-flight is derived from the
        // serialization backlog (busy_until - now) at line rate; a switch
        // output port's queue depth is exactly its outgoing link's backlog in
        // this cut-through model, so these three probes also cover per-port
        // switch occupancy.
        let ts = sim.timeseries();
        let w = Arc::downgrade(&link);
        ts.register(
            format!("link.{}.backlog_bytes", link.label),
            suca_sim::FABRIC_NODE,
            None,
            move |now_ns| {
                w.upgrade().map_or(0, |l| {
                    let ahead = l.state.lock().busy_until.as_ns().saturating_sub(now_ns);
                    ahead * l.bytes_per_sec / 1_000_000_000
                })
            },
        );
        let w = Arc::downgrade(&link);
        ts.register(
            format!("link.{}.tx_bytes", link.label),
            suca_sim::FABRIC_NODE,
            None,
            move |_| w.upgrade().map_or(0, |l| l.state.lock().sent_bytes),
        );
        let w = Arc::downgrade(&link);
        ts.register(
            format!("link.{}.busy", link.label),
            suca_sim::FABRIC_NODE,
            None,
            move |now_ns| {
                w.upgrade()
                    .map_or(0, |l| u64::from(l.state.lock().busy_until.as_ns() > now_ns))
            },
        );
        link
    }

    /// Chaos hook: force the link up or down. A downed link blackholes
    /// every packet offered to it (counted `link.down_drops`, no delivery,
    /// no wire time — the transmitter sees a dead line, not a busy one).
    pub fn set_up(&self, up: bool) {
        self.up.store(up, Ordering::Release);
    }

    /// True unless the chaos controller downed this link.
    pub fn is_up(&self) -> bool {
        self.up.load(Ordering::Acquire)
    }

    /// Transmit a packet: seize the wire for `wire_len / bandwidth`, then
    /// deliver after propagation. Faults are decided here.
    pub fn send(self: &Arc<Self>, sim: &Sim, mut pkt: Packet) {
        if !self.is_up() {
            self.down_drops.inc();
            self.state.lock().dropped += 1;
            crate::switch::trace_wire_instant(sim, &pkt, trace_stage::DROP_LINK_DOWN);
            return;
        }
        let tx = SimDuration::for_bytes(pkt.wire_len(), self.bytes_per_sec);
        self.tx_bytes.add(pkt.wire_len());
        let arrival = {
            let mut st = self.state.lock();
            let start = st.busy_until.max(sim.now());
            st.busy_until = start + tx;
            st.sent += 1;
            st.sent_bytes += pkt.wire_len();
            if st.rng.chance(self.fault.drop_prob) {
                st.dropped += 1;
                self.drops.inc();
                crate::switch::trace_wire_instant(sim, &pkt, trace_stage::DROP_LINK);
                return; // the wire time is still consumed (damaged in flight)
            }
            if st.rng.chance(self.fault.corrupt_prob) {
                st.corrupted += 1;
                self.corruptions.inc();
                pkt.corrupted = true;
                crate::switch::trace_wire_instant(sim, &pkt, trace_stage::CORRUPT);
            }
            start + tx + self.propagation
        };
        let dst = Arc::clone(&self.dst);
        // Place the arrival on the destination node's event-queue shard:
        // wire time plus propagation is exactly the conservative lookahead
        // that lets the engine batch-drain per-node shards.
        let dst_node = pkt.dst.0;
        sim.schedule_at_on(dst_node, arrival, move |s| dst.deliver(s, pkt));
    }

    /// `(sent, dropped, corrupted)` counts.
    pub fn stats(&self) -> (u64, u64, u64) {
        let st = self.state.lock();
        (st.sent, st.dropped, st.corrupted)
    }

    /// Link label (for debugging).
    pub fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::FabricNodeId;
    use bytes::Bytes;
    use suca_sim::RunOutcome;

    struct Recorder {
        arrivals: Mutex<Vec<(u64, bool)>>,
    }
    impl PacketSink for Recorder {
        fn deliver(&self, sim: &Sim, pkt: Packet) {
            self.arrivals
                .lock()
                .push((sim.now().as_ns(), pkt.corrupted));
        }
    }

    fn pkt(n: usize) -> Packet {
        Packet {
            src: FabricNodeId(0),
            dst: FabricNodeId(1),
            payload: Bytes::from(vec![0u8; n]),
            corrupted: false,
            route: vec![],
            route_pos: 0,
            trace: None,
        }
    }

    #[test]
    fn transmission_and_propagation_timing() {
        let sim = Sim::new(1);
        let rec = Arc::new(Recorder {
            arrivals: Mutex::new(Vec::new()),
        });
        let link = Link::new(
            &sim,
            "t",
            160_000_000,
            SimDuration::from_ns(50),
            FaultPlan::NONE,
            rec.clone(),
        );
        link.send(&sim, pkt(1584)); // 1584+16 = 1600 B -> 10 us at 160 MB/s
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(*rec.arrivals.lock(), vec![(10_050, false)]);
    }

    #[test]
    fn wire_serializes_packets() {
        let sim = Sim::new(1);
        let rec = Arc::new(Recorder {
            arrivals: Mutex::new(Vec::new()),
        });
        let link = Link::new(
            &sim,
            "t",
            160_000_000,
            SimDuration::ZERO,
            FaultPlan::NONE,
            rec.clone(),
        );
        for _ in 0..3 {
            link.send(&sim, pkt(1584));
        }
        sim.run();
        let times: Vec<u64> = rec.arrivals.lock().iter().map(|a| a.0).collect();
        assert_eq!(times, vec![10_000, 20_000, 30_000]);
    }

    #[test]
    fn downed_link_blackholes_then_revives() {
        let sim = Sim::new(1);
        let rec = Arc::new(Recorder {
            arrivals: Mutex::new(Vec::new()),
        });
        let link = Link::new(
            &sim,
            "t",
            160_000_000,
            SimDuration::ZERO,
            FaultPlan::NONE,
            rec.clone(),
        );
        link.set_up(false);
        assert!(!link.is_up());
        for _ in 0..3 {
            link.send(&sim, pkt(100));
        }
        sim.run();
        assert!(rec.arrivals.lock().is_empty(), "down link must blackhole");
        assert_eq!(sim.get_count("link.down_drops"), 3);
        link.set_up(true);
        link.send(&sim, pkt(100));
        sim.run();
        assert_eq!(rec.arrivals.lock().len(), 1, "revived link delivers");
    }

    #[test]
    fn drops_and_corruption_are_deterministic_per_seed() {
        let run = |seed| {
            let sim = Sim::new(seed);
            let rec = Arc::new(Recorder {
                arrivals: Mutex::new(Vec::new()),
            });
            let link = Link::new(
                &sim,
                "t",
                160_000_000,
                SimDuration::ZERO,
                FaultPlan {
                    drop_prob: 0.3,
                    corrupt_prob: 0.3,
                },
                rec.clone(),
            );
            for _ in 0..50 {
                link.send(&sim, pkt(100));
            }
            sim.run();
            let delivered = rec.arrivals.lock().clone();
            let stats = link.stats();
            (delivered, stats)
        };
        let (d1, s1) = run(7);
        let (d2, s2) = run(7);
        assert_eq!(d1, d2);
        assert_eq!(s1, s2);
        assert!(s1.1 > 0, "expected some drops");
        assert!(s1.2 > 0, "expected some corruption");
        assert_eq!(d1.len() as u64, s1.0 - s1.1);
    }
}
