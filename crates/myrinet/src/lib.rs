//! # suca-myrinet — the Myrinet system-area network model
//!
//! Links (1.28 Gb/s, serialized, fault-injectable), 8-port cut-through
//! crossbar switches, NIC SRAM accounting, a linear-array-of-switches
//! topology builder for up to the full 70-node DAWNING-3000, and the
//! [`Fabric`] trait that protocol stacks (BCL, the baselines) program
//! against. The nwrc 2-D mesh (`suca-mesh`) implements the same trait,
//! which is the paper's heterogeneous-network portability claim made
//! concrete.

#![warn(missing_docs)]

pub mod fabric;
pub mod link;
pub mod sram;
pub mod switch;
pub mod topology;

pub use fabric::{Fabric, FabricNodeId, FaultPlan, Packet, PacketTrace, RxHandler, FRAMING_BYTES};
pub use link::{Link, PacketSink};
pub use sram::{SramLease, SramPool};
pub use switch::Switch;
pub use topology::{Myrinet, MyrinetConfig};
