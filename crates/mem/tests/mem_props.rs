//! Property tests on the memory substrate: pin-down table invariants under
//! arbitrary pin/unpin sequences and address-space read/write consistency
//! across page boundaries.

use proptest::prelude::*;

use suca_mem::{AddressSpace, Asid, PhysMemory, PinDownTable, VirtPage, PAGE_SIZE};

proptest! {
    #[test]
    fn pin_table_never_exceeds_capacity_and_never_evicts_pinned(
        ops in prop::collection::vec((0u64..32, any::<bool>()), 1..200),
        capacity in 2usize..16,
    ) {
        let mem = PhysMemory::new(64 << 20);
        let space = AddressSpace::new(Asid(1), mem);
        let base = space.alloc(PAGE_SIZE * 32).unwrap();
        let mut table = PinDownTable::new(capacity);
        let mut pin_counts = [0u32; 32];

        for (page, is_pin) in ops {
            let addr = base.add(page * PAGE_SIZE);
            if is_pin {
                match table.pin_range(&space, addr, 1) {
                    Ok(r) => {
                        prop_assert_eq!(r.len(), 1);
                        pin_counts[page as usize] += 1;
                    }
                    Err(suca_mem::MemError::PinTableFull) => {
                        // Legal only when every entry is pinned.
                        let live: u32 = pin_counts.iter().filter(|c| **c > 0).count() as u32;
                        prop_assert!(live as usize >= capacity,
                            "PinTableFull with {} pinned pages < capacity {}", live, capacity);
                    }
                    Err(e) => return Err(TestCaseError::fail(format!("unexpected: {e}"))),
                }
            } else {
                table.unpin(space.asid(), VirtPage(addr.page().0));
                pin_counts[page as usize] = pin_counts[page as usize].saturating_sub(1);
            }
            prop_assert!(table.len() <= capacity, "table overflowed capacity");
        }

        // Every page pinned right now must still be resident (it was never
        // evicted): re-pinning it must be a Hit.
        for (page, &pins) in pin_counts.iter().enumerate() {
            if pins > 0 {
                let addr = base.add(page as u64 * PAGE_SIZE);
                let r = table.pin_range(&space, addr, 1).unwrap();
                prop_assert_eq!(r[0].1, suca_mem::PinLookup::Hit,
                    "pinned page {} was evicted", page);
            }
        }
    }

    #[test]
    fn space_rw_roundtrip_arbitrary_offsets(
        len in 1usize..40_000,
        off in 0u64..40_000,
        data in prop::collection::vec(any::<u8>(), 1..512),
    ) {
        let space = AddressSpace::new(Asid(2), PhysMemory::new(64 << 20));
        let region = len as u64 + off + data.len() as u64;
        let base = space.alloc(region).unwrap();
        let at = base.add(off);
        space.write(at, &data).unwrap();
        let back = space.read_vec(at, data.len() as u64).unwrap();
        prop_assert_eq!(back, data.clone());
        // Bytes before the write are still zero (fresh region).
        if off > 0 {
            let before = space.read_vec(base, off.min(64)).unwrap();
            prop_assert!(before.iter().all(|b| *b == 0));
        }
    }
}
