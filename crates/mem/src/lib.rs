//! # suca-mem — host memory substrate
//!
//! Simulated physical memory with real contents, per-process virtual address
//! spaces, the kernel's pin-down page table, shared-memory segments for the
//! intra-node path, and the host memcpy cost model. Everything the paper's
//! address-translation and protection story depends on.

#![warn(missing_docs)]

pub mod addr;
pub mod copy;
pub mod pagetable;
pub mod phys;
pub mod pin;
pub mod shm;

pub use addr::{pages_spanned, BusAddr, PhysAddr, PhysFrame, VirtAddr, VirtPage, PAGE_SIZE};
pub use copy::CopyModel;
pub use pagetable::{AddressSpace, Asid};
pub use phys::PhysMemory;
pub use pin::{PinDownTable, PinLookup};
pub use shm::SharedRegion;

/// Errors from the memory substrate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemError {
    /// Physical memory exhausted.
    OutOfMemory,
    /// Access to a frame that is not allocated (or was freed).
    BadFrame(PhysFrame),
    /// Access through an unmapped virtual address.
    Unmapped(VirtAddr),
    /// Offset beyond the end of a region.
    OutOfRange {
        /// Offset (or end of the accessed range) that exceeded the region.
        offset: u64,
        /// Region length.
        len: u64,
    },
    /// Pin-down table is full of pinned (unevictable) entries.
    PinTableFull,
}

impl core::fmt::Display for MemError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MemError::OutOfMemory => write!(f, "out of physical memory"),
            MemError::BadFrame(fr) => write!(f, "access to unallocated frame {fr:?}"),
            MemError::Unmapped(a) => write!(f, "unmapped virtual address {a:?}"),
            MemError::OutOfRange { offset, len } => {
                write!(f, "offset {offset} out of range (len {len})")
            }
            MemError::PinTableFull => write!(f, "pin-down table full of pinned entries"),
        }
    }
}

impl std::error::Error for MemError {}
