//! Per-process virtual address spaces.
//!
//! Each simulated user process owns an [`AddressSpace`]: a page table mapping
//! virtual pages to physical frames of the node's [`PhysMemory`], plus a bump
//! allocator for fresh regions. User code accesses its buffers exclusively
//! through the address space, which is what lets the BCL kernel module (and
//! nothing else) perform virtual→physical translation — the paper's central
//! security property.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::addr::{pages_spanned, PhysAddr, PhysFrame, VirtAddr, VirtPage, PAGE_SIZE};
use crate::phys::PhysMemory;
use crate::MemError;

/// Address-space identifier (one per process).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Asid(pub u32);

struct SpaceInner {
    asid: Asid,
    table: HashMap<VirtPage, PhysFrame>,
    next_page: u64,
}

/// One process's virtual address space. Clones share the page table.
///
/// ```
/// use suca_mem::{AddressSpace, Asid, PhysMemory};
/// let mem = PhysMemory::new(1 << 20);
/// let space = AddressSpace::new(Asid(1), mem);
/// let buf = space.alloc(8192).unwrap();
/// space.write(buf, b"payload").unwrap();
/// assert_eq!(space.read_vec(buf, 7).unwrap(), b"payload");
/// // The kernel's view: physical scatter/gather segments.
/// let segs = space.sg_list(buf, 8192).unwrap();
/// assert_eq!(segs.iter().map(|s| s.1).sum::<u64>(), 8192);
/// ```
#[derive(Clone)]
pub struct AddressSpace {
    mem: PhysMemory,
    inner: Arc<Mutex<SpaceInner>>,
}

/// Base of the user heap in every simulated process (an arbitrary non-zero
/// constant so that a forged null/low pointer is always invalid).
const USER_BASE_PAGE: u64 = 0x1000;

impl AddressSpace {
    /// Create an empty space over a node's physical memory.
    pub fn new(asid: Asid, mem: PhysMemory) -> Self {
        AddressSpace {
            mem,
            inner: Arc::new(Mutex::new(SpaceInner {
                asid,
                table: HashMap::new(),
                next_page: USER_BASE_PAGE,
            })),
        }
    }

    /// This space's id.
    pub fn asid(&self) -> Asid {
        self.inner.lock().asid
    }

    /// The physical memory this space maps into.
    pub fn phys(&self) -> &PhysMemory {
        &self.mem
    }

    /// Allocate and map a fresh zeroed region of at least `len` bytes.
    /// Returns its base virtual address (page-aligned).
    pub fn alloc(&self, len: u64) -> Result<VirtAddr, MemError> {
        let pages = pages_spanned(VirtAddr(0), len.max(1));
        let mut inner = self.inner.lock();
        let base = VirtPage(inner.next_page);
        // Reserve before faulting frames in, so a mid-way OOM cannot leave a
        // half-visible region at a reused address.
        inner.next_page += pages;
        let mut mapped = Vec::with_capacity(pages as usize);
        for i in 0..pages {
            match self.mem.alloc_frame() {
                Ok(f) => {
                    inner.table.insert(VirtPage(base.0 + i), f);
                    mapped.push((VirtPage(base.0 + i), f));
                }
                Err(e) => {
                    for (vp, f) in mapped {
                        inner.table.remove(&vp);
                        let _ = self.mem.free_frame(f);
                    }
                    return Err(e);
                }
            }
        }
        Ok(base.base())
    }

    /// Unmap and free a region previously returned by [`AddressSpace::alloc`].
    pub fn free(&self, base: VirtAddr, len: u64) -> Result<(), MemError> {
        assert_eq!(base.page_offset(), 0, "free of non page-aligned region");
        let pages = pages_spanned(base, len.max(1));
        let mut inner = self.inner.lock();
        for i in 0..pages {
            let vp = VirtPage(base.page().0 + i);
            let frame = inner
                .table
                .remove(&vp)
                .ok_or(MemError::Unmapped(vp.base()))?;
            self.mem.free_frame(frame)?;
        }
        Ok(())
    }

    /// Translate one virtual address; fails on unmapped pages.
    pub fn translate(&self, addr: VirtAddr) -> Result<PhysAddr, MemError> {
        let inner = self.inner.lock();
        let frame = inner
            .table
            .get(&addr.page())
            .ok_or(MemError::Unmapped(addr))?;
        Ok(frame.base().add(addr.page_offset()))
    }

    /// True if the whole byte range `[addr, addr+len)` is mapped.
    pub fn is_mapped(&self, addr: VirtAddr, len: u64) -> bool {
        let inner = self.inner.lock();
        let pages = pages_spanned(addr, len.max(1));
        (0..pages).all(|i| inner.table.contains_key(&VirtPage(addr.page().0 + i)))
    }

    /// Map an existing physical frame at a fresh virtual page (the shared-
    /// memory primitive used by the intra-node path). Returns the virtual
    /// base of the new page.
    pub fn map_frame(&self, frame: PhysFrame) -> VirtAddr {
        self.map_frames(std::slice::from_ref(&frame))
    }

    /// Map a run of existing frames at consecutive fresh virtual pages;
    /// returns the base of the contiguous region.
    pub fn map_frames(&self, frames: &[PhysFrame]) -> VirtAddr {
        assert!(!frames.is_empty(), "mapping zero frames");
        let mut inner = self.inner.lock();
        let base = VirtPage(inner.next_page);
        inner.next_page += frames.len() as u64;
        for (i, f) in frames.iter().enumerate() {
            inner.table.insert(VirtPage(base.0 + i as u64), *f);
        }
        base.base()
    }

    /// Read user memory (as the process itself would).
    pub fn read(&self, addr: VirtAddr, buf: &mut [u8]) -> Result<(), MemError> {
        self.for_each_segment(addr, buf.len() as u64, |phys, range| {
            self.mem.read(phys, &mut buf[range.0..range.1])
        })
    }

    /// Write user memory (as the process itself would).
    pub fn write(&self, addr: VirtAddr, buf: &[u8]) -> Result<(), MemError> {
        self.for_each_segment(addr, buf.len() as u64, |phys, range| {
            self.mem.write(phys, &buf[range.0..range.1])
        })
    }

    /// Read `len` bytes into a fresh vector.
    pub fn read_vec(&self, addr: VirtAddr, len: u64) -> Result<Vec<u8>, MemError> {
        let mut v = vec![0u8; len as usize];
        self.read(addr, &mut v)?;
        Ok(v)
    }

    /// Physical scatter/gather segments covering `[addr, addr+len)`, in
    /// order. Each segment lies within one frame. This is exactly the list
    /// the BCL kernel module writes into a send descriptor.
    pub fn sg_list(&self, addr: VirtAddr, len: u64) -> Result<Vec<(PhysAddr, u64)>, MemError> {
        let mut segs = Vec::new();
        self.for_each_segment(addr, len, |phys, range| {
            segs.push((phys, (range.1 - range.0) as u64));
            Ok(())
        })?;
        Ok(segs)
    }

    fn for_each_segment(
        &self,
        addr: VirtAddr,
        len: u64,
        mut f: impl FnMut(PhysAddr, (usize, usize)) -> Result<(), MemError>,
    ) -> Result<(), MemError> {
        let mut pos = addr;
        let mut done = 0u64;
        while done < len {
            let chunk = (PAGE_SIZE - pos.page_offset()).min(len - done);
            let phys = self.translate(pos)?;
            f(phys, (done as usize, (done + chunk) as usize))?;
            done += chunk;
            pos = pos.add(chunk);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> AddressSpace {
        AddressSpace::new(Asid(1), PhysMemory::new(1 << 22))
    }

    #[test]
    fn alloc_write_read_roundtrip() {
        let s = space();
        let base = s.alloc(10_000).unwrap();
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        s.write(base, &data).unwrap();
        assert_eq!(s.read_vec(base, 10_000).unwrap(), data);
    }

    #[test]
    fn unmapped_access_faults() {
        let s = space();
        let mut b = [0u8; 4];
        assert!(matches!(
            s.read(VirtAddr(0x10), &mut b),
            Err(MemError::Unmapped(_))
        ));
        assert!(!s.is_mapped(VirtAddr(0x10), 4));
    }

    #[test]
    fn sg_list_covers_range_in_order() {
        let s = space();
        let base = s.alloc(3 * PAGE_SIZE).unwrap();
        let start = base.add(100);
        let len = 2 * PAGE_SIZE; // crosses 3 pages starting mid-page
        let segs = s.sg_list(start, len).unwrap();
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].1, PAGE_SIZE - 100);
        assert_eq!(segs[1].1, PAGE_SIZE);
        assert_eq!(segs[2].1, 100);
        assert_eq!(segs.iter().map(|s| s.1).sum::<u64>(), len);
        // Writing via phys segments is visible via virtual reads.
        let m = s.phys();
        m.write(segs[0].0, &[7u8; 16]).unwrap();
        assert_eq!(s.read_vec(start, 16).unwrap(), vec![7u8; 16]);
    }

    #[test]
    fn free_unmaps() {
        let s = space();
        let base = s.alloc(PAGE_SIZE * 2).unwrap();
        s.free(base, PAGE_SIZE * 2).unwrap();
        assert!(!s.is_mapped(base, 1));
        assert!(s.translate(base).is_err());
    }

    #[test]
    fn alloc_failure_rolls_back() {
        let s = AddressSpace::new(Asid(1), PhysMemory::new(PAGE_SIZE * 2));
        assert!(s.alloc(PAGE_SIZE * 3).is_err());
        assert_eq!(s.phys().allocated_frames(), 0, "partial alloc leaked");
        // The space still works for a smaller request.
        assert!(s.alloc(PAGE_SIZE * 2).is_ok());
    }

    #[test]
    fn shared_frame_mapping_is_coherent() {
        let mem = PhysMemory::new(1 << 20);
        let a = AddressSpace::new(Asid(1), mem.clone());
        let b = AddressSpace::new(Asid(2), mem.clone());
        let frame = mem.alloc_frame().unwrap();
        let va = a.map_frame(frame);
        let vb = b.map_frame(frame);
        a.write(va, b"shared!").unwrap();
        assert_eq!(b.read_vec(vb, 7).unwrap(), b"shared!".to_vec());
    }

    #[test]
    fn distinct_spaces_are_isolated() {
        let mem = PhysMemory::new(1 << 20);
        let a = AddressSpace::new(Asid(1), mem.clone());
        let b = AddressSpace::new(Asid(2), mem);
        let va = a.alloc(64).unwrap();
        a.write(va, b"secret").unwrap();
        // Same numeric address in b is unmapped.
        assert!(b.read_vec(va, 6).is_err());
    }
}
