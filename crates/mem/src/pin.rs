//! The kernel's pin-down buffer page table.
//!
//! In the semi-user-level architecture, DMA-able buffers are pinned and
//! translated **in the host kernel**, and the table of pinned pages lives in
//! host memory — not in the NIC's scarce SRAM. The paper contrasts this with
//! VMMC-2/U-Net, which cache translations on the NIC and thrash when a node's
//! working set outgrows the NIC cache (the "usage of large memory" argument;
//! reproduced by the `ablations` harness).
//!
//! The table caches `(asid, virtual page) → frame` entries with an LRU
//! eviction policy and a pin count so that pages in use by an in-flight DMA
//! are never evicted.

use std::collections::HashMap;

use crate::addr::{PhysFrame, VirtAddr, VirtPage};
use crate::pagetable::{AddressSpace, Asid};
use crate::MemError;

#[derive(Clone)]
struct PinEntry {
    frame: PhysFrame,
    pins: u32,
    last_use: u64,
}

/// Outcome of one lookup, so cost accounting can distinguish hits (cheap
/// table search) from misses (pin + translate, the expensive path).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PinLookup {
    /// Entry was already cached.
    Hit,
    /// Entry had to be created (page pinned and translated).
    Miss,
}

/// Kernel-resident pin-down page table with capacity-bounded LRU caching.
pub struct PinDownTable {
    entries: HashMap<(Asid, VirtPage), PinEntry>,
    capacity: usize,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PinDownTable {
    /// Create with space for `capacity` page entries. Host memory is big —
    /// DAWNING nodes dedicate megabytes to this — so a typical capacity is
    /// tens of thousands of pages (vs. a few hundred in a NIC SRAM cache).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "pin-down table needs capacity");
        PinDownTable {
            entries: HashMap::new(),
            capacity,
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Look up (and if necessary create) the translation for every page of
    /// `[addr, addr+len)` in `space`, incrementing each page's pin count.
    /// Returns per-page results in order; the caller charges miss costs.
    ///
    /// On any failure (e.g. unmapped page) all pins taken by this call are
    /// released before returning the error.
    pub fn pin_range(
        &mut self,
        space: &AddressSpace,
        addr: VirtAddr,
        len: u64,
    ) -> Result<Vec<(PhysFrame, PinLookup)>, MemError> {
        let pages = crate::addr::pages_spanned(addr, len.max(1));
        let asid = space.asid();
        let mut out = Vec::with_capacity(pages as usize);
        let mut pinned: Vec<VirtPage> = Vec::with_capacity(pages as usize);
        for i in 0..pages {
            let vp = VirtPage(addr.page().0 + i);
            match self.pin_one(space, asid, vp) {
                Ok(res) => {
                    pinned.push(vp);
                    out.push(res);
                }
                Err(e) => {
                    for vp in pinned {
                        self.unpin(asid, vp);
                    }
                    return Err(e);
                }
            }
        }
        Ok(out)
    }

    fn pin_one(
        &mut self,
        space: &AddressSpace,
        asid: Asid,
        vp: VirtPage,
    ) -> Result<(PhysFrame, PinLookup), MemError> {
        self.clock += 1;
        let clock = self.clock;
        if let Some(e) = self.entries.get_mut(&(asid, vp)) {
            e.pins += 1;
            e.last_use = clock;
            self.hits += 1;
            return Ok((e.frame, PinLookup::Hit));
        }
        // Miss: translate through the process page table (kernel privilege)
        // and install, evicting an unpinned LRU entry if full.
        let phys = space.translate(vp.base())?;
        if self.entries.len() >= self.capacity {
            self.evict_one()?;
        }
        let frame = phys.frame();
        self.entries.insert(
            (asid, vp),
            PinEntry {
                frame,
                pins: 1,
                last_use: clock,
            },
        );
        self.misses += 1;
        Ok((frame, PinLookup::Miss))
    }

    fn evict_one(&mut self) -> Result<(), MemError> {
        let victim = self
            .entries
            .iter()
            .filter(|(_, e)| e.pins == 0)
            .min_by_key(|(_, e)| e.last_use)
            .map(|(k, _)| *k);
        match victim {
            Some(k) => {
                self.entries.remove(&k);
                self.evictions += 1;
                Ok(())
            }
            // Every entry is pinned by an in-flight DMA: the kernel cannot
            // safely unpin anything.
            None => Err(MemError::PinTableFull),
        }
    }

    /// Drop one pin on `(asid, page)`. The entry stays cached (pin count 0)
    /// until evicted — that is the table's whole point: repeat sends from the
    /// same buffer hit without re-pinning.
    pub fn unpin(&mut self, asid: Asid, vp: VirtPage) {
        if let Some(e) = self.entries.get_mut(&(asid, vp)) {
            e.pins = e.pins.saturating_sub(1);
        }
    }

    /// Unpin every page of a byte range.
    pub fn unpin_range(&mut self, asid: Asid, addr: VirtAddr, len: u64) {
        let pages = crate::addr::pages_spanned(addr, len.max(1));
        for i in 0..pages {
            self.unpin(asid, VirtPage(addr.page().0 + i));
        }
    }

    /// Remove all entries belonging to a process (port close / exit).
    pub fn purge_asid(&mut self, asid: Asid) {
        self.entries.retain(|(a, _), _| *a != asid);
    }

    /// (hits, misses, evictions) so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PAGE_SIZE;
    use crate::phys::PhysMemory;

    fn setup() -> (AddressSpace, PinDownTable) {
        let s = AddressSpace::new(Asid(1), PhysMemory::new(1 << 22));
        (s, PinDownTable::new(8))
    }

    #[test]
    fn first_pin_misses_second_hits() {
        let (s, mut t) = setup();
        let base = s.alloc(PAGE_SIZE * 2).unwrap();
        let r1 = t.pin_range(&s, base, PAGE_SIZE * 2).unwrap();
        assert!(r1.iter().all(|(_, l)| *l == PinLookup::Miss));
        t.unpin_range(s.asid(), base, PAGE_SIZE * 2);
        let r2 = t.pin_range(&s, base, PAGE_SIZE * 2).unwrap();
        assert!(r2.iter().all(|(_, l)| *l == PinLookup::Hit));
        assert_eq!(t.stats(), (2, 2, 0));
    }

    #[test]
    fn translation_matches_page_table() {
        let (s, mut t) = setup();
        let base = s.alloc(PAGE_SIZE).unwrap();
        let r = t.pin_range(&s, base, 16).unwrap();
        assert_eq!(r[0].0, s.translate(base).unwrap().frame());
    }

    #[test]
    fn unmapped_page_fails_and_releases_pins() {
        let (s, mut t) = setup();
        let base = s.alloc(PAGE_SIZE).unwrap();
        // Range extends one page past the mapped region.
        let err = t.pin_range(&s, base, PAGE_SIZE * 2).unwrap_err();
        assert!(matches!(err, MemError::Unmapped(_)));
        // The successfully pinned first page must have been unpinned, so it
        // is evictable: fill the table and expect no PinTableFull.
        let big = s.alloc(PAGE_SIZE * 8).unwrap();
        assert!(t.pin_range(&s, big, PAGE_SIZE * 8).is_ok());
    }

    #[test]
    fn lru_eviction_skips_pinned_entries() {
        let (s, mut t) = setup();
        let a = s.alloc(PAGE_SIZE * 8).unwrap();
        // Fill the table, keep all pinned.
        t.pin_range(&s, a, PAGE_SIZE * 8).unwrap();
        let b = s.alloc(PAGE_SIZE).unwrap();
        assert!(matches!(
            t.pin_range(&s, b, PAGE_SIZE),
            Err(MemError::PinTableFull)
        ));
        // Unpin one page; now there is a victim.
        t.unpin(s.asid(), a.page());
        assert!(t.pin_range(&s, b, PAGE_SIZE).is_ok());
        let (_, _, ev) = t.stats();
        assert_eq!(ev, 1);
    }

    #[test]
    fn purge_asid_clears_only_that_process() {
        let mem = PhysMemory::new(1 << 22);
        let s1 = AddressSpace::new(Asid(1), mem.clone());
        let s2 = AddressSpace::new(Asid(2), mem);
        let mut t = PinDownTable::new(8);
        let b1 = s1.alloc(PAGE_SIZE).unwrap();
        let b2 = s2.alloc(PAGE_SIZE).unwrap();
        t.pin_range(&s1, b1, 1).unwrap();
        t.pin_range(&s2, b2, 1).unwrap();
        t.purge_asid(Asid(1));
        assert_eq!(t.len(), 1);
    }
}
