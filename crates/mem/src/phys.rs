//! Simulated physical memory with real contents.
//!
//! Every node owns one [`PhysMemory`]: a sparse array of 4 KiB frames holding
//! actual bytes. All data movement in the reproduction — PIO, host DMA,
//! intra-node shared-memory copies — reads and writes these frames, so data
//! integrity can be asserted end to end (through fragmentation, packet drops
//! and retransmission).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::addr::{PhysAddr, PhysFrame, PAGE_SIZE};
use crate::MemError;

struct PhysInner {
    frames: HashMap<u64, Box<[u8]>>,
    /// Next frame number to hand out. Frames are never reused after free in
    /// this model; a u64 namespace cannot realistically be exhausted and
    /// non-reuse catches use-after-free bugs deterministically.
    next_frame: u64,
    total_frames: u64,
    allocated: u64,
}

/// Handle to one node's physical memory. Clones share storage.
#[derive(Clone)]
pub struct PhysMemory {
    inner: Arc<Mutex<PhysInner>>,
}

impl PhysMemory {
    /// Create a memory of `total_bytes` capacity (rounded down to frames).
    /// DAWNING-3000 nodes carried 1–4 GiB; tests typically use a few MiB.
    pub fn new(total_bytes: u64) -> Self {
        PhysMemory {
            inner: Arc::new(Mutex::new(PhysInner {
                frames: HashMap::new(),
                next_frame: 1, // frame 0 reserved: catches null-frame bugs
                total_frames: total_bytes / PAGE_SIZE,
                allocated: 0,
            })),
        }
    }

    /// Allocate one zeroed frame.
    pub fn alloc_frame(&self) -> Result<PhysFrame, MemError> {
        let mut inner = self.inner.lock();
        if inner.allocated >= inner.total_frames {
            return Err(MemError::OutOfMemory);
        }
        let n = inner.next_frame;
        inner.next_frame += 1;
        inner.allocated += 1;
        inner.frames.insert(n, vec![0u8; PAGE_SIZE as usize].into());
        Ok(PhysFrame(n))
    }

    /// Free a frame. Accessing it afterwards is an [`MemError::BadFrame`].
    pub fn free_frame(&self, f: PhysFrame) -> Result<(), MemError> {
        let mut inner = self.inner.lock();
        if inner.frames.remove(&f.0).is_none() {
            return Err(MemError::BadFrame(f));
        }
        inner.allocated -= 1;
        Ok(())
    }

    /// Frames currently allocated.
    pub fn allocated_frames(&self) -> u64 {
        self.inner.lock().allocated
    }

    /// Total frame capacity.
    pub fn total_frames(&self) -> u64 {
        self.inner.lock().total_frames
    }

    /// Read `buf.len()` bytes starting at `addr`, possibly crossing frame
    /// boundaries. Fails if any touched frame is unallocated.
    pub fn read(&self, addr: PhysAddr, buf: &mut [u8]) -> Result<(), MemError> {
        let inner = self.inner.lock();
        let mut pos = addr;
        let mut done = 0usize;
        while done < buf.len() {
            let frame = pos.frame();
            let off = pos.frame_offset() as usize;
            let chunk = ((PAGE_SIZE as usize) - off).min(buf.len() - done);
            let data = inner
                .frames
                .get(&frame.0)
                .ok_or(MemError::BadFrame(frame))?;
            buf[done..done + chunk].copy_from_slice(&data[off..off + chunk]);
            done += chunk;
            pos = pos.add(chunk as u64);
        }
        Ok(())
    }

    /// Write `buf` starting at `addr`, possibly crossing frame boundaries.
    pub fn write(&self, addr: PhysAddr, buf: &[u8]) -> Result<(), MemError> {
        let mut inner = self.inner.lock();
        let mut pos = addr;
        let mut done = 0usize;
        while done < buf.len() {
            let frame = pos.frame();
            let off = pos.frame_offset() as usize;
            let chunk = ((PAGE_SIZE as usize) - off).min(buf.len() - done);
            let data = inner
                .frames
                .get_mut(&frame.0)
                .ok_or(MemError::BadFrame(frame))?;
            data[off..off + chunk].copy_from_slice(&buf[done..done + chunk]);
            done += chunk;
            pos = pos.add(chunk as u64);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_rw_single_frame() {
        let m = PhysMemory::new(1 << 20);
        let f = m.alloc_frame().unwrap();
        let a = f.base().add(100);
        m.write(a, b"hello").unwrap();
        let mut out = [0u8; 5];
        m.read(a, &mut out).unwrap();
        assert_eq!(&out, b"hello");
    }

    #[test]
    fn rw_crossing_frames_requires_both_allocated() {
        let m = PhysMemory::new(1 << 20);
        let f1 = m.alloc_frame().unwrap();
        let f2 = m.alloc_frame().unwrap();
        // Frames are consecutive in this allocator, so a write near the end
        // of f1 spills into f2.
        assert_eq!(f2.0, f1.0 + 1);
        let a = f1.base().add(PAGE_SIZE - 2);
        m.write(a, b"abcd").unwrap();
        let mut out = [0u8; 4];
        m.read(a, &mut out).unwrap();
        assert_eq!(&out, b"abcd");
    }

    #[test]
    fn unallocated_frame_faults() {
        let m = PhysMemory::new(1 << 20);
        let mut buf = [0u8; 1];
        let err = m.read(PhysAddr(PAGE_SIZE * 999), &mut buf).unwrap_err();
        assert!(matches!(err, MemError::BadFrame(_)));
    }

    #[test]
    fn capacity_enforced() {
        let m = PhysMemory::new(PAGE_SIZE * 2);
        m.alloc_frame().unwrap();
        m.alloc_frame().unwrap();
        assert!(matches!(m.alloc_frame(), Err(MemError::OutOfMemory)));
        assert_eq!(m.allocated_frames(), 2);
    }

    #[test]
    fn free_then_use_is_detected() {
        let m = PhysMemory::new(1 << 20);
        let f = m.alloc_frame().unwrap();
        m.free_frame(f).unwrap();
        assert!(matches!(m.free_frame(f), Err(MemError::BadFrame(_))));
        let mut buf = [0u8; 1];
        assert!(m.read(f.base(), &mut buf).is_err());
        // Freed frames are not recycled, so a fresh alloc gets a new number.
        let g = m.alloc_frame().unwrap();
        assert_ne!(g, f);
    }
}
