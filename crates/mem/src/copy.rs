//! Host memory-copy cost model.
//!
//! The intra-node BCL path is two pipelined `memcpy`s through a shared
//! buffer. The paper reports 391 MB/s intra-node bandwidth "with the affect
//! of cache": small transfers that fit in L2 copy fast, big streaming copies
//! fall to DRAM speed. [`CopyModel`] captures that with a two-rate model and
//! a fixed per-call setup cost.

use suca_sim::SimDuration;

/// Cost model for one host-CPU `memcpy`.
#[derive(Clone, Debug)]
pub struct CopyModel {
    /// Fixed per-call overhead (function call, loop setup).
    pub setup: SimDuration,
    /// Copy bandwidth while the working set fits in cache.
    pub cached_bytes_per_sec: u64,
    /// Copy bandwidth once the working set exceeds `cache_bytes`.
    pub uncached_bytes_per_sec: u64,
    /// Effective cache capacity for the cached rate.
    pub cache_bytes: u64,
}

impl CopyModel {
    /// Power3-II / 375 MHz calibration. Chosen so that the pipelined
    /// two-copy intra-node path peaks at the paper's 391 MB/s for cache-
    /// resident payloads and roughly half that for streaming ones.
    pub fn power3() -> Self {
        CopyModel {
            setup: SimDuration::from_us_f64(0.15),
            // One memcpy at ~800 MB/s; two pipelined copies => ~400 MB/s
            // end-to-end, matching the paper's 391 MB/s "with cache".
            cached_bytes_per_sec: 800_000_000,
            uncached_bytes_per_sec: 380_000_000,
            cache_bytes: 4 * 1024 * 1024, // Power3-II L2 was 4–8 MB
        }
    }

    /// Time for one copy of `len` bytes.
    pub fn copy_time(&self, len: u64) -> SimDuration {
        if len == 0 {
            return self.setup;
        }
        let rate = if len <= self.cache_bytes {
            self.cached_bytes_per_sec
        } else {
            self.uncached_bytes_per_sec
        };
        self.setup + SimDuration::for_bytes(len, rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_len_costs_setup_only() {
        let m = CopyModel::power3();
        assert_eq!(m.copy_time(0), m.setup);
    }

    #[test]
    fn cached_is_faster_than_uncached() {
        let m = CopyModel::power3();
        let small = m.copy_time(1 << 20).as_us() / (1u64 << 20) as f64;
        let big = m.copy_time(64 << 20).as_us() / (64u64 << 20) as f64;
        assert!(small < big, "per-byte cached {small} !< uncached {big}");
    }

    #[test]
    fn monotone_in_length_within_regime() {
        let m = CopyModel::power3();
        assert!(m.copy_time(100) < m.copy_time(1000));
        assert!(m.copy_time(8 << 20) < m.copy_time(16 << 20));
    }
}
