//! Shared-memory segments for intra-node communication.
//!
//! BCL's intra-node path (paper §4.2) moves data through shared-memory buffer
//! queues rather than bouncing through the NIC, because host memcpy bandwidth
//! beats PCI DMA bandwidth. A [`SharedRegion`] is a run of physical frames
//! that any process on the node can map into its own address space; the
//! region is also directly addressable for queue bookkeeping.

use std::sync::Arc;

use crate::addr::{PhysAddr, PhysFrame, VirtAddr, PAGE_SIZE};
use crate::pagetable::AddressSpace;
use crate::phys::PhysMemory;
use crate::MemError;

struct RegionInner {
    mem: PhysMemory,
    frames: Vec<PhysFrame>,
    len: u64,
}

impl Drop for RegionInner {
    fn drop(&mut self) {
        for f in &self.frames {
            let _ = self.mem.free_frame(*f);
        }
    }
}

/// A reference-counted shared segment. Freed (frames returned) when the last
/// clone drops; processes that mapped it keep valid mappings only as long as
/// they hold a clone, mirroring SysV `shmat` lifetime rules.
#[derive(Clone)]
pub struct SharedRegion {
    inner: Arc<RegionInner>,
}

impl SharedRegion {
    /// Allocate a zeroed shared segment of at least `len` bytes.
    pub fn alloc(mem: &PhysMemory, len: u64) -> Result<Self, MemError> {
        let pages = len.max(1).div_ceil(PAGE_SIZE);
        let mut frames = Vec::with_capacity(pages as usize);
        for _ in 0..pages {
            match mem.alloc_frame() {
                Ok(f) => frames.push(f),
                Err(e) => {
                    for f in frames {
                        let _ = mem.free_frame(f);
                    }
                    return Err(e);
                }
            }
        }
        Ok(SharedRegion {
            inner: Arc::new(RegionInner {
                mem: mem.clone(),
                frames,
                len,
            }),
        })
    }

    /// Usable length in bytes.
    pub fn len(&self) -> u64 {
        self.inner.len
    }

    /// True if zero-length.
    pub fn is_empty(&self) -> bool {
        self.inner.len == 0
    }

    /// Map the whole segment contiguously into `space`; returns the base.
    pub fn map_into(&self, space: &AddressSpace) -> VirtAddr {
        space.map_frames(&self.inner.frames)
    }

    /// Physical address of byte `offset` (for DMA or queue bookkeeping).
    pub fn phys_at(&self, offset: u64) -> Result<PhysAddr, MemError> {
        if offset >= self.inner.len.max(1) {
            return Err(MemError::OutOfRange {
                offset,
                len: self.inner.len,
            });
        }
        let frame = self.inner.frames[(offset / PAGE_SIZE) as usize];
        Ok(frame.base().add(offset % PAGE_SIZE))
    }

    /// Read directly from the segment (bypassing any mapping).
    pub fn read(&self, offset: u64, buf: &mut [u8]) -> Result<(), MemError> {
        self.check(offset, buf.len() as u64)?;
        let mut pos = offset;
        let mut done = 0usize;
        while done < buf.len() {
            let chunk = ((PAGE_SIZE - pos % PAGE_SIZE) as usize).min(buf.len() - done);
            let phys = self.phys_at(pos)?;
            self.inner.mem.read(phys, &mut buf[done..done + chunk])?;
            done += chunk;
            pos += chunk as u64;
        }
        Ok(())
    }

    /// Write directly into the segment.
    pub fn write(&self, offset: u64, buf: &[u8]) -> Result<(), MemError> {
        self.check(offset, buf.len() as u64)?;
        let mut pos = offset;
        let mut done = 0usize;
        while done < buf.len() {
            let chunk = ((PAGE_SIZE - pos % PAGE_SIZE) as usize).min(buf.len() - done);
            let phys = self.phys_at(pos)?;
            self.inner.mem.write(phys, &buf[done..done + chunk])?;
            done += chunk;
            pos += chunk as u64;
        }
        Ok(())
    }

    fn check(&self, offset: u64, len: u64) -> Result<(), MemError> {
        if offset + len > self.inner.len {
            return Err(MemError::OutOfRange {
                offset: offset + len,
                len: self.inner.len,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagetable::Asid;

    #[test]
    fn two_processes_see_the_same_bytes() {
        let mem = PhysMemory::new(1 << 20);
        let a = AddressSpace::new(Asid(1), mem.clone());
        let b = AddressSpace::new(Asid(2), mem.clone());
        let region = SharedRegion::alloc(&mem, 10_000).unwrap();
        let va = region.map_into(&a);
        let vb = region.map_into(&b);
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i * 7 % 256) as u8).collect();
        a.write(va, &payload).unwrap();
        assert_eq!(b.read_vec(vb, 10_000).unwrap(), payload);
    }

    #[test]
    fn direct_and_mapped_views_agree() {
        let mem = PhysMemory::new(1 << 20);
        let a = AddressSpace::new(Asid(1), mem.clone());
        let region = SharedRegion::alloc(&mem, 8192).unwrap();
        let va = region.map_into(&a);
        region.write(4090, b"crosses").unwrap(); // spans the page boundary
        assert_eq!(a.read_vec(va.add(4090), 7).unwrap(), b"crosses".to_vec());
    }

    #[test]
    fn bounds_are_enforced() {
        let mem = PhysMemory::new(1 << 20);
        let region = SharedRegion::alloc(&mem, 100).unwrap();
        assert!(region.write(90, &[0u8; 20]).is_err());
        let mut b = [0u8; 1];
        assert!(region.read(100, &mut b).is_err());
        assert!(region.phys_at(100).is_err());
    }

    #[test]
    fn frames_freed_on_last_drop() {
        let mem = PhysMemory::new(1 << 20);
        let before = mem.allocated_frames();
        {
            let region = SharedRegion::alloc(&mem, PAGE_SIZE * 3).unwrap();
            let clone = region.clone();
            assert_eq!(mem.allocated_frames(), before + 3);
            drop(region);
            assert_eq!(mem.allocated_frames(), before + 3, "clone keeps it alive");
            drop(clone);
        }
        assert_eq!(mem.allocated_frames(), before);
    }
}
