//! Address newtypes.
//!
//! The paper's whole argument about address translation hinges on the
//! distinction between a process's virtual addresses, physical frame
//! addresses, and the bus addresses a DMA engine uses. Confusing them is the
//! classic messaging-stack bug, so each gets its own type; conversions are
//! explicit and live in the page-table / pin-down code.

use core::fmt;

/// Page size of the simulated hosts (AIX on Power3 used 4 KiB base pages).
pub const PAGE_SIZE: u64 = 4096;

/// A virtual address within one process address space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtAddr(pub u64);

/// A physical memory address on one node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysAddr(pub u64);

/// An address as seen by a bus-master DMA engine. On DAWNING-3000's PCI the
/// mapping from physical to bus addresses is identity, but the type keeps the
/// kernel-module code honest about performing the conversion.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BusAddr(pub u64);

/// A virtual page number.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VirtPage(pub u64);

/// A physical frame number.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PhysFrame(pub u64);

impl VirtAddr {
    /// The page containing this address.
    #[inline]
    pub fn page(self) -> VirtPage {
        VirtPage(self.0 / PAGE_SIZE)
    }
    /// Offset within the page.
    #[inline]
    pub fn page_offset(self) -> u64 {
        self.0 % PAGE_SIZE
    }
    /// Address `n` bytes further.
    #[inline]
    #[allow(clippy::should_implement_trait)] // offset, not algebraic addition
    pub fn add(self, n: u64) -> VirtAddr {
        VirtAddr(self.0.checked_add(n).expect("VirtAddr overflow"))
    }
}

impl VirtPage {
    /// First address of the page.
    #[inline]
    pub fn base(self) -> VirtAddr {
        VirtAddr(self.0 * PAGE_SIZE)
    }
    /// The next page.
    #[inline]
    pub fn next(self) -> VirtPage {
        VirtPage(self.0 + 1)
    }
}

impl PhysFrame {
    /// First physical address of the frame.
    #[inline]
    pub fn base(self) -> PhysAddr {
        PhysAddr(self.0 * PAGE_SIZE)
    }
}

impl PhysAddr {
    /// The frame containing this address.
    #[inline]
    pub fn frame(self) -> PhysFrame {
        PhysFrame(self.0 / PAGE_SIZE)
    }
    /// Offset within the frame.
    #[inline]
    pub fn frame_offset(self) -> u64 {
        self.0 % PAGE_SIZE
    }
    /// Address `n` bytes further.
    #[inline]
    #[allow(clippy::should_implement_trait)] // offset, not algebraic addition
    pub fn add(self, n: u64) -> PhysAddr {
        PhysAddr(self.0.checked_add(n).expect("PhysAddr overflow"))
    }
    /// Identity phys→bus conversion of the DAWNING PCI complex.
    #[inline]
    pub fn to_bus(self) -> BusAddr {
        BusAddr(self.0)
    }
}

impl BusAddr {
    /// Identity bus→phys conversion (see [`PhysAddr::to_bus`]).
    #[inline]
    pub fn to_phys(self) -> PhysAddr {
        PhysAddr(self.0)
    }
}

impl fmt::Debug for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "V:{:#x}", self.0)
    }
}
impl fmt::Debug for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P:{:#x}", self.0)
    }
}
impl fmt::Debug for BusAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B:{:#x}", self.0)
    }
}

/// Number of pages spanned by the byte range `[addr, addr + len)`.
/// A zero-length range spans zero pages.
pub fn pages_spanned(addr: VirtAddr, len: u64) -> u64 {
    if len == 0 {
        return 0;
    }
    let first = addr.page().0;
    let last = VirtAddr(addr.0 + len - 1).page().0;
    last - first + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_math() {
        let a = VirtAddr(PAGE_SIZE * 3 + 17);
        assert_eq!(a.page(), VirtPage(3));
        assert_eq!(a.page_offset(), 17);
        assert_eq!(VirtPage(3).base(), VirtAddr(PAGE_SIZE * 3));
        assert_eq!(PhysFrame(2).base(), PhysAddr(PAGE_SIZE * 2));
        assert_eq!(PhysAddr(PAGE_SIZE * 2 + 5).frame(), PhysFrame(2));
    }

    #[test]
    fn spanned_pages() {
        assert_eq!(pages_spanned(VirtAddr(0), 0), 0);
        assert_eq!(pages_spanned(VirtAddr(0), 1), 1);
        assert_eq!(pages_spanned(VirtAddr(0), PAGE_SIZE), 1);
        assert_eq!(pages_spanned(VirtAddr(0), PAGE_SIZE + 1), 2);
        assert_eq!(pages_spanned(VirtAddr(PAGE_SIZE - 1), 2), 2);
        assert_eq!(pages_spanned(VirtAddr(1), PAGE_SIZE), 2);
    }

    #[test]
    fn bus_roundtrip() {
        let p = PhysAddr(0x1234);
        assert_eq!(p.to_bus().to_phys(), p);
    }
}
