//! Property tests on plan validation: the registration-time validator must
//! be a sound gate for the firmware interpreter. Any plan — however
//! adversarial — is either rejected at registration (missing peer,
//! self-loop, chunk overflow, deadlock cycle, stray message) or executes
//! the exact step semantics to completion, so no schedule can reach the
//! NIC and stall the watchdog.

use proptest::prelude::*;

use suca_coll::{Algorithm, CollKind, Combine, Plan, PlanRegistry, PlanStep, Topology};

/// One generated step: `(recv_from, send_to, adopt, chunk)` with peers
/// drawn from a range wider than `ranks` so missing peers and self-loops
/// occur.
type RawStep = (Vec<u32>, Vec<u32>, bool, u32);

/// Assemble a plan from flat generated data: `raw[rank]` is a list of steps.
fn assemble(ranks: u32, chunks: u32, raw: Vec<Vec<RawStep>>) -> Plan {
    let schedules = raw
        .into_iter()
        .map(|steps| {
            steps
                .into_iter()
                .map(|(recv_from, send_to, adopt, chunk)| PlanStep {
                    recv_from,
                    send_to,
                    combine: if adopt {
                        Combine::Adopt
                    } else {
                        Combine::Reduce
                    },
                    chunk,
                })
                .collect()
        })
        .collect();
    Plan {
        kind: CollKind::Allreduce,
        algorithm: Algorithm::FlatFanIn,
        ranks,
        root: 0,
        chunks,
        schedules,
    }
}

proptest! {
    /// Soundness: an accepted plan runs to completion in the reference
    /// executor (the firmware interpreter's semantics); a rejected plan
    /// never reaches it.
    #[test]
    fn arbitrary_plans_are_rejected_or_run_to_completion(
        ranks in 1u32..7,
        chunks in 1u32..3,
        raw in prop::collection::vec(
            prop::collection::vec(
                (
                    prop::collection::vec(0u32..9, 0..3),
                    prop::collection::vec(0u32..9, 0..3),
                    any::<bool>(),
                    0u32..4,
                ),
                0..4,
            ),
            1..7,
        ),
    ) {
        let declared = ranks.min(raw.len() as u32).max(1);
        let mut raw = raw;
        raw.truncate(declared as usize);
        let plan = assemble(declared, chunks, raw);
        let inputs = vec![1.0f64; plan.schedules.len()];
        match plan.validate() {
            Ok(()) => {
                // Rank-count consistency is part of acceptance…
                prop_assert_eq!(plan.schedules.len(), plan.ranks as usize);
                // …and an accepted plan must execute without wedging.
                let out = plan.execute_f64_reference(&inputs);
                prop_assert!(out.is_some(), "accepted plan wedged: {:?}", plan);
            }
            Err(_) => {
                // Rejection is always a safe outcome; nothing to execute.
            }
        }
    }

    /// Completeness on the generator side: every plan the registry can
    /// select — any kind, size class, rank count, root, fabric — validates
    /// and computes the right answer (sum reduction for allreduce, root
    /// replication for bcast).
    #[test]
    fn registry_plans_always_validate_and_compute(
        ranks in 1u32..65,
        root_pick in 0u32..65,
        bytes in 0u64..40_000,
        kind_pick in 0u32..3,
        mesh in any::<bool>(),
    ) {
        let kind = match kind_pick {
            0 => CollKind::Barrier,
            1 => CollKind::Bcast,
            _ => CollKind::Allreduce,
        };
        let topo = if mesh { Topology::Mesh2D } else { Topology::LinearSwitchArray };
        let root = root_pick % ranks;
        let plan = PlanRegistry::new(topo).plan(kind, ranks, root, bytes);
        prop_assert!(plan.is_ok(), "registry produced invalid plan: {:?}", plan.err());
        let plan = plan.unwrap();
        prop_assert_eq!(plan.ranks, ranks);

        let inputs: Vec<f64> = (0..ranks).map(|r| (r + 3) as f64).collect();
        let out = plan.execute_f64_reference(&inputs).expect("validated plan wedged");
        match kind {
            CollKind::Bcast => {
                for (r, v) in out.iter().enumerate() {
                    prop_assert_eq!(*v, inputs[root as usize],
                        "bcast rank {} got {}", r, v);
                }
            }
            CollKind::Allreduce | CollKind::Barrier => {
                let want: f64 = inputs.iter().sum();
                for (r, v) in out.iter().enumerate() {
                    prop_assert_eq!(*v, want, "allreduce rank {} got {}", r, v);
                }
            }
        }
    }
}
