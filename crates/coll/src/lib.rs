//! Declarative collective execution plans.
//!
//! A collective (barrier / bcast / allreduce) is described as one *plan*: a
//! per-rank schedule of steps, each step a set of peer receives (combined
//! into the rank's accumulator) followed by peer sends of the accumulator.
//! The NIC firmware interprets the schedule directly — fan-in combining and
//! fan-out forwarding happen entirely NIC-side, so the host pays exactly one
//! initiating trap per participant (the crossing-contract extension asserted
//! by `ChainPolicy::collective()`).
//!
//! Step semantics, shared by the validator here and the firmware
//! interpreter in `suca-bcl`:
//!
//! 1. On *entering* a step the rank sends its current accumulator to every
//!    rank in `send_to` (one message per entry, tagged with the step's
//!    `chunk`).
//! 2. The step *completes* when one message per `recv_from` entry has
//!    arrived on the matching `(peer, chunk)` edge; arrivals are folded into
//!    the accumulator in the listed order ([`Combine::Reduce`]) or replace
//!    it ([`Combine::Adopt`] — the fan-out half of reduce+bcast shapes).
//!
//! Send-at-entry is what makes both halves of a butterfly expressible: a
//! recursive-doubling step `{send_to: [p], recv_from: [p]}` ships the
//! pre-combine value and folds the partner's, while a fan-in tree puts the
//! parent send in its own step so it carries the combined value.
//!
//! Plans are *validated by abstract execution* at registration: the exact
//! step semantics are run over per-edge message queues until fixpoint, so a
//! plan either fails fast ([`PlanError`]) or is guaranteed to run to
//! completion without wedging the firmware watchdog. The same oracle backs
//! the property tests.
//!
//! [`PlanRegistry`] picks the algorithm per (kind, rank count, payload
//! size, fabric topology): Myrinet's linear switch array and the nwrc mesh
//! get different plans behind the same API.

use std::collections::HashMap;

/// Which collective a plan implements.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum CollKind {
    /// All ranks synchronize; no payload.
    Barrier,
    /// Root's payload is replicated to every rank.
    Bcast,
    /// Elementwise reduction of every rank's payload, result on all ranks.
    Allreduce,
}

impl CollKind {
    /// Stable display name (report rows, plan dumps).
    pub fn as_str(&self) -> &'static str {
        match self {
            CollKind::Barrier => "barrier",
            CollKind::Bcast => "bcast",
            CollKind::Allreduce => "allreduce",
        }
    }
}

/// Collective algorithm shape.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Algorithm {
    /// Star: everyone sends to the root, root answers everyone. Optimal at
    /// tiny rank counts where tree setup costs dominate.
    FlatFanIn,
    /// Binomial tree fan-in and/or fan-out; log₂(n) rounds, works at any
    /// rank count.
    BinomialTree,
    /// Chain 0→1→…→n−1 and back. Nearest-neighbor traffic only — the right
    /// shape for a linear switch array moving large payloads.
    Ring,
    /// Pairwise exchange doubling the stride each round; log₂(n) rounds
    /// with all links busy every round. Non-powers-of-two fold the extra
    /// ranks in/out around a power-of-two core.
    RecursiveDoubling,
}

impl Algorithm {
    /// Stable display name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Algorithm::FlatFanIn => "flat",
            Algorithm::BinomialTree => "binomial",
            Algorithm::Ring => "ring",
            Algorithm::RecursiveDoubling => "recursive-doubling",
        }
    }
}

/// How a step's arrivals enter the accumulator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Combine {
    /// Fold with the collective's reduction operator (fan-in half).
    Reduce,
    /// Replace the accumulator (fan-out half: the arriving value is the
    /// finished result).
    Adopt,
}

/// One step of one rank's schedule. `send_to` fires on entry with the
/// current accumulator; the step completes when every `recv_from` arrival
/// (matched per `(peer, chunk)` edge, FIFO) has been combined.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PlanStep {
    /// Peers whose contribution this step waits for, combined in order.
    pub recv_from: Vec<u32>,
    /// Peers the accumulator is sent to on step entry.
    pub send_to: Vec<u32>,
    /// Receive mode for this step's arrivals.
    pub combine: Combine,
    /// Chunk index keying message matching (and the payload byte range in
    /// chunked plans). Must be `< Plan::chunks`.
    pub chunk: u32,
}

impl PlanStep {
    /// A pure receive-and-reduce step.
    pub fn recv_reduce(from: Vec<u32>) -> Self {
        PlanStep {
            recv_from: from,
            send_to: Vec::new(),
            combine: Combine::Reduce,
            chunk: 0,
        }
    }

    /// A pure receive-and-adopt step (fan-out).
    pub fn recv_adopt(from: Vec<u32>) -> Self {
        PlanStep {
            recv_from: from,
            send_to: Vec::new(),
            combine: Combine::Adopt,
            chunk: 0,
        }
    }

    /// A pure send step.
    pub fn send(to: Vec<u32>) -> Self {
        PlanStep {
            recv_from: Vec::new(),
            send_to: to,
            combine: Combine::Reduce,
            chunk: 0,
        }
    }

    /// A butterfly exchange: send to `peer`, then reduce `peer`'s value in.
    pub fn exchange(peer: u32) -> Self {
        PlanStep {
            recv_from: vec![peer],
            send_to: vec![peer],
            combine: Combine::Reduce,
            chunk: 0,
        }
    }
}

/// A complete collective plan: one schedule per rank.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Plan {
    /// Collective this plan implements.
    pub kind: CollKind,
    /// Algorithm shape the schedules encode.
    pub algorithm: Algorithm,
    /// Number of participating ranks; `schedules.len()` must match.
    pub ranks: u32,
    /// Root rank (bcast source / reduction anchor).
    pub root: u32,
    /// Number of payload chunks messages may be keyed by (≥ 1; every
    /// generated plan currently uses 1).
    pub chunks: u32,
    /// `schedules[rank]` is that rank's step list, executed in order.
    pub schedules: Vec<Vec<PlanStep>>,
}

/// Why a plan was rejected at registration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PlanError {
    /// `schedules.len()` disagrees with `ranks`, or `ranks == 0`.
    RankCountMismatch {
        /// Declared rank count.
        expected: u32,
        /// Schedules actually present.
        got: usize,
    },
    /// A step names a peer outside `0..ranks`.
    MissingPeer {
        /// Rank whose schedule is broken.
        rank: u32,
        /// Step index.
        step: usize,
        /// The out-of-range peer.
        peer: u32,
    },
    /// A step sends to or receives from its own rank.
    SelfLoop {
        /// Offending rank.
        rank: u32,
        /// Step index.
        step: usize,
    },
    /// A step's chunk index is `>= chunks`.
    ChunkOverflow {
        /// Offending rank.
        rank: u32,
        /// Step index.
        step: usize,
        /// The out-of-range chunk.
        chunk: u32,
    },
    /// Abstract execution reached fixpoint with ranks still waiting —
    /// a cycle or a receive nobody sends.
    Deadlock {
        /// Ranks stuck mid-schedule.
        stuck_ranks: usize,
    },
    /// Every rank finished but messages were sent that no step consumes;
    /// the firmware would buffer them forever.
    StrayMessages {
        /// Unconsumed messages at completion.
        count: usize,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::RankCountMismatch { expected, got } => {
                write!(
                    f,
                    "plan declares {expected} ranks but holds {got} schedules"
                )
            }
            PlanError::MissingPeer { rank, step, peer } => {
                write!(f, "rank {rank} step {step} names missing peer {peer}")
            }
            PlanError::SelfLoop { rank, step } => {
                write!(f, "rank {rank} step {step} is a self-loop")
            }
            PlanError::ChunkOverflow { rank, step, chunk } => {
                write!(f, "rank {rank} step {step} chunk {chunk} out of range")
            }
            PlanError::Deadlock { stuck_ranks } => {
                write!(f, "plan deadlocks with {stuck_ranks} ranks stuck")
            }
            PlanError::StrayMessages { count } => {
                write!(f, "plan completes with {count} stray messages")
            }
        }
    }
}

impl std::error::Error for PlanError {}

impl Plan {
    /// Build a plan for `kind` with `algorithm` over `ranks` ranks rooted
    /// at `root`. Algorithms that do not define the kind (recursive
    /// doubling has no bcast shape) fall back to the binomial tree.
    /// Generated plans always validate; [`Plan::validate`] is for
    /// externally supplied or property-generated schedules.
    pub fn build(kind: CollKind, algorithm: Algorithm, ranks: u32, root: u32) -> Plan {
        let n = ranks.max(1);
        let root = root % n;
        let schedules = (0..n)
            .map(|abs| {
                // Schedules are generated in root-relative rank space and
                // the peers mapped back, so one shape serves every root.
                let rel = (abs + n - root) % n;
                let steps = match (algorithm, kind) {
                    (Algorithm::FlatFanIn, CollKind::Bcast) => flat_bcast(rel, n),
                    (Algorithm::FlatFanIn, _) => flat_allreduce(rel, n),
                    (Algorithm::BinomialTree, CollKind::Bcast) => binomial_bcast(rel, n),
                    (Algorithm::BinomialTree, _) => binomial_allreduce(rel, n),
                    (Algorithm::Ring, CollKind::Bcast) => ring_bcast(rel, n),
                    (Algorithm::Ring, _) => ring_allreduce(rel, n),
                    (Algorithm::RecursiveDoubling, CollKind::Bcast) => binomial_bcast(rel, n),
                    (Algorithm::RecursiveDoubling, _) => recursive_doubling(rel, n),
                };
                steps
                    .into_iter()
                    .map(|mut s| {
                        for p in s.recv_from.iter_mut().chain(s.send_to.iter_mut()) {
                            *p = (*p + root) % n;
                        }
                        s
                    })
                    .collect()
            })
            .collect();
        Plan {
            kind,
            algorithm,
            ranks: n,
            root,
            chunks: 1,
            schedules,
        }
    }

    /// Validate by abstract execution of the exact step semantics. `Ok`
    /// guarantees the firmware interpreter runs the plan to completion
    /// (given delivery) without wedging; any structural defect — missing
    /// peer, self-loop, chunk overflow, deadlock cycle, stray message — is
    /// rejected here, before a descriptor can reach the NIC.
    pub fn validate(&self) -> Result<(), PlanError> {
        let n = self.ranks;
        if n == 0 || self.schedules.len() != n as usize {
            return Err(PlanError::RankCountMismatch {
                expected: n,
                got: self.schedules.len(),
            });
        }
        for (rank, steps) in self.schedules.iter().enumerate() {
            for (si, step) in steps.iter().enumerate() {
                if step.chunk >= self.chunks.max(1) {
                    return Err(PlanError::ChunkOverflow {
                        rank: rank as u32,
                        step: si,
                        chunk: step.chunk,
                    });
                }
                for &p in step.recv_from.iter().chain(step.send_to.iter()) {
                    if p >= n {
                        return Err(PlanError::MissingPeer {
                            rank: rank as u32,
                            step: si,
                            peer: p,
                        });
                    }
                    if p == rank as u32 {
                        return Err(PlanError::SelfLoop {
                            rank: rank as u32,
                            step: si,
                        });
                    }
                }
            }
        }

        // Abstract execution: per-edge message counts, step pointers, and a
        // sent-on-entry flag per rank; iterate to fixpoint.
        let mut edges: HashMap<(u32, u32, u32), u32> = HashMap::new();
        let mut cursor = vec![0usize; n as usize];
        let mut entered = vec![false; n as usize];
        loop {
            let mut progress = false;
            for r in 0..n as usize {
                while let Some(step) = self.schedules[r].get(cursor[r]) {
                    if !entered[r] {
                        for &d in &step.send_to {
                            *edges.entry((r as u32, d, step.chunk)).or_default() += 1;
                        }
                        entered[r] = true;
                        progress = true;
                    }
                    // One arrival per recv_from entry; duplicates in the
                    // list need that many queued messages.
                    let mut need: HashMap<(u32, u32, u32), u32> = HashMap::new();
                    for &p in &step.recv_from {
                        *need.entry((p, r as u32, step.chunk)).or_default() += 1;
                    }
                    let ready = need
                        .iter()
                        .all(|(edge, k)| edges.get(edge).copied().unwrap_or(0) >= *k);
                    if !ready {
                        break;
                    }
                    for (edge, k) in need {
                        if let Some(c) = edges.get_mut(&edge) {
                            *c -= k;
                        }
                    }
                    cursor[r] += 1;
                    entered[r] = false;
                    progress = true;
                }
            }
            if !progress {
                break;
            }
        }

        let stuck = (0..n as usize)
            .filter(|&r| cursor[r] < self.schedules[r].len())
            .count();
        if stuck > 0 {
            return Err(PlanError::Deadlock { stuck_ranks: stuck });
        }
        let stray: u32 = edges.values().sum();
        if stray > 0 {
            return Err(PlanError::StrayMessages {
                count: stray as usize,
            });
        }
        Ok(())
    }

    /// Reference executor: run the step semantics over real `f64` values
    /// (sum reduction) and return each rank's final accumulator, or `None`
    /// if the plan wedges. This is the oracle the property tests hold the
    /// validator to: `validate() == Ok` must imply execution completes.
    pub fn execute_f64_reference(&self, inputs: &[f64]) -> Option<Vec<f64>> {
        let n = self.ranks as usize;
        if inputs.len() != n || self.schedules.len() != n {
            return None;
        }
        let mut acc: Vec<f64> = inputs.to_vec();
        let mut inbox: HashMap<(u32, u32, u32), std::collections::VecDeque<f64>> = HashMap::new();
        let mut cursor = vec![0usize; n];
        let mut entered = vec![false; n];
        loop {
            let mut progress = false;
            for r in 0..n {
                while let Some(step) = self.schedules[r].get(cursor[r]) {
                    if !entered[r] {
                        for &d in &step.send_to {
                            inbox
                                .entry((r as u32, d, step.chunk))
                                .or_default()
                                .push_back(acc[r]);
                        }
                        entered[r] = true;
                        progress = true;
                    }
                    let mut need: HashMap<(u32, u32, u32), usize> = HashMap::new();
                    for &p in &step.recv_from {
                        *need.entry((p, r as u32, step.chunk)).or_default() += 1;
                    }
                    let ready = need
                        .iter()
                        .all(|(edge, k)| inbox.get(edge).map_or(0, |q| q.len()) >= *k);
                    if !ready {
                        break;
                    }
                    for &p in &step.recv_from {
                        let v = inbox.get_mut(&(p, r as u32, step.chunk))?.pop_front()?;
                        match step.combine {
                            Combine::Reduce => acc[r] += v,
                            Combine::Adopt => acc[r] = v,
                        }
                    }
                    cursor[r] += 1;
                    entered[r] = false;
                    progress = true;
                }
            }
            if !progress {
                break;
            }
        }
        if (0..n).all(|r| cursor[r] >= self.schedules[r].len()) {
            Some(acc)
        } else {
            None
        }
    }

    /// Total messages the plan puts on the (logical) wire.
    pub fn total_messages(&self) -> usize {
        self.schedules
            .iter()
            .flatten()
            .map(|s| s.send_to.len())
            .sum()
    }

    /// Longest schedule over all ranks (round count upper bound).
    pub fn max_steps(&self) -> usize {
        self.schedules.iter().map(|s| s.len()).max().unwrap_or(0)
    }
}

// ---------------------------------------------------------------------------
// Algorithm shapes, in root-relative rank space (root = 0).
// ---------------------------------------------------------------------------

fn flat_allreduce(r: u32, n: u32) -> Vec<PlanStep> {
    if n == 1 {
        return Vec::new();
    }
    if r == 0 {
        vec![
            PlanStep::recv_reduce((1..n).collect()),
            PlanStep::send((1..n).collect()),
        ]
    } else {
        vec![PlanStep::send(vec![0]), PlanStep::recv_adopt(vec![0])]
    }
}

fn flat_bcast(r: u32, n: u32) -> Vec<PlanStep> {
    if n == 1 {
        return Vec::new();
    }
    if r == 0 {
        vec![PlanStep::send((1..n).collect())]
    } else {
        vec![PlanStep::recv_adopt(vec![0])]
    }
}

/// Binomial fan-in: receive children smallest-bit first, then send to the
/// parent at the rank's lowest set bit.
fn binomial_reduce(r: u32, n: u32) -> Vec<PlanStep> {
    let mut steps = Vec::new();
    let mut mask = 1u32;
    while mask < n {
        if r & mask != 0 {
            steps.push(PlanStep::send(vec![r - mask]));
            break;
        }
        if r + mask < n {
            steps.push(PlanStep::recv_reduce(vec![r + mask]));
        }
        mask <<= 1;
    }
    steps
}

/// Binomial fan-out: receive from the parent, then send to children in
/// decreasing-bit order (the mirror of [`binomial_reduce`]).
fn binomial_bcast(r: u32, n: u32) -> Vec<PlanStep> {
    let mut steps = Vec::new();
    let mut mask = 1u32;
    while mask < n {
        if r & mask != 0 {
            steps.push(PlanStep::recv_adopt(vec![r - mask]));
            break;
        }
        mask <<= 1;
    }
    let mut m = mask >> 1;
    while m > 0 {
        if r & m == 0 && r + m < n {
            steps.push(PlanStep::send(vec![r + m]));
        }
        m >>= 1;
    }
    steps
}

fn binomial_allreduce(r: u32, n: u32) -> Vec<PlanStep> {
    let mut steps = binomial_reduce(r, n);
    steps.extend(binomial_bcast(r, n));
    steps
}

/// Chain reduce 0→…→n−1, then chain the finished value back n−1→…→0.
/// Every hop is nearest-neighbor in rank order.
fn ring_allreduce(r: u32, n: u32) -> Vec<PlanStep> {
    if n == 1 {
        return Vec::new();
    }
    let mut steps = Vec::new();
    if r > 0 {
        steps.push(PlanStep::recv_reduce(vec![r - 1]));
    }
    if r + 1 < n {
        steps.push(PlanStep::send(vec![r + 1]));
        steps.push(PlanStep::recv_adopt(vec![r + 1]));
    }
    if r > 0 {
        steps.push(PlanStep::send(vec![r - 1]));
    }
    steps
}

/// Chain the root's value down the line 0→1→…→n−1.
fn ring_bcast(r: u32, n: u32) -> Vec<PlanStep> {
    let mut steps = Vec::new();
    if r > 0 {
        steps.push(PlanStep::recv_adopt(vec![r - 1]));
    }
    if r + 1 < n {
        steps.push(PlanStep::send(vec![r + 1]));
    }
    steps
}

/// Pairwise-exchange butterfly over the largest power-of-two core; the
/// `n − core` extra ranks fold their value into a core partner first and
/// adopt the result from it afterwards.
fn recursive_doubling(r: u32, n: u32) -> Vec<PlanStep> {
    if n == 1 {
        return Vec::new();
    }
    let core = if n.is_power_of_two() {
        n
    } else {
        (n + 1).next_power_of_two() >> 1
    };
    let extra = n - core;
    let mut steps = Vec::new();

    // Extra ranks (the tail above the core) pair with the first `extra`
    // core ranks: fold in, sit out the butterfly, adopt the result.
    if r >= core {
        let partner = r - core;
        steps.push(PlanStep::send(vec![partner]));
        steps.push(PlanStep::recv_adopt(vec![partner]));
        return steps;
    }
    if r < extra {
        steps.push(PlanStep::recv_reduce(vec![r + core]));
    }
    let mut mask = 1u32;
    while mask < core {
        steps.push(PlanStep::exchange(r ^ mask));
        mask <<= 1;
    }
    if r < extra {
        steps.push(PlanStep::send(vec![r + core]));
    }
    steps
}

// ---------------------------------------------------------------------------
// Topology-aware registry.
// ---------------------------------------------------------------------------

/// Fabric shape the registry selects for.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Topology {
    /// Myrinet's linear array of crossbar switches: rank-order neighbors
    /// are cheap, long strides cross many switch hops.
    LinearSwitchArray,
    /// The nwrc 2-D wormhole mesh: bisection grows with the side, strided
    /// pairwise exchange keeps every dimension busy.
    Mesh2D,
}

impl Topology {
    /// Map a fabric's `name()` to its topology (unknown names get the
    /// conservative linear model).
    pub fn from_fabric_name(name: &str) -> Topology {
        match name {
            "nwrc-mesh" => Topology::Mesh2D,
            _ => Topology::LinearSwitchArray,
        }
    }
}

/// Payload size (bytes) at which chain/pipeline shapes overtake trees for
/// bandwidth-bound collectives.
pub const LARGE_MSG_BYTES: u64 = 8192;

/// Rank count at or below which the flat star beats any tree.
pub const FLAT_MAX_RANKS: u32 = 4;

/// Selects and builds validated plans per (kind, ranks, bytes) for one
/// fabric topology. Selection is a pure function, so every node of a
/// cluster derives the identical plan without coordination.
#[derive(Clone, Copy, Debug)]
pub struct PlanRegistry {
    topology: Topology,
}

impl PlanRegistry {
    /// Registry for an explicit topology.
    pub fn new(topology: Topology) -> Self {
        PlanRegistry { topology }
    }

    /// Registry for a fabric by its `name()`.
    pub fn for_fabric(name: &str) -> Self {
        Self::new(Topology::from_fabric_name(name))
    }

    /// The topology this registry selects for.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Pick the algorithm for a collective of `ranks` ranks moving `bytes`
    /// payload bytes per rank.
    pub fn select(&self, kind: CollKind, ranks: u32, bytes: u64) -> Algorithm {
        if ranks <= FLAT_MAX_RANKS {
            return Algorithm::FlatFanIn;
        }
        match (self.topology, kind) {
            // Linear switch array: trees for latency-bound ops, the
            // nearest-neighbor chain once payloads are bandwidth-bound.
            (Topology::LinearSwitchArray, CollKind::Barrier) => Algorithm::BinomialTree,
            (Topology::LinearSwitchArray, _) if bytes >= LARGE_MSG_BYTES => Algorithm::Ring,
            (Topology::LinearSwitchArray, _) => Algorithm::BinomialTree,
            // Mesh: pairwise exchange exploits the bisection; bcast has no
            // doubling shape, so it stays a tree until payloads are large.
            (Topology::Mesh2D, CollKind::Bcast) if bytes >= LARGE_MSG_BYTES => Algorithm::Ring,
            (Topology::Mesh2D, CollKind::Bcast) => Algorithm::BinomialTree,
            (Topology::Mesh2D, _) if bytes >= LARGE_MSG_BYTES => Algorithm::Ring,
            (Topology::Mesh2D, _) => Algorithm::RecursiveDoubling,
        }
    }

    /// Select, build, and validate the plan. Generated plans are valid by
    /// construction; validation still runs so no schedule — however it was
    /// produced — reaches the firmware unchecked.
    pub fn plan(
        &self,
        kind: CollKind,
        ranks: u32,
        root: u32,
        bytes: u64,
    ) -> Result<Plan, PlanError> {
        let plan = Plan::build(kind, self.select(kind, ranks, bytes), ranks, root);
        plan.validate()?;
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Execute a validated plan; panics on wedge.
    fn execute_f64(plan: &Plan, inputs: &[f64]) -> Vec<f64> {
        plan.execute_f64_reference(inputs)
            .expect("validated plan wedged in reference executor")
    }

    const ALGOS: [Algorithm; 4] = [
        Algorithm::FlatFanIn,
        Algorithm::BinomialTree,
        Algorithm::Ring,
        Algorithm::RecursiveDoubling,
    ];

    #[test]
    fn generated_plans_validate_at_many_shapes() {
        for algo in ALGOS {
            for kind in [CollKind::Barrier, CollKind::Bcast, CollKind::Allreduce] {
                for n in [1u32, 2, 3, 4, 5, 7, 8, 13, 16, 31, 64] {
                    for root in [0, n - 1, n / 2] {
                        let plan = Plan::build(kind, algo, n, root);
                        plan.validate()
                            .unwrap_or_else(|e| panic!("{algo:?}/{kind:?} n={n} root={root}: {e}"));
                    }
                }
            }
        }
    }

    #[test]
    fn allreduce_sums_on_every_rank_every_algorithm() {
        for algo in ALGOS {
            for n in [2u32, 3, 5, 8, 13, 16] {
                for root in [0, n - 1] {
                    let plan = Plan::build(CollKind::Allreduce, algo, n, root);
                    let inputs: Vec<f64> = (0..n).map(|r| (r + 1) as f64).collect();
                    let want: f64 = inputs.iter().sum();
                    let out = execute_f64(&plan, &inputs);
                    for (r, v) in out.iter().enumerate() {
                        assert_eq!(
                            *v, want,
                            "{algo:?} n={n} root={root} rank {r}: {v} != {want}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn bcast_replicates_root_every_algorithm() {
        for algo in ALGOS {
            for n in [2u32, 3, 6, 8, 11, 16] {
                for root in [0, 2 % n, n - 1] {
                    let plan = Plan::build(CollKind::Bcast, algo, n, root);
                    let mut inputs = vec![0.0; n as usize];
                    inputs[root as usize] = 42.5;
                    let out = execute_f64(&plan, &inputs);
                    assert!(
                        out.iter().all(|v| *v == 42.5),
                        "{algo:?} n={n} root={root}: {out:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_rank_plans_are_empty() {
        for algo in ALGOS {
            let plan = Plan::build(CollKind::Allreduce, algo, 1, 0);
            assert!(plan.schedules.iter().all(|s| s.is_empty()));
            plan.validate().unwrap();
        }
    }

    #[test]
    fn validator_rejects_missing_peer_and_self_loop() {
        let mut plan = Plan::build(CollKind::Barrier, Algorithm::FlatFanIn, 4, 0);
        plan.schedules[1][0].send_to = vec![9];
        assert_eq!(
            plan.validate(),
            Err(PlanError::MissingPeer {
                rank: 1,
                step: 0,
                peer: 9
            })
        );
        plan.schedules[1][0].send_to = vec![1];
        assert_eq!(
            plan.validate(),
            Err(PlanError::SelfLoop { rank: 1, step: 0 })
        );
    }

    #[test]
    fn validator_rejects_deadlock_cycle() {
        // 0 waits on 1 before sending, 1 waits on 0 before sending.
        let plan = Plan {
            kind: CollKind::Barrier,
            algorithm: Algorithm::FlatFanIn,
            ranks: 2,
            root: 0,
            chunks: 1,
            schedules: vec![
                vec![PlanStep::recv_reduce(vec![1]), PlanStep::send(vec![1])],
                vec![PlanStep::recv_reduce(vec![0]), PlanStep::send(vec![0])],
            ],
        };
        assert_eq!(plan.validate(), Err(PlanError::Deadlock { stuck_ranks: 2 }));
    }

    #[test]
    fn validator_rejects_stray_message_and_chunk_overflow() {
        let plan = Plan {
            kind: CollKind::Barrier,
            algorithm: Algorithm::FlatFanIn,
            ranks: 2,
            root: 0,
            chunks: 1,
            schedules: vec![vec![PlanStep::send(vec![1])], vec![]],
        };
        assert_eq!(plan.validate(), Err(PlanError::StrayMessages { count: 1 }));

        let mut plan = Plan::build(CollKind::Barrier, Algorithm::BinomialTree, 4, 0);
        plan.schedules[2][0].chunk = 3;
        assert_eq!(
            plan.validate(),
            Err(PlanError::ChunkOverflow {
                rank: 2,
                step: 0,
                chunk: 3
            })
        );
    }

    #[test]
    fn validator_rejects_rank_count_mismatch() {
        let mut plan = Plan::build(CollKind::Barrier, Algorithm::FlatFanIn, 4, 0);
        plan.schedules.pop();
        assert!(matches!(
            plan.validate(),
            Err(PlanError::RankCountMismatch {
                expected: 4,
                got: 3
            })
        ));
    }

    #[test]
    fn butterfly_exchange_needs_send_at_entry() {
        // The canonical shape send-at-entry exists for: both butterfly
        // partners ship their pre-combine value in the same step. A
        // receive-then-send reading of the same step would deadlock.
        let plan = Plan::build(CollKind::Allreduce, Algorithm::RecursiveDoubling, 8, 0);
        assert!(plan.schedules[0]
            .iter()
            .any(|s| !s.send_to.is_empty() && !s.recv_from.is_empty()));
        plan.validate().unwrap();
    }

    #[test]
    fn registry_differs_across_topologies_behind_one_api() {
        let myri = PlanRegistry::for_fabric("myrinet");
        let mesh = PlanRegistry::for_fabric("nwrc-mesh");
        assert_eq!(myri.topology(), Topology::LinearSwitchArray);
        assert_eq!(mesh.topology(), Topology::Mesh2D);
        // Same call, different algorithm per fabric.
        assert_eq!(
            myri.select(CollKind::Barrier, 256, 0),
            Algorithm::BinomialTree
        );
        assert_eq!(
            mesh.select(CollKind::Barrier, 256, 0),
            Algorithm::RecursiveDoubling
        );
        // Size switches the shape on both.
        assert_eq!(
            myri.select(CollKind::Allreduce, 256, 64),
            Algorithm::BinomialTree
        );
        assert_eq!(
            myri.select(CollKind::Allreduce, 256, 65536),
            Algorithm::Ring
        );
        // Tiny rank counts collapse to the star everywhere.
        assert_eq!(
            myri.select(CollKind::Allreduce, 3, 65536),
            Algorithm::FlatFanIn
        );
        assert_eq!(mesh.select(CollKind::Bcast, 2, 0), Algorithm::FlatFanIn);
        // Unknown fabric names get the conservative linear model.
        assert_eq!(
            PlanRegistry::for_fabric("mystery").topology(),
            Topology::LinearSwitchArray
        );
    }

    #[test]
    fn registry_plans_validate_and_respect_root() {
        for fabric in ["myrinet", "nwrc-mesh"] {
            let reg = PlanRegistry::for_fabric(fabric);
            for kind in [CollKind::Barrier, CollKind::Bcast, CollKind::Allreduce] {
                for n in [2u32, 5, 16, 64] {
                    let plan = reg.plan(kind, n, n - 1, 1024).unwrap();
                    assert_eq!(plan.root, n - 1);
                    assert_eq!(plan.ranks, n);
                }
            }
        }
    }
}
