//! Figure 8 — inter-node one-way latency vs message size.
//!
//! The paper plots BCL point-to-point latency on DAWNING-3000; its minimum
//! (0-length) is 18.3 µs. We print the same series; the shape — flat floor
//! for small (system-channel) messages, then linear growth at the wire rate
//! for large (normal-channel) messages — is what the figure shows.

use suca_cluster::{measure_one_way, ClusterSpec};

fn main() {
    println!("-- Fig. 8: inter-node one-way latency vs message size (BCL)\n");
    println!("{:>10}  {:>12}", "bytes", "latency (us)");
    let sizes = [
        0u64, 4, 16, 64, 256, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072,
    ];
    let mut zero = 0.0;
    for &s in &sizes {
        let r = measure_one_way(ClusterSpec::dawning3000(2), 0, 1, s, 2, 6);
        if s == 0 {
            zero = r.one_way_us;
        }
        println!("{s:>10}  {:>12.2}", r.one_way_us);
    }
    println!("\npaper anchor: minimal latency 18.3 us between nodes; measured {zero:.2} us");
}
