//! §5.4 Discussion ablations.
//!
//! The paper's discussion names four levers; each is swept here:
//!
//! 1. "Another time consuming operation is to fill the sending request onto
//!    NIC. This is limited by the I/O performance of the PCI bus. A good
//!    motherboard can improve the I/O performance heavily." → PCI sweep.
//! 2. "Host CPU frequency limits the parameter checking and trap operation's
//!    overhead. A faster CPU will reduce these overheads." → CPU sweep.
//! 3. "The other 5.65 µs is to perform the reliable transmission. To reduce
//!    the protocol overhead is a way to improve the communication
//!    performance." → reliability-cost sweep.
//! 4. §1/§3: NIC-resident translation caches thrash under large working
//!    sets; the kernel-resident pin-down table does not. → working-set sweep
//!    of user-level NIC TLB vs BCL's pin-down table.

use std::sync::Arc;

use parking_lot::Mutex;

use suca_baselines::{ArchModel, BaselineNet};
use suca_bcl::{BclConfig, ChannelId};
use suca_cluster::{measure_one_way, ClusterSpec, SimBarrier};
use suca_myrinet::{Myrinet, MyrinetConfig};
use suca_os::OsPersonality;
use suca_pci::PciModel;
use suca_sim::{Sim, SimDuration};

fn latency_with(cfg: BclConfig, os_costs: suca_os::OsCostModel) -> f64 {
    let mut spec = ClusterSpec::dawning3000(2).with_bcl(cfg);
    spec.os_costs = os_costs;
    measure_one_way(spec, 0, 1, 0, 3, 8).one_way_us
}

fn ablation_pci() {
    println!("-- Ablation 1: PCI (PIO) speed");
    println!(
        "{:<26} {:>14} {:>14}",
        "PCI model", "0B send PIO", "one-way (us)"
    );
    for (name, pci) in [
        ("DAWNING (0.24us/word)", PciModel::dawning3000()),
        ("fast motherboard (0.06)", PciModel::fast_pci()),
    ] {
        let mut cfg = BclConfig::dawning3000();
        cfg.pci = pci;
        let pio = cfg.descriptor_pio(0).as_us();
        let lat = latency_with(cfg, suca_os::OsCostModel::aix_power3());
        println!("{name:<26} {pio:>11.2} us {lat:>14.2}");
    }
    println!();
}

fn ablation_cpu() {
    println!("-- Ablation 2: host CPU speed (scales trap/check costs)");
    println!(
        "{:<26} {:>14} {:>14}",
        "CPU", "kernel extra", "one-way (us)"
    );
    for factor in [1.0, 2.0, 4.0] {
        let os = suca_os::OsCostModel::aix_power3().scaled_cpu(factor);
        let mut cfg = BclConfig::dawning3000();
        cfg.os = os.clone();
        let extra = cfg.kernel_extra().as_us();
        let lat = latency_with(cfg, os);
        println!(
            "{:<26} {extra:>11.2} us {lat:>14.2}",
            format!("{factor}x 375 MHz Power3")
        );
    }
    println!();
}

fn ablation_reliability() {
    println!("-- Ablation 3: reliable-protocol cost on the NIC");
    println!("{:<34} {:>14}", "MCP protocol", "one-way (us)");
    for (name, cut_us) in [
        ("full reliability (default)", 0.0),
        ("no reliability (-5.65us)", 5.65),
    ] {
        let mut cfg = BclConfig::dawning3000();
        cfg.mcp.send_fixed = SimDuration::from_us_f64(cfg.mcp.send_fixed.as_us() - cut_us);
        let lat = latency_with(cfg, suca_os::OsCostModel::aix_power3());
        println!("{name:<34} {lat:>14.2}");
    }
    println!();
}

/// User-level NIC TLB: average send stall per message as the working set of
/// distinct 4 KB buffers grows past the cache.
fn user_level_tlb_stall(working_set: u64) -> (f64, u64) {
    let sim = Sim::new(3);
    let fabric = Myrinet::build(&sim, 2, MyrinetConfig::dawning3000());
    let net = BaselineNet::build(&sim, fabric, ArchModel::user_level(), OsPersonality::LINUX)
        .expect("buildable");
    let a = net.endpoint(0);
    let b = net.endpoint(1);
    // Round 1 warms the cache (compulsory misses); only round 2 counts.
    let after_round1 = Arc::new(Mutex::new(0u64));
    let ar1 = after_round1.clone();
    sim.spawn("tx", move |ctx| {
        for round in 0..2u64 {
            for i in 0..working_set {
                a.send(ctx, 1, &[0u8; 64], i);
                let _ = a.recv(ctx); // pacing
            }
            if round == 0 {
                *ar1.lock() = ctx.sim().get_count("baseline.tlb_misses");
            }
        }
    });
    sim.spawn("rx", move |ctx| {
        for _ in 0..working_set * 2 {
            let _ = b.recv(ctx);
            b.send(ctx, 0, b"", u64::MAX); // constant id: no extra pressure
        }
    });
    sim.run();
    let warm = *after_round1.lock();
    let steady_misses = sim.get_count("baseline.tlb_misses").saturating_sub(warm);
    let miss_cost_us = 16.0;
    (
        steady_misses as f64 * miss_cost_us / working_set as f64,
        steady_misses,
    )
}

/// BCL: mean send-call time cycling `working_set` distinct buffers, second
/// round (pin-down table caches translations in host memory).
fn bcl_send_time(working_set: u64, pin_table_pages: usize) -> f64 {
    let mut cfg = BclConfig::dawning3000();
    cfg.pin_table_pages = pin_table_pages;
    let spec = ClusterSpec::dawning3000(2).with_bcl(cfg);
    let cluster = spec.build();
    let sim = cluster.sim.clone();
    let barrier = SimBarrier::new(&sim, 2);
    let addr: Arc<Mutex<Option<suca_bcl::ProcAddr>>> = Arc::new(Mutex::new(None));
    let mean = Arc::new(Mutex::new(0.0f64));

    let b2 = barrier.clone();
    let a2 = addr.clone();
    cluster.spawn_process(1, "rx", move |ctx, env| {
        let port = env.open_port(ctx);
        *a2.lock() = Some(port.addr());
        b2.wait(ctx);
        for _ in 0..working_set * 2 {
            let ev = port.wait_recv(ctx);
            let _ = port.recv_bytes(ctx, &ev).expect("data");
            port.send_bytes(ctx, ev.src, ChannelId::SYSTEM, b"")
                .expect("token");
        }
    });
    let b3 = barrier.clone();
    let m2 = mean.clone();
    cluster.spawn_process(0, "tx", move |ctx, env| {
        let port = env.open_port(ctx);
        let bufs: Vec<_> = (0..working_set)
            .map(|_| port.alloc_buffer(64).expect("buf"))
            .collect();
        b3.wait(ctx);
        let dst = addr.lock().expect("rx");
        let mut second_round = 0.0;
        for round in 0..2 {
            for &buf in &bufs {
                let t0 = ctx.now().as_us();
                port.send(ctx, dst, ChannelId::SYSTEM, buf, 64)
                    .expect("send");
                if round == 1 {
                    second_round += ctx.now().as_us() - t0;
                }
                loop {
                    let ev = port.wait_recv(ctx);
                    let _ = port.recv_bytes(ctx, &ev).expect("consume token");
                    if ev.len == 0 {
                        break;
                    }
                }
                while port.poll_send(ctx).is_some() {}
            }
        }
        *m2.lock() = second_round / working_set as f64;
    });
    assert_eq!(
        sim.run(),
        suca_sim::RunOutcome::Completed,
        "ablation harness hung"
    );
    let m = *mean.lock();
    m
}

fn ablation_translation() {
    println!("-- Ablation 4: address translation under growing working sets");
    println!(
        "   (user-level: 256-entry NIC TLB, 16 us/miss; BCL: pin-down table in host kernel memory)"
    );
    println!(
        "{:>12} {:>26} {:>26} {:>26}",
        "buffers",
        "user-level stall/send",
        "BCL send (64K-page table)",
        "BCL send (256-page table)"
    );
    for ws in [64u64, 256, 1024, 4096] {
        let (stall, _misses) = user_level_tlb_stall(ws);
        let bcl_big = bcl_send_time(ws, 65_536);
        let bcl_small = bcl_send_time(ws, 256);
        println!(
            "{ws:>12} {:>23.2} us {:>23.2} us {:>23.2} us",
            stall, bcl_big, bcl_small
        );
    }
    println!("\nshape: user-level stall explodes past its NIC cache; BCL stays flat as long");
    println!("as the host-resident pin-down table covers the working set — the paper's");
    println!("\"usage of large memory\" argument (§1, §3 benefit 4).");
}

fn main() {
    ablation_pci();
    ablation_cpu();
    ablation_reliability();
    ablation_translation();
}
