//! Mixed multi-tenant SLO harness: KV (tenant 0, high priority), pub-sub
//! log (tenant 1, low), and staged pipeline (tenant 2, low) sharing one
//! 32-node dual-rail cluster behind per-tenant admission quotas.
//!
//! Variants, each on Myrinet-primary and mesh-primary rails:
//!
//! * **solo** — only the KV tenant issues. Identical topology and seed,
//!   so its p99 is the interference-free baseline.
//! * **clean** — all three tenants at moderate load. Every tenant's
//!   accounting identity holds with zero sheds, subscribers see gap-free
//!   streams, pipeline outputs verify, and the per-tenant burn-rate
//!   rules stay silent. Byte-identical on rerun at the fixed seed.
//! * **overload** — the pub-sub tenant floods its rooms open-loop past
//!   its quota. Its own sheds inflate its tail and fire (then resolve)
//!   exactly `t1.err_burn`, while KV's p99 stays within a bounded factor
//!   of its solo run — the isolation claim, measured.
//!
//! Reports land in `target/slo/mixed_{variant}_{fabric}.json` with one
//! per-tenant section each.

use suca_bench::mixed::{
    assert_base_invariants, burn_rule, run_mixed, MixedCfg, MixedOutcome, SEED, TENANT_KV,
    TENANT_PIPELINE, TENANT_PUBSUB,
};
use suca_bench::report::{emit_metrics, write_timeseries_json, write_trace_json_with_counters};

/// KV p99 under pub-sub overload may not exceed this multiple of the
/// solo-run p99. The measured ratio sits around 2x (head-of-line wait
/// behind one low-priority publish in service, never behind the queue);
/// 5x leaves seed-to-seed headroom while still failing on any real
/// priority-inversion regression.
const ISOLATION_FACTOR: f64 = 5.0;

fn run_solo(fabric: &str) -> MixedOutcome {
    let out = run_mixed(
        "solo",
        fabric,
        &MixedCfg {
            kv_only: true,
            ..MixedCfg::default()
        },
    );
    assert_base_invariants(&format!("solo/{fabric}"), &out);
    let kv = &out.report.tenants[TENANT_KV as usize];
    assert_eq!(
        kv.completed, kv.issued,
        "solo/{fabric}: unloaded KV tenant must complete everything"
    );
    assert!(
        out.cluster.sim.health().is_silent(),
        "solo/{fabric}: health fired on a KV-only run: {:?}",
        out.cluster.sim.health().alerts()
    );
    out
}

fn run_clean(fabric: &str) -> MixedOutcome {
    let out = run_mixed("clean", fabric, &MixedCfg::default());
    assert_base_invariants(&format!("clean/{fabric}"), &out);
    for t in &out.report.tenants {
        assert_eq!(
            t.completed, t.issued,
            "clean/{fabric}: tenant {} shed or timed out under moderate load",
            t.tenant
        );
        assert!(
            t.issued > 0,
            "clean/{fabric}: tenant {} never issued — all three tenants must run",
            t.tenant
        );
    }
    let cfg = MixedCfg::default();
    assert_eq!(
        out.sub.received,
        8 * u64::from(cfg.pub_events),
        "clean/{fabric}: every subscriber must replay its room's full log"
    );
    assert_eq!(out.sub.eofs, 8, "clean/{fabric}: missing EOF sentinels");
    assert_eq!(out.sub.shed, 0, "clean/{fabric}: no subscriber may be shed");
    assert_eq!(
        out.drv.jobs_done,
        2 * u64::from(cfg.pipe_jobs),
        "clean/{fabric}: pipeline jobs incomplete"
    );
    assert!(
        out.cluster.sim.health().is_silent(),
        "clean/{fabric}: per-tenant rules fired on a clean run: {:?}",
        out.cluster.sim.health().alerts()
    );
    out
}

fn run_overload(fabric: &str) -> MixedOutcome {
    let out = run_mixed(
        "overload",
        fabric,
        &MixedCfg {
            overload_pubsub: true,
            ..MixedCfg::default()
        },
    );
    assert_base_invariants(&format!("overload/{fabric}"), &out);
    let kv = &out.report.tenants[TENANT_KV as usize];
    assert_eq!(
        kv.completed, kv.issued,
        "overload/{fabric}: the high-priority tenant must ride out a neighbor's overload"
    );
    let ps = &out.report.tenants[TENANT_PUBSUB as usize];
    assert!(
        ps.shed > 0,
        "overload/{fabric}: the flood never saw a shed — overload too weak to mean anything"
    );
    assert!(
        out.cluster
            .sim
            .get_count(&format!("rpc.srv_sheds.t{TENANT_PUBSUB}"))
            > 0,
        "overload/{fabric}: per-tenant quota never engaged"
    );
    assert_eq!(
        out.cluster
            .sim
            .get_count(&format!("rpc.srv_sheds.t{TENANT_KV}")),
        0,
        "overload/{fabric}: KV requests shed during a pub-sub flood — quota isolation broken"
    );
    let alerts = out.cluster.sim.health().alerts();
    let t1 = burn_rule(TENANT_PUBSUB);
    assert!(
        alerts.iter().any(|a| a.rule == t1),
        "overload/{fabric}: flooding tenant's burn-rate rule never fired: {alerts:?}"
    );
    assert!(
        alerts
            .iter()
            .filter(|a| a.rule == t1)
            .all(|a| a.resolved_ns.is_some()),
        "overload/{fabric}: t1 burn alert never resolved after the flood drained: {alerts:?}"
    );
    for t in [TENANT_KV, TENANT_PIPELINE] {
        let rule = burn_rule(t);
        assert!(
            alerts.iter().all(|a| a.rule != rule),
            "overload/{fabric}: bystander tenant {t}'s rule fired: {alerts:?}"
        );
    }
    out
}

fn write_reports(out: &MixedOutcome, variant: &str, fabric: &str) {
    let stem = format!("mixed_{variant}_{fabric}");
    out.report.write_named(&stem).expect("write SLO report");
    out.cluster
        .sim
        .health()
        .report("mixed_slo", &format!("{variant}_{fabric}"), SEED, &[])
        .write_named(&stem)
        .expect("write health report");
    emit_metrics(&out.cluster.sim, &stem);
}

fn main() {
    println!("-- Mixed multi-tenant workloads: per-tenant SLO reports per variant x fabric\n");

    if let Ok(v) = std::env::var("SUCA_MIXED_SLO_DEBUG") {
        let mut it = v.splitn(2, '_');
        let (variant, fabric) = (it.next().unwrap(), it.next().expect("variant_fabric"));
        let out = match variant {
            "solo" => run_solo(fabric),
            "clean" => run_clean(fabric),
            "overload" => run_overload(fabric),
            other => panic!("unknown debug variant {other}"),
        };
        println!("{}", out.report.to_json());
        return;
    }

    let mut rows = Vec::new();
    for fabric in ["myrinet", "mesh"] {
        let solo = run_solo(fabric);
        let clean = run_clean(fabric);
        let over = run_overload(fabric);

        // The isolation claim, measured: overloading the pub-sub tenant
        // inflates its own tail while the high-priority KV tenant stays
        // within a bounded factor of its interference-free baseline.
        let (solo_p99, over_p99) = (solo.kv_p99_us(), over.kv_p99_us());
        assert!(
            solo_p99 > 0.0,
            "{fabric}: solo baseline produced no KV latency data"
        );
        assert!(
            over_p99 <= ISOLATION_FACTOR * solo_p99,
            "{fabric}: KV p99 {over_p99:.1} us under overload exceeds {ISOLATION_FACTOR}x \
             solo baseline {solo_p99:.1} us — tenant isolation broken"
        );

        if fabric == "myrinet" {
            // Determinism: the fixed seed must reproduce the clean run's
            // SLO and health reports byte-for-byte.
            let rerun = run_clean(fabric);
            assert_eq!(
                clean.report.to_json(),
                rerun.report.to_json(),
                "clean/myrinet: mixed SLO report not deterministic at fixed seed"
            );
            assert_eq!(
                clean
                    .cluster
                    .sim
                    .health()
                    .report("mixed_slo", "clean_myrinet", SEED, &[])
                    .to_json(),
                rerun
                    .cluster
                    .sim
                    .health()
                    .report("mixed_slo", "clean_myrinet", SEED, &[])
                    .to_json(),
                "clean/myrinet: health report not deterministic at fixed seed"
            );
            rerun
                .report
                .write_named("mixed_clean_myrinet_rerun")
                .expect("write rerun report");
            write_timeseries_json(&clean.cluster.sim, "mixed_clean_myrinet")
                .expect("write timeseries");
            write_trace_json_with_counters(
                &over.cluster.trace_events(),
                &over.cluster.sim,
                "mixed_overload_myrinet",
            )
            .expect("write trace");
        }

        write_reports(&solo, "solo", fabric);
        write_reports(&clean, "clean", fabric);
        write_reports(&over, "overload", fabric);
        println!(
            "{fabric}: KV p99 solo {solo_p99:.1} us, clean {:.1} us, overload {over_p99:.1} us \
             ({:.2}x solo, bound {ISOLATION_FACTOR}x)",
            clean.kv_p99_us(),
            over_p99 / solo_p99
        );
        rows.extend([solo, clean, over]);
    }

    println!("\nvariant    fabric   tenant    prio  issued completed  shed t/out   p99(us)");
    for out in &rows {
        for t in &out.report.tenants {
            let p99 = t.classes.iter().map(|c| c.p99_us).fold(0.0, f64::max);
            println!(
                "{:<10} {:<8} {:<9} {:<5} {:>6} {:>9} {:>5} {:>5} {:>9.1}",
                out.report.variant,
                out.report.fabric,
                t.name,
                t.priority,
                t.issued,
                t.completed,
                t.shed,
                t.timed_out,
                p99
            );
        }
    }
    println!(
        "\nmixed_slo OK: three tenants accounted on both fabrics, clean runs alert-silent \
         and byte-identical at the fixed seed, overload shed only the flooding tenant, \
         fired and resolved exactly its burn-rate rule, KV p99 within {ISOLATION_FACTOR}x solo"
    );
}
