//! Table 1 — comparison of the three communication architectures by
//! critical-path structure: OS traps, interrupt handling, and where the NIC
//! is accessed. The structural rows come from the architecture models; the
//! "measured" columns actually count the privileged operations during one
//! message under each architecture, so the table is verified, not asserted.

use std::sync::Arc;

use parking_lot::Mutex;

use suca_baselines::{table1, ArchModel, BaselineNet};
use suca_bcl::ChannelId;
use suca_bench::report::emit_metrics;
use suca_cluster::{ClusterSpec, SimBarrier};
use suca_myrinet::{Myrinet, MyrinetConfig};
use suca_os::{OsCostModel, OsPersonality};
use suca_sim::Sim;

/// Count (traps, interrupts) for one message under a baseline arch.
fn count_baseline(arch: ArchModel) -> (u64, u64) {
    let sim = Sim::new(1);
    let fabric = Myrinet::build(&sim, 2, MyrinetConfig::dawning3000());
    let net = BaselineNet::build(&sim, fabric, arch, OsPersonality::LINUX).expect("buildable");
    let a = net.endpoint(0);
    let b = net.endpoint(1);
    sim.spawn("tx", move |ctx| a.send(ctx, 1, b"one message", 1));
    sim.spawn("rx", move |ctx| {
        let _ = b.recv(ctx);
    });
    sim.run();
    (sim.get_count("os.traps"), sim.get_count("os.interrupts"))
}

/// Count (traps, interrupts) for one BCL message (full stack), derived
/// from the metrics registry. The send path and the receive path are
/// counted separately so the architecture's defining claims — exactly one
/// kernel trap per send, zero interrupts, zero kernel crossings on receive
/// — are each asserted on their own, and a JSON snapshot of every counter
/// in the run is written for the record.
fn count_bcl() -> (u64, u64) {
    let cluster = ClusterSpec::dawning3000(2).build();
    let sim = cluster.sim.clone();
    let barrier = SimBarrier::new(&sim, 2);
    let addr: Arc<Mutex<Option<suca_bcl::ProcAddr>>> = Arc::new(Mutex::new(None));
    // (send traps, recv traps, recv interrupts)
    let counts = Arc::new(Mutex::new((0u64, 0u64, 0u64)));

    let b2 = barrier.clone();
    let a2 = addr.clone();
    let c2 = counts.clone();
    cluster.spawn_process(1, "rx", move |ctx, env| {
        let port = env.open_port(ctx);
        *a2.lock() = Some(port.addr());
        b2.wait(ctx);
        let before = (
            ctx.sim().get_count("os.traps.n1"),
            ctx.sim().get_count("os.interrupts.n1"),
        );
        let _ = port.wait_recv(ctx);
        let after = (
            ctx.sim().get_count("os.traps.n1"),
            ctx.sim().get_count("os.interrupts.n1"),
        );
        let mut g = c2.lock();
        g.1 += after.0 - before.0;
        g.2 += after.1 - before.1;
    });
    let b3 = barrier.clone();
    let c3 = counts.clone();
    cluster.spawn_process(0, "tx", move |ctx, env| {
        let port = env.open_port(ctx);
        b3.wait(ctx);
        let dst = addr.lock().expect("rx ready");
        let before = ctx.sim().get_count("os.traps.n0");
        port.send_bytes(ctx, dst, ChannelId::SYSTEM, b"one message")
            .expect("send");
        let after = ctx.sim().get_count("os.traps.n0");
        c3.lock().0 += after - before;
    });
    sim.run();
    let (send_traps, recv_traps, recv_interrupts) = *counts.lock();
    let snap = emit_metrics(&sim, "table1_bcl");

    // The semi-user-level contract, from the counters themselves:
    assert_eq!(
        send_traps, 1,
        "BCL must cost exactly one kernel trap per send"
    );
    assert_eq!(
        recv_traps + recv_interrupts,
        0,
        "BCL receive path must make zero kernel crossings"
    );
    assert_eq!(
        snap.counter("os.interrupts"),
        0,
        "BCL must raise zero interrupts anywhere in the run"
    );
    assert!(
        snap.counter_count() >= 20,
        "expected a full-stack snapshot (>= 20 distinct counters), got {}",
        snap.counter_count()
    );
    (send_traps + recv_traps, recv_interrupts)
}

fn main() {
    println!("-- Table 1: comparison of three communication architectures\n");
    let os = OsCostModel::aix_power3();
    let rows = table1(&os);
    let measured = [
        count_baseline(ArchModel::kernel_level(&os)),
        count_baseline(ArchModel::user_level()),
        count_bcl(),
    ];
    println!(
        "{:<28} {:>14} {:>14} {:>12} {:>22}",
        "architecture", "OS traps", "interrupts", "NIC access", "measured (traps,intr)"
    );
    for (row, m) in rows.iter().zip(measured) {
        println!(
            "{:<28} {:>14} {:>14} {:>12} {:>18}",
            row.architecture,
            row.os_traps,
            row.interrupts,
            row.nic_access,
            format!("({}, {})", m.0, m.1),
        );
        assert_eq!(
            (u64::from(row.os_traps), u64::from(row.interrupts)),
            m,
            "measured privileged-op counts diverge from the architectural model"
        );
    }
    println!("\n(measured columns count actual privileged operations during one message)");
}
