//! Per-message causal tracing: run a clean and a fault-injected two-node
//! ping-pong, export each journey as Chrome/Perfetto JSON
//! (`target/traces/*.json`), verify every chain closes under the BCL
//! policy (exactly 1 trap, 0 interrupts), and print the trace-derived
//! per-stage latency breakdown.

use std::sync::Arc;

use parking_lot::Mutex;

use suca_bench::report::{emit_metrics, write_trace_json};
use suca_cluster::{Cluster, ClusterSpec, SanKind, SimBarrier};
use suca_myrinet::FaultPlan;
use suca_sim::mtrace::{
    check_completeness, record_stage_histograms, stage, ChainPolicy, STAGE_HISTOGRAMS,
};
use suca_sim::{RunOutcome, SimDuration};

const MSGS: u32 = 20;
const LEN: usize = 4096;

/// Stream `MSGS` system-channel messages node 0 → node 1 and run to
/// completion, leaving the cluster's trace rings full of journeys.
fn ping_pong(spec: ClusterSpec) -> Cluster {
    let cluster = spec.build();
    let sim = cluster.sim.clone();
    let barrier = SimBarrier::new(&sim, 2);
    let addr: Arc<Mutex<Option<suca_bcl::ProcAddr>>> = Arc::new(Mutex::new(None));
    let b2 = barrier.clone();
    let a2 = addr.clone();
    cluster.spawn_process(1, "rx", move |ctx, env| {
        let port = env.open_port(ctx);
        *a2.lock() = Some(port.addr());
        b2.wait(ctx);
        for _ in 0..MSGS {
            let ev = port.wait_recv(ctx);
            let data = port.recv_bytes(ctx, &ev).expect("recv");
            assert_eq!(data.len(), LEN);
        }
    });
    cluster.spawn_process(0, "tx", move |ctx, env| {
        let port = env.open_port(ctx);
        barrier.wait(ctx);
        let dst = addr.lock().expect("rx ready");
        for i in 0..MSGS {
            port.send_bytes(ctx, dst, suca_bcl::ChannelId::SYSTEM, &vec![i as u8; LEN])
                .expect("send");
            let _ = port.wait_send(ctx);
            // Pace so the system pool survives retransmission storms.
            ctx.sleep(SimDuration::from_us(400));
        }
    });
    assert_eq!(sim.run(), RunOutcome::Completed, "ping-pong hung");
    cluster
}

fn export(cluster: &Cluster, run: &str, expect_retx: bool) {
    let events = cluster.trace_events();
    let report = check_completeness(&events, &ChainPolicy::bcl());
    assert!(
        report.is_closed(),
        "{run}: trace completeness violated: {:?}",
        report.violations
    );
    if expect_retx {
        assert!(
            cluster.sim.get_count("bcl.timeouts") > 0,
            "{run}: fault injection produced no timeouts"
        );
        assert!(
            report.total_retransmissions() > 0,
            "{run}: retransmissions happened but none were traced"
        );
    }

    // Acceptance: one message's chain must show the complete journey with
    // exactly the semi-user-level kernel crossings.
    let chain = report
        .chains
        .iter()
        .find(|c| c.has_send)
        .expect("at least one traced send chain");
    assert_eq!(chain.traps, 1, "{run}: BCL sends trap exactly once");
    assert_eq!(chain.interrupts, 0, "{run}: BCL receives never interrupt");
    for s in [
        stage::SEND,
        stage::TRAP,
        stage::DESCRIPTOR,
        stage::INJECT,
        stage::HOP,
        stage::RX,
        stage::DMA_DATA,
        stage::DMA_CQ,
        stage::POLL_RECV,
    ] {
        assert!(
            events
                .iter()
                .any(|e| e.trace == chain.trace && e.stage.as_ref() == s),
            "{run}: stage {s} missing from the acceptance chain"
        );
    }

    let path = write_trace_json(&events, run).expect("write trace");
    println!(
        "[trace] {run}: {} events, {} chains, {} retransmissions -> {}",
        events.len(),
        report.chains.len(),
        report.total_retransmissions(),
        path.display()
    );
}

fn main() {
    println!("-- Per-message causal tracing: Perfetto export + completeness check\n");

    let clean = ping_pong(ClusterSpec::dawning3000(2));
    export(&clean, "pingpong", false);

    // Trace-derived latency breakdown of the clean run.
    let chains = record_stage_histograms(&clean.trace_events(), &clean.sim.metrics());
    let snap = emit_metrics(&clean.sim, "trace_export");
    println!("\nper-stage latency breakdown ({chains} chains measured):");
    println!(
        "{:<20} {:>9} {:>9} {:>9}",
        "stage", "p50 (us)", "p95 (us)", "p99 (us)"
    );
    for name in STAGE_HISTOGRAMS {
        let s = snap.histograms.get(name).expect("stage histogram recorded");
        println!(
            "{name:<20} {:>9.2} {:>9.2} {:>9.2}",
            s.p50() / 1000.0,
            s.p95() / 1000.0,
            s.p99() / 1000.0
        );
    }

    let mut spec = ClusterSpec::dawning3000(2).with_seed(11);
    if let SanKind::Myrinet(ref mut cfg) = spec.san {
        cfg.fault = FaultPlan {
            drop_prob: 0.20,
            corrupt_prob: 0.05,
        };
    }
    let faulty = ping_pong(spec);
    export(&faulty, "pingpong_faulty", true);

    println!(
        "\nopen a trace: https://ui.perfetto.dev -> Open trace file -> target/traces/pingpong.json"
    );
}
