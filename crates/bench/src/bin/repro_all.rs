//! Run every table/figure harness and print the full reproduction report.
//! `cargo run -p suca-bench --release --bin repro_all`

use std::process::Command;

fn main() {
    let bins = [
        "table1_architectures",
        "fig5_tx_timeline",
        "fig6_rx_timeline",
        "fig7_oneway_timeline",
        "fig8_latency",
        "fig9_bandwidth",
        "table2_protocols",
        "table3_mpi_pvm",
        "overheads",
        "ablations",
        "congestion",
    ];
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin dir");
    for bin in bins {
        println!("\n================================================================");
        println!("### {bin}");
        println!("================================================================");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
    println!("\nAll paper tables and figures reproduced. See EXPERIMENTS.md for the recorded comparison.");
}
