//! Run every table/figure harness and print the full reproduction report.
//! `cargo run -p suca-bench --release --bin repro_all`
//!
//! Each instrumented harness drops a metrics snapshot into
//! `target/metrics/<harness>.json` (see `suca_bench::report::emit_metrics`);
//! after the sweep this binary merges them into a single
//! `target/metrics/repro_all.json` keyed by harness name.

use std::process::Command;

use suca_bench::report::metrics_dir;

fn main() {
    let bins = [
        "table1_architectures",
        "fig5_tx_timeline",
        "fig6_rx_timeline",
        "fig7_oneway_timeline",
        "fig8_latency",
        "fig9_bandwidth",
        "table2_protocols",
        "table3_mpi_pvm",
        "overheads",
        "ablations",
        "congestion",
        "trace_export",
        "telemetry",
        "rpc_slo",
        "chaos_slo",
        "mixed_slo",
        "bench_engine",
        "bench_collectives",
    ];
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin dir");
    for bin in bins {
        println!("\n================================================================");
        println!("### {bin}");
        println!("================================================================");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
    merge_metrics();
    println!("\nAll paper tables and figures reproduced. See EXPERIMENTS.md for the recorded comparison.");
}

/// Combine every per-harness snapshot in the metrics dir into one JSON
/// document. The per-harness files are themselves JSON objects, so they can
/// be embedded verbatim without parsing.
fn merge_metrics() {
    let dir = metrics_dir();
    let mut entries: Vec<(String, String)> = Vec::new();
    let Ok(rd) = std::fs::read_dir(&dir) else {
        return;
    };
    for entry in rd.flatten() {
        let path = entry.path();
        if path.extension().is_none_or(|e| e != "json") {
            continue;
        }
        let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
            continue;
        };
        if stem == "repro_all" {
            continue;
        }
        if let Ok(body) = std::fs::read_to_string(&path) {
            entries.push((stem.to_string(), body));
        }
    }
    entries.sort();
    let mut out = String::from("{\n");
    for (i, (name, body)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        out.push_str(&format!("  \"{name}\": {}{comma}\n", body.trim_end()));
    }
    out.push_str("}\n");
    let path = dir.join("repro_all.json");
    match std::fs::write(&path, out) {
        Ok(()) => println!(
            "\n[metrics] merged {} snapshots -> {}",
            entries.len(),
            path.display()
        ),
        Err(e) => eprintln!("[metrics] could not write merged snapshot: {e}"),
    }
}
