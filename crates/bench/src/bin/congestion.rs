//! Extension experiment (beyond the paper's tables): network contention.
//!
//! The paper evaluates point-to-point performance only; DAWNING-3000's
//! switch fabric is a linear array of 8-port crossbars whose inter-switch
//! trunks are the obvious shared resource. This harness measures:
//!
//! 1. aggregate bandwidth of disjoint same-switch pairs (should scale
//!    linearly — the crossbar is non-blocking);
//! 2. aggregate bandwidth of pairs forced across one trunk (should saturate
//!    at one link's worth, ~160 MB/s, shared by all pairs);
//! 3. the same cross-traffic pattern on the 2-D mesh, which offers path
//!    diversity in aggregate.

use std::sync::Arc;

use parking_lot::Mutex;

use suca_bcl::ChannelId;
use suca_cluster::{Cluster, ClusterSpec, SimBarrier};
use suca_sim::RunOutcome;

const MSG: u64 = 64 * 1024;
const COUNT: u32 = 8;

/// Run `pairs` of (src, dst) streams concurrently; return aggregate MB/s.
fn aggregate_bandwidth(cluster: &Cluster, pairs: &[(u32, u32)]) -> f64 {
    let sim = cluster.sim.clone();
    let barrier = SimBarrier::new(&sim, pairs.len() as u32 * 2);
    let t0 = Arc::new(Mutex::new(f64::MAX));
    let t1 = Arc::new(Mutex::new(0.0f64));
    for (k, &(src, dst)) in pairs.iter().enumerate() {
        let addr: Arc<Mutex<Option<suca_bcl::ProcAddr>>> = Arc::new(Mutex::new(None));
        {
            let barrier = barrier.clone();
            let addr = addr.clone();
            let t1 = t1.clone();
            cluster.spawn_process(dst, format!("rx{k}"), move |ctx, env| {
                let port = env.open_port(ctx);
                *addr.lock() = Some(port.addr());
                let mut bufs = Vec::new();
                for c in 0..4u16 {
                    bufs.push(port.post_recv(ctx, c, MSG).expect("post"));
                }
                barrier.wait(ctx);
                for i in 0..COUNT {
                    let ev = port.wait_recv(ctx);
                    if i + 4 < COUNT {
                        port.post_recv_at(
                            ctx,
                            ev.channel.index,
                            bufs[ev.channel.index as usize],
                            MSG,
                        )
                        .expect("re-post");
                    }
                }
                let mut g = t1.lock();
                *g = g.max(ctx.now().as_us());
            });
        }
        {
            let barrier = barrier.clone();
            let t0 = t0.clone();
            cluster.spawn_process(src, format!("tx{k}"), move |ctx, env| {
                let port = env.open_port(ctx);
                barrier.wait(ctx);
                let dst = addr.lock().expect("rx ready");
                {
                    let mut g = t0.lock();
                    *g = g.min(ctx.now().as_us());
                }
                for i in 0..COUNT {
                    let buf = port.alloc_buffer(MSG).expect("buf");
                    port.send(ctx, dst, ChannelId::normal((i % 4) as u16), buf, MSG)
                        .expect("send");
                    let _ = port.wait_send(ctx);
                }
            });
        }
    }
    assert_eq!(sim.run(), RunOutcome::Completed, "congestion workload hung");
    let bytes = MSG as f64 * COUNT as f64 * pairs.len() as f64;
    let (start, end) = (*t0.lock(), *t1.lock());
    bytes / (end - start)
}

fn main() {
    println!("-- Extension: fabric contention (64KB x {COUNT} per pair)\n");

    // Same-switch pairs (nodes 0..6 share switch 0 on Myrinet).
    for n_pairs in [1usize, 2, 3] {
        let cluster = ClusterSpec::dawning3000(6).build();
        let pairs: Vec<(u32, u32)> = (0..n_pairs as u32).map(|i| (2 * i, 2 * i + 1)).collect();
        let bw = aggregate_bandwidth(&cluster, &pairs);
        println!(
            "myrinet same-switch   {n_pairs} pair(s): {bw:>7.1} MB/s aggregate ({:.1} per pair)",
            bw / n_pairs as f64
        );
    }
    println!();

    // Cross-trunk pairs: sources on switch 0 (nodes 0..6), sinks on switch 1
    // (nodes 6..12): every byte crosses the single sw0->sw1 trunk.
    for n_pairs in [1usize, 2, 3] {
        let cluster = ClusterSpec::dawning3000(12).build();
        let pairs: Vec<(u32, u32)> = (0..n_pairs as u32).map(|i| (i, 6 + i)).collect();
        let bw = aggregate_bandwidth(&cluster, &pairs);
        println!(
            "myrinet cross-trunk   {n_pairs} pair(s): {bw:>7.1} MB/s aggregate ({:.1} per pair)",
            bw / n_pairs as f64
        );
    }
    println!("\n(the crossbar scales per pair; the shared trunk caps aggregate near one");
    println!(" link's 146 MB/s — switch placement matters on the linear array)\n");

    // The mesh: same logical pattern, nodes on opposite columns.
    for n_pairs in [1usize, 3] {
        let cluster = ClusterSpec::dawning3000_mesh(16).build();
        // 4x4 mesh, row-major: pair row i's col 0 with col 3.
        let pairs: Vec<(u32, u32)> = (0..n_pairs as u32).map(|i| (4 * i, 4 * i + 3)).collect();
        let bw = aggregate_bandwidth(&cluster, &pairs);
        println!(
            "nwrc mesh cross-cols  {n_pairs} pair(s): {bw:>7.1} MB/s aggregate ({:.1} per pair)",
            bw / n_pairs as f64
        );
    }
    println!("\n(XY routing keeps row streams on disjoint rows: the mesh scales where the");
    println!(" linear switch array serializes — an architectural trade the paper's 2-D");
    println!(" mesh option was built to exploit)");
}
