//! NIC-offloaded collectives vs host reference baselines.
//!
//! Latency (and bandwidth, for payload-carrying ops) of barrier, sized
//! broadcast and allreduce at 64 → 1,024 nodes on both SANs, each cell
//! run twice: `offloaded` (the MCP plan interpreter, algorithm picked by
//! the fabric-aware registry) and `host` (the point-to-point reference
//! algorithms, `offload_collectives = false`). One rank per node; every
//! rank times `REPS` repetitions after one warmup and rank 0's clock
//! makes the row.
//!
//! In-binary acceptance, before the report is written:
//!
//! * **Determinism** — the 64-node offloaded cells are byte-identical
//!   (latencies and metrics snapshot) across engine shard counts
//!   (single-queue reference, one shard per node, an odd count 3).
//! * **Crossing budget** — at 64 and 256 nodes every traced chain of the
//!   offloaded cells closes under `ChainPolicy::collective()`: exactly
//!   1 kernel trap, 0 interrupts, at least one wire injection per
//!   participant. At 1,024 nodes the same check runs on a 1% deterministic
//!   trace sample.
//! * **Offload wins at scale** — the offloaded barrier is faster than the
//!   host dissemination barrier at ≥ 256 nodes.
//!
//! The machine-readable report lands in `<bench_dir>/BENCH_collectives.json`
//! (schema `suca.bench_collectives.v1`); CI validates the schema and
//! re-asserts the barrier crossover from the JSON.

use std::sync::{Arc, Mutex};

use suca_bench::report::{bench_dir, host_meta};
use suca_cluster::ClusterSpec;
use suca_coll::{CollKind, PlanRegistry};
use suca_eadi::Universe;
use suca_mpi::{Comm, MpiConfig, ReduceOp};
use suca_sim::mtrace::{check_completeness, check_completeness_sampled, ChainPolicy, SampleSpec};
use suca_sim::{ActorCtx, RunOutcome, SimDuration, TelemetryConfig};

const SEED: u64 = 0xC0113C7;
/// Timed repetitions per op (after one untimed warmup). The simulator is
/// deterministic — repetitions guard against cold-start effects (buffer
/// pools, plan caches), not noise.
const REPS: u32 = 2;
/// Fleet-mode trace sampling at the largest node count.
const FLEET_SAMPLE_PPM: u32 = 10_000;

fn env_u32(name: &str, default: u32) -> u32 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// `(op, f64 lanes)` cells measured at a given node count. The payload
/// sweep runs at the smallest count only; the node sweep fixes 1 KiB.
fn op_list(nodes: u32) -> Vec<(&'static str, usize)> {
    let mut ops = vec![("barrier", 0), ("bcast", 128), ("allreduce", 128)];
    if nodes == 64 {
        ops.push(("allreduce", 8));
        ops.push(("allreduce", 504)); // largest single-fragment payload
    }
    ops
}

struct Row {
    fabric: &'static str,
    nodes: u32,
    op: &'static str,
    impl_: &'static str,
    algorithm: &'static str,
    bytes: u64,
    latency_us: f64,
    bw_mbps: f64,
}

struct CellResult {
    /// `(op, lanes, latency_us)` from rank 0, in measurement order.
    latencies: Vec<(String, usize, f64)>,
    metrics_json: String,
}

fn fabric_spec(label: &str, nodes: u32) -> (ClusterSpec, &'static str) {
    // The registry keys on `Fabric::name()`; the bench labels match
    // `bench_engine`'s conventions.
    match label {
        "myrinet" => (ClusterSpec::dawning3000(nodes), "myrinet"),
        "mesh" => (ClusterSpec::dawning3000_mesh(nodes), "nwrc-mesh"),
        other => panic!("unknown fabric {other}"),
    }
}

fn run_op(ctx: &mut ActorCtx, comm: &Comm, op: &str, lanes: usize) {
    match op {
        "barrier" => comm.barrier(ctx),
        "bcast" => {
            let me = comm.rank();
            let mut buf = vec![0.0f64; lanes];
            if me == 0 {
                for (i, v) in buf.iter_mut().enumerate() {
                    *v = i as f64;
                }
            }
            comm.bcast_f64(ctx, 0, &mut buf);
            assert_eq!(buf[lanes - 1], (lanes - 1) as f64, "bcast payload wrong");
        }
        "allreduce" => {
            let me = comm.rank();
            let contrib = vec![me as f64 + 1.0; lanes];
            let n = comm.size();
            let out = comm.allreduce_f64(ctx, &contrib, ReduceOp::Sum);
            let expect = (u64::from(n) * (u64::from(n) + 1) / 2) as f64;
            assert_eq!(out[0], expect, "allreduce sum wrong");
        }
        other => panic!("unknown op {other}"),
    }
}

/// Build one cluster and measure every op on it. `shards == None` is the
/// production sharded engine; `check_budget` runs the collective
/// crossing-budget check (full below fleet scale, sampled at it).
fn run_cell(
    fabric_label: &'static str,
    nodes: u32,
    offload: bool,
    shards: Option<usize>,
    check_budget: bool,
) -> CellResult {
    let (spec, _) = fabric_spec(fabric_label, nodes);
    let fleet = nodes >= 1024;
    let mut spec = spec
        .with_seed(SEED)
        .with_engine_shards(shards)
        .with_telemetry(TelemetryConfig {
            sample_period: SimDuration::from_ms(1),
            ..TelemetryConfig::default()
        });
    if fleet {
        spec = spec.with_trace_sampling(FLEET_SAMPLE_PPM);
    }
    let cluster = spec.build();
    let sim = cluster.sim.clone();
    let uni = Universe::new(&sim, nodes);
    let lat: Arc<Mutex<Vec<(String, usize, f64)>>> = Arc::new(Mutex::new(Vec::new()));
    for r in 0..nodes {
        let uni = uni.clone();
        let lat = lat.clone();
        cluster.spawn_process(r, format!("coll{r}"), move |ctx, env| {
            let mut cfg = MpiConfig::dawning3000();
            cfg.offload_collectives = offload;
            let comm = Comm::init(ctx, &env.node.bcl, &env.proc, uni, r, cfg);
            for (op, lanes) in op_list(nodes) {
                run_op(ctx, &comm, op, lanes); // warmup
                let t0 = ctx.now();
                for _ in 0..REPS {
                    run_op(ctx, &comm, op, lanes);
                }
                let t1 = ctx.now();
                if r == 0 {
                    let us = (t1.as_ns() - t0.as_ns()) as f64 / 1e3 / f64::from(REPS);
                    lat.lock().unwrap().push((op.to_string(), lanes, us));
                }
            }
        });
    }
    assert_eq!(
        sim.run(),
        RunOutcome::Completed,
        "{fabric_label}/{nodes} collective cell hung"
    );
    for counter in [
        "mpi.coll_plan_rejected",
        "mpi.coll_launch_failed",
        "mpi.coll_nic_rejected",
        "mcp.protocol_errors",
    ] {
        assert_eq!(
            sim.get_count(counter),
            0,
            "{fabric_label}/{nodes}: {counter} tripped"
        );
    }
    if check_budget {
        let events = sim.trace_events();
        assert!(!events.is_empty(), "{fabric_label}/{nodes}: no trace");
        if fleet {
            let spec = SampleSpec::ratio_ppm(FLEET_SAMPLE_PPM).with_seed(SEED);
            let report = check_completeness_sampled(&events, &ChainPolicy::collective(), spec);
            assert!(
                report.violations.is_empty(),
                "{fabric_label}/{nodes}: sampled collective budget violated:\n{}",
                report.violations.join("\n")
            );
        } else {
            let report = check_completeness(&events, &ChainPolicy::collective());
            assert!(
                report.is_closed(),
                "{fabric_label}/{nodes}: collective budget violated:\n{}",
                report.violations.join("\n")
            );
        }
    }
    CellResult {
        latencies: Arc::into_inner(lat).unwrap().into_inner().unwrap(),
        metrics_json: cluster.metrics_snapshot().to_json(),
    }
}

fn algorithm_for(
    fabric_name: &str,
    op: &str,
    nodes: u32,
    bytes: u64,
    offload: bool,
) -> &'static str {
    if !offload {
        return match op {
            "barrier" => "host-dissemination",
            "bcast" => "host-binomial",
            _ => "host-reduce+bcast",
        };
    }
    let kind = match op {
        "barrier" => CollKind::Barrier,
        "bcast" => CollKind::Bcast,
        _ => CollKind::Allreduce,
    };
    PlanRegistry::for_fabric(fabric_name)
        .select(kind, nodes, bytes)
        .as_str()
}

fn to_json(rows: &[Row]) -> String {
    use std::fmt::Write as _;
    let (os, arch, rustc, threads) = host_meta();
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"suca.bench_collectives.v1\",");
    let _ = writeln!(out, "  \"seed\": {SEED},");
    let _ = writeln!(out, "  \"reps\": {REPS},");
    let _ = writeln!(out, "  \"determinism_ok\": true,");
    let _ = writeln!(out, "  \"budget_ok\": true,");
    let _ = writeln!(
        out,
        "  \"host\": {{\"os\": \"{os}\", \"arch\": \"{arch}\", \"rustc\": \"{rustc}\", \
         \"threads\": {threads}}},"
    );
    let _ = writeln!(out, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"fabric\": \"{}\", \"nodes\": {}, \"op\": \"{}\", \"impl\": \"{}\", \
             \"algorithm\": \"{}\", \"bytes\": {}, \"latency_us\": {:.3}, \
             \"bw_mbps\": {:.2}}}{comma}",
            r.fabric, r.nodes, r.op, r.impl_, r.algorithm, r.bytes, r.latency_us, r.bw_mbps,
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let max_nodes = env_u32("SUCA_BENCH_COLL_MAX_NODES", 1024);
    println!("-- bench_collectives: NIC plan interpreter vs host p2p baselines\n");

    // Determinism: the 64-node offloaded myrinet cell must produce the
    // same latencies and metrics bytes at every engine shard count.
    let reference = run_cell("myrinet", 64, true, Some(1), false);
    for shards in [None, Some(3)] {
        let got = run_cell("myrinet", 64, true, shards, false);
        assert_eq!(
            reference.latencies, got.latencies,
            "shards={shards:?}: latencies diverged from single-queue reference"
        );
        assert_eq!(
            reference.metrics_json, got.metrics_json,
            "shards={shards:?}: metrics diverged from single-queue reference"
        );
    }
    println!("[determinism] myrinet/64 offloaded: single_queue == sharded == 3-shard");

    let mut rows: Vec<Row> = Vec::new();
    for fabric in ["myrinet", "mesh"] {
        let (_, fabric_name) = fabric_spec(fabric, 64);
        for nodes in [64u32, 256, 1024] {
            if nodes > max_nodes {
                continue;
            }
            for offload in [true, false] {
                let impl_ = if offload { "offloaded" } else { "host" };
                let res = run_cell(fabric, nodes, offload, None, offload);
                for (op, lanes, us) in &res.latencies {
                    let bytes = (*lanes * 8) as u64;
                    let bw = if bytes > 0 && *us > 0.0 {
                        bytes as f64 / *us // B/µs == MB/s
                    } else {
                        0.0
                    };
                    rows.push(Row {
                        fabric,
                        nodes,
                        op: match op.as_str() {
                            "barrier" => "barrier",
                            "bcast" => "bcast",
                            _ => "allreduce",
                        },
                        impl_,
                        algorithm: algorithm_for(fabric_name, op, nodes, bytes, offload),
                        bytes,
                        latency_us: *us,
                        bw_mbps: bw,
                    });
                }
            }
        }
    }

    println!(
        "\nfabric   nodes op         impl       algorithm            bytes  latency_us    MB/s"
    );
    for r in &rows {
        println!(
            "{:<8} {:>5} {:<10} {:<10} {:<20} {:>5} {:>11.2} {:>7.1}",
            r.fabric, r.nodes, r.op, r.impl_, r.algorithm, r.bytes, r.latency_us, r.bw_mbps
        );
    }

    // Offload must win where it matters: barrier at scale.
    for fabric in ["myrinet", "mesh"] {
        for nodes in [256u32, 1024] {
            if nodes > max_nodes {
                continue;
            }
            let lat = |impl_: &str| {
                rows.iter()
                    .find(|r| {
                        r.fabric == fabric
                            && r.nodes == nodes
                            && r.op == "barrier"
                            && r.impl_ == impl_
                    })
                    .map(|r| r.latency_us)
                    .expect("barrier row present")
            };
            let (off, host) = (lat("offloaded"), lat("host"));
            assert!(
                off < host,
                "{fabric}/{nodes}: offloaded barrier {off:.2} us not faster than host {host:.2} us"
            );
            println!(
                "[crossover] {fabric}/{nodes}: offloaded barrier {off:.2} us vs host {host:.2} us \
                 ({:.1}x)",
                host / off
            );
        }
    }

    let dir = bench_dir();
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let path = dir.join("BENCH_collectives.json");
    std::fs::write(&path, to_json(&rows)).expect("write BENCH_collectives.json");
    println!("\n[bench] {} rows -> {}", rows.len(), path.display());
    println!("\nbench_collectives OK: deterministic, budget-clean, offload wins at scale");
}
