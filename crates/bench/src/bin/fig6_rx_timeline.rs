//! Figure 6 — reception timeline for a BCL message.
//!
//! The receive path never enters the kernel: the NIC checks and demuxes the
//! packet, DMAs the payload into the user buffer and the completion event
//! into the user-space queue; the process polls it for ≈ 1.01 µs. "Not trap
//! into kernel environment makes the reception operation much faster."

use suca_bench::measure::{measured_host_overheads, traced_zero_len_spans};
use suca_bench::report::{render, Row};
use suca_sim::{render_gantt, render_timeline};

fn main() {
    let spans = traced_zero_len_spans();
    let rx: Vec<_> = spans
        .iter()
        .filter(|s| s.track == "n1/rx")
        .cloned()
        .collect();
    println!("-- Fig. 6: reception timeline (receiver side, 0-length message)\n");
    print!("{}", render_timeline(&rx));
    println!();
    print!("{}", render_gantt(&rx, 72));

    let (_, _, poll) = measured_host_overheads();
    let host_cpu: f64 = rx
        .iter()
        .filter(|s| s.stage.starts_with("library"))
        .map(|s| s.duration().as_us())
        .sum();
    println!();
    print!(
        "{}",
        render(
            "Fig. 6 anchors",
            &[
                Row::new("receiver CPU overhead (poll, no trap)", 1.01, poll, "us"),
                Row::new("  (same, from stage spans)", 1.01, host_cpu, "us"),
            ],
        )
    );
    println!("kernel traps on receive path: 0 (by construction; see table1)");
}
