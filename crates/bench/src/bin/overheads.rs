//! §5 scalar overhead claims, each measured directly.

use suca_bench::measure::measured_host_overheads;
use suca_bench::report::{render, Row};
use suca_cluster::{measure_bandwidth, measure_one_way, ClusterSpec};

fn main() {
    let (send_oh, send_done, recv_poll) = measured_host_overheads();
    let cfg = suca_bcl::BclConfig::dawning3000();
    let bcl = measure_one_way(ClusterSpec::dawning3000(2), 0, 1, 0, 3, 10).one_way_us;
    let ul = suca_baselines::arch_one_way_us(suca_baselines::ArchModel::user_level(), 0, 3, 10);
    let bw = measure_bandwidth(ClusterSpec::dawning3000(2), 0, 1, 128 * 1024, 24, 8).mb_per_sec;
    let t128k = 131072.0 / bw;

    let rows = vec![
        Row::new("send overhead (0B, host CPU)", 7.04, send_oh, "us"),
        Row::new("send completion poll", 0.82, send_done, "us"),
        Row::new("receive overhead (poll, no trap)", 1.01, recv_poll, "us"),
        Row::new(
            "PIO write one word",
            0.24,
            cfg.pci.pio_write(1).as_us(),
            "us",
        ),
        Row::new("PIO read one word", 0.98, cfg.pci.pio_read(1).as_us(), "us"),
        Row::new("semi-user extra vs user-level", 4.17, bcl - ul, "us"),
        Row::new(
            "  as % of one-way latency",
            22.0,
            (bcl - ul) / bcl * 100.0,
            "%",
        ),
        Row::new("one-way latency inter-node (0B)", 18.3, bcl, "us"),
        Row::new(
            "extra at 128KB as % of transfer",
            0.4,
            cfg.kernel_extra().as_us() / t128k * 100.0,
            "%",
        ),
    ];
    print!("{}", render("§5 scalar overheads", &rows));
}
