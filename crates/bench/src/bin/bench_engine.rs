//! Event-engine scalability benchmark: a neighbor-ring message storm
//! through the full stack (BCL library, kernel trap, MCP firmware rings,
//! fabric) at 32/128/512/1,024 nodes on both SANs, timed against the wall
//! clock.
//!
//! Every node runs one process that sends `SUCA_BENCH_ENGINE_MSGS`
//! (default 4) small messages to its right neighbor and receives as many
//! from its left — all-to-neighbor traffic that keeps every per-node event
//! shard busy, which is exactly the shape the sharded engine batches well.
//! Three throughput numbers per `(nodes, fabric, mode)` cell:
//!
//! * **sim-events/sec** — raw engine dispatch rate (`events_dispatched`
//!   over wall time);
//! * **delivered-messages/sec** — end-to-end message rate;
//! * **wall-clock ms** — time for `Sim::run` on this host.
//!
//! `mode` is `sharded` (the default: one event-queue shard per node) or
//! `single_queue` (`with_engine_shards(Some(1))`, the reference the small
//! node counts are cross-checked against). Before the sweep, the 32-node
//! cells assert that the sharded and single-queue runs produce
//! byte-identical metrics snapshots and identical event counts — the
//! determinism contract the engine refactor preserves.
//!
//! The machine-readable report lands in `<bench_dir>/BENCH_engine.json`
//! (`SUCA_BENCH_DIR` overrides the directory; CI points it at the
//! workspace root and archives the file per PR, giving the perf
//! trajectory a paper trail).

use std::sync::{Arc, Mutex};
use std::time::Instant;

use suca_bcl::{ChannelId, ProcAddr};
use suca_bench::report::bench_dir;
use suca_cluster::{ClusterSpec, SimBarrier};
use suca_sim::{RunOutcome, SimDuration, TelemetryConfig};

const SEED: u64 = 0xE7617E; // "engine"
const PAYLOAD: usize = 512;

fn env_u32(name: &str, default: u32) -> u32 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One `(nodes, fabric, mode)` measurement.
struct Row {
    nodes: u32,
    fabric: &'static str,
    mode: &'static str,
    shards: usize,
    sim_events: u64,
    delivered_msgs: u64,
    wall_ms: f64,
    events_per_sec: f64,
    msgs_per_sec: f64,
    sim_us: f64,
}

/// Everything a run produces: the measured row plus the byte artifacts the
/// determinism cross-checks compare.
struct RunResult {
    row: Row,
    metrics_json: String,
}

fn spec_for(fabric: &'static str, nodes: u32) -> ClusterSpec {
    let base = match fabric {
        "myrinet" => ClusterSpec::dawning3000(nodes),
        "mesh" => ClusterSpec::dawning3000_mesh(nodes),
        other => panic!("unknown fabric {other}"),
    };
    // Sample telemetry at 1 ms instead of the default 10 µs: at 1,024
    // nodes the probe registry is thousands of entries and per-10 µs
    // sampling would measure the sampler, not the engine.
    base.with_seed(SEED).with_telemetry(TelemetryConfig {
        sample_period: SimDuration::from_ms(1),
        ..TelemetryConfig::default()
    })
}

/// Run the neighbor ring and measure. `shards == None` is the production
/// sharded shape; `Some(1)` the single-queue reference.
fn run_ring(fabric: &'static str, nodes: u32, shards: Option<usize>, msgs: u32) -> RunResult {
    let cluster = spec_for(fabric, nodes).with_engine_shards(shards).build();
    let sim = cluster.sim.clone();
    let barrier = SimBarrier::new(&sim, nodes);
    let addrs: Arc<Mutex<Vec<Option<ProcAddr>>>> = Arc::new(Mutex::new(vec![None; nodes as usize]));
    let delivered = Arc::new(Mutex::new(0u64));
    for node in 0..nodes {
        let (b, a, d) = (barrier.clone(), addrs.clone(), delivered.clone());
        cluster.spawn_process(node, "ring", move |ctx, env| {
            let port = env.open_port(ctx);
            a.lock().unwrap()[node as usize] = Some(port.addr());
            // One channel per in-flight message: a channel holds a single
            // outstanding recv, so message i rides channel i.
            for i in 0..msgs {
                port.post_recv(ctx, i as u16, PAYLOAD as u64)
                    .expect("post recv");
            }
            b.wait(ctx);
            let right = a.lock().unwrap()[((node + 1) % nodes) as usize].expect("neighbor up");
            let payload = vec![node as u8; PAYLOAD];
            for i in 0..msgs {
                port.send_bytes(ctx, right, ChannelId::normal(i as u16), &payload)
                    .expect("send");
            }
            let mut got = 0u64;
            for _ in 0..msgs {
                let ev = port.wait_recv(ctx);
                assert_eq!(ev.len, PAYLOAD as u64, "short delivery");
                got += 1;
            }
            *d.lock().unwrap() += got;
        });
    }
    let wall = Instant::now();
    assert_eq!(sim.run(), RunOutcome::Completed, "ring workload hung");
    let wall_s = wall.elapsed().as_secs_f64();
    let delivered = *delivered.lock().unwrap();
    assert_eq!(delivered, u64::from(nodes) * u64::from(msgs));
    let sim_events = sim.events_dispatched();
    RunResult {
        row: Row {
            nodes,
            fabric,
            mode: if shards == Some(1) {
                "single_queue"
            } else {
                "sharded"
            },
            shards: sim.shards(),
            sim_events,
            delivered_msgs: delivered,
            wall_ms: wall_s * 1e3,
            events_per_sec: sim_events as f64 / wall_s,
            msgs_per_sec: delivered as f64 / wall_s,
            sim_us: sim.now().as_us(),
        },
        metrics_json: cluster.metrics_snapshot().to_json(),
    }
}

fn to_json(rows: &[Row], msgs: u32) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"suca.bench_engine.v1\",");
    let _ = writeln!(out, "  \"seed\": {SEED},");
    let _ = writeln!(out, "  \"msgs_per_node\": {msgs},");
    let _ = writeln!(out, "  \"payload_bytes\": {PAYLOAD},");
    let _ = writeln!(out, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"nodes\": {}, \"fabric\": \"{}\", \"mode\": \"{}\", \"shards\": {}, \
             \"sim_events\": {}, \"delivered_msgs\": {}, \"wall_ms\": {:.3}, \
             \"events_per_sec\": {:.1}, \"msgs_per_sec\": {:.1}, \"sim_us\": {:.3}}}{comma}",
            r.nodes,
            r.fabric,
            r.mode,
            r.shards,
            r.sim_events,
            r.delivered_msgs,
            r.wall_ms,
            r.events_per_sec,
            r.msgs_per_sec,
            r.sim_us,
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let msgs = env_u32("SUCA_BENCH_ENGINE_MSGS", 4);
    let max_nodes = env_u32("SUCA_BENCH_ENGINE_MAX_NODES", 1024);
    println!("-- bench_engine: neighbor-ring storm, {msgs} msgs/node x {PAYLOAD} B\n");

    // Determinism cross-check at the smallest scale, both fabrics: the
    // sharded engine must produce byte-identical metrics (and the same
    // event count) as the single-queue reference, and a sharded rerun must
    // reproduce itself.
    for fabric in ["myrinet", "mesh"] {
        let sharded = run_ring(fabric, 32, None, msgs);
        let rerun = run_ring(fabric, 32, None, msgs);
        assert_eq!(
            sharded.metrics_json, rerun.metrics_json,
            "{fabric}: sharded run not reproducible at fixed seed"
        );
        let single = run_ring(fabric, 32, Some(1), msgs);
        assert_eq!(
            sharded.metrics_json, single.metrics_json,
            "{fabric}: sharded metrics diverge from single-queue reference"
        );
        assert_eq!(
            sharded.row.sim_events, single.row.sim_events,
            "{fabric}: event count diverges from single-queue reference"
        );
        println!(
            "[determinism] {fabric}/32: sharded == single_queue == rerun \
             ({} events, {} msgs)",
            sharded.row.sim_events, sharded.row.delivered_msgs
        );
    }

    let mut rows = Vec::new();
    for fabric in ["myrinet", "mesh"] {
        for nodes in [32u32, 128, 512, 1024] {
            if nodes > max_nodes {
                continue;
            }
            rows.push(run_ring(fabric, nodes, None, msgs).row);
            // Single-queue reference rows at the small counts give the
            // sharded-vs-reference wall-clock trajectory without paying
            // for a 1,024-node single-queue run every PR.
            if nodes <= 128 {
                rows.push(run_ring(fabric, nodes, Some(1), msgs).row);
            }
        }
    }

    println!(
        "\nfabric   nodes mode          shards    events     msgs   wall_ms   events/s     msgs/s"
    );
    for r in &rows {
        println!(
            "{:<8} {:>5} {:<13} {:>5} {:>9} {:>8} {:>9.2} {:>10.0} {:>10.0}",
            r.fabric,
            r.nodes,
            r.mode,
            r.shards,
            r.sim_events,
            r.delivered_msgs,
            r.wall_ms,
            r.events_per_sec,
            r.msgs_per_sec
        );
    }

    let dir = bench_dir();
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let path = dir.join("BENCH_engine.json");
    std::fs::write(&path, to_json(&rows, msgs)).expect("write BENCH_engine.json");
    println!("\n[bench] {} rows -> {}", rows.len(), path.display());
    println!("\nbench_engine OK: deterministic across shard counts, sweep recorded");
}
