//! Event-engine scalability benchmark: a neighbor-ring message storm
//! through the full stack (BCL library, kernel trap, MCP firmware rings,
//! fabric) at 32/128/512/1,024 nodes on both SANs, timed against the wall
//! clock.
//!
//! Every node runs one process that sends `SUCA_BENCH_ENGINE_MSGS`
//! (default 4) small messages to its right neighbor and receives as many
//! from its left — all-to-neighbor traffic that keeps every per-node event
//! shard busy, which is exactly the shape the sharded engine batches well.
//! Three throughput numbers per `(nodes, fabric, mode)` cell:
//!
//! * **sim-events/sec** — raw engine dispatch rate (`events_dispatched`
//!   over wall time);
//! * **delivered-messages/sec** — end-to-end message rate;
//! * **wall-clock ms** — time for `Sim::run` on this host.
//!
//! `mode` is `sharded` (the default: one event-queue shard per node) or
//! `single_queue` (`with_engine_shards(Some(1))`, the reference the small
//! node counts are cross-checked against). Before the sweep, the 32-node
//! cells assert that the sharded and single-queue runs produce
//! byte-identical metrics snapshots and identical event counts — the
//! determinism contract the engine refactor preserves — and that enabling
//! the self-profiler perturbs neither.
//!
//! Sweep rows run with the engine self-profiler on: each cell's full
//! report lands in `<prof_dir>/engine_<fabric>_<nodes>_<mode>.json` and a
//! summary is merged into the row. The 512-node cells must attribute
//! ≥ 80% of scheduler wall clock to named phases. At 1,024 nodes the run
//! switches to fleet mode — 1% deterministic trace sampling plus the
//! timeseries rollup — and must pass the sampled crossing-budget check
//! while emitting < 10% of the unsampled 32-node baseline's observability
//! bytes per delivered message.
//!
//! The machine-readable report lands in `<bench_dir>/BENCH_engine.json`
//! (`SUCA_BENCH_DIR` overrides the directory; CI points it at the
//! workspace root and archives the file per PR, giving the perf
//! trajectory a paper trail). Schema v2 adds host/rustc/thread metadata so
//! rows are comparable across machines.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use suca_bcl::{ChannelId, ProcAddr};
use suca_bench::report::{bench_dir, host_meta, prof_dir, timeseries_dir, traces_dir};
use suca_cluster::{ClusterSpec, SimBarrier};
use suca_sim::mtrace::{check_completeness_sampled, ChainPolicy, SampleSpec};
use suca_sim::{ProfReport, RunOutcome, SimDuration, TelemetryConfig};

const SEED: u64 = 0xE7617E; // "engine"
const PAYLOAD: usize = 512;
/// Fleet-mode trace sampling rate (1%) applied at the largest node count.
const FLEET_SAMPLE_PPM: u32 = 10_000;
/// Node count at which the bench switches to fleet-mode observability.
const FLEET_NODES: u32 = 1024;

fn env_u32(name: &str, default: u32) -> u32 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One `(nodes, fabric, mode)` measurement.
struct Row {
    nodes: u32,
    fabric: &'static str,
    mode: &'static str,
    shards: usize,
    sim_events: u64,
    delivered_msgs: u64,
    wall_ms: f64,
    events_per_sec: f64,
    msgs_per_sec: f64,
    sim_us: f64,
    trace_sample_ppm: u32,
    /// Self-profiler summary (None for unprofiled cross-check runs).
    prof: Option<ProfReport>,
    /// Observability artifact bytes (trace + timeseries + metrics JSON),
    /// when this run captured them.
    obs_bytes: Option<u64>,
}

/// Everything a run produces: the measured row plus the byte artifacts the
/// determinism cross-checks compare and the observability-size audit sums.
struct RunResult {
    row: Row,
    metrics_json: String,
    /// `(trace_json, timeseries_or_rollup_json)` when observability output
    /// was captured.
    obs: Option<(String, String)>,
    /// Violations from the sampled crossing-budget check (sampled runs).
    sampled_violations: Option<Vec<String>>,
}

/// How to run one cell.
#[derive(Clone, Copy)]
struct RunOpts {
    shards: Option<usize>,
    msgs: u32,
    profile: bool,
    /// Trace sampling rate (None = record everything).
    sample_ppm: Option<u32>,
    /// Capture trace/timeseries artifacts and (for sampled runs) the
    /// sampled completeness check. Rollup timeseries for >= 512 nodes,
    /// full snapshot below.
    capture_obs: bool,
}

impl RunOpts {
    fn plain(shards: Option<usize>, msgs: u32) -> RunOpts {
        RunOpts {
            shards,
            msgs,
            profile: false,
            sample_ppm: None,
            capture_obs: false,
        }
    }
}

fn spec_for(fabric: &'static str, nodes: u32) -> ClusterSpec {
    let base = match fabric {
        "myrinet" => ClusterSpec::dawning3000(nodes),
        "mesh" => ClusterSpec::dawning3000_mesh(nodes),
        other => panic!("unknown fabric {other}"),
    };
    // Sample telemetry at 1 ms instead of the default 10 µs: at 1,024
    // nodes the probe registry is thousands of entries and per-10 µs
    // sampling would measure the sampler, not the engine.
    base.with_seed(SEED).with_telemetry(TelemetryConfig {
        sample_period: SimDuration::from_ms(1),
        ..TelemetryConfig::default()
    })
}

/// Run the neighbor ring and measure. `shards == None` is the production
/// sharded shape; `Some(1)` the single-queue reference.
fn run_ring(fabric: &'static str, nodes: u32, opts: RunOpts) -> RunResult {
    let mut spec = spec_for(fabric, nodes)
        .with_engine_shards(opts.shards)
        .with_profiling(opts.profile);
    if let Some(ppm) = opts.sample_ppm {
        spec = spec.with_trace_sampling(ppm);
    }
    let cluster = spec.build();
    let sim = cluster.sim.clone();
    let msgs = opts.msgs;
    let barrier = SimBarrier::new(&sim, nodes);
    let addrs: Arc<Mutex<Vec<Option<ProcAddr>>>> = Arc::new(Mutex::new(vec![None; nodes as usize]));
    let delivered = Arc::new(Mutex::new(0u64));
    for node in 0..nodes {
        let (b, a, d) = (barrier.clone(), addrs.clone(), delivered.clone());
        cluster.spawn_process(node, "ring", move |ctx, env| {
            let port = env.open_port(ctx);
            a.lock().unwrap()[node as usize] = Some(port.addr());
            // One channel per in-flight message: a channel holds a single
            // outstanding recv, so message i rides channel i.
            for i in 0..msgs {
                port.post_recv(ctx, i as u16, PAYLOAD as u64)
                    .expect("post recv");
            }
            b.wait(ctx);
            let right = a.lock().unwrap()[((node + 1) % nodes) as usize].expect("neighbor up");
            let payload = vec![node as u8; PAYLOAD];
            for i in 0..msgs {
                port.send_bytes(ctx, right, ChannelId::normal(i as u16), &payload)
                    .expect("send");
            }
            let mut got = 0u64;
            for _ in 0..msgs {
                let ev = port.wait_recv(ctx);
                assert_eq!(ev.len, PAYLOAD as u64, "short delivery");
                got += 1;
            }
            *d.lock().unwrap() += got;
        });
    }
    let wall = Instant::now();
    assert_eq!(sim.run(), RunOutcome::Completed, "ring workload hung");
    let wall_s = wall.elapsed().as_secs_f64();
    let delivered = *delivered.lock().unwrap();
    assert_eq!(delivered, u64::from(nodes) * u64::from(msgs));
    let sim_events = sim.events_dispatched();
    let metrics_json = cluster.metrics_snapshot().to_json();

    let mut obs = None;
    let mut sampled_violations = None;
    let mut obs_bytes = None;
    if opts.capture_obs {
        let events = sim.trace_events();
        let trace_json = suca_sim::mtrace::to_chrome_json(&events);
        let ts_snap = sim.timeseries().snapshot();
        // Fleet scale bounds the timeseries artifact via the rollup; small
        // runs keep the full per-probe snapshot.
        let ts_json = if nodes >= 512 {
            ts_snap.rollup().to_json()
        } else {
            ts_snap.to_json()
        };
        if let Some(ppm) = opts.sample_ppm {
            let spec = SampleSpec::ratio_ppm(ppm).with_seed(SEED);
            let report = check_completeness_sampled(&events, &ChainPolicy::bcl(), spec);
            sampled_violations = Some(report.violations.clone());
        }
        obs_bytes = Some((trace_json.len() + ts_json.len() + metrics_json.len()) as u64);
        obs = Some((trace_json, ts_json));
    }

    RunResult {
        row: Row {
            nodes,
            fabric,
            mode: if opts.shards == Some(1) {
                "single_queue"
            } else {
                "sharded"
            },
            shards: sim.shards(),
            sim_events,
            delivered_msgs: delivered,
            wall_ms: wall_s * 1e3,
            events_per_sec: sim_events as f64 / wall_s,
            msgs_per_sec: delivered as f64 / wall_s,
            sim_us: sim.now().as_us(),
            trace_sample_ppm: opts.sample_ppm.unwrap_or(1_000_000),
            prof: opts.profile.then(|| sim.prof_report()),
            obs_bytes,
        },
        metrics_json,
        obs,
        sampled_violations,
    }
}

fn prof_row_json(r: &ProfReport) -> String {
    use std::fmt::Write as _;
    let pops = r.pick_pops + r.horizon_pops;
    let stale = r.pick_stale_pops + r.horizon_stale_pops;
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"batches\": {}, \"mean_batch_len\": {:.2}, \"attributed_pct\": {:.1}, \
         \"end_horizon\": {}, \"end_dirty\": {}, \"end_empty\": {}, \"end_limit\": {}, \
         \"dirty_continues\": {}, \"index_pushes\": {}, \"stale_pop_pct\": {:.1}, \
         \"cross_shard_pushes\": {}, \"lock_acquisitions\": {}, \"lock_hold_ms\": {:.3}",
        r.batches,
        r.mean_batch_len(),
        r.attributed_pct(),
        r.end_horizon,
        r.end_dirty,
        r.end_empty,
        r.end_limit,
        r.dirty_continues,
        r.index_pushes,
        if pops == 0 {
            0.0
        } else {
            stale as f64 / pops as f64 * 100.0
        },
        r.cross_shard_pushes,
        r.lock_acquisitions,
        r.lock_hold_ns() as f64 / 1e6,
    );
    out.push('}');
    out
}

fn to_json(rows: &[Row], msgs: u32) -> String {
    use std::fmt::Write as _;
    let (os, arch, rustc, threads) = host_meta();
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"suca.bench_engine.v2\",");
    let _ = writeln!(out, "  \"seed\": {SEED},");
    let _ = writeln!(out, "  \"msgs_per_node\": {msgs},");
    let _ = writeln!(out, "  \"payload_bytes\": {PAYLOAD},");
    let _ = writeln!(
        out,
        "  \"host\": {{\"os\": \"{os}\", \"arch\": \"{arch}\", \"rustc\": \"{rustc}\", \
         \"threads\": {threads}}},"
    );
    let _ = writeln!(out, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let prof = r
            .prof
            .as_ref()
            .map(prof_row_json)
            .unwrap_or_else(|| "null".to_string());
        let obs = r
            .obs_bytes
            .map(|b| b.to_string())
            .unwrap_or_else(|| "null".to_string());
        let _ = writeln!(
            out,
            "    {{\"nodes\": {}, \"fabric\": \"{}\", \"mode\": \"{}\", \"shards\": {}, \
             \"sim_events\": {}, \"delivered_msgs\": {}, \"wall_ms\": {:.3}, \
             \"events_per_sec\": {:.1}, \"msgs_per_sec\": {:.1}, \"sim_us\": {:.3}, \
             \"trace_sample_ppm\": {}, \"obs_bytes\": {obs}, \"prof\": {prof}}}{comma}",
            r.nodes,
            r.fabric,
            r.mode,
            r.shards,
            r.sim_events,
            r.delivered_msgs,
            r.wall_ms,
            r.events_per_sec,
            r.msgs_per_sec,
            r.sim_us,
            r.trace_sample_ppm,
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let msgs = env_u32("SUCA_BENCH_ENGINE_MSGS", 4);
    let max_nodes = env_u32("SUCA_BENCH_ENGINE_MAX_NODES", 1024);
    println!("-- bench_engine: neighbor-ring storm, {msgs} msgs/node x {PAYLOAD} B\n");

    // Determinism cross-check at the smallest scale, both fabrics: the
    // sharded engine must produce byte-identical metrics (and the same
    // event count) as the single-queue reference, a sharded rerun must
    // reproduce itself, and turning the profiler on must perturb nothing.
    let mut baseline_obs_per_msg = f64::MAX;
    for fabric in ["myrinet", "mesh"] {
        let sharded = run_ring(
            fabric,
            32,
            RunOpts {
                capture_obs: true,
                ..RunOpts::plain(None, msgs)
            },
        );
        let rerun = run_ring(fabric, 32, RunOpts::plain(None, msgs));
        assert_eq!(
            sharded.metrics_json, rerun.metrics_json,
            "{fabric}: sharded run not reproducible at fixed seed"
        );
        let single = run_ring(fabric, 32, RunOpts::plain(Some(1), msgs));
        assert_eq!(
            sharded.metrics_json, single.metrics_json,
            "{fabric}: sharded metrics diverge from single-queue reference"
        );
        assert_eq!(
            sharded.row.sim_events, single.row.sim_events,
            "{fabric}: event count diverges from single-queue reference"
        );
        let profiled = run_ring(
            fabric,
            32,
            RunOpts {
                profile: true,
                ..RunOpts::plain(None, msgs)
            },
        );
        assert_eq!(
            sharded.metrics_json, profiled.metrics_json,
            "{fabric}: profiling perturbed the run"
        );
        assert_eq!(sharded.row.sim_events, profiled.row.sim_events);
        // The unsampled 32-node run is the observability-size baseline the
        // fleet-mode acceptance below is measured against.
        if fabric == "myrinet" {
            let bytes = sharded.row.obs_bytes.expect("captured") as f64;
            baseline_obs_per_msg = bytes / sharded.row.delivered_msgs as f64;
            println!(
                "[baseline] myrinet/32 unsampled observability: {:.0} B/msg",
                baseline_obs_per_msg
            );
        }
        println!(
            "[determinism] {fabric}/32: sharded == single_queue == rerun == profiled \
             ({} events, {} msgs)",
            sharded.row.sim_events, sharded.row.delivered_msgs
        );
    }

    let prof_out = prof_dir();
    std::fs::create_dir_all(&prof_out).expect("create prof dir");
    let mut rows = Vec::new();
    for fabric in ["myrinet", "mesh"] {
        for nodes in [32u32, 128, 512, 1024] {
            if nodes > max_nodes {
                continue;
            }
            let fleet = nodes >= FLEET_NODES;
            let res = run_ring(
                fabric,
                nodes,
                RunOpts {
                    shards: None,
                    msgs,
                    profile: true,
                    sample_ppm: fleet.then_some(FLEET_SAMPLE_PPM),
                    capture_obs: nodes >= 512,
                },
            );
            let cell = format!("engine_{fabric}_{nodes}_sharded");
            if let Some(p) = &res.row.prof {
                std::fs::write(prof_out.join(format!("{cell}.json")), p.to_json())
                    .expect("write prof report");
            }
            if let Some((trace_json, ts_json)) = &res.obs {
                let tdir = traces_dir();
                std::fs::create_dir_all(&tdir).expect("create traces dir");
                std::fs::write(tdir.join(format!("{cell}.json")), trace_json)
                    .expect("write trace json");
                let tsdir = timeseries_dir();
                std::fs::create_dir_all(&tsdir).expect("create timeseries dir");
                std::fs::write(tsdir.join(format!("{cell}.rollup.json")), ts_json)
                    .expect("write rollup json");
            }
            // Acceptance: the profiler must explain where a 512-node run's
            // scheduler wall clock goes.
            if nodes == 512 {
                let p = res.row.prof.as_ref().expect("profiled");
                assert!(
                    p.attributed_pct() >= 80.0,
                    "{fabric}/512: only {:.1}% of scheduler wall clock attributed",
                    p.attributed_pct()
                );
                // Cap on the scheduler's own overhead (the pick, pop, and
                // batch-end phases). The profiler attributes the large-run
                // slowdown to actor-thread baton handoffs inside dispatch
                // (~90% of wall at 512 nodes, an OS context-switch cost
                // structural to thread-backed actors, not an engine cost);
                // this assertion keeps the engine's share from regressing
                // back into the picture.
                let sched_ns = p.pick_ns + p.pop_ns + p.batch_end_ns;
                assert!(
                    sched_ns * 4 <= p.attributed_ns(),
                    "{fabric}/512: scheduler phases take {:.1}% of attributed wall (cap 25%)",
                    sched_ns as f64 / p.attributed_ns() as f64 * 100.0
                );
                println!(
                    "[prof] {fabric}/512: {:.1}% of {:.0} ms attributed \
                     (pick {:.1} ms, pop {:.1} ms, dispatch {:.1} ms, batch-end {:.1} ms)",
                    p.attributed_pct(),
                    p.run_ns as f64 / 1e6,
                    p.pick_ns as f64 / 1e6,
                    p.pop_ns as f64 / 1e6,
                    p.dispatch_ns.iter().sum::<u64>() as f64 / 1e6,
                    p.batch_end_ns as f64 / 1e6,
                );
            }
            // Acceptance: fleet mode (1% sampling + rollup) passes the
            // sampled crossing-budget check and emits < 10% of the
            // unsampled baseline's observability bytes per message.
            if fleet {
                let violations = res.sampled_violations.as_ref().expect("sampled check ran");
                assert!(
                    violations.is_empty(),
                    "{fabric}/{nodes}: sampled crossing-budget check failed:\n{}",
                    violations.join("\n")
                );
                let per_msg =
                    res.row.obs_bytes.expect("captured") as f64 / res.row.delivered_msgs as f64;
                assert!(
                    per_msg < baseline_obs_per_msg * 0.10,
                    "{fabric}/{nodes}: fleet observability {per_msg:.0} B/msg \
                     >= 10% of baseline {baseline_obs_per_msg:.0} B/msg"
                );
                println!(
                    "[fleet] {fabric}/{nodes}: sampled budget check clean, \
                     {per_msg:.0} B/msg ({:.1}% of baseline)",
                    per_msg / baseline_obs_per_msg * 100.0
                );
            }
            rows.push(res.row);
            // Single-queue reference rows at the small counts give the
            // sharded-vs-reference wall-clock trajectory without paying
            // for a 1,024-node single-queue run every PR.
            if nodes <= 128 {
                let res = run_ring(
                    fabric,
                    nodes,
                    RunOpts {
                        profile: true,
                        ..RunOpts::plain(Some(1), msgs)
                    },
                );
                if let Some(p) = &res.row.prof {
                    std::fs::write(
                        prof_out.join(format!("engine_{fabric}_{nodes}_single_queue.json")),
                        p.to_json(),
                    )
                    .expect("write prof report");
                }
                rows.push(res.row);
            }
        }
    }

    println!(
        "\nfabric   nodes mode          shards    events     msgs   wall_ms   events/s     msgs/s  attr%  batch"
    );
    for r in &rows {
        let (attr, blen) = r
            .prof
            .as_ref()
            .map(|p| (p.attributed_pct(), p.mean_batch_len()))
            .unwrap_or((0.0, 0.0));
        println!(
            "{:<8} {:>5} {:<13} {:>5} {:>9} {:>8} {:>9.2} {:>10.0} {:>10.0} {:>6.1} {:>6.2}",
            r.fabric,
            r.nodes,
            r.mode,
            r.shards,
            r.sim_events,
            r.delivered_msgs,
            r.wall_ms,
            r.events_per_sec,
            r.msgs_per_sec,
            attr,
            blen,
        );
    }

    let dir = bench_dir();
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let path = dir.join("BENCH_engine.json");
    std::fs::write(&path, to_json(&rows, msgs)).expect("write BENCH_engine.json");
    println!("\n[bench] {} rows -> {}", rows.len(), path.display());
    println!("\nbench_engine OK: deterministic across shard counts, profiled sweep recorded");
}
