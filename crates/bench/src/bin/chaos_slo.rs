//! Chaos harness: the sharded KV service of `rpc_slo` running on a
//! 32-node **dual-rail** cluster (Myrinet primary + nwrc mesh secondary)
//! while a scripted fault storm tears at rail 0 mid-run — a link flap, a
//! permanent switch-port death, a NIC reset that wipes MCP SRAM, and a
//! whole-node crash/restart.
//!
//! Two variants at the same fixed seed:
//!
//! * **chaos_clean** — the dual-rail cluster with no faults: the SLO
//!   baseline the storm is compared against.
//! * **chaos_storm** — the same workload under the storm. Recovery must go
//!   through the full machinery (retransmission exhaustion → path death →
//!   rail failover → epoch resync), and at the end the books must balance:
//!   `completed + shed + timed_out == issued`, no chain stuck (the armed
//!   stall watchdog stays silent), and both the SLO and chaos reports are
//!   byte-identical across a rerun at the same seed.
//!
//! Reports land in `target/chaos/`: `slo_{variant}.json` plus the chaos
//! report `chaos_storm.json` (fault + recovery counters, recovery-latency
//! percentiles).

use std::sync::{Arc, Mutex};

use suca_bcl::ProcAddr;
use suca_bench::report::emit_metrics;
use suca_chaos::{chaos_dir, ChaosController, ChaosPlan, ChaosReport, Fault};
use suca_cluster::{Cluster, ClusterSpec, SanKind, SimBarrier};
use suca_load::{
    run_closed_loop, ClosedLoopCfg, KvCosts, KvService, LatencyHists, LoadStats, Mix, SloReport,
};
use suca_mesh::MeshConfig;
use suca_rpc::{RpcClient, RpcClientConfig, RpcServer, RpcServerConfig};
use suca_sim::{
    ActorCtx, DetectionSpec, HealthRule, RunOutcome, SimDuration, SimTime, TelemetryConfig,
    WatchdogConfig,
};

const SEED: u64 = 0xC4A05;
const NODES: u32 = 32;
const N_SERVERS: u32 = 8;
const USERS_PER_CLIENT: u32 = 8;
const OPS_PER_USER: u32 = 4;

/// Sampler tick for this harness (coarser than the default: a 25 ms
/// dual-rail storm run at 10 µs would be all sampling).
const TICK: SimDuration = SimDuration::from_us(100);

/// How long the sampler must keep ticking so every storm alert has quiet
/// time to resolve (rate windows + clear streaks) after the last client
/// finishes (~8 ms).
const KEEPALIVE_NS: u64 = 25_000_000;

/// One rate rule per fault symptom counter: a single increment inside a
/// 10-tick (1 ms) window is a breach, firing on the first breached tick so
/// detection latency is dominated by the symptom reaching a counter, not
/// by alert damping. 20 healthy ticks (2 ms) after the window drains the
/// last increment, the alert resolves.
fn health_rules() -> Vec<HealthRule> {
    let sym =
        |name: &str, counter: &str| HealthRule::rate(name, counter, 10, 1).with_lifecycle(1, 20);
    vec![
        sym("link.down", "link.down_drops"),
        sym("switch.dead_port", "switch.dead_port_drop"),
        sym("mcp.nic_reset", "mcp.nic_resets"),
        sym("mcp.node_down", "mcp.node_down_drops"),
        sym("mcp.path_death", "mcp.path_deaths"),
        sym("mcp.protocol_error", "mcp.protocol_errors"),
    ]
}

/// The measurement contract for the storm: each injected fault kind must
/// be detected by *its* symptom rule within 1.5 ms of injection. Times
/// mirror [`storm`].
fn storm_detections() -> Vec<DetectionSpec> {
    let spec = |kind: &str, injected_ns: u64, rule: &str| DetectionSpec {
        kind: kind.into(),
        injected_ns,
        rules: vec![rule.into()],
        bound_ns: 1_500_000,
    };
    vec![
        spec("link_flap", 1_000_000, "link.down"),
        spec("switch_port_death", 1_500_000, "switch.dead_port"),
        spec("nic_reset", 2_000_000, "mcp.nic_reset"),
        spec("node_crash", 2_500_000, "mcp.node_down"),
    ]
}

/// 32 nodes, Myrinet rail 0 + mesh rail 1, path-death detection armed, and
/// the stall watchdog running with a budget far above recovery latency so
/// a stuck chain — not a slow one — is what trips it.
fn dual_rail_spec() -> ClusterSpec {
    let mut spec = ClusterSpec::dawning3000(NODES)
        .with_seed(SEED)
        .with_second_san(SanKind::Mesh(MeshConfig::dawning3000()))
        .with_health(health_rules())
        .with_telemetry(TelemetryConfig {
            sample_period: TICK,
            watchdog: WatchdogConfig {
                chain_budget_ns: 5_000_000, // 5 ms >> path-death + resync
                ..WatchdogConfig::default()
            },
        });
    spec.bcl.reliability.max_path_timeouts = 3;
    spec
}

/// Spread the shards evenly (same policy as `rpc_slo`).
fn interleave_servers(nodes: u32, n_servers: u32) -> Vec<u32> {
    (0..n_servers).map(|s| s * nodes / n_servers).collect()
}

/// The scripted storm. The rail faults aim at client nodes (what is under
/// test there is the *path* recovery machinery); the node crash aims at a
/// shard, because a crashed node is only detectable through traffic it
/// fails to absorb — an idle client dies silently, a shard the whole
/// cluster keeps talking to shows up as counted `mcp.node_down_drops`
/// within microseconds. Every fault kind from the taxonomy appears once.
fn storm() -> ChaosPlan {
    let mut plan = ChaosPlan::new();
    // t=1 ms: node 5's rail-0 cable flaps for 2 ms.
    plan.push(
        SimTime::from_ns(1_000_000),
        Fault::LinkFlap {
            rail: 0,
            node: 5,
            down_for: SimDuration::from_ms(2),
        },
    );
    // t=1.5 ms: the rail-0 switch port feeding node 9 dies permanently
    // (Myrinet: 6 hosts per switch, so node 9 is switch 1, port 3).
    plan.push(
        SimTime::from_ns(1_500_000),
        Fault::SwitchPortDeath {
            rail: 0,
            switch: 1,
            port: 3,
        },
    );
    // t=2 ms: node 13's NIC resets, wiping its MCP SRAM.
    plan.push(SimTime::from_ns(2_000_000), Fault::NicReset { node: 13 });
    // t=2.5 ms: shard node 20 crashes whole, restarting 1 ms later.
    // Recovery must ride the full chain: peers exhaust retransmissions,
    // declare the path dead, fail over to rail 1 (also dead — the *node*
    // is down), and resync epochs once the restart brings it back.
    plan.push(
        SimTime::from_ns(2_500_000),
        Fault::NodeCrash {
            node: 20,
            down_for: SimDuration::from_ms(1),
        },
    );
    plan
}

/// Spawn shards + closed-loop clients (the `rpc_slo` scaffolding), with an
/// optional fault storm installed before the first actor runs.
fn run_kv(plan: Option<&ChaosPlan>) -> (Cluster, LoadStats) {
    let spec = dual_rail_spec();
    let server_nodes = interleave_servers(NODES, N_SERVERS);
    let cluster = spec.build();
    let sim = cluster.sim.clone();
    // The sampler stops once the event queue drains, so park a no-op far
    // enough out that every alert the storm raises has quiet ticks to
    // resolve. Scheduled in both variants so clean and storm runs see the
    // same tick count.
    sim.schedule_at(SimTime::from_ns(KEEPALIVE_NS), |_| {});
    if let Some(plan) = plan {
        ChaosController::install(&cluster, plan);
    }
    let server_cfg = RpcServerConfig {
        queue_cap: 1024,
        idle_timeout: SimDuration::from_ms(5),
        ..RpcServerConfig::default()
    };
    // The client timeout must comfortably cover a full recovery
    // (3 x 300 us retransmission exhaustion + resync), so storm-time
    // requests ride through failover instead of burning attempts.
    let client_cfg = RpcClientConfig {
        timeout: SimDuration::from_ms(5),
        max_attempts: 3,
        backoff: SimDuration::from_us(200),
        arena_slots: USERS_PER_CLIENT,
        slot_bytes: suca_load::SCAN_BYTES as u64,
        ..RpcClientConfig::default()
    };
    let barrier = SimBarrier::new(&sim, NODES);
    let addrs: Arc<Mutex<Vec<Option<ProcAddr>>>> =
        Arc::new(Mutex::new(vec![None; N_SERVERS as usize]));
    let totals: Arc<Mutex<LoadStats>> = Arc::new(Mutex::new(LoadStats::default()));
    for (s, &node) in server_nodes.iter().enumerate() {
        let (b, a, scfg) = (barrier.clone(), addrs.clone(), server_cfg.clone());
        cluster.spawn_process(node, "kv-shard", move |ctx, env| {
            let port = env.open_port(ctx);
            a.lock().unwrap()[s] = Some(port.addr());
            let mut srv = RpcServer::new(ctx, port, scfg).expect("shard up");
            let mut svc = KvService::new(KvCosts::default());
            b.wait(ctx);
            srv.serve_until_idle(ctx, &mut |ctx: &mut ActorCtx, op: u8, req: &[u8]| {
                svc.handle(ctx, op, req)
            });
        });
    }
    let client_nodes: Vec<u32> = (0..NODES).filter(|n| !server_nodes.contains(n)).collect();
    for (c, &node) in client_nodes.iter().enumerate() {
        let (b, a, t) = (barrier.clone(), addrs.clone(), totals.clone());
        let ccfg = client_cfg.clone();
        let c = c as u32;
        cluster.spawn_process(node, "load-client", move |ctx, env| {
            let port = env.open_port(ctx);
            let mut cli = RpcClient::new(ctx, port, ccfg).expect("client up");
            b.wait(ctx);
            let servers: Vec<ProcAddr> = a
                .lock()
                .unwrap()
                .iter()
                .map(|x| x.expect("shard ready"))
                .collect();
            // Think 0.5-1.5 ms x 4 ops keeps every client live through the
            // whole storm window (1-3.5 ms).
            let cfg = ClosedLoopCfg {
                users: USERS_PER_CLIENT,
                ops_per_user: OPS_PER_USER,
                think_min: SimDuration::from_us(500),
                think_max: SimDuration::from_us(1_500),
                mix: Mix::default(),
                user_base: u64::from(c) * u64::from(USERS_PER_CLIENT),
            };
            let mut rng = ctx.sim().fork_rng(&format!("load.chaos.client{c}"));
            let hists = LatencyHists::new(&ctx.sim().metrics());
            let stats = run_closed_loop(ctx, &mut cli, &servers, &mut rng, &cfg, &hists);
            t.lock().unwrap().merge(&stats);
        });
    }
    assert_eq!(sim.run(), RunOutcome::Completed, "chaos_slo workload hung");
    let stats = *totals.lock().unwrap();
    (cluster, stats)
}

fn gather_slo(cluster: &Cluster, stats: &LoadStats, variant: &str) -> SloReport {
    let users = u64::from(NODES - N_SERVERS) * u64::from(USERS_PER_CLIENT);
    let report = SloReport::gather(&cluster.sim, variant, "dual", NODES, users, stats);
    // The accounting identity is the core chaos invariant: every issued
    // request resolves exactly one way, faults or not.
    assert!(report.accounted(), "{variant}: requests leaked");
    assert_eq!(report.watchdog_stalls, 0, "{variant}: a chain stuck");
    assert_eq!(stats.bad_payloads, 0, "{variant}: payload corruption");
    report
}

/// Write an SLO report into `target/chaos/` (next to the chaos report),
/// not the default `target/slo/`.
fn write_slo_to_chaos_dir(report: &SloReport, stem: &str) -> std::path::PathBuf {
    let dir = chaos_dir();
    std::fs::create_dir_all(&dir).expect("create chaos dir");
    let path = dir.join(format!("{stem}.json"));
    std::fs::write(&path, report.to_json()).expect("write SLO report");
    path
}

fn main() {
    println!("-- chaos_slo: 32-node dual-rail KV service under a fault storm\n");

    // Baseline: same cluster, same seed, no faults.
    let (clean_cluster, clean_stats) = run_kv(None);
    let clean = gather_slo(&clean_cluster, &clean_stats, "chaos_clean");
    assert_eq!(
        clean.completed, clean.issued,
        "chaos_clean: every request must complete without faults"
    );
    assert_eq!(
        clean_cluster.sim.get_count("chaos.faults"),
        0,
        "chaos_clean: no fault may be injected in the baseline"
    );
    assert!(
        clean_cluster.sim.health().is_silent(),
        "chaos_clean: health engine fired with no faults injected: {:?}",
        clean_cluster.sim.health().alerts()
    );
    clean_cluster
        .sim
        .health()
        .report("chaos_slo", "chaos_clean", SEED, &[])
        .write_named("chaos_slo_clean")
        .expect("write clean health report");
    write_slo_to_chaos_dir(&clean, "slo_chaos_clean");
    emit_metrics(&clean_cluster.sim, "chaos_slo_clean");

    // The storm.
    let plan = storm();
    let (flaps, ports, resets, crashes) = plan.kind_counts();
    assert!(
        flaps >= 1 && ports >= 1 && resets >= 1 && crashes >= 1,
        "storm must cover the whole fault taxonomy"
    );
    let (storm_cluster, storm_stats) = run_kv(Some(&plan));
    let slo = gather_slo(&storm_cluster, &storm_stats, "chaos_storm");
    let report = ChaosReport::gather(&storm_cluster.sim, "chaos_storm", SEED);
    assert_eq!(
        report.injected as usize,
        plan.events.len(),
        "every scheduled fault must inject (none skipped)"
    );
    assert_eq!(report.skipped, 0, "no fault may target missing hardware");
    assert!(
        report.path_deaths >= 1,
        "the storm must trip retransmission exhaustion"
    );
    assert!(
        report.rail_failovers >= 1,
        "dual-rail nodes must fail over to rail 1"
    );
    assert!(
        report.epoch_resyncs >= 1,
        "recovery must complete an epoch resync handshake"
    );
    assert_eq!(report.node_restarts, 1, "the crashed node must restart");

    // Detection contract: every injected fault kind must be picked up by
    // its symptom rule within the bound, and every alert the storm raised
    // must resolve once recovery completes.
    let health =
        storm_cluster
            .sim
            .health()
            .report("chaos_slo", "chaos_storm", SEED, &storm_detections());
    assert!(
        !health.is_silent(),
        "chaos_storm: the storm must raise alerts"
    );
    let missed: Vec<&str> = health
        .undetected()
        .iter()
        .map(|d| d.kind.as_str())
        .collect();
    assert!(
        missed.is_empty(),
        "chaos_storm: fault kinds not detected within bound: {missed:?}"
    );
    assert_eq!(
        health.unresolved(),
        0,
        "chaos_storm: alerts still firing after recovery: {:?}",
        storm_cluster.sim.health().alerts()
    );

    // Determinism: the same seed reproduces all three reports byte-for-byte.
    let (rerun_cluster, rerun_stats) = run_kv(Some(&plan));
    let slo_rerun = gather_slo(&rerun_cluster, &rerun_stats, "chaos_storm");
    let report_rerun = ChaosReport::gather(&rerun_cluster.sim, "chaos_storm", SEED);
    assert_eq!(
        slo.to_json(),
        slo_rerun.to_json(),
        "chaos_storm: SLO report not deterministic at fixed seed"
    );
    assert_eq!(
        report.to_json(),
        report_rerun.to_json(),
        "chaos_storm: chaos report not deterministic at fixed seed"
    );
    let health_rerun =
        rerun_cluster
            .sim
            .health()
            .report("chaos_slo", "chaos_storm", SEED, &storm_detections());
    assert_eq!(
        health.to_json(),
        health_rerun.to_json(),
        "chaos_storm: health report not deterministic at fixed seed"
    );

    write_slo_to_chaos_dir(&slo, "slo_chaos_storm");
    report
        .write_named("chaos_storm")
        .expect("write chaos report");
    health
        .write_named("chaos_slo_storm")
        .expect("write storm health report");
    emit_metrics(&storm_cluster.sim, "chaos_slo_storm");

    println!("variant      issued completed  shed t/out dead_dest  goodput/s");
    for r in [&clean, &slo] {
        println!(
            "{:<12} {:>6} {:>9} {:>5} {:>5} {:>9} {:>10.0}",
            r.variant,
            r.issued,
            r.completed,
            r.shed,
            r.timed_out,
            r.dead_dests,
            r.goodput_ops_per_s
        );
    }
    for r in [&clean, &slo] {
        for c in &r.classes {
            println!(
                "  {}/{:<5} p50 {:>8.1} us  p95 {:>8.1} us  p99 {:>8.1} us  p99.9 {:>8.1} us",
                r.variant, c.name, c.p50_us, c.p95_us, c.p99_us, c.p999_us
            );
        }
    }
    println!(
        "\nfaults: {} injected ({} flap, {} port, {} reset, {} crash) | \
         path_deaths {} | failovers {} | resyncs {} | stale drops {}",
        report.injected,
        report.link_down,
        report.port_dead,
        report.nic_resets,
        report.node_crashes,
        report.path_deaths,
        report.rail_failovers,
        report.epoch_resyncs,
        report.stale_epoch_drops,
    );
    println!(
        "recovery latency: p50 {:.1} us  p99 {:.1} us  max {:.1} us",
        report.recovery_p50_us, report.recovery_p99_us, report.recovery_max_us
    );
    println!(
        "\nfault detection (health engine, {} alerts fired):",
        health.alerts.len()
    );
    println!("kind               detected-by           detect    clear");
    for d in &health.detections {
        let by = d
            .detected_by
            .as_ref()
            .map(|(r, _)| r.as_str())
            .unwrap_or("-");
        let fmt = |ns: Option<u64>| match ns {
            Some(ns) => format!("{:.1} us", ns as f64 / 1_000.0),
            None => "-".into(),
        };
        println!(
            "{:<18} {:<20} {:>8} {:>8}",
            d.kind,
            by,
            fmt(d.detect_ns()),
            fmt(d.clear_ns())
        );
    }
    println!(
        "\nchaos_slo OK: accounted under storm, watchdog silent, all fault kinds detected \
         within bound, all alerts resolved, reports deterministic"
    );
}
