//! Table 3 — performance of MPI and PVM over BCL.

use suca_bench::report::{render, Row};
use suca_bench::{layer_bandwidth_mbps, layer_one_way_us, Layer};

fn main() {
    let rows = vec![
        Row::new(
            "MPI latency intra-node (0B)",
            6.3,
            layer_one_way_us(Layer::Mpi, true, 0, 3, 10),
            "us",
        ),
        Row::new(
            "MPI latency inter-node (0B)",
            23.7,
            layer_one_way_us(Layer::Mpi, false, 0, 3, 10),
            "us",
        ),
        Row::new(
            "MPI bandwidth intra-node (128KB)",
            328.0,
            layer_bandwidth_mbps(Layer::Mpi, true, 128 * 1024, 12),
            "MB/s",
        ),
        Row::new(
            "MPI bandwidth inter-node (128KB)",
            131.0,
            layer_bandwidth_mbps(Layer::Mpi, false, 128 * 1024, 12),
            "MB/s",
        ),
        Row::new(
            "PVM latency intra-node (0B)",
            6.5,
            layer_one_way_us(Layer::Pvm, true, 0, 3, 10),
            "us",
        ),
        Row::new(
            "PVM latency inter-node (0B)",
            22.4,
            layer_one_way_us(Layer::Pvm, false, 0, 3, 10),
            "us",
        ),
        Row::new(
            "PVM bandwidth intra-node (128KB)",
            313.0,
            layer_bandwidth_mbps(Layer::Pvm, true, 128 * 1024, 12),
            "MB/s",
        ),
        Row::new(
            "PVM bandwidth inter-node (128KB)",
            131.0,
            layer_bandwidth_mbps(Layer::Pvm, false, 128 * 1024, 12),
            "MB/s",
        ),
    ];
    print!("{}", render("Table 3: MPI and PVM over BCL", &rows));
}
