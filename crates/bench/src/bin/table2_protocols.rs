//! Table 2 — comparison of communication protocols over Myrinet:
//! BCL (intra- and inter-node) vs GM vs AM-II vs BIP.
//!
//! Paper values: BCL 2.7 µs / 391 MB/s intra-node and 18.3 µs / 146 MB/s
//! inter-node; GM 11–21 µs and > 140 MB/s (no SMP support); AM-II worse
//! latency and an extra receive copy (the paper declines a bandwidth
//! comparison and notes "BCL reaches a much higher bandwidth"); BIP very low
//! latency but no flow control / error correction and lower bandwidth.

use suca_baselines::{arch_bandwidth_mbps, arch_one_way_us, ArchModel};
use suca_bench::report::{render, Row};
use suca_cluster::{measure_bandwidth, measure_one_way, ClusterSpec};

fn main() {
    let bcl_intra_lat = measure_one_way(ClusterSpec::dawning3000(2), 0, 0, 0, 3, 10).one_way_us;
    let bcl_inter_lat = measure_one_way(ClusterSpec::dawning3000(2), 0, 1, 0, 3, 10).one_way_us;
    let bcl_intra_bw =
        measure_bandwidth(ClusterSpec::dawning3000(2), 0, 0, 128 * 1024, 8, 8).mb_per_sec;
    let bcl_inter_bw =
        measure_bandwidth(ClusterSpec::dawning3000(2), 0, 1, 128 * 1024, 24, 8).mb_per_sec;

    let gm_lat = arch_one_way_us(ArchModel::gm(), 0, 3, 10);
    let gm_bw = arch_bandwidth_mbps(ArchModel::gm(), 128 * 1024, 16);
    let am2_lat = arch_one_way_us(ArchModel::am2(), 0, 3, 10);
    let am2_bw = arch_bandwidth_mbps(ArchModel::am2(), 128 * 1024, 16);
    let bip_lat = arch_one_way_us(ArchModel::bip(), 0, 3, 10);
    let bip_bw = arch_bandwidth_mbps(ArchModel::bip(), 128 * 1024, 16);

    let rows = vec![
        Row::new("BCL latency intra-node", 2.7, bcl_intra_lat, "us"),
        Row::new("BCL latency inter-node", 18.3, bcl_inter_lat, "us"),
        Row::new("BCL bandwidth intra-node", 391.0, bcl_intra_bw, "MB/s"),
        Row::new("BCL bandwidth inter-node", 146.0, bcl_inter_bw, "MB/s"),
        Row::new("GM latency (paper: 11-21)", None, gm_lat, "us"),
        Row::new("GM bandwidth (paper: >140)", None, gm_bw, "MB/s"),
        Row::new("AM-II latency", None, am2_lat, "us"),
        Row::new("AM-II bandwidth (extra copy)", None, am2_bw, "MB/s"),
        Row::new("BIP latency (paper: very low)", None, bip_lat, "us"),
        Row::new("BIP bandwidth (< BCL)", None, bip_bw, "MB/s"),
    ];
    print!("{}", render("Table 2: protocols over Myrinet", &rows));

    println!();
    println!("shape checks (the paper's qualitative claims):");
    let checks: [(&str, bool); 6] = [
        (
            "GM latency within 11-21 us",
            (11.0..=21.0).contains(&gm_lat),
        ),
        ("GM bandwidth > 140 MB/s", gm_bw > 140.0),
        ("BCL bandwidth >= GM bandwidth", bcl_inter_bw >= gm_bw - 2.0),
        (
            "BCL bandwidth much higher than AM-II",
            bcl_inter_bw > 1.3 * am2_bw,
        ),
        (
            "BIP latency lowest of all",
            bip_lat < gm_lat && bip_lat < bcl_inter_lat,
        ),
        ("BIP bandwidth < BCL bandwidth", bip_bw < bcl_inter_bw),
    ];
    for (what, ok) in checks {
        println!("  [{}] {what}", if ok { "ok" } else { "FAIL" });
        assert!(ok, "shape check failed: {what}");
    }
    println!("  [ok] GM has no SMP support (model property); BCL adds the intra-node path");
    println!(
        "  [ok] BIP has no flow control/error correction (loses data under faults; see tests)"
    );
}
