//! Figure 9 — inter-node bandwidth vs message size.
//!
//! Paper anchors: peak 146 MB/s (91 % of the 160 MB/s Myrinet limit),
//! half-bandwidth reached below 4 KB, a 128 KB transfer takes ≈ 898 µs, and
//! the semi-user-level penalty at 128 KB is ≈ 0.4 % of transfer time.

use suca_bench::report::{render, Row};
use suca_cluster::{measure_bandwidth, ClusterSpec};

fn main() {
    println!("-- Fig. 9: inter-node bandwidth vs message size (BCL)\n");
    println!("{:>10}  {:>12}", "bytes", "MB/s");
    let sizes = [
        64u64, 256, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072,
    ];
    let mut peak: f64 = 0.0;
    let mut half_point = None;
    let mut bw128k = 0.0;
    for &s in &sizes {
        let count = (2 * 1024 * 1024 / s).clamp(8, 256) as u32;
        let r = measure_bandwidth(ClusterSpec::dawning3000(2), 0, 1, s, count, 8);
        println!("{s:>10}  {:>12.1}", r.mb_per_sec);
        peak = peak.max(r.mb_per_sec);
        if half_point.is_none() && r.mb_per_sec >= 146.0 / 2.0 {
            half_point = Some(s);
        }
        if s == 131072 {
            bw128k = r.mb_per_sec;
        }
    }
    let t128k_us = 131072.0 / bw128k; // MB/s == B/us
    let kernel_extra = suca_bcl::BclConfig::dawning3000().kernel_extra().as_us();
    println!();
    print!(
        "{}",
        render(
            "Fig. 9 anchors",
            &[
                Row::new("peak bandwidth", 146.0, peak, "MB/s"),
                Row::new("  as % of 160 MB/s link", 91.0, peak / 160.0 * 100.0, "%"),
                Row::new("128KB transfer time", 898.0, t128k_us, "us"),
                Row::new(
                    "half-bandwidth point (< 4096)",
                    None,
                    half_point.unwrap_or(0) as f64,
                    "bytes"
                ),
                Row::new(
                    "semi-user extra at 128KB",
                    0.4,
                    kernel_extra / t128k_us * 100.0,
                    "% of transfer"
                ),
            ],
        )
    );
}
