//! Figure 7 — one-way latency timeline for a 0-length BCL message.
//!
//! Paper: 18.3 µs end to end; the semi-user-level architecture adds the
//! kernel stages (≈ 4.17 µs, ≈ 22 % of the total) compared with a pure
//! user-level protocol; the NIC-side work is about a third of the total
//! ("the operation on NIC consumes more than half of the overhead" of the
//! transfer machinery, dominated by the reliable protocol).

use suca_baselines::{arch_one_way_us, ArchModel};
use suca_bench::measure::traced_zero_len_run;
use suca_bench::report::{emit_metrics, render, Row};
use suca_cluster::{measure_one_way, ClusterSpec};
use suca_sim::{render_gantt, render_timeline};

fn main() {
    let (spans, traced_sim) = traced_zero_len_run();
    println!("-- Fig. 7: one-way timeline, 0-length message (all stages, both hosts)\n");
    print!("{}", render_timeline(&spans));
    println!();
    print!("{}", render_gantt(&spans, 72));

    let bcl = measure_one_way(ClusterSpec::dawning3000(2), 0, 1, 0, 3, 10).one_way_us;
    let user_level = arch_one_way_us(ArchModel::user_level(), 0, 2, 8);
    let extra = bcl - user_level;
    // The paper's 4.17 us "extra" is the kernel-resident work a user-level
    // protocol skips; the PIO descriptor fill is paid by both architectures
    // and so is excluded.
    let kernel_stage_sum: f64 = spans
        .iter()
        .filter(|s| s.stage.starts_with("kernel") && !s.stage.contains("PIO"))
        .map(|s| s.duration().as_us())
        .sum();
    // Paper: "About one third of the overhead is used to transfer message
    // from NIC to network (stage 4)" — the descriptor fetch + reliable
    // protocol stage on the sending NIC.
    let nic_share: f64 = spans
        .iter()
        .filter(|s| s.stage.contains("reliable setup"))
        .map(|s| s.duration().as_us())
        .sum::<f64>()
        / bcl
        * 100.0;
    println!();
    print!(
        "{}",
        render(
            "Fig. 7 anchors",
            &[
                Row::new("one-way latency (semi-user-level BCL)", 18.3, bcl, "us"),
                Row::new(
                    "one-way latency (user-level baseline)",
                    None,
                    user_level,
                    "us"
                ),
                Row::new("semi-user extra vs user-level", 4.17, extra, "us"),
                Row::new("  extra as % of total", 22.0, extra / bcl * 100.0, "%"),
                Row::new(
                    "  kernel stages summed from spans",
                    4.17,
                    kernel_stage_sum,
                    "us"
                ),
                Row::new("NIC send stage (stage 4) share", 33.3, nic_share, "%"),
            ],
        )
    );
    println!();
    emit_metrics(&traced_sim, "fig7_oneway_timeline");
}
