//! Continuous resource telemetry + critical-path bottleneck attribution.
//!
//! Runs two clean two-node streams (0 B on the system channel, 64 KiB on a
//! normal channel), then:
//!
//! * exports each run's probe rings as deterministic timeseries JSON
//!   (`target/timeseries/*.json`) and as Perfetto counter tracks merged into
//!   the per-message trace (`target/traces/telemetry_*.json`);
//! * prints the per-size-bucket bottleneck report from the critical-path
//!   sweep and checks the paper's Fig 5/7 identities on the 0 B bucket
//!   (request fill > half of the 7.04 µs host overhead; kernel-resident
//!   stages summing to 4.17 µs);
//! * asserts the stall watchdog stayed silent on both clean runs.

use std::sync::Arc;

use parking_lot::Mutex;

use suca_bcl::ChannelId;
use suca_bench::report::{
    emit_metrics, render, write_timeseries_json, write_trace_json_with_counters, Row,
};
use suca_cluster::{Cluster, ClusterSpec, SimBarrier};
use suca_sim::{critpath, RunOutcome, Sim};

const MSGS: u32 = 30;

/// Stream `MSGS` messages of `size` bytes node 0 → node 1 (with a 0 B
/// pacing reply per message), leaving the trace and telemetry rings full.
fn traced_stream(size: u64) -> Cluster {
    let spec = ClusterSpec::dawning3000(2);
    let use_system = size <= spec.bcl.system_pool.buffer_bytes;
    let channel = if use_system {
        ChannelId::SYSTEM
    } else {
        ChannelId::normal(0)
    };
    let cluster = spec.build();
    let sim = cluster.sim.clone();
    let barrier = SimBarrier::new(&sim, 2);
    let addr: Arc<Mutex<Option<suca_bcl::ProcAddr>>> = Arc::new(Mutex::new(None));
    {
        let barrier = barrier.clone();
        let addr = addr.clone();
        cluster.spawn_process(1, "rx", move |ctx, env| {
            let port = env.open_port(ctx);
            *addr.lock() = Some(port.addr());
            let buf = if use_system {
                None
            } else {
                Some(port.post_recv(ctx, 0, size).expect("post"))
            };
            barrier.wait(ctx);
            for _ in 0..MSGS {
                let ev = port.wait_recv(ctx);
                let data = port.recv_bytes(ctx, &ev).expect("recv");
                assert_eq!(data.len() as u64, size);
                if let Some(a) = buf {
                    port.post_recv_at(ctx, 0, a, size).expect("re-post");
                }
                port.send_bytes(ctx, ev.src, ChannelId::SYSTEM, b"")
                    .expect("pacing reply");
            }
        });
    }
    cluster.spawn_process(0, "tx", move |ctx, env| {
        let port = env.open_port(ctx);
        let buf = port.alloc_buffer(size.max(1)).expect("alloc");
        port.write_buffer(buf, &vec![0xA5u8; size as usize])
            .expect("fill");
        barrier.wait(ctx);
        let dst = addr.lock().expect("rx ready");
        for _ in 0..MSGS {
            port.send(ctx, dst, channel, buf, size).expect("send");
            loop {
                let ev = port.wait_recv(ctx);
                let _ = port.recv_bytes(ctx, &ev).expect("consume reply");
                if ev.len == 0 {
                    break;
                }
            }
            while port.poll_send(ctx).is_some() {}
        }
    });
    assert_eq!(sim.run(), RunOutcome::Completed, "telemetry stream hung");
    cluster
}

/// Sanity-check one run's telemetry snapshot: probes present, every probe
/// sampled, sim timestamps strictly monotone.
fn check_timeseries(sim: &Sim, run: &str) {
    let snap = sim.timeseries().snapshot();
    assert!(snap.samples_taken > 0, "{run}: sampler never ticked");
    assert!(!snap.series.is_empty(), "{run}: no probes registered");
    for s in &snap.series {
        assert!(
            !s.points.is_empty(),
            "{run}: probe {} registered but never sampled",
            s.name
        );
        for w in s.points.windows(2) {
            assert!(
                w[0].0 < w[1].0,
                "{run}: probe {} timestamps not monotone",
                s.name
            );
        }
    }
    println!(
        "[telemetry] {run}: {} probes x {} samples",
        snap.series.len(),
        snap.samples_taken
    );
}

fn main() {
    println!("-- Continuous telemetry, critical-path attribution, stall watchdog\n");

    let c0 = traced_stream(0);
    let c64 = traced_stream(64 * 1024);

    for (cluster, run) in [(&c0, "telemetry_0b"), (&c64, "telemetry_64k")] {
        let sim = &cluster.sim;
        check_timeseries(sim, run);
        assert_eq!(
            sim.get_count("watchdog.stalls"),
            0,
            "{run}: watchdog fired on a clean run"
        );
        let ts = write_timeseries_json(sim, run).expect("write timeseries");
        let tr =
            write_trace_json_with_counters(&cluster.trace_events(), sim, run).expect("write trace");
        println!("[telemetry] {run}: rings -> {}", ts.display());
        println!(
            "[telemetry] {run}: trace + counter tracks -> {}",
            tr.display()
        );
    }

    // Critical-path sweep + bottleneck report, per run (trace ids are only
    // unique within one simulation, so the runs are analyzed separately).
    println!("\nbottleneck report, 0 B stream:");
    let report0 = critpath::bottleneck_report(&critpath::analyze(&c0.trace_events()));
    print!("{}", report0.render());
    println!("bottleneck report, 64 KiB stream:");
    let report64 = critpath::bottleneck_report(&critpath::analyze(&c64.trace_events()));
    print!("{}", report64.render());

    // Fig 5/7 identities on the 0 B bucket (EXPERIMENTS.md anchors).
    let b0 = report0.bucket_for(0).expect("0 B bucket");
    let host_us = b0.host_ns_per_msg() / 1000.0;
    let fill = b0.request_fill_share();
    let kernel_us = b0.kernel_ns_per_msg() / 1000.0;
    println!(
        "{}",
        render(
            "critical path vs paper (0 B)",
            &[
                Row::new("host send overhead", 7.04, host_us, "us"),
                Row::new("request fill share", 56.1, fill * 100.0, "%"),
                Row::new("kernel-resident stages", 4.17, kernel_us, "us"),
            ],
        )
    );
    assert!(
        (host_us - 7.04).abs() / 7.04 < 0.01,
        "host overhead drifted"
    );
    assert!(fill > 0.5, "request fill no longer dominates (Fig 5)");
    assert!(
        (fill - 0.561).abs() < 0.01,
        "request fill share drifted: {fill}"
    );
    assert!((kernel_us - 4.17).abs() / 4.17 < 0.01, "kernel sum drifted");

    // Large messages: the host window is amortized away; wire/DMA dominate.
    let b64 = report64.bucket_for(64 * 1024).expect("64 KiB bucket");
    let dominant = b64
        .dominant
        .iter()
        .max_by_key(|&(_, n)| n)
        .map(|(s, _)| s.as_str())
        .unwrap_or("<none>");
    println!("64 KiB dominant stage: {dominant}");
    assert_eq!(
        dominant,
        suca_sim::mtrace::stage::WIRE_TX,
        "wire serialization should dominate 64 KiB messages"
    );
    let host_share = b64.host_ns_per_msg() * b64.messages as f64 / b64.total_ns as f64;
    assert!(
        host_share < 0.1,
        "host overhead should be amortized at 64 KiB, got {host_share:.3}"
    );

    emit_metrics(&c0.sim, "telemetry");
    emit_metrics(&c64.sim, "telemetry_64k");
    println!("\ntelemetry harness OK: sampler, critpath, and watchdog all consistent");
}
