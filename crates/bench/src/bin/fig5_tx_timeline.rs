//! Figure 5 — transmission timeline for a BCL message.
//!
//! The paper's Fig. 5 breaks the sender side of a 0-length message into
//! stages and reports ≈ 7.04 µs of host CPU overhead to push the message
//! into the network (more than half of it the PIO descriptor fill), plus
//! 0.82 µs later to consume the send-completion event.

use suca_bench::measure::{measured_host_overheads, traced_zero_len_spans};
use suca_bench::report::{render, Row};
use suca_sim::{render_gantt, render_timeline};

fn main() {
    let spans = traced_zero_len_spans();
    let tx: Vec<_> = spans
        .iter()
        .filter(|s| s.track == "n0/tx")
        .cloned()
        .collect();
    println!("-- Fig. 5: transmission timeline (sender side, 0-length message)\n");
    print!("{}", render_timeline(&tx));
    println!();
    print!("{}", render_gantt(&tx, 72));

    let host: f64 = tx
        .iter()
        .filter(|s| s.stage.starts_with("library") || s.stage.starts_with("kernel"))
        .map(|s| s.duration().as_us())
        .sum();
    let fill: f64 = tx
        .iter()
        .filter(|s| s.stage.contains("PIO") || s.stage.contains("dispatch"))
        .map(|s| s.duration().as_us())
        .sum();
    let (send_oh, send_done, _) = measured_host_overheads();
    println!();
    print!(
        "{}",
        render(
            "Fig. 5 anchors",
            &[
                Row::new("host CPU overhead to push message", 7.04, send_oh, "us"),
                Row::new("  (same, summed from stage spans)", 7.04, host, "us"),
                Row::new("complete sending op (event poll)", 0.82, send_done, "us"),
                Row::new(
                    "request fill (dispatch+PIO) share",
                    50.0,
                    fill / host * 100.0,
                    "%"
                ),
            ],
        )
    );
    println!("paper: \"filling sending request consumed more than half of the time\"");
}
