//! Service-level benchmark for the RPC layer: a sharded KV service under
//! closed-loop, overload, and lossy-fabric workloads, on both SANs.
//!
//! Three variants, each on Myrinet and the nwrc mesh:
//!
//! * **clean** — 32 nodes: 24 client actors multiplexing 2,016 closed-loop
//!   simulated users over 8 KV shards. Every request must complete; the
//!   SLO report at a fixed seed is byte-identical across runs (checked by
//!   running the Myrinet variant twice).
//! * **overload** — 8 nodes: 6 open-loop arrival processes overdrive 2
//!   shards well past their service capacity. Admission control must shed
//!   (bounded queues, counted `Shed` replies) instead of wedging
//!   go-back-N: the run completes, queues stay within the bound, and the
//!   watchdog stays silent.
//! * **loss5** — 4 nodes with 5% per-link packet drop. Go-back-N absorbs
//!   the loss (counted retransmissions); every request still resolves
//!   exactly once and the latency tail inflates instead of anything
//!   hanging.
//!
//! Reports land in `target/slo/{variant}_{fabric}.json`; the overload run
//! also exports its Perfetto trace (RPC spans joined to BCL chains) and
//! the queue-depth/in-flight timeseries.

use std::sync::{Arc, Mutex};

use suca_bcl::ProcAddr;
use suca_bench::report::{emit_metrics, write_timeseries_json, write_trace_json_with_counters};
use suca_cluster::{Cluster, ClusterSpec, SanKind, SimBarrier};
use suca_load::{
    run_closed_loop, run_open_loop, ClosedLoopCfg, KvCosts, KvService, LatencyHists, LoadStats,
    Mix, OpenLoopCfg, SloReport,
};
use suca_mesh::MeshConfig;
use suca_myrinet::{FaultPlan, MyrinetConfig};
use suca_rpc::{RpcClient, RpcClientConfig, RpcServer, RpcServerConfig};
use suca_sim::{ActorCtx, HealthRule, RunOutcome, SimDuration};

const SEED: u64 = 0x51_0BEE;

/// Standing health rule set for every rpc_slo variant. Thresholds are set
/// so the *clean* runs stay alert-silent (asserted) while overload trips
/// the error burn rate through its counted sheds. Windows are in sampler
/// ticks (10 µs default): 50/200 ticks = 0.5 ms short / 2 ms long.
fn health_rules() -> Vec<HealthRule> {
    vec![
        // >10% of completions failing (1% budget x factor 10) across both
        // windows, sustained for 2 ticks.
        HealthRule::burn_rate("rpc.err_burn", None, 10_000, 10, 50, 200, 10),
        // Any class p99 above 2 ms in both windows — an order of magnitude
        // over the clean service tail, under the overload timeout.
        HealthRule::latency_p99("rpc.p99_slow", None, 2_000_000, 50, 200, 10),
        // Capacity saturation with hysteresis: fire at 90% of declared
        // capacity, clear below 50%, 5 consecutive pegged ticks to fire.
        HealthRule::saturation("mcp.send_queue_full", "mcp.send_queue", 900_000, 500_000)
            .with_lifecycle(5, 20),
        HealthRule::saturation("nic.sram_full", "nic.sram_used", 900_000, 500_000)
            .with_lifecycle(5, 20),
        HealthRule::saturation("kmod.pinned_full", "kmod.pinned_bytes", 900_000, 500_000)
            .with_lifecycle(5, 20),
    ]
}

fn spec_for(fabric: &str, nodes: u32, drop_prob: f64) -> ClusterSpec {
    let fault = FaultPlan {
        drop_prob,
        corrupt_prob: 0.0,
    };
    let san = match fabric {
        "myrinet" => {
            let mut cfg = MyrinetConfig::dawning3000();
            cfg.fault = fault;
            SanKind::Myrinet(cfg)
        }
        "mesh" => {
            let mut cfg = MeshConfig::dawning3000();
            cfg.fault = fault;
            SanKind::Mesh(cfg)
        }
        other => panic!("unknown fabric {other}"),
    };
    ClusterSpec::dawning3000(nodes)
        .with_san(san)
        .with_seed(SEED)
        .with_health(health_rules())
}

/// Spread `n_servers` shard nodes evenly across `[0, nodes)`. Both SAN
/// models reward locality (Myrinet is a linear switch array; the mesh is
/// a grid), so clumping every server at one end funnels the whole
/// cluster's traffic through one bisection trunk — interleaving spreads
/// it over every segment.
fn interleave_servers(nodes: u32, n_servers: u32) -> Vec<u32> {
    (0..n_servers).map(|s| s * nodes / n_servers).collect()
}

/// Shared scaffolding: spawn one KV shard per `server_nodes` entry and
/// one client actor per remaining node, barrier-synced so no server's
/// idle clock starts before every client's arena is pinned.
fn run_cluster(
    spec: ClusterSpec,
    server_nodes: &[u32],
    server_cfg: RpcServerConfig,
    client_cfg: RpcClientConfig,
    costs: KvCosts,
    drive: impl Fn(&mut ActorCtx, &mut RpcClient, &[ProcAddr], u32) -> LoadStats + Send + Sync + 'static,
) -> (Cluster, LoadStats) {
    let nodes = spec.nodes;
    let n_servers = server_nodes.len() as u32;
    assert!(n_servers < nodes);
    let cluster = spec.build();
    let sim = cluster.sim.clone();
    let barrier = SimBarrier::new(&sim, nodes);
    let addrs: Arc<Mutex<Vec<Option<ProcAddr>>>> =
        Arc::new(Mutex::new(vec![None; n_servers as usize]));
    let totals: Arc<Mutex<LoadStats>> = Arc::new(Mutex::new(LoadStats::default()));
    for (s, &node) in server_nodes.iter().enumerate() {
        let (b, a, scfg) = (barrier.clone(), addrs.clone(), server_cfg.clone());
        cluster.spawn_process(node, "kv-shard", move |ctx, env| {
            let port = env.open_port(ctx);
            a.lock().unwrap()[s] = Some(port.addr());
            let mut srv = RpcServer::new(ctx, port, scfg).expect("shard up");
            let mut svc = KvService::new(costs);
            b.wait(ctx);
            srv.serve_until_idle(ctx, &mut |ctx: &mut ActorCtx, op: u8, req: &[u8]| {
                svc.handle(ctx, op, req)
            });
        });
    }
    let drive = Arc::new(drive);
    let client_nodes: Vec<u32> = (0..nodes).filter(|n| !server_nodes.contains(n)).collect();
    for (c, &node) in client_nodes.iter().enumerate() {
        let (b, a, t) = (barrier.clone(), addrs.clone(), totals.clone());
        let (ccfg, drive) = (client_cfg.clone(), drive.clone());
        let c = c as u32;
        cluster.spawn_process(node, "load-client", move |ctx, env| {
            let port = env.open_port(ctx);
            let mut cli = RpcClient::new(ctx, port, ccfg).expect("client up");
            b.wait(ctx);
            let servers: Vec<ProcAddr> = a
                .lock()
                .unwrap()
                .iter()
                .map(|x| x.expect("shard ready"))
                .collect();
            let stats = drive(ctx, &mut cli, &servers, c);
            t.lock().unwrap().merge(&stats);
        });
    }
    assert_eq!(sim.run(), RunOutcome::Completed, "rpc_slo workload hung");
    let stats = *totals.lock().unwrap();
    (cluster, stats)
}

const CLEAN_CLIENTS: u32 = 24;
const CLEAN_USERS_PER_CLIENT: u32 = 84; // 24 x 84 = 2,016 simulated users

fn env_u32(name: &str, default: u32) -> u32 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn run_clean(fabric: &str) -> (Cluster, SloReport) {
    let n_clients = env_u32("SUCA_RPC_SLO_CLIENTS", CLEAN_CLIENTS);
    let n_servers = env_u32("SUCA_RPC_SLO_SERVERS", 8);
    let users_per = env_u32("SUCA_RPC_SLO_USERS", CLEAN_USERS_PER_CLIENT);
    let nodes = n_clients + n_servers;
    let server_cfg = RpcServerConfig {
        queue_cap: 1024,
        idle_timeout: SimDuration::from_ms(5),
        ..RpcServerConfig::default()
    };
    let client_cfg = RpcClientConfig {
        timeout: SimDuration::from_ms(5),
        max_attempts: 3,
        backoff: SimDuration::from_us(200),
        arena_slots: users_per,
        slot_bytes: suca_load::SCAN_BYTES as u64,
        ..RpcClientConfig::default()
    };
    let (cluster, stats) = run_cluster(
        spec_for(fabric, nodes, 0.0),
        &interleave_servers(nodes, n_servers),
        server_cfg,
        client_cfg,
        KvCosts::default(),
        move |ctx, cli, servers, actor| {
            // Think 4–12 ms keeps each shard near 10% utilization and the
            // fabric's trunk links comfortably underloaded — "clean" must
            // mean the service layer is the bottleneck nowhere.
            let cfg = ClosedLoopCfg {
                users: users_per,
                ops_per_user: 2,
                think_min: SimDuration::from_ms(4),
                think_max: SimDuration::from_ms(12),
                mix: Mix::default(),
                user_base: u64::from(actor) * u64::from(users_per),
            };
            let mut rng = ctx.sim().fork_rng(&format!("load.clean.client{actor}"));
            let hists = LatencyHists::new(&ctx.sim().metrics());
            run_closed_loop(ctx, cli, servers, &mut rng, &cfg, &hists)
        },
    );
    let users = u64::from(n_clients) * u64::from(users_per);
    let report = SloReport::gather(&cluster.sim, "clean", fabric, nodes, users, &stats);
    assert!(report.accounted(), "clean/{fabric}: requests leaked");
    assert_eq!(
        report.completed, report.issued,
        "clean/{fabric}: every request must complete (no shed/timeout)"
    );
    assert_eq!(report.watchdog_stalls, 0, "clean/{fabric}: watchdog fired");
    assert_eq!(stats.bad_payloads, 0, "clean/{fabric}: payload corruption");
    assert!(
        cluster.sim.health().is_silent(),
        "clean/{fabric}: health engine fired on a healthy run: {:?}",
        cluster.sim.health().alerts()
    );
    (cluster, report)
}

fn run_overload(fabric: &str) -> (Cluster, SloReport) {
    let server_cfg = RpcServerConfig {
        queue_cap: 16,
        idle_timeout: SimDuration::from_ms(2),
        ..RpcServerConfig::default()
    };
    // Timeout must outlive the worst admission-queue delay (16 deep at
    // ~35 µs effective service) so admitted requests complete and overload
    // resolves through *sheds*, not timeouts.
    let client_cfg = RpcClientConfig {
        timeout: SimDuration::from_ms(2),
        max_attempts: 2,
        backoff: SimDuration::from_us(100),
        arena_slots: 32,
        slot_bytes: suca_load::SCAN_BYTES as u64,
        ..RpcClientConfig::default()
    };
    // Overdrive the *service*, not the admission path: 25 µs ops push a
    // shard's capacity to ~28k ops/s (service + per-message overhead),
    // while 6 clients x 1/(80 µs) = 75k arrivals/s — amplified further by
    // shed-retries — offer well past 2 shards' worth. Admission
    // (~8 µs/arrival) keeps draining at wire pace, so overload resolves
    // through counted sheds instead of buffer-pool attrition.
    let costs = KvCosts {
        get: SimDuration::from_us(25),
        put: SimDuration::from_us(25),
        scan: SimDuration::from_us(25),
    };
    let (cluster, stats) = run_cluster(
        spec_for(fabric, 8, 0.0),
        &interleave_servers(8, 2),
        server_cfg,
        client_cfg,
        costs,
        |ctx, cli, servers, actor| {
            let cfg = OpenLoopCfg {
                mean_interarrival: SimDuration::from_us(80),
                duration: SimDuration::from_ms(3),
                users: 50,
                mix: Mix {
                    scan_ratio: 0.0, // uniform service time for the capacity math
                    ..Mix::default()
                },
                user_base: u64::from(actor) * 50,
            };
            let mut rng = ctx.sim().fork_rng(&format!("load.overload.client{actor}"));
            let hists = LatencyHists::new(&ctx.sim().metrics());
            run_open_loop(ctx, cli, servers, &mut rng, &cfg, &hists)
        },
    );
    let report = SloReport::gather(&cluster.sim, "overload", fabric, 8, 300, &stats);
    assert!(report.accounted(), "overload/{fabric}: requests leaked");
    assert!(
        report.srv_sheds > 0,
        "overload/{fabric}: admission control never shed"
    );
    assert!(
        report.srv_queue_high_water <= 16,
        "overload/{fabric}: queue bound violated ({})",
        report.srv_queue_high_water
    );
    assert_eq!(
        report.watchdog_stalls, 0,
        "overload/{fabric}: overload must degrade, not stall"
    );
    assert!(
        cluster
            .sim
            .health()
            .alerts()
            .iter()
            .any(|a| a.rule == "rpc.err_burn"),
        "overload/{fabric}: sustained shedding must trip the error burn rate: {:?}",
        cluster.sim.health().alerts()
    );
    (cluster, report)
}

fn run_loss(fabric: &str) -> (Cluster, SloReport) {
    let server_cfg = RpcServerConfig {
        queue_cap: 256,
        idle_timeout: SimDuration::from_ms(20),
        ..RpcServerConfig::default()
    };
    let client_cfg = RpcClientConfig {
        timeout: SimDuration::from_ms(10),
        max_attempts: 3,
        backoff: SimDuration::from_us(200),
        arena_slots: 20,
        slot_bytes: suca_load::SCAN_BYTES as u64,
        ..RpcClientConfig::default()
    };
    let (cluster, stats) = run_cluster(
        spec_for(fabric, 4, 0.05),
        &interleave_servers(4, 2),
        server_cfg,
        client_cfg,
        KvCosts::default(),
        |ctx, cli, servers, actor| {
            let cfg = ClosedLoopCfg {
                users: 20,
                ops_per_user: 2,
                think_min: SimDuration::from_us(300),
                think_max: SimDuration::from_us(900),
                mix: Mix::default(),
                user_base: u64::from(actor) * 20,
            };
            let mut rng = ctx.sim().fork_rng(&format!("load.loss.client{actor}"));
            let hists = LatencyHists::new(&ctx.sim().metrics());
            run_closed_loop(ctx, cli, servers, &mut rng, &cfg, &hists)
        },
    );
    let report = SloReport::gather(&cluster.sim, "loss5", fabric, 4, 40, &stats);
    assert!(report.accounted(), "loss5/{fabric}: requests leaked");
    assert!(
        cluster.sim.get_count("bcl.retx_packets") > 0,
        "loss5/{fabric}: 5% drop must force retransmissions"
    );
    assert_eq!(
        report.watchdog_stalls, 0,
        "loss5/{fabric}: loss must not stall the pipeline"
    );
    (cluster, report)
}

fn main() {
    println!("-- RPC service layer under load: SLO reports per variant x fabric\n");

    if let Ok(v) = std::env::var("SUCA_RPC_SLO_DEBUG") {
        let (_c, r) = match v.as_str() {
            "clean_myrinet" => run_clean("myrinet"),
            "clean_mesh" => run_clean("mesh"),
            "overload_myrinet" => run_overload("myrinet"),
            "loss5_myrinet" => run_loss("myrinet"),
            other => panic!("unknown debug variant {other}"),
        };
        println!("{}", r.to_json());
        return;
    }

    let mut summaries = Vec::new();
    for fabric in ["myrinet", "mesh"] {
        let (clean_cluster, clean) = run_clean(fabric);
        clean.write().expect("write clean report");
        let clean_health =
            clean_cluster
                .sim
                .health()
                .report("rpc_slo", &format!("clean_{fabric}"), SEED, &[]);
        clean_health
            .write_named(&format!("rpc_slo_clean_{fabric}"))
            .expect("write clean health report");
        if fabric == "myrinet" {
            // Determinism: the same seed must reproduce both reports
            // byte-for-byte.
            let (rerun_cluster, rerun) = run_clean(fabric);
            rerun
                .write_named("clean_myrinet_rerun")
                .expect("write rerun report");
            assert_eq!(
                clean.to_json(),
                rerun.to_json(),
                "clean/myrinet: SLO report not deterministic at fixed seed"
            );
            let rerun_health =
                rerun_cluster
                    .sim
                    .health()
                    .report("rpc_slo", "clean_myrinet", SEED, &[]);
            assert_eq!(
                clean_health.to_json(),
                rerun_health.to_json(),
                "clean/myrinet: health report not deterministic at fixed seed"
            );
            write_timeseries_json(&clean_cluster.sim, "rpc_slo_clean_myrinet")
                .expect("write timeseries");
        }
        emit_metrics(&clean_cluster.sim, &format!("rpc_slo_clean_{fabric}"));
        summaries.push(clean);

        let (over_cluster, over) = run_overload(fabric);
        over.write().expect("write overload report");
        over_cluster
            .sim
            .health()
            .report("rpc_slo", &format!("overload_{fabric}"), SEED, &[])
            .write_named(&format!("rpc_slo_overload_{fabric}"))
            .expect("write overload health report");
        if fabric == "myrinet" {
            write_trace_json_with_counters(
                &over_cluster.trace_events(),
                &over_cluster.sim,
                "rpc_slo_overload_myrinet",
            )
            .expect("write trace");
            write_timeseries_json(&over_cluster.sim, "rpc_slo_overload_myrinet")
                .expect("write timeseries");
        }
        emit_metrics(&over_cluster.sim, &format!("rpc_slo_overload_{fabric}"));
        summaries.push(over);

        let (loss_cluster, loss) = run_loss(fabric);
        loss.write().expect("write loss report");
        emit_metrics(&loss_cluster.sim, &format!("rpc_slo_loss5_{fabric}"));
        summaries.push(loss);
    }

    println!("variant    fabric   issued completed  shed t/out srv_shed qmax  goodput/s");
    for r in &summaries {
        println!(
            "{:<10} {:<8} {:>6} {:>9} {:>5} {:>5} {:>8} {:>4} {:>10.0}",
            r.variant,
            r.fabric,
            r.issued,
            r.completed,
            r.shed,
            r.timed_out,
            r.srv_sheds,
            r.srv_queue_high_water,
            r.goodput_ops_per_s
        );
    }
    for r in &summaries {
        for c in &r.classes {
            println!(
                "  {}/{} {:<5} p50 {:>8.1} us  p95 {:>8.1} us  p99 {:>8.1} us  p99.9 {:>8.1} us",
                r.variant, r.fabric, c.name, c.p50_us, c.p95_us, c.p99_us, c.p999_us
            );
        }
    }
    println!(
        "\nrpc_slo OK: all variants accounted, deterministic, shedding bounded, watchdog \
         silent, clean runs alert-silent, overload tripped the burn rate"
    );
}
