//! # suca-bench — paper-reproduction harnesses
//!
//! Measurement functions plus one binary per table/figure of the paper
//! (see `src/bin/`). Criterion benches on the simulator itself live in
//! `benches/`.

#![warn(missing_docs)]

pub mod measure;
pub mod mixed;
pub mod report;

pub use measure::{layer_bandwidth_mbps, layer_one_way_us, Layer};
