//! Measurement functions for the MPI and PVM layers (Table 3) and shared
//! sweep utilities. BCL-level and baseline-protocol measurements live in
//! `suca-cluster::harness` and `suca-baselines::harness` respectively.

use std::sync::Arc;

use parking_lot::Mutex;

use suca_cluster::ClusterSpec;
use suca_eadi::Universe;
use suca_mpi::{Comm, MpiConfig};
use suca_pvm::{PvmConfig, PvmTask};
use suca_sim::RunOutcome;

/// Which upper layer to measure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Layer {
    /// MPI over BCL.
    Mpi,
    /// PVM over BCL.
    Pvm,
}

/// Mean one-way latency (µs) at the given layer. `intra` puts both ranks on
/// node 0; otherwise they sit on nodes 0 and 1.
pub fn layer_one_way_us(layer: Layer, intra: bool, size: usize, warmup: u32, iters: u32) -> f64 {
    let spec = ClusterSpec::dawning3000(2);
    let cluster = spec.build();
    let sim = cluster.sim.clone();
    let uni = Universe::new(&sim, 2);
    let total = warmup + iters;
    let send_t: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
    let recv_t: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
    let dst_node = if intra { 0 } else { 1 };

    for rank in 0..2u32 {
        let uni = uni.clone();
        let send_t = send_t.clone();
        let recv_t = recv_t.clone();
        let node = if rank == 0 { 0 } else { dst_node };
        cluster.spawn_process(node, format!("lat{rank}"), move |ctx, env| match layer {
            Layer::Mpi => {
                let comm = Comm::init(
                    ctx,
                    &env.node.bcl,
                    &env.proc,
                    uni,
                    rank,
                    MpiConfig::dawning3000(),
                );
                let payload = vec![0x44u8; size];
                if rank == 0 {
                    for _ in 0..total {
                        send_t.lock().push(ctx.now().as_us());
                        comm.send(ctx, 1, 1, &payload);
                        let _ = comm.recv(ctx, 1, 2); // pacing reply
                    }
                } else {
                    for _ in 0..total {
                        let m = comm.recv(ctx, 0, 1);
                        recv_t.lock().push(ctx.now().as_us());
                        assert_eq!(m.data.len(), size);
                        comm.send(ctx, 0, 2, b"");
                    }
                }
            }
            Layer::Pvm => {
                let task = PvmTask::enroll(
                    ctx,
                    &env.node.bcl,
                    &env.proc,
                    uni,
                    rank,
                    PvmConfig::dawning3000(),
                );
                let payload = vec![0x44u8; size];
                if rank == 0 {
                    for _ in 0..total {
                        send_t.lock().push(ctx.now().as_us());
                        task.initsend().pack_bytes(&payload);
                        task.send(ctx, 1, 1);
                        let _ = task.recv(ctx, 1, 2);
                    }
                } else {
                    for _ in 0..total {
                        let mut m = task.recv(ctx, 0, 1);
                        recv_t.lock().push(ctx.now().as_us());
                        assert_eq!(m.buf.unpack_bytes().unwrap().len(), size);
                        task.initsend().pack_bytes(b"");
                        task.send(ctx, 0, 2);
                    }
                }
            }
        });
    }
    assert_eq!(sim.run(), RunOutcome::Completed, "latency job hung");
    let st = send_t.lock();
    let rt = recv_t.lock();
    assert_eq!(st.len() as u32, total);
    assert_eq!(rt.len() as u32, total);
    (warmup as usize..total as usize)
        .map(|i| rt[i] - st[i])
        .sum::<f64>()
        / iters as f64
}

/// Sustained bandwidth (MB/s) at the given layer streaming `count` messages
/// of `size` bytes.
pub fn layer_bandwidth_mbps(layer: Layer, intra: bool, size: usize, count: u32) -> f64 {
    let spec = ClusterSpec::dawning3000(2);
    let cluster = spec.build();
    let sim = cluster.sim.clone();
    let uni = Universe::new(&sim, 2);
    let t0 = Arc::new(Mutex::new(0.0f64));
    let t1 = Arc::new(Mutex::new(0.0f64));
    let dst_node = if intra { 0 } else { 1 };

    for rank in 0..2u32 {
        let uni = uni.clone();
        let t0 = t0.clone();
        let t1 = t1.clone();
        let node = if rank == 0 { 0 } else { dst_node };
        cluster.spawn_process(node, format!("bw{rank}"), move |ctx, env| match layer {
            Layer::Mpi => {
                let comm = Comm::init(
                    ctx,
                    &env.node.bcl,
                    &env.proc,
                    uni,
                    rank,
                    MpiConfig::dawning3000(),
                );
                let payload = vec![0x55u8; size];
                if rank == 0 {
                    // Warmup message starts the clock at its completion.
                    comm.send(ctx, 1, 1, &payload);
                    *t0.lock() = ctx.now().as_us();
                    for _ in 1..count {
                        comm.send(ctx, 1, 1, &payload);
                    }
                } else {
                    let _ = comm.recv(ctx, 0, 1);
                    for _ in 1..count {
                        let _ = comm.recv(ctx, 0, 1);
                    }
                    *t1.lock() = ctx.now().as_us();
                }
            }
            Layer::Pvm => {
                let task = PvmTask::enroll(
                    ctx,
                    &env.node.bcl,
                    &env.proc,
                    uni,
                    rank,
                    PvmConfig::dawning3000(),
                );
                let payload = vec![0x55u8; size];
                if rank == 0 {
                    task.initsend().pack_bytes(&payload);
                    task.send(ctx, 1, 1);
                    *t0.lock() = ctx.now().as_us();
                    for _ in 1..count {
                        task.initsend().pack_bytes(&payload);
                        task.send(ctx, 1, 1);
                    }
                } else {
                    for _ in 0..count {
                        let _ = task.recv(ctx, 0, 1);
                    }
                    *t1.lock() = ctx.now().as_us();
                }
            }
        });
    }
    assert_eq!(sim.run(), RunOutcome::Completed, "bandwidth job hung");
    let (start, end) = (*t0.lock(), *t1.lock());
    assert!(end > start);
    (size as f64 * (count - 1) as f64) / (end - start)
}

/// Run one traced 0-length BCL message between nodes 0 → 1 and return the
/// recorded stage spans (setup traffic excluded). Powers Figs. 5–7.
pub fn traced_zero_len_spans() -> Vec<suca_sim::Span> {
    traced_zero_len_run().0
}

/// Like [`traced_zero_len_spans`], but also hands back the run's `Sim` so
/// harnesses can emit its metrics snapshot.
pub fn traced_zero_len_run() -> (Vec<suca_sim::Span>, suca_sim::Sim) {
    use suca_bcl::ChannelId;
    use suca_cluster::SimBarrier;

    let cluster = ClusterSpec::dawning3000(2).build();
    let sim = cluster.sim.clone();
    let barrier = SimBarrier::new(&sim, 2);
    let addr_b: Arc<Mutex<Option<suca_bcl::ProcAddr>>> = Arc::new(Mutex::new(None));

    let b2 = barrier.clone();
    let ab = addr_b.clone();
    cluster.spawn_process(1, "rx", move |ctx, env| {
        let port = env.open_port(ctx);
        *ab.lock() = Some(port.addr());
        b2.wait(ctx);
        let _ = port.wait_recv(ctx);
        ctx.sim().set_tracing(false);
    });
    let b3 = barrier.clone();
    cluster.spawn_process(0, "tx", move |ctx, env| {
        let port = env.open_port(ctx);
        b3.wait(ctx);
        // Only trace the message itself, not port setup.
        ctx.sim().set_tracing(true);
        let dst = addr_b.lock().expect("rx ready");
        let buf = port.alloc_buffer(1).expect("buf");
        port.send(ctx, dst, ChannelId::SYSTEM, buf, 0)
            .expect("send");
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
    let spans = sim.take_spans();
    (spans, sim)
}

/// Host-side scalar overheads measured directly (the §5 numbers):
/// `(send_overhead_us, send_complete_us, recv_poll_us)`.
pub fn measured_host_overheads() -> (f64, f64, f64) {
    use suca_bcl::ChannelId;
    use suca_cluster::SimBarrier;

    let cluster = ClusterSpec::dawning3000(2).build();
    let sim = cluster.sim.clone();
    let barrier = SimBarrier::new(&sim, 2);
    let addr_b: Arc<Mutex<Option<suca_bcl::ProcAddr>>> = Arc::new(Mutex::new(None));
    let out = Arc::new(Mutex::new((0.0f64, 0.0f64, 0.0f64)));

    let b2 = barrier.clone();
    let ab = addr_b.clone();
    let out_rx = out.clone();
    cluster.spawn_process(1, "rx", move |ctx, env| {
        let port = env.open_port(ctx);
        *ab.lock() = Some(port.addr());
        b2.wait(ctx);
        // Let the event arrive, then measure pure poll cost.
        ctx.sleep(suca_sim::SimDuration::from_us(100));
        let t0 = ctx.now().as_us();
        let _ = port.poll_recv(ctx).expect("event queued");
        out_rx.lock().2 = ctx.now().as_us() - t0;
    });
    let b3 = barrier.clone();
    let out_tx = out.clone();
    cluster.spawn_process(0, "tx", move |ctx, env| {
        let port = env.open_port(ctx);
        b3.wait(ctx);
        let dst = addr_b.lock().expect("rx ready");
        let buf = port.alloc_buffer(1).expect("buf");
        let t0 = ctx.now().as_us();
        port.send(ctx, dst, ChannelId::SYSTEM, buf, 0)
            .expect("send");
        out_tx.lock().0 = ctx.now().as_us() - t0;
        // Wait for the completion event to be present, then time the poll.
        ctx.sleep(suca_sim::SimDuration::from_us(100));
        let t1 = ctx.now().as_us();
        let _ = port.poll_send(ctx).expect("send event queued");
        out_tx.lock().1 = ctx.now().as_us() - t1;
    });
    assert_eq!(sim.run(), RunOutcome::Completed);
    let g = out.lock();
    (g.0, g.1, g.2)
}
