//! Shared scaffolding for the mixed multi-tenant harness: KV, pub-sub,
//! and pipeline tenants sharing one 32-node dual-rail cluster under
//! per-tenant admission quotas and SLO windows.
//!
//! Every service node runs ONE [`RpcServer`] with a tenant policy table
//! and dispatches by the admitted request's tenant: tenant 0 is the KV
//! store (high priority), tenant 1 the pub-sub log, tenant 2 the
//! pipeline workers (both low priority). The three client populations
//! drive their tenant through the same fabric at the same time; the SLO
//! report carries one section per tenant so isolation is measurable.
//!
//! The harness binary (`mixed_slo`) and the cluster e2e determinism test
//! both build on [`run_mixed`]; only scale knobs and assertions differ.

use std::sync::{Arc, Mutex};

use suca_bcl::ProcAddr;
use suca_cluster::{Cluster, ClusterSpec, SanKind, SimBarrier};
use suca_load::{
    run_closed_loop, ClosedLoopCfg, KvCosts, KvService, LatencyHists, LoadStats, Mix, SloReport,
    TenantSlo,
};
use suca_mesh::MeshConfig;
use suca_myrinet::MyrinetConfig;
use suca_pipeline::{run_driver, DriverCfg, DriverStats, PipelineCosts, PipelineWorker};
use suca_pubsub::{
    run_publisher, run_publisher_open, run_subscriber, FloodCfg, PubSubCosts, PubSubService,
    PublisherCfg, RoomCfg, SubscriberCfg,
};
use suca_rpc::{
    Priority, RpcClient, RpcClientConfig, RpcReply, RpcServer, RpcServerConfig, TenantId,
    TenantPolicy,
};
use suca_sim::{ActorCtx, HealthRule, RunOutcome, SimDuration, SimTime};

/// Fixed seed for every mixed_slo variant.
pub const SEED: u64 = 0x3_7E4A47;

/// Tenant id of the KV store population (high priority).
pub const TENANT_KV: u8 = 0;
/// Tenant id of the pub-sub log population (low priority).
pub const TENANT_PUBSUB: u8 = 1;
/// Tenant id of the pipeline population (low priority).
pub const TENANT_PIPELINE: u8 = 2;

/// Cluster size: 8 service nodes + 24 client nodes, all barrier-synced.
pub const NODES: u32 = 32;
const N_SERVERS: u32 = 8;
const N_KV: usize = 10;
const N_PUB: usize = 4;
const N_ROOMS: u32 = N_PUB as u32;
const N_SUB: usize = 8;
const N_PIPE: usize = 2;

/// Sim-time no-op that keeps the run alive long enough for fired alerts
/// to resolve once load drains (the sampler only ticks while events
/// remain).
const KEEPALIVE_NS: u64 = 40_000_000;

/// Scale and shape knobs. The defaults are the harness scale; the e2e
/// determinism test shrinks them to stay fast across shard sweeps.
#[derive(Clone, Debug)]
pub struct MixedCfg {
    /// Flood the pub-sub tenant open-loop past its admission quota.
    pub overload_pubsub: bool,
    /// Solo baseline: only the KV tenant issues (identical topology, so
    /// the clean-vs-solo p99 ratio isolates cross-tenant interference).
    pub kv_only: bool,
    /// Event-engine shard override (`None` = per-node production shape).
    pub engine_shards: Option<usize>,
    /// Simulated KV users per client actor.
    pub kv_users_per_client: u32,
    /// Closed-loop ops each KV user issues.
    pub kv_ops_per_user: u32,
    /// Events each publisher appends (clean variants).
    pub pub_events: u32,
    /// Jobs each pipeline driver runs.
    pub pipe_jobs: u32,
}

impl Default for MixedCfg {
    fn default() -> Self {
        MixedCfg {
            overload_pubsub: false,
            kv_only: false,
            engine_shards: None,
            kv_users_per_client: 32,
            kv_ops_per_user: 4,
            pub_events: 40,
            pipe_jobs: 4,
        }
    }
}

/// Aggregated subscriber observations across the subscriber population.
#[derive(Clone, Copy, Debug, Default)]
pub struct SubTotals {
    /// Events received (fresh + catch-up) across all subscribers.
    pub received: u64,
    /// Event-body bytes received.
    pub bytes: u64,
    /// Sequence discontinuities — must be 0 (the room sheds, never skips).
    pub gaps: u64,
    /// EOF sentinels observed.
    pub eofs: u32,
    /// Subscribers the rooms shed for lagging.
    pub shed: u32,
}

/// Everything one mixed run produces.
pub struct MixedOutcome {
    /// The finished cluster (health engine, metrics, traces).
    pub cluster: Cluster,
    /// SLO report with one [`TenantSlo`] section per tenant.
    pub report: SloReport,
    /// Per-tenant request tallies, indexed by tenant id.
    pub tenant_stats: [LoadStats; 3],
    /// Subscriber-side pub-sub observations.
    pub sub: SubTotals,
    /// Pipeline driver observations.
    pub drv: DriverStats,
}

impl MixedOutcome {
    /// Worst per-class p99 of the KV tenant, in microseconds (the
    /// isolation metric: overload-vs-solo ratio must stay bounded).
    pub fn kv_p99_us(&self) -> f64 {
        self.report
            .tenants
            .iter()
            .filter(|t| t.tenant == TENANT_KV)
            .flat_map(|t| t.classes.iter())
            .map(|c| c.p99_us)
            .fold(0.0, f64::max)
    }
}

/// Per-tenant burn-rate rules (satellite of the mixed harness): each
/// tenant's error ratio is watched in its own SLO window, so an overload
/// fires — and resolves — exactly the overloaded tenant's rule. Windows
/// are sampler ticks (10 µs): 50/200 = 0.5 ms short / 2 ms long.
pub fn mixed_health_rules() -> Vec<HealthRule> {
    [TENANT_KV, TENANT_PUBSUB, TENANT_PIPELINE]
        .into_iter()
        .map(|t| {
            HealthRule::burn_rate(format!("t{t}.err_burn"), None, 10_000, 10, 50, 200, 10)
                .for_tenant(t)
                .with_lifecycle(2, 15)
        })
        .collect()
}

/// Name of the tenant's burn-rate rule (assertion helper).
pub fn burn_rule(tenant: u8) -> String {
    format!("t{tenant}.err_burn")
}

fn spec_for(fabric: &str, cfg: &MixedCfg) -> ClusterSpec {
    // Dual rail on every variant: the primary fabric is the one under
    // test, the other rides along as the failover rail.
    let (san, san2) = match fabric {
        "myrinet" => (
            SanKind::Myrinet(MyrinetConfig::dawning3000()),
            SanKind::Mesh(MeshConfig::dawning3000()),
        ),
        "mesh" => (
            SanKind::Mesh(MeshConfig::dawning3000()),
            SanKind::Myrinet(MyrinetConfig::dawning3000()),
        ),
        other => panic!("unknown fabric {other}"),
    };
    ClusterSpec::dawning3000(NODES)
        .with_san(san)
        .with_second_san(san2)
        .with_seed(SEED)
        .with_engine_shards(cfg.engine_shards)
        .with_health(mixed_health_rules())
}

/// Spread service nodes across the fabric (same rationale as rpc_slo:
/// both SANs reward locality, clumping funnels the bisection).
fn service_nodes() -> Vec<u32> {
    (0..N_SERVERS).map(|s| s * NODES / N_SERVERS).collect()
}

fn client_cfg(tenant: u8, priority: Priority) -> RpcClientConfig {
    // The pub-sub tenant gets a quarter of the in-flight credit: an
    // open-loop flood can only burst `arena_slots` requests at once, and
    // 64-deep bursts from four publishers exhaust the flooded servers'
    // receive pools — which drops *other* tenants' arrivals into
    // go-back-N retransmission timeouts. Bounding the noisy tenant's
    // credit keeps pool pressure (and thus collateral tail damage)
    // bounded at the transport layer, where quotas can't see it.
    let arena_slots = if tenant == TENANT_PUBSUB { 16 } else { 64 };
    RpcClientConfig {
        timeout: SimDuration::from_ms(5),
        max_attempts: 2,
        backoff: SimDuration::from_us(100),
        arena_slots,
        slot_bytes: 16 * 1024,
        tenant: TenantId(tenant),
        priority,
    }
}

/// Run one mixed-tenant variant and gather its per-tenant SLO report.
pub fn run_mixed(variant: &str, fabric: &str, cfg: &MixedCfg) -> MixedOutcome {
    let spec = spec_for(fabric, cfg);
    let cluster = spec.build();
    let sim = cluster.sim.clone();
    sim.schedule_at(SimTime::from_ns(KEEPALIVE_NS), |_| {});
    let barrier = SimBarrier::new(&sim, NODES);

    let servers = service_nodes();
    let addrs: Arc<Mutex<Vec<Option<ProcAddr>>>> = Arc::new(Mutex::new(vec![None; servers.len()]));
    let tenant_totals: Arc<Mutex<[LoadStats; 3]>> = Arc::new(Mutex::new([LoadStats::default(); 3]));
    let sub_totals: Arc<Mutex<SubTotals>> = Arc::new(Mutex::new(SubTotals::default()));
    let drv_totals: Arc<Mutex<DriverStats>> = Arc::new(Mutex::new(DriverStats::default()));

    // Overload drives each publisher's room-home server past its service
    // rate (40 µs publishes vs 20 µs arrivals), so the pub-sub tenant's
    // quota — not the shared queue — is what sheds.
    let ps_costs = if cfg.overload_pubsub {
        PubSubCosts {
            publish: SimDuration::from_us(40),
            ..PubSubCosts::default()
        }
    } else {
        PubSubCosts::default()
    };
    let server_cfg = RpcServerConfig {
        queue_cap: 128,
        idle_timeout: SimDuration::from_ms(5),
        // The pub-sub quota (8) sits under its clients' in-flight credit
        // (16), so a flood overruns admission — the shed path under test —
        // while the credit bound above keeps the *transport* pool safe.
        tenants: vec![
            TenantPolicy::new(TENANT_KV, 64, Priority::High),
            TenantPolicy::new(TENANT_PUBSUB, 8, Priority::Low),
            TenantPolicy::new(TENANT_PIPELINE, 32, Priority::Low),
        ],
        ..RpcServerConfig::default()
    };

    // One multi-tenant server per service node: KV shard + pub-sub room
    // home + pipeline worker behind one admission queue.
    for (s, &node) in servers.iter().enumerate() {
        let (b, a, scfg) = (barrier.clone(), addrs.clone(), server_cfg.clone());
        cluster.spawn_process(node, "mixed-srv", move |ctx, env| {
            let port = env.open_port(ctx);
            a.lock().unwrap()[s] = Some(port.addr());
            let mut srv = RpcServer::new(ctx, port, scfg).expect("server up");
            let m = ctx.sim().metrics();
            let mut kv = KvService::new(KvCosts::default());
            // A 16 KiB initial window (vs the 64 KiB default) makes the
            // per-room byte budget bind under the overload flood: fan-out
            // beyond it waits for subscriber credit instead of piling
            // onto the NIC send path, which is what keeps a noisy
            // tenant's pushes from head-of-line-blocking everyone else's
            // responses. Clean runs replay the throttled tail via ACK
            // credit and still deliver everything.
            let room_cfg = RoomCfg {
                init_window: 16 * 1024,
                ..RoomCfg::default()
            };
            let mut ps = PubSubService::new(&m, node, room_cfg, ps_costs);
            let mut pw = PipelineWorker::new(&m, 6 * 1024, PipelineCosts::default());
            b.wait(ctx);
            srv.serve_tenants_until_idle(ctx, &mut |ctx: &mut ActorCtx, req| match req.tenant.0 {
                TENANT_KV => RpcReply::inline(kv.handle(ctx, req.op_class, req.payload)),
                TENANT_PUBSUB => ps.handle(ctx, req),
                _ => pw.handle(ctx, req),
            });
        });
    }

    let client_nodes: Vec<u32> = (0..NODES).filter(|n| !servers.contains(n)).collect();
    assert_eq!(client_nodes.len(), N_KV + N_PUB + N_SUB + N_PIPE);
    let fetch_servers = move |a: &Arc<Mutex<Vec<Option<ProcAddr>>>>| -> Vec<ProcAddr> {
        a.lock()
            .unwrap()
            .iter()
            .map(|x| x.expect("server ready"))
            .collect()
    };

    // KV tenant: closed-loop users over all shards, high priority.
    for (c, &node) in client_nodes.iter().enumerate().take(N_KV) {
        let (b, a, t) = (barrier.clone(), addrs.clone(), tenant_totals.clone());
        let (users, ops) = (cfg.kv_users_per_client, cfg.kv_ops_per_user);
        cluster.spawn_process(node, "mixed-kv", move |ctx, env| {
            let port = env.open_port(ctx);
            let mut cli =
                RpcClient::new(ctx, port, client_cfg(TENANT_KV, Priority::High)).expect("kv up");
            b.wait(ctx);
            let servers = fetch_servers(&a);
            let cfg = ClosedLoopCfg {
                users,
                ops_per_user: ops,
                think_min: SimDuration::from_ms(1),
                think_max: SimDuration::from_ms(3),
                mix: Mix::default(),
                user_base: c as u64 * u64::from(users),
            };
            let mut rng = ctx.sim().fork_rng(&format!("mixed.kv.c{c}"));
            let hists = LatencyHists::named(&ctx.sim().metrics(), "t0", suca_load::KV_CLASSES);
            let stats = run_closed_loop(ctx, &mut cli, &servers, &mut rng, &cfg, &hists);
            t.lock().unwrap()[TENANT_KV as usize].merge(&stats);
        });
    }

    // Pub-sub tenant: one publisher per room (closed loop, or open-loop
    // flood under overload) plus two subscribers per room.
    let overload = cfg.overload_pubsub;
    let kv_only = cfg.kv_only;
    for p in 0..N_PUB {
        let node = client_nodes[N_KV + p];
        let (b, a, t) = (barrier.clone(), addrs.clone(), tenant_totals.clone());
        let events = cfg.pub_events;
        cluster.spawn_process(node, "mixed-pub", move |ctx, env| {
            let port = env.open_port(ctx);
            let mut cli = RpcClient::new(ctx, port, client_cfg(TENANT_PUBSUB, Priority::Low))
                .expect("pub up");
            b.wait(ctx);
            if kv_only {
                return;
            }
            let servers = fetch_servers(&a);
            let room = p as u32 % N_ROOMS;
            let home = servers[room as usize % servers.len()];
            let mut rng = ctx.sim().fork_rng(&format!("mixed.pub.p{p}"));
            let hists = LatencyHists::named(&ctx.sim().metrics(), "t1", suca_pubsub::CLASS_NAMES);
            let stats = if overload {
                let fcfg = FloodCfg {
                    mean_interarrival: SimDuration::from_us(20),
                    duration: SimDuration::from_ms(3),
                    bytes: 512,
                };
                run_publisher_open(ctx, &mut cli, home, room, &mut rng, &fcfg, &hists)
            } else {
                let pcfg = PublisherCfg {
                    events,
                    bytes: 512,
                    think_min: SimDuration::from_us(50),
                    think_max: SimDuration::from_us(200),
                    eof: true,
                };
                run_publisher(ctx, &mut cli, home, room, &mut rng, &pcfg, &hists)
            };
            t.lock().unwrap()[TENANT_PUBSUB as usize].merge(&stats);
        });
    }
    for su in 0..N_SUB {
        let node = client_nodes[N_KV + N_PUB + su];
        let (b, a, t, st) = (
            barrier.clone(),
            addrs.clone(),
            tenant_totals.clone(),
            sub_totals.clone(),
        );
        cluster.spawn_process(node, "mixed-sub", move |ctx, env| {
            let port = env.open_port(ctx);
            let mut cli = RpcClient::new(ctx, port, client_cfg(TENANT_PUBSUB, Priority::Low))
                .expect("sub up");
            b.wait(ctx);
            if kv_only {
                return;
            }
            let servers = fetch_servers(&a);
            let room = su as u32 % N_ROOMS;
            let home = servers[room as usize % servers.len()];
            let scfg = SubscriberCfg {
                from: 0,
                ack_every: 4096,
                end_at: SimTime::from_ns(if overload { 12_000_000 } else { 30_000_000 }),
                eofs_expected: if overload { 0 } else { 1 },
            };
            let hists = LatencyHists::named(&ctx.sim().metrics(), "t1", suca_pubsub::CLASS_NAMES);
            let (stats, sub) = run_subscriber(ctx, &mut cli, home, room, &scfg, &hists);
            t.lock().unwrap()[TENANT_PUBSUB as usize].merge(&stats);
            let mut s = st.lock().unwrap();
            s.received += sub.received;
            s.bytes += sub.bytes;
            s.gaps += sub.gaps;
            s.eofs += sub.eofs;
            s.shed += u32::from(sub.shed);
        });
    }

    // Pipeline tenant: staged dataflow drivers over every worker node.
    for d in 0..N_PIPE {
        let node = client_nodes[N_KV + N_PUB + N_SUB + d];
        let (b, a, t, dt) = (
            barrier.clone(),
            addrs.clone(),
            tenant_totals.clone(),
            drv_totals.clone(),
        );
        let jobs = cfg.pipe_jobs;
        cluster.spawn_process(node, "mixed-pipe", move |ctx, env| {
            let port = env.open_port(ctx);
            let mut cli = RpcClient::new(ctx, port, client_cfg(TENANT_PIPELINE, Priority::Low))
                .expect("pipe up");
            b.wait(ctx);
            if kv_only {
                return;
            }
            let servers = fetch_servers(&a);
            let dcfg = DriverCfg {
                jobs,
                ..DriverCfg::default()
            };
            let hists = LatencyHists::named(&ctx.sim().metrics(), "t2", suca_pipeline::CLASS_NAMES);
            let (stats, drv) = run_driver(ctx, &mut cli, &servers, &dcfg, &hists);
            t.lock().unwrap()[TENANT_PIPELINE as usize].merge(&stats);
            let mut d = dt.lock().unwrap();
            d.jobs_done += drv.jobs_done;
            d.execs_ok += drv.execs_ok;
            d.fetches_ok += drv.fetches_ok;
            d.verify_failures += drv.verify_failures;
        });
    }

    assert_eq!(
        sim.run(),
        RunOutcome::Completed,
        "mixed/{variant}/{fabric}: workload hung"
    );

    let tenant_stats = *tenant_totals.lock().unwrap();
    let mut total = LoadStats::default();
    for s in &tenant_stats {
        total.merge(s);
    }
    let users = N_KV as u64 * u64::from(cfg.kv_users_per_client) + (N_PUB + N_SUB + N_PIPE) as u64;
    let mut report = SloReport::gather(&cluster.sim, variant, fabric, NODES, users, &total);
    report.tenants = vec![
        TenantSlo::gather(
            &cluster.sim,
            "kv",
            TENANT_KV,
            "high",
            "t0",
            suca_load::KV_CLASSES,
            &tenant_stats[TENANT_KV as usize],
        ),
        TenantSlo::gather(
            &cluster.sim,
            "pubsub",
            TENANT_PUBSUB,
            "low",
            "t1",
            suca_pubsub::CLASS_NAMES,
            &tenant_stats[TENANT_PUBSUB as usize],
        ),
        TenantSlo::gather(
            &cluster.sim,
            "pipeline",
            TENANT_PIPELINE,
            "low",
            "t2",
            suca_pipeline::CLASS_NAMES,
            &tenant_stats[TENANT_PIPELINE as usize],
        ),
    ];
    let sub = *sub_totals.lock().unwrap();
    let drv = *drv_totals.lock().unwrap();
    MixedOutcome {
        cluster,
        report,
        tenant_stats,
        sub,
        drv,
    }
}

/// Invariants every variant must satisfy, asserted uniformly so the
/// harness and the e2e test can't drift: per-tenant accounting identity,
/// gap-free subscriber prefixes, verified pipeline outputs.
pub fn assert_base_invariants(tag: &str, out: &MixedOutcome) {
    for t in &out.report.tenants {
        assert!(
            t.accounted(),
            "{tag}: tenant {} leaked requests ({} issued, {} completed, {} shed, {} timed out)",
            t.tenant,
            t.issued,
            t.completed,
            t.shed,
            t.timed_out
        );
    }
    assert_eq!(out.sub.gaps, 0, "{tag}: subscriber observed a sequence gap");
    assert_eq!(
        out.drv.verify_failures, 0,
        "{tag}: pipeline output verification failed"
    );
    assert_eq!(
        out.report.watchdog_stalls, 0,
        "{tag}: watchdog fired during a mixed run"
    );
}
