//! Paper-vs-measured report formatting shared by the harness binaries,
//! plus machine-readable metrics-snapshot emission.

use std::io;
use std::path::PathBuf;

use suca_sim::{MetricsSnapshot, Sim};

/// Directory the harness binaries write metrics snapshots into. Overridable
/// via `SUCA_METRICS_DIR`; relative paths resolve against the working
/// directory (the workspace root under `cargo run`).
pub fn metrics_dir() -> PathBuf {
    std::env::var_os("SUCA_METRICS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/metrics"))
}

/// Directory the engine scalability benchmark writes `BENCH_engine.json`
/// into. Overridable via `SUCA_BENCH_DIR`; relative paths resolve against
/// the working directory (the workspace root under `cargo run`). CI points
/// this at the workspace root so the perf trajectory is recorded per PR.
pub fn bench_dir() -> PathBuf {
    std::env::var_os("SUCA_BENCH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/bench"))
}

/// Directory the harness binaries write Chrome/Perfetto trace files into.
/// Overridable via `SUCA_TRACES_DIR`; relative paths resolve against the
/// working directory (the workspace root under `cargo run`).
pub fn traces_dir() -> PathBuf {
    std::env::var_os("SUCA_TRACES_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/traces"))
}

/// Directory the harness binaries write telemetry timeseries JSON into.
/// Overridable via `SUCA_TIMESERIES_DIR`; relative paths resolve against
/// the working directory (the workspace root under `cargo run`).
pub fn timeseries_dir() -> PathBuf {
    std::env::var_os("SUCA_TIMESERIES_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/timeseries"))
}

/// Directory the harness binaries write engine self-profiler reports into.
/// Overridable via `SUCA_PROF_DIR`; relative paths resolve against the
/// working directory (the workspace root under `cargo run`).
pub fn prof_dir() -> PathBuf {
    std::env::var_os("SUCA_PROF_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/prof"))
}

/// Serialize `sim`'s engine self-profiler report as JSON to
/// `<prof_dir>/<run>.json`.
pub fn write_prof_json(sim: &Sim, run: &str) -> io::Result<PathBuf> {
    let dir = prof_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{run}.json"));
    std::fs::write(&path, sim.prof_report().to_json())?;
    Ok(path)
}

/// Serialize `sim`'s telemetry snapshot folded through the cluster rollup
/// (bounded output independent of node count) to
/// `<timeseries_dir>/<run>.rollup.json`.
pub fn write_timeseries_rollup_json(sim: &Sim, run: &str) -> io::Result<PathBuf> {
    let dir = timeseries_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{run}.rollup.json"));
    std::fs::write(&path, sim.timeseries().snapshot().rollup().to_json())?;
    Ok(path)
}

/// Host metadata for cross-machine comparability of benchmark rows:
/// `(os, arch, rustc_version, available_threads)`. `rustc -V` is probed
/// once per process; "unknown" when unavailable.
pub fn host_meta() -> (String, String, String, usize) {
    let rustc = rustc_version();
    let threads = std::thread::available_parallelism().map_or(0, |n| n.get());
    (
        std::env::consts::OS.to_string(),
        std::env::consts::ARCH.to_string(),
        rustc,
        threads,
    )
}

fn rustc_version() -> String {
    let rustc = std::env::var_os("RUSTC").unwrap_or_else(|| "rustc".into());
    std::process::Command::new(rustc)
        .arg("-V")
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Serialize per-message trace events as Chrome/Perfetto JSON to
/// `<traces_dir>/<run>.json` (loadable at <https://ui.perfetto.dev>).
pub fn write_trace_json(events: &[suca_sim::TraceEvent], run: &str) -> io::Result<PathBuf> {
    let dir = traces_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{run}.json"));
    std::fs::write(&path, suca_sim::mtrace::to_chrome_json(events))?;
    Ok(path)
}

/// Serialize `sim`'s telemetry snapshot (every probe's sampled ring) as
/// deterministic JSON to `<timeseries_dir>/<run>.json`.
pub fn write_timeseries_json(sim: &Sim, run: &str) -> io::Result<PathBuf> {
    let dir = timeseries_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{run}.json"));
    std::fs::write(&path, sim.timeseries().snapshot().to_json())?;
    Ok(path)
}

/// Like [`write_trace_json`], but merges `sim`'s telemetry rings in as
/// Perfetto counter tracks so queue depths and occupancies render alongside
/// the per-message spans.
pub fn write_trace_json_with_counters(
    events: &[suca_sim::TraceEvent],
    sim: &Sim,
    run: &str,
) -> io::Result<PathBuf> {
    let dir = traces_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{run}.json"));
    std::fs::write(
        &path,
        suca_sim::mtrace::to_chrome_json_with_counters(events, &sim.timeseries().snapshot()),
    )?;
    Ok(path)
}

/// Serialize `snap` as JSON to `<metrics_dir>/<harness>.json`.
pub fn write_metrics_json(snap: &MetricsSnapshot, harness: &str) -> io::Result<PathBuf> {
    let dir = metrics_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{harness}.json"));
    std::fs::write(&path, snap.to_json())?;
    Ok(path)
}

/// Snapshot `sim`'s metrics registry, stamp the harness name into its
/// metadata, write it to disk, and print where it went. Harness binaries
/// call this once per instrumented run; failures are reported but not
/// fatal (the numbers on stdout are the primary artifact).
pub fn emit_metrics(sim: &Sim, harness: &str) -> MetricsSnapshot {
    sim.metrics().set_meta("harness", harness);
    let snap = sim.metrics_snapshot();
    match write_metrics_json(&snap, harness) {
        Ok(path) => println!(
            "[metrics] {} counters, {} gauges -> {}",
            snap.counters.len(),
            snap.gauges.len(),
            path.display()
        ),
        Err(e) => eprintln!("[metrics] could not write snapshot for {harness}: {e}"),
    }
    snap
}

/// One comparison row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Metric name.
    pub what: String,
    /// Value the paper reports (None when the paper gives no number).
    pub paper: Option<f64>,
    /// Our measured value.
    pub measured: f64,
    /// Unit label.
    pub unit: &'static str,
}

impl Row {
    /// Build a row.
    pub fn new(
        what: impl Into<String>,
        paper: impl Into<Option<f64>>,
        measured: f64,
        unit: &'static str,
    ) -> Row {
        Row {
            what: what.into(),
            paper: paper.into(),
            measured,
            unit,
        }
    }
}

/// Render rows as an aligned table with relative deviation.
pub fn render(title: &str, rows: &[Row]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "== {title}");
    let w = rows.iter().map(|r| r.what.len()).max().unwrap_or(10) + 2;
    let _ = writeln!(
        out,
        "{:<w$} {:>10} {:>10} {:>8}  unit",
        "metric", "paper", "measured", "delta"
    );
    for r in rows {
        match r.paper {
            Some(p) if p != 0.0 => {
                let delta = (r.measured - p) / p * 100.0;
                let _ = writeln!(
                    out,
                    "{:<w$} {:>10.2} {:>10.2} {:>+7.1}%  {}",
                    r.what, p, r.measured, delta, r.unit
                );
            }
            Some(p) => {
                let _ = writeln!(
                    out,
                    "{:<w$} {:>10.2} {:>10.2} {:>8}  {}",
                    r.what, p, r.measured, "-", r.unit
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "{:<w$} {:>10} {:>10.2} {:>8}  {}",
                    r.what, "-", r.measured, "-", r.unit
                );
            }
        }
    }
    out
}
