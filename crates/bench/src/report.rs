//! Paper-vs-measured report formatting shared by the harness binaries.

/// One comparison row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Metric name.
    pub what: String,
    /// Value the paper reports (None when the paper gives no number).
    pub paper: Option<f64>,
    /// Our measured value.
    pub measured: f64,
    /// Unit label.
    pub unit: &'static str,
}

impl Row {
    /// Build a row.
    pub fn new(what: impl Into<String>, paper: impl Into<Option<f64>>, measured: f64, unit: &'static str) -> Row {
        Row {
            what: what.into(),
            paper: paper.into(),
            measured,
            unit,
        }
    }
}

/// Render rows as an aligned table with relative deviation.
pub fn render(title: &str, rows: &[Row]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "== {title}");
    let w = rows.iter().map(|r| r.what.len()).max().unwrap_or(10) + 2;
    let _ = writeln!(
        out,
        "{:<w$} {:>10} {:>10} {:>8}  unit",
        "metric", "paper", "measured", "delta"
    );
    for r in rows {
        match r.paper {
            Some(p) if p != 0.0 => {
                let delta = (r.measured - p) / p * 100.0;
                let _ = writeln!(
                    out,
                    "{:<w$} {:>10.2} {:>10.2} {:>+7.1}%  {}",
                    r.what, p, r.measured, delta, r.unit
                );
            }
            Some(p) => {
                let _ = writeln!(out, "{:<w$} {:>10.2} {:>10.2} {:>8}  {}", r.what, p, r.measured, "-", r.unit);
            }
            None => {
                let _ = writeln!(out, "{:<w$} {:>10} {:>10.2} {:>8}  {}", r.what, "-", r.measured, "-", r.unit);
            }
        }
    }
    out
}
