//! Criterion benchmarks of the simulator itself: these measure real
//! wall-clock cost of running the reproduction (events/second, full
//! protocol exchanges), not simulated time — useful for keeping the
//! simulator fast enough that the paper sweeps stay interactive.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use suca_cluster::{measure_one_way, ClusterSpec};
use suca_sim::{Sim, SimDuration};

fn bench_engine_events(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("dispatch_10k_events", |b| {
        b.iter_batched(
            || {
                let sim = Sim::new(1);
                for i in 0..10_000u64 {
                    sim.schedule_in(SimDuration::from_ns(i), |_| {});
                }
                sim
            },
            |sim| sim.run(),
            BatchSize::SmallInput,
        );
    });
    g.bench_function("actor_pingpong_1k_switches", |b| {
        b.iter_batched(
            || {
                let sim = Sim::new(1);
                for who in 0..2 {
                    sim.spawn(format!("a{who}"), |ctx| {
                        for _ in 0..500 {
                            ctx.sleep(SimDuration::from_ns(10));
                        }
                    });
                }
                sim
            },
            |sim| sim.run(),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_bcl_exchange(c: &mut Criterion) {
    let mut g = c.benchmark_group("bcl");
    g.sample_size(10);
    g.bench_function("one_way_0B_full_stack", |b| {
        b.iter(|| measure_one_way(ClusterSpec::dawning3000(2), 0, 1, 0, 0, 1));
    });
    g.bench_function("one_way_64KB_full_stack", |b| {
        b.iter(|| measure_one_way(ClusterSpec::dawning3000(2), 0, 1, 65536, 0, 1));
    });
    g.bench_function("build_70_node_cluster", |b| {
        b.iter(|| ClusterSpec::dawning3000(70).build());
    });
    g.finish();
}

fn bench_wire_codec(c: &mut Criterion) {
    use bytes::Bytes;
    use suca_bcl::wire::{WireHeader, WireKind};
    use suca_bcl::{ChannelId, PortId};

    let header = WireHeader {
        kind: WireKind::Data,
        channel: ChannelId::normal(3),
        src_port: PortId(1),
        dst_port: PortId(2),
        msg_id: 77,
        seq: 12,
        offset: 4096,
        total_len: 65536,
        frag_len: 4064,
    };
    let payload = vec![0xABu8; 4064];
    let encoded: Bytes = header.encode(&payload);
    let mut g = c.benchmark_group("wire");
    g.throughput(Throughput::Bytes(encoded.len() as u64));
    g.bench_function("encode_4k_fragment", |b| {
        b.iter(|| header.encode(&payload));
    });
    g.bench_function("decode_4k_fragment", |b| {
        b.iter(|| WireHeader::decode(&encoded).expect("valid"));
    });
    g.finish();
}

criterion_group!(benches, bench_engine_events, bench_bcl_exchange, bench_wire_codec);
criterion_main!(benches);
