//! Wall-clock benchmarks of the simulator itself: events/second, full
//! protocol exchanges, codec throughput — real time, not simulated time.
//! Useful for keeping the simulator fast enough that the paper sweeps stay
//! interactive.
//!
//! Hand-rolled harness (`harness = false`): the build environment cannot
//! fetch criterion, and median-of-N wall timing is all these need.
//! Run with `cargo bench -p suca-bench`.

use std::time::Instant;

use suca_cluster::{measure_one_way, ClusterSpec};
use suca_sim::{Sim, SimDuration};

/// Run `f` (with per-iteration setup) `iters` times and report the median
/// wall time per iteration plus derived throughput.
fn bench<S, T, R>(
    name: &str,
    iters: usize,
    elements: Option<f64>,
    mut setup: S,
    mut f: impl FnMut(T) -> R,
) where
    S: FnMut() -> T,
{
    let mut times = Vec::with_capacity(iters);
    for _ in 0..iters {
        let input = setup();
        let t0 = Instant::now();
        let out = f(input);
        times.push(t0.elapsed().as_secs_f64());
        std::hint::black_box(out);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let median = times[times.len() / 2];
    let rate = elements
        .map(|n| format!("  ({:.1} Melem/s)", n / median / 1e6))
        .unwrap_or_default();
    println!("{name:<40} {:>10.3} ms/iter{rate}", median * 1e3);
}

fn bench_engine_events() {
    bench(
        "engine/dispatch_10k_events",
        20,
        Some(10_000.0),
        || {
            let sim = Sim::new(1);
            for i in 0..10_000u64 {
                sim.schedule_in(SimDuration::from_ns(i), |_| {});
            }
            sim
        },
        |sim| sim.run(),
    );
    bench(
        "engine/actor_pingpong_1k_switches",
        20,
        Some(1_000.0),
        || {
            let sim = Sim::new(1);
            for who in 0..2 {
                sim.spawn(format!("a{who}"), |ctx| {
                    for _ in 0..500 {
                        ctx.sleep(SimDuration::from_ns(10));
                    }
                });
            }
            sim
        },
        |sim| sim.run(),
    );
}

fn bench_bcl_exchange() {
    bench(
        "bcl/one_way_0B_full_stack",
        10,
        None,
        || (),
        |()| measure_one_way(ClusterSpec::dawning3000(2), 0, 1, 0, 0, 1),
    );
    bench(
        "bcl/one_way_64KB_full_stack",
        10,
        None,
        || (),
        |()| measure_one_way(ClusterSpec::dawning3000(2), 0, 1, 65536, 0, 1),
    );
    bench(
        "bcl/build_70_node_cluster",
        10,
        None,
        || (),
        |()| ClusterSpec::dawning3000(70).build(),
    );
}

fn bench_wire_codec() {
    use bytes::Bytes;
    use suca_bcl::wire::{WireHeader, WireKind};
    use suca_bcl::{ChannelId, PortId};

    let header = WireHeader {
        kind: WireKind::Data,
        channel: ChannelId::normal(3),
        src_port: PortId(1),
        dst_port: PortId(2),
        msg_id: 77,
        seq: 12,
        offset: 4096,
        total_len: 65536,
        frag_len: 4064,
        epoch: 0,
    };
    let payload = vec![0xABu8; 4064];
    let encoded: Bytes = header.encode(&payload);
    let bytes_per_iter = encoded.len() as f64;
    bench(
        "wire/encode_4k_fragment",
        2000,
        Some(bytes_per_iter),
        || (),
        |()| header.encode(&payload),
    );
    bench(
        "wire/decode_4k_fragment",
        2000,
        Some(bytes_per_iter),
        || (),
        |()| WireHeader::decode(&encoded).expect("valid"),
    );
}

fn main() {
    println!("suca-bench wall-clock microbenchmarks (median of N)");
    bench_engine_events();
    bench_bcl_exchange();
    bench_wire_codec();
}
