//! NIC-offloaded collectives are deterministic: at a fixed seed the
//! per-rank results, the metrics snapshot, and the per-message trace
//! export must be byte-identical across engine shard counts (single-queue
//! reference, an odd count, one shard per node), across reruns, and on
//! both fabrics independently. The plan interpreter lives in per-node NIC
//! state and its event ordering must not leak HashMap iteration order or
//! shard scheduling into anything observable.

use std::fmt::Write as _;
use std::sync::Arc;

use parking_lot::Mutex;

use suca_cluster::ClusterSpec;
use suca_eadi::Universe;
use suca_mpi::{Comm, MpiConfig, ReduceOp};
use suca_sim::{ActorCtx, RunOutcome};

const SEED: u64 = 0xC0117;
const NODES: u32 = 8;
const RANKS: u32 = 11; // co-located ranks on some nodes, idle-ish others

/// Per-rank transcripts: (rank, bytes), shared across actor closures.
type Transcripts = Arc<Mutex<Vec<(u32, Vec<u8>)>>>;

struct RunBytes {
    results: String,
    metrics: String,
    trace: String,
}

fn collective_workload(ctx: &mut ActorCtx, comm: &Comm) -> Vec<u8> {
    let me = comm.rank();
    let mut out = Vec::new();
    comm.barrier(ctx);
    let mut blob = vec![if me == 3 { 7.0 } else { 0.0 }; 16];
    if me == 3 {
        for (i, v) in blob.iter_mut().enumerate() {
            *v = (i * i) as f64;
        }
    }
    comm.bcast_f64(ctx, 3, &mut blob);
    let s = comm.allreduce_f64(ctx, &[me as f64, 1.0, (me % 3) as f64], ReduceOp::Sum);
    let m = comm.allreduce_f64(ctx, &[(me as f64) - 4.5], ReduceOp::Max);
    comm.barrier(ctx);
    for v in blob.iter().chain(&s).chain(&m) {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn run_once(spec: ClusterSpec) -> RunBytes {
    let cluster = spec.build();
    let sim = cluster.sim.clone();
    let uni = Universe::new(&sim, RANKS);
    let transcripts: Transcripts = Arc::new(Mutex::new(Vec::new()));
    for r in 0..RANKS {
        let uni = uni.clone();
        let t = transcripts.clone();
        cluster.spawn_process(r % NODES, format!("mpi{r}"), move |ctx, env| {
            let comm = Comm::init(
                ctx,
                &env.node.bcl,
                &env.proc,
                uni,
                r,
                MpiConfig::dawning3000(),
            );
            let bytes = collective_workload(ctx, &comm);
            t.lock().push((comm.rank(), bytes));
        });
    }
    assert_eq!(sim.run(), RunOutcome::Completed, "collective workload hung");

    let mut ranks = Arc::into_inner(transcripts).unwrap().into_inner();
    ranks.sort_by_key(|(r, _)| *r);
    let mut results = String::new();
    for (r, bytes) in &ranks {
        let _ = writeln!(results, "{r}: {bytes:02x?}");
    }
    let mut trace = String::new();
    for e in cluster.trace_events() {
        let _ = writeln!(
            trace,
            "{:?} {} n{} {:?} {}..{} seq{} b{}",
            e.trace, e.stage, e.node, e.layer, e.start_ns, e.end_ns, e.seq, e.bytes
        );
    }
    RunBytes {
        results,
        metrics: cluster.metrics_snapshot().to_json(),
        trace,
    }
}

fn assert_same(a: &RunBytes, b: &RunBytes, what: &str) {
    assert_eq!(a.results, b.results, "{what}: collective results diverged");
    assert_eq!(a.trace, b.trace, "{what}: trace export diverged");
    assert_eq!(a.metrics, b.metrics, "{what}: metrics diverged");
}

#[test]
fn collectives_identical_across_shards_and_reruns_myrinet() {
    let spec = || ClusterSpec::dawning3000(NODES).with_seed(SEED);
    let reference = run_once(spec().with_engine_shards(Some(1)));
    assert!(
        reference.trace.contains("mcp:coll_post"),
        "NIC collective path not exercised"
    );
    for shards in [None, Some(3)] {
        let got = run_once(spec().with_engine_shards(shards));
        assert_same(&reference, &got, &format!("myrinet shards={shards:?}"));
    }
    let rerun = run_once(spec().with_engine_shards(Some(1)));
    assert_same(&reference, &rerun, "myrinet rerun");
}

#[test]
fn collectives_identical_across_shards_and_reruns_mesh() {
    let spec = || ClusterSpec::dawning3000_mesh(NODES).with_seed(SEED);
    let reference = run_once(spec().with_engine_shards(Some(1)));
    assert!(
        reference.trace.contains("mcp:coll_post"),
        "NIC collective path not exercised"
    );
    for shards in [None, Some(3)] {
        let got = run_once(spec().with_engine_shards(shards));
        assert_same(&reference, &got, &format!("mesh shards={shards:?}"));
    }
    let rerun = run_once(spec().with_engine_shards(Some(1)));
    assert_same(&reference, &rerun, "mesh rerun");
}
