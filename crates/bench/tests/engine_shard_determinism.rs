//! End-to-end determinism across event-engine shard counts.
//!
//! The sharded engine's contract is that shard count is invisible in the
//! results: dispatch follows the strict global `(time, seq)` order at any
//! shard count, so every report a harness emits must be byte-identical
//! between the production shape (one shard per node), the single-queue
//! reference mode (`with_engine_shards(Some(1))`, what
//! `SUCA_SIM_SINGLE_QUEUE` forces), and any odd shard count in between.
//! These tests pin that contract through the full stack — RPC framing,
//! go-back-N, MCP firmware rings, fabric links/switches, chaos recovery —
//! by comparing the SLO/chaos reports plus the metrics and telemetry
//! snapshots byte-for-byte.

use std::sync::{Arc, Mutex};

use suca_bcl::ProcAddr;
use suca_chaos::{ChaosController, ChaosPlan, ChaosReport, Fault};
use suca_cluster::{ClusterSpec, SanKind, SimBarrier};
use suca_load::{
    run_closed_loop, ClosedLoopCfg, KvCosts, KvService, LatencyHists, LoadStats, Mix, SloReport,
};
use suca_mesh::MeshConfig;
use suca_rpc::{RpcClient, RpcClientConfig, RpcServer, RpcServerConfig};
use suca_sim::{ActorCtx, RunOutcome, SimDuration, SimTime};

const SEED: u64 = 0x5AADED;

/// Byte artifacts of one run: SLO report, metrics snapshot, telemetry
/// timeseries, and (for storm runs) the chaos report.
struct RunBytes {
    slo: String,
    metrics: String,
    timeseries: String,
    chaos: Option<String>,
}

/// Spawn the small KV workload (the `rpc_slo`/`chaos_slo` scaffolding at
/// toy scale) on `spec`, optionally under a fault plan, and collect every
/// JSON artifact the harnesses would emit.
fn run_kv(spec: ClusterSpec, users_per_client: u32, plan: Option<&ChaosPlan>) -> RunBytes {
    let nodes = spec.nodes;
    let server_nodes: Vec<u32> = vec![0, nodes / 2];
    let n_servers = server_nodes.len() as u32;
    let cluster = spec.build();
    let sim = cluster.sim.clone();
    if let Some(plan) = plan {
        ChaosController::install(&cluster, plan);
    }
    let server_cfg = RpcServerConfig {
        queue_cap: 256,
        idle_timeout: SimDuration::from_ms(5),
        ..RpcServerConfig::default()
    };
    let client_cfg = RpcClientConfig {
        timeout: SimDuration::from_ms(5),
        max_attempts: 3,
        backoff: SimDuration::from_us(200),
        arena_slots: users_per_client,
        slot_bytes: suca_load::SCAN_BYTES as u64,
        ..RpcClientConfig::default()
    };
    let barrier = SimBarrier::new(&sim, nodes);
    let addrs: Arc<Mutex<Vec<Option<ProcAddr>>>> =
        Arc::new(Mutex::new(vec![None; n_servers as usize]));
    let totals: Arc<Mutex<LoadStats>> = Arc::new(Mutex::new(LoadStats::default()));
    for (s, &node) in server_nodes.iter().enumerate() {
        let (b, a, scfg) = (barrier.clone(), addrs.clone(), server_cfg.clone());
        cluster.spawn_process(node, "kv-shard", move |ctx, env| {
            let port = env.open_port(ctx);
            a.lock().unwrap()[s] = Some(port.addr());
            let mut srv = RpcServer::new(ctx, port, scfg).expect("shard up");
            let mut svc = KvService::new(KvCosts::default());
            b.wait(ctx);
            srv.serve_until_idle(ctx, &mut |ctx: &mut ActorCtx, op: u8, req: &[u8]| {
                svc.handle(ctx, op, req)
            });
        });
    }
    let client_nodes: Vec<u32> = (0..nodes).filter(|n| !server_nodes.contains(n)).collect();
    for (c, &node) in client_nodes.iter().enumerate() {
        let (b, a, t) = (barrier.clone(), addrs.clone(), totals.clone());
        let ccfg = client_cfg.clone();
        let c = c as u32;
        cluster.spawn_process(node, "load-client", move |ctx, env| {
            let port = env.open_port(ctx);
            let mut cli = RpcClient::new(ctx, port, ccfg).expect("client up");
            b.wait(ctx);
            let servers: Vec<ProcAddr> = a
                .lock()
                .unwrap()
                .iter()
                .map(|x| x.expect("shard ready"))
                .collect();
            // Think 0.5–1.5 ms keeps clients live through the storm window.
            let cfg = ClosedLoopCfg {
                users: users_per_client,
                ops_per_user: 2,
                think_min: SimDuration::from_us(500),
                think_max: SimDuration::from_us(1_500),
                mix: Mix::default(),
                user_base: u64::from(c) * u64::from(users_per_client),
            };
            let mut rng = ctx.sim().fork_rng(&format!("load.shard_det.client{c}"));
            let hists = LatencyHists::new(&ctx.sim().metrics());
            let stats = run_closed_loop(ctx, &mut cli, &servers, &mut rng, &cfg, &hists);
            t.lock().unwrap().merge(&stats);
        });
    }
    assert_eq!(sim.run(), RunOutcome::Completed, "shard_det workload hung");
    let stats = *totals.lock().unwrap();
    let users = u64::from(nodes - n_servers) * u64::from(users_per_client);
    let slo = SloReport::gather(&cluster.sim, "shard_det", "any", nodes, users, &stats);
    assert!(slo.accounted(), "requests leaked");
    RunBytes {
        slo: slo.to_json(),
        metrics: cluster.metrics_snapshot().to_json(),
        timeseries: cluster.sim.timeseries().snapshot().to_json(),
        chaos: plan.map(|_| ChaosReport::gather(&cluster.sim, "shard_det", SEED).to_json()),
    }
}

fn assert_bytes_equal(reference: &RunBytes, got: &RunBytes, what: &str) {
    assert_eq!(reference.slo, got.slo, "{what}: SLO report diverged");
    assert_eq!(reference.metrics, got.metrics, "{what}: metrics diverged");
    assert_eq!(
        reference.timeseries, got.timeseries,
        "{what}: timeseries diverged"
    );
    assert_eq!(reference.chaos, got.chaos, "{what}: chaos report diverged");
}

/// Clean single-rail run: production sharding (one shard per node), the
/// single-queue reference, and a deliberately odd shard count must all
/// produce the same bytes as each other.
#[test]
fn rpc_slo_reports_identical_across_shard_counts() {
    let spec = || ClusterSpec::dawning3000(8).with_seed(SEED);
    let reference = run_kv(spec().with_engine_shards(Some(1)), 4, None);
    assert!(reference.slo.contains("\"issued\""));
    for shards in [None, Some(3)] {
        let got = run_kv(spec().with_engine_shards(shards), 4, None);
        assert_bytes_equal(&reference, &got, &format!("shards={shards:?}"));
    }
}

/// Dual-rail storm run: fault injection, retransmission, failover and
/// resync paths must also be shard-count-invariant.
#[test]
fn chaos_slo_reports_identical_across_shard_counts() {
    let spec = || {
        let mut spec = ClusterSpec::dawning3000(16)
            .with_seed(SEED)
            .with_second_san(SanKind::Mesh(MeshConfig::dawning3000()));
        spec.bcl.reliability.max_path_timeouts = 3;
        spec
    };
    let mut plan = ChaosPlan::new();
    plan.push(
        SimTime::from_ns(1_000_000),
        Fault::LinkFlap {
            rail: 0,
            node: 5,
            down_for: SimDuration::from_ms(2),
        },
    );
    plan.push(SimTime::from_ns(2_000_000), Fault::NicReset { node: 13 });
    let reference = run_kv(spec().with_engine_shards(Some(1)), 2, Some(&plan));
    let chaos = reference.chaos.as_deref().expect("chaos report gathered");
    assert!(chaos.contains("\"injected\""));
    let sharded = run_kv(spec(), 2, Some(&plan));
    assert_bytes_equal(&reference, &sharded, "storm sharded-vs-single-queue");
}
