//! # suca-pubsub — room-based pub-sub log service over suca-rpc
//!
//! The second tenant workload of the multi-tenant layer: a persisted,
//! sequence-numbered event log per **room**, with subscriber fan-out over
//! the RPC layer's push frames.
//!
//! * **Rooms** ([`Room`]) — a pure, property-tested model: bounded-
//!   retention log, per-subscriber byte-credit windows, and the slow-
//!   subscriber policy (throttle within `max_lag`, shed past it — counted,
//!   never a wedged channel or a sequence gap).
//! * **Service** ([`PubSubService`]) — PUBLISH / SUBSCRIBE / HISTORY / ACK
//!   op classes behind [`suca_rpc::RpcServer::serve_tenants_until_idle`];
//!   fan-out deliveries ride [`suca_rpc::RpcPush`] frames. Event records
//!   carry their flags (EOF sentinels survive throttling and replay).
//! * **Drivers** ([`run_publisher`], [`run_publisher_open`],
//!   [`run_subscriber`]) — load generators matching the `suca-load`
//!   accounting contract; the subscriber verifies the gap-free-prefix
//!   property online.
//!
//! The fan-out accounting identity — `fanout_sent + fanout_throttled +
//! fanout_shed == Σ subscribers present at each publish` — holds after
//! every operation ([`RoomStats::balanced`]) and is asserted by the mixed
//! harness per node.

#![warn(missing_docs)]

pub mod client;
pub mod room;
pub mod service;
pub mod wire;

pub use client::{
    event_body, run_publisher, run_publisher_open, run_subscriber, FloodCfg, PublisherCfg,
    SubStats, SubscriberCfg,
};
pub use room::{Delivery, DeliveryKind, PublishOutcome, Room, RoomCfg, RoomStats};
pub use service::{PubSubCosts, PubSubService};
pub use wire::{CLASS_NAMES, FLAG_EOF, FLAG_SHED, OP_ACK, OP_HISTORY, OP_PUBLISH, OP_SUBSCRIBE};
